// Figure 6 — "Distribution of the number of files provided by each client".
//
// Paper: heavy-tailed (clients providing >5 000 files exist) but explicitly
// NOT a power law (poor fit at small values), with "an unexpected large
// number of clients providing a few thousands of files" — attributed to
// client-software limits such as a maximal number of files per shared
// directory.  We check the plateau bump at the modelled directory caps.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 6 — files provided by each client",
      "heavy tail to >5,000; NOT a power law; bump at a few thousand "
      "(client software caps)");

  core::RunnerConfig cfg = bench::bench_config(argc, argv);
  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();
  bench::print_campaign_scale(report);

  CountHistogram h = runner.stats().files_per_provider();

  std::cout << "# files-per-provider distribution (x = files, y = clients)\n";
  analysis::print_distribution(std::cout, h, "files provided", "clients");
  analysis::print_loglog_plot(std::cout, h);

  analysis::PowerLawFit fit = analysis::fit_power_law(h, 1);
  std::cout << "\npower-law fit (xmin=1): " << analysis::describe_fit(fit)
            << "\n";

  // Cap bump detection: count clients within a narrow band at each modelled
  // cap vs an equally wide band just below it.
  std::cout << "\n== paper vs measured (shape) ==\n";
  std::cout << "  max files provided   paper >5,000 | measured "
            << with_thousands(h.max_value()) << "\n";
  bool bump_found = false;
  for (std::uint32_t cap : cfg.campaign.population.share_caps) {
    std::uint64_t at = 0, below = 0;
    for (std::uint64_t d = 0; d < 3; ++d) {
      at += h.count_of(cap - d);
      below += h.count_of(cap - 40 - d);
    }
    std::cout << "  clients at cap " << cap << "        " << at
              << " vs " << below << " just below\n";
    bump_found |= (at > 3 * below + 2);
  }
  bool not_power_law = !fit.plausible();
  bool heavy = h.max_value() >= 1000;
  std::cout << "  shape check: cap bump=" << (bump_found ? "yes" : "NO")
            << ", not-a-clean-power-law=" << (not_power_law ? "yes" : "NO")
            << ", heavy tail=" << (heavy ? "yes" : "NO") << "\n";
  return (bump_found && heavy) ? 0 : 1;
}
