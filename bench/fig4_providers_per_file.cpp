// Figure 4 — "Distribution of the number of clients providing each file".
//
// Paper: spans several orders of magnitude (some files provided by
// >10 000 clients); huge mass at the bottom (>3.5 M files with exactly one
// provider, >1 M with two); decrease reasonably well fitted by a power law
// — with the caveat that a combination of power laws would fit better.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 4 — clients providing each file",
      "power-law decrease; max >10,000 providers; most files have 1-2");

  core::CampaignRunner runner(bench::bench_config(argc, argv));
  core::CampaignReport report = runner.run();
  bench::print_campaign_scale(report);

  CountHistogram h = runner.stats().providers_per_file();

  std::cout << "# providers-per-file distribution (x = providers, y = files)\n";
  analysis::print_distribution(std::cout, h, "providers", "files");
  analysis::print_loglog_plot(std::cout, h);

  analysis::PowerLawFit fit = analysis::fit_power_law_auto(h);
  std::cout << "\npower-law fit: " << analysis::describe_fit(fit) << "\n";

  const std::uint64_t one = h.count_of(1);
  const std::uint64_t two = h.count_of(2);
  const std::uint64_t files = h.total();
  std::cout << "\n== paper vs measured (shape) ==\n";
  std::cout << "  files with 1 provider   paper >3.5M (dominant) | measured "
            << with_thousands(one) << " of " << with_thousands(files) << "\n";
  std::cout << "  files with 2 providers  paper >1M  (2nd rank)  | measured "
            << with_thousands(two) << "\n";
  std::cout << "  max providers           paper >10,000          | measured "
            << with_thousands(h.max_value()) << "\n";
  std::cout << "  span (orders of magnitude) measured "
            << (h.max_value() >= 1000 ? ">=3" : "<3") << "\n";

  bool singles_dominate = one > files / 3 && one > two;
  bool heavy_tail = h.max_value() >= 100;  // at bench scale
  bool plausible_pl = fit.plausible();
  std::cout << "  shape check: singles dominate="
            << (singles_dominate ? "yes" : "NO") << ", heavy tail="
            << (heavy_tail ? "yes" : "NO")
            << ", power-law plausible=" << (plausible_pl ? "yes" : "NO")
            << "\n";
  return (singles_dominate && heavy_tail) ? 0 : 1;
}
