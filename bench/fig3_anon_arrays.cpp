// Figure 3 — "Size distribution of fileID anonymisation arrays after one
// week of capture".
//
// Paper: with the 65 536 arrays indexed by the *first two bytes* of the
// fileID, arrays 0 and 256 are abnormally large (array 0 holds 24 024
// elements while the expected mean at that point was ~1 342 — about 18x);
// indexing by two other bytes removes the pathology (their max dropped to
// 819 with mean around 2 bytes of the ID, i.e. a few hundred).
//
// We replay one simulated week of fileID arrivals (35 % forged — "a
// majority of fileID start with 0 or 256" counts stream occurrences, our
// universe fraction is conservative) and print the bucket-size
// distribution for both indexings, exactly the quantity Figure 3 plots.
#include <cstdlib>
#include <iostream>

#include "analysis/report.hpp"
#include "anon/fileid_store.hpp"
#include "common/strings.hpp"
#include "workload/idstream.hpp"

int main(int argc, char** argv) {
  using namespace dtr;

  std::uint64_t distinct =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  std::cout
      << "==============================================================\n"
         "Figure 3 — fileID anonymisation array sizes after one week\n"
         "Paper: first-two-byte indexing -> arrays 0/256 pathological\n"
         "(array 0 = 24,024 elems, ~18x mean); other bytes -> max 819\n"
         "==============================================================\n";
  std::cout << "[stream] " << with_thousands(distinct)
            << " distinct fileIDs, 35% forged (prefixes 0x0000/0x0100)\n\n";

  workload::FileIdStreamConfig cfg;
  cfg.distinct_ids = distinct;
  cfg.forged_fraction = 0.35;
  cfg.seed = 1;

  struct Variant {
    unsigned b0, b1;
    const char* label;
  };
  const Variant variants[] = {
      {0, 1, "index = two FIRST bytes (paper's first attempt)"},
      {5, 11, "index = two OTHER bytes (paper's fix)"},
  };

  double expected_mean = static_cast<double>(distinct) /
                         anon::BucketedFileIdStore::kBucketCount;
  bool shape_ok = true;

  for (const Variant& v : variants) {
    anon::BucketedFileIdStore store(v.b0, v.b1);
    workload::FileIdStream stream(cfg);
    for (std::uint64_t i = 0; i < distinct; ++i) {
      store.anonymise(stream.universe_id(i));
    }

    std::cout << "--- " << v.label << " ---\n";
    std::cout << "# array-size distribution (size -> number of arrays):\n";
    analysis::print_distribution(std::cout, store.bucket_size_distribution(),
                                 "array size", "arrays", /*log_binned=*/true,
                                 1.8);
    std::size_t largest = store.largest_bucket();
    std::printf(
        "mean %.0f | largest %zu (index %zu) = %.1fx mean | arrays 0/256: "
        "%zu / %zu\n\n",
        expected_mean, largest, store.largest_bucket_index(),
        static_cast<double>(largest) / expected_mean, store.bucket_size(0),
        store.bucket_size(256));

    if (v.b0 == 0 && v.b1 == 1) {
      // Pathology expected: hot buckets are 0/256 and way above the mean.
      bool hot = store.largest_bucket_index() == 0 ||
                 store.largest_bucket_index() == 256;
      bool skewed = static_cast<double>(largest) > 10.0 * expected_mean;
      shape_ok &= hot && skewed;
    } else {
      // Fix expected: largest bucket within a small factor of the mean.
      shape_ok &= static_cast<double>(largest) < 5.0 * expected_mean;
    }
  }

  std::cout << "== paper vs measured ==\n"
               "  paper: array 0 ~18x mean under first-two-byte indexing;\n"
               "         fixed byte pair max ~0.6x..2x mean band\n"
            << "  measured shape: "
            << (shape_ok ? "MATCHES (pathology present, fix effective)"
                         : "MISMATCH")
            << "\n";
  return shape_ok ? 0 : 1;
}
