// Dataset-summary table — the headline numbers of §2.2, §2.3 and §2.5.
//
// Paper (full 10-week campaign):
//   31,555,295,781 ethernet packets captured, 250,266 lost (~7.9e-6)
//   14,124,818,158 UDP packets; 2,981 fragments; 169 not well-formed
//   949,873,704 eDonkey messages handled; 0.68 % not decoded,
//     78 % of those structurally incorrect
//   8,867,052,380 messages in the dataset
//   89,884,526 distinct IP addresses; 275,461,212 distinct fileIDs
//
// We run the scaled campaign through the identical pipeline and print the
// same table side by side.  Absolute counts scale with the config; the
// dimensionless columns (loss rate, fragment ppm, undecoded %, structural
// share) are the reproduction targets.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header("Dataset summary table (paper sections 2.2, 2.3, 2.5)",
                      "see source header for the paper's absolute numbers");

  core::RunnerConfig cfg = bench::bench_config(argc, argv);
  // Compress to two days (like fig2) so paper-rate background TCP stays
  // tractable; all reported quantities are rates/fractions.
  cfg.campaign.duration = 2 * kDay;
  cfg.campaign.flash_crowd_count = 8;
  // Capture buffer scaled to this campaign's arrival rate (a few pkts/s on
  // average): drain always outruns arrival; only long reader stalls during
  // a flash crowd or a TCP burst overflow the small buffer — rare losses.
  cfg.buffer.capacity = 32;
  cfg.buffer.drain_rate = 2500.0;
  cfg.buffer.stall_per_hour = 1.0;
  cfg.buffer.stall_mean = 1500 * kMillisecond;
  cfg.campaign.flash_crowd_fraction = 0.08;
  // The TCP half of the mirror, scaled to the campaign: the paper's UDP
  // share (~0.5) is a ratio, so the synthetic TCP volume must track the
  // synthetic UDP volume, not the paper's absolute rates.
  sim::BackgroundConfig bg;
  bg.syn_per_minute = 60;
  bg.data_rate_quiet = 1.3;
  bg.data_rate_burst = 30;
  cfg.background = bg;

  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();
  const auto& d = report.pipeline.decode;

  const std::uint64_t mirrored = report.frames_captured + report.frames_lost;
  double loss_rate = mirrored == 0 ? 0
                                   : static_cast<double>(report.frames_lost) /
                                         static_cast<double>(mirrored);
  double fragment_ppm =
      d.udp_packets == 0 ? 0
                         : 1e6 * static_cast<double>(d.udp_fragments) /
                               static_cast<double>(d.udp_packets);
  double udp_share =
      static_cast<double>(d.udp_packets) /
      static_cast<double>(d.udp_packets + d.tcp_packets);

  char buf[64];
  auto fmt = [&](double v, const char* f) {
    std::snprintf(buf, sizeof(buf), f, v);
    return std::string(buf);
  };

  analysis::print_table(
      std::cout, "measured (scaled campaign)",
      {
          {"ethernet frames mirrored", with_thousands(mirrored)},
          {"frames captured", with_thousands(report.frames_captured)},
          {"frames lost", with_thousands(report.frames_lost)},
          {"UDP packets", with_thousands(d.udp_packets)},
          {"TCP packets (not decoded)", with_thousands(d.tcp_packets)},
          {"UDP fragments", with_thousands(d.udp_fragments)},
          {"UDP not well-formed", with_thousands(d.udp_malformed)},
          {"eDonkey messages handled", with_thousands(d.edonkey_messages)},
          {"decoded", with_thousands(d.decoded)},
          {"undecoded", with_thousands(d.undecoded())},
          {"dataset messages (queries+answers)",
           with_thousands(report.pipeline.anonymised_events)},
          {"distinct clients", with_thousands(report.pipeline.distinct_clients)},
          {"distinct fileIDs", with_thousands(report.pipeline.distinct_files)},
      });

  std::cout << "\n== dimensionless comparison (paper | measured) ==\n";
  std::cout << "  capture loss rate        7.9e-06      | "
            << fmt(loss_rate, "%.1e") << "\n";
  std::cout << "  UDP share of traffic     ~0.5         | "
            << fmt(udp_share, "%.2f") << "\n";
  std::cout << "  UDP fragments (ppm)      0.21         | "
            << fmt(fragment_ppm, "%.2f") << "\n";
  std::cout << "  undecoded fraction       0.68%        | "
            << fmt(100.0 * d.undecoded_fraction(), "%.2f%%") << "\n";
  std::cout << "  structural share         78%          | "
            << fmt(100.0 * d.structural_share_of_undecoded(), "%.0f%%")
            << "\n";

  bool ok = loss_rate < 1e-2 && d.undecoded_fraction() > 0.001 &&
            d.undecoded_fraction() < 0.02 &&
            d.structural_share_of_undecoded() > 0.5;
  std::cout << "\n  shape check: " << (ok ? "WITHIN BAND" : "OUT OF BAND")
            << "\n";
  return ok ? 0 : 1;
}
