// Figure 7 — "Distribution of the number of files each client asks for".
//
// Paper: several regimes (slow slope, then sharper, then a sparse tail up
// to ~100 000 — scanners crawling the network), and "a clear peak for the
// number of peers asking for 52 files", attributed to a query cap in a
// widely used client software.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 7 — files asked for by each client",
      "multi-regime, NOT a power law; singular peak at exactly 52; "
      "scanner tail to ~100,000");

  core::RunnerConfig cfg = bench::bench_config(argc, argv);
  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();
  bench::print_campaign_scale(report);

  CountHistogram h = runner.stats().files_per_asker();

  std::cout << "# files-per-asker distribution (x = files asked, y = clients)\n";
  analysis::print_distribution(std::cout, h, "files asked", "clients");
  analysis::print_loglog_plot(std::cout, h);

  // The 52 peak: compare against the neighbourhood.
  const std::uint64_t at52 = h.count_of(52);
  std::uint64_t neighbourhood = 0;
  int neighbours = 0;
  for (std::uint64_t x = 45; x <= 59; ++x) {
    if (x == 52) continue;
    neighbourhood += h.count_of(x);
    ++neighbours;
  }
  double neighbour_mean =
      neighbours == 0 ? 0.0
                      : static_cast<double>(neighbourhood) / neighbours;

  analysis::PowerLawFit fit = analysis::fit_power_law(h, 1);
  std::cout << "\npower-law fit (xmin=1): " << analysis::describe_fit(fit)
            << "\n";

  std::cout << "\n== paper vs measured (shape) ==\n";
  std::cout << "  clients asking exactly 52   measured " << at52
            << " vs neighbourhood mean ";
  std::printf("%.1f (x%.1f)\n", neighbour_mean,
              neighbour_mean > 0 ? at52 / neighbour_mean : 999.0);
  std::cout << "  max files asked             paper ~100,000 | measured "
            << with_thousands(h.max_value()) << "\n";
  bool peak52 = at52 > 4 * neighbour_mean + 2;
  bool scanner_tail = h.max_value() >= 1000;
  bool not_power_law = !fit.plausible();
  std::cout << "  shape check: 52-peak=" << (peak52 ? "yes" : "NO")
            << ", scanner tail=" << (scanner_tail ? "yes" : "NO")
            << ", not-a-clean-power-law=" << (not_power_law ? "yes" : "NO")
            << "\n";
  return (peak52 && scanner_tail) ? 0 : 1;
}
