// Figure 2 — "Ethernet packet losses per second during the capture and
// cumulative losses (inset)".
//
// Paper: losses are very rare (250 266 lost vs 31 555 295 781 captured,
// ~7.9e-6), bursty (isolated per-second spikes), and accumulate in visible
// steps.  Mechanism: the libpcap kernel buffer overflows during traffic
// peaks (§2.2).
//
// We replay the mechanism: campaign UDP traffic plus the TCP half of the
// mirror feeds a finite kernel buffer drained by a reader with occasional
// stalls.  The bench prints the per-second loss series (main plot), the
// cumulative series (inset), and the paper-vs-measured loss rate.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 2 — ethernet packet losses per second + cumulative (inset)",
      "250,266 lost / 31,555,295,781 captured (~7.9e-6), rare bursty spikes");

  core::RunnerConfig cfg = bench::bench_config(argc, argv);
  // Figure 2 is about the capture mechanism, not the content statistics:
  // compress the campaign into two days so the paper-rate background
  // traffic (5000 SYN/min + MMPP data) stays tractable while the per-second
  // dynamics are identical.
  cfg.campaign.duration = 2 * kDay;
  cfg.campaign.flash_crowd_count = 8;
  // The paper's loss regime: the reader normally keeps up easily (drain
  // well above even burst arrival); losses happen only when a long reader
  // stall coincides with high arrival and the kernel buffer (sized in
  // packets, like libpcap's) cannot absorb it.  That makes losses rare,
  // small and bursty — exactly Figure 2's shape.
  cfg.buffer.capacity = 512;
  cfg.buffer.drain_rate = 4000.0;
  cfg.buffer.stall_per_hour = 1.2;
  cfg.buffer.stall_mean = 800 * kMillisecond;
  cfg.campaign.flash_crowd_fraction = 0.08;
  // The TCP half of the mirror at the paper's absolute rates (§2.2:
  // ~5000 SYN/min) — Figure 2 studies the buffer against realistic
  // arrival dynamics, so absolute rates matter here (unlike the summary
  // table, which compares volume *ratios* and scales TCP down with the
  // campaign).
  sim::BackgroundConfig bg;
  bg.syn_per_minute = 5000;  // the paper's SYN rate
  bg.data_rate_quiet = 300;
  bg.data_rate_burst = 2200;
  bg.mean_quiet_s = 500;
  bg.mean_burst_s = 10;
  cfg.background = bg;

  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();

  const std::uint64_t captured = report.frames_captured;
  const std::uint64_t lost = report.frames_lost;

  std::cout << "# per-second losses (only non-zero seconds; main plot)\n";
  std::cout << "# second\tlost\n";
  std::size_t printed = 0;
  for (const auto& p : report.loss_series) {
    std::cout << p.second << "\t" << p.lost << "\n";
    if (++printed >= 60) {
      std::cout << "# ... (" << report.loss_series.size() - printed
                << " more loss seconds)\n";
      break;
    }
  }

  std::cout << "\n# cumulative losses (inset)\n# second\tcumulative\n";
  std::uint64_t running = 0;
  printed = 0;
  for (const auto& p : report.loss_series) {
    running += p.lost;
    if (printed % std::max<std::size_t>(1, report.loss_series.size() / 20) == 0) {
      std::cout << p.second << "\t" << running << "\n";
    }
    ++printed;
  }

  double measured_rate =
      captured == 0 ? 0.0
                    : static_cast<double>(lost) /
                          static_cast<double>(captured + lost);
  std::cout << "\n== paper vs measured ==\n";
  std::cout << "  captured frames      paper 31,555,295,781 | measured "
            << with_thousands(captured) << "\n";
  std::cout << "  lost frames          paper 250,266         | measured "
            << with_thousands(lost) << "\n";
  std::printf("  loss rate            paper 7.9e-06         | measured %.1e\n",
              measured_rate);
  std::cout << "  loss seconds         " << report.loss_series.size()
            << " distinct seconds with loss out of "
            << to_seconds(cfg.campaign.duration) << " simulated\n";
  std::cout << "  peak buffer pressure " << report.buffer_high_water << " / "
            << cfg.buffer.capacity << " packets (occupancy high-water)\n";
  bool rare = measured_rate < 1e-3;
  bool bursty = !report.loss_series.empty() &&
                report.loss_series.size() <
                    to_seconds(cfg.campaign.duration) / 100;
  std::cout << "  shape check          losses "
            << (rare ? "rare" : "NOT RARE (mismatch)") << ", "
            << (bursty ? "bursty/isolated" : "NOT bursty (mismatch)") << "\n";
  return rare && bursty ? 0 : 1;
}
