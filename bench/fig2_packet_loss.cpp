// Figure 2 — "Ethernet packet losses per second during the capture and
// cumulative losses (inset)".
//
// Paper: losses are very rare (250 266 lost vs 31 555 295 781 captured,
// ~7.9e-6), bursty (isolated per-second spikes), and accumulate in visible
// steps.  Mechanism: the libpcap kernel buffer overflows during traffic
// peaks (§2.2).
//
// We replay the mechanism: campaign UDP traffic plus the TCP half of the
// mirror feeds a finite kernel buffer drained by a reader with occasional
// stalls.  The bench prints the per-second loss series (main plot), the
// cumulative series (inset), and the paper-vs-measured loss rate.
#include <vector>

#include "fig_common.hpp"
#include "obs/timeseries.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 2 — ethernet packet losses per second + cumulative (inset)",
      "250,266 lost / 31,555,295,781 captured (~7.9e-6), rare bursty spikes");

  core::RunnerConfig cfg = bench::bench_config(argc, argv);
  // Figure 2 is about the capture mechanism, not the content statistics:
  // compress the campaign into two days so the paper-rate background
  // traffic (5000 SYN/min + MMPP data) stays tractable while the per-second
  // dynamics are identical.
  cfg.campaign.duration = 2 * kDay;
  cfg.campaign.flash_crowd_count = 8;
  // The paper's loss regime: the reader normally keeps up easily (drain
  // well above even burst arrival); losses happen only when a long reader
  // stall coincides with high arrival and the kernel buffer (sized in
  // packets, like libpcap's) cannot absorb it.  That makes losses rare,
  // small and bursty — exactly Figure 2's shape.
  cfg.buffer.capacity = 512;
  cfg.buffer.drain_rate = 4000.0;
  cfg.buffer.stall_per_hour = 1.2;
  cfg.buffer.stall_mean = 800 * kMillisecond;
  cfg.campaign.flash_crowd_fraction = 0.08;
  // The TCP half of the mirror at the paper's absolute rates (§2.2:
  // ~5000 SYN/min) — Figure 2 studies the buffer against realistic
  // arrival dynamics, so absolute rates matter here (unlike the summary
  // table, which compares volume *ratios* and scales TCP down with the
  // campaign).
  sim::BackgroundConfig bg;
  bg.syn_per_minute = 5000;  // the paper's SYN rate
  bg.data_rate_quiet = 300;
  bg.data_rate_burst = 2200;
  bg.mean_quiet_s = 500;
  bg.mean_burst_s = 10;
  cfg.background = bg;

  // The loss curve now comes from the telemetry subsystem, not the
  // engine's private accumulator: a per-second TimeSeriesRecorder over the
  // `capture.dropped` counter, in sparse (store-only-on-change) mode so two
  // days of mostly-zero seconds stay a handful of samples.  The capture
  // counters are recorded synchronously on the feed thread, so no pipeline
  // flush is needed at the one-second boundaries.
  obs::Registry registry;
  obs::TimeSeriesOptions series_options;
  series_options.interval = kSecond;
  series_options.include_prefixes = {"capture.dropped"};
  series_options.store_only_on_change = true;
  obs::TimeSeriesRecorder series(registry, series_options);
  cfg.metrics = &registry;
  cfg.series = &series;
  cfg.series_flush = false;

  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();

  const std::uint64_t captured = report.frames_captured;
  const std::uint64_t lost = report.frames_lost;

  // Regenerate Figure 2's per-second loss series from the recorded
  // telemetry.  A sample at boundary t covers frames in [t-1s, t), so the
  // engine's "loss second s" is the recorder's boundary s+1; sparse mode
  // attributes each delta to exactly the second the drops happened in.
  struct LossSample {
    std::uint64_t second;
    std::uint64_t lost;
  };
  std::vector<LossSample> losses;
  for (const auto& [time, delta] : series.counter_deltas("capture.dropped")) {
    if (delta == 0) continue;  // the first stored sample can be all-zero
    losses.push_back(LossSample{to_seconds(time) - 1, delta});
  }

  // Cross-check telemetry against the engine's own accumulator — the
  // series is only a valid Figure 2 source if the two agree exactly.
  bool series_matches = losses.size() == report.loss_series.size();
  if (series_matches) {
    for (std::size_t i = 0; i < losses.size(); ++i) {
      series_matches = series_matches &&
                       losses[i].second == report.loss_series[i].second &&
                       losses[i].lost == report.loss_series[i].lost;
    }
  }

  std::cout << "# per-second losses from telemetry (non-zero seconds; main "
               "plot)\n";
  std::cout << "# second\tlost\n";
  std::size_t printed = 0;
  for (const auto& p : losses) {
    std::cout << p.second << "\t" << p.lost << "\n";
    if (++printed >= 60) {
      std::cout << "# ... (" << losses.size() - printed
                << " more loss seconds)\n";
      break;
    }
  }

  std::cout << "\n# cumulative losses (inset)\n# second\tcumulative\n";
  std::uint64_t running = 0;
  printed = 0;
  for (const auto& p : losses) {
    running += p.lost;
    if (printed % std::max<std::size_t>(1, losses.size() / 20) == 0) {
      std::cout << p.second << "\t" << running << "\n";
    }
    ++printed;
  }

  double measured_rate =
      captured == 0 ? 0.0
                    : static_cast<double>(lost) /
                          static_cast<double>(captured + lost);
  std::cout << "\n== paper vs measured ==\n";
  std::cout << "  captured frames      paper 31,555,295,781 | measured "
            << with_thousands(captured) << "\n";
  std::cout << "  lost frames          paper 250,266         | measured "
            << with_thousands(lost) << "\n";
  std::printf("  loss rate            paper 7.9e-06         | measured %.1e\n",
              measured_rate);
  std::cout << "  loss seconds         " << report.loss_series.size()
            << " distinct seconds with loss out of "
            << to_seconds(cfg.campaign.duration) << " simulated\n";
  std::cout << "  peak buffer pressure " << report.buffer_high_water << " / "
            << cfg.buffer.capacity << " packets (occupancy high-water)\n";
  bool rare = measured_rate < 1e-3;
  bool bursty = !losses.empty() &&
                losses.size() < to_seconds(cfg.campaign.duration) / 100;
  std::cout << "  shape check          losses "
            << (rare ? "rare" : "NOT RARE (mismatch)") << ", "
            << (bursty ? "bursty/isolated" : "NOT bursty (mismatch)")
            << ", telemetry series "
            << (series_matches ? "matches engine" : "MISMATCH") << "\n";
  return rare && bursty && series_matches ? 0 : 1;
}
