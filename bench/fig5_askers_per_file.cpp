// Figure 5 — "Distribution of the number of clients asking for each file".
//
// Paper: power-law-like decrease; the most wanted files are asked for by
// up to ~150 000 clients — a non-negligible fraction of all 90 M clients
// (~0.17 %); most files are asked for by very few.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 5 — clients asking for each file",
      "power-law decrease; top file asked by ~150,000 (~0.17% of clients)");

  core::CampaignRunner runner(bench::bench_config(argc, argv));
  core::CampaignReport report = runner.run();
  bench::print_campaign_scale(report);

  CountHistogram h = runner.stats().askers_per_file();

  std::cout << "# askers-per-file distribution (x = askers, y = files)\n";
  analysis::print_distribution(std::cout, h, "askers", "files");
  analysis::print_loglog_plot(std::cout, h);

  analysis::PowerLawFit fit = analysis::fit_power_law_auto(h);
  std::cout << "\npower-law fit: " << analysis::describe_fit(fit) << "\n";

  double top_share =
      static_cast<double>(h.max_value()) /
      static_cast<double>(report.pipeline.distinct_clients);
  std::cout << "\n== paper vs measured (shape) ==\n";
  std::cout << "  max askers of one file  paper ~150,000 (~0.17% of clients)"
            << " | measured " << with_thousands(h.max_value());
  std::printf(" (%.2f%% of clients)\n", 100.0 * top_share);
  std::cout << "  files asked once        measured " << with_thousands(h.count_of(1))
            << " of " << with_thousands(h.total()) << "\n";

  bool heavy_tail = h.max_value() >= 50;
  bool singles_dominate = h.count_of(1) > h.total() / 4;
  bool top_is_small_fraction = top_share < 0.25;
  std::cout << "  shape check: heavy tail=" << (heavy_tail ? "yes" : "NO")
            << ", singles dominate=" << (singles_dominate ? "yes" : "NO")
            << ", top file still a minority audience="
            << (top_is_small_fraction ? "yes" : "NO") << "\n";
  return (heavy_tail && singles_dominate && top_is_small_fraction) ? 0 : 1;
}
