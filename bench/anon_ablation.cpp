// §2.4 ablation — the paper's data-structure decisions, measured.
//
//   * clientID anonymisation: the paper's direct-index array vs the
//     "classical data structures (like hashtables or trees)" it rejects as
//     "too slow and/or too space consuming".
//   * fileID anonymisation: the paper's 65,536 bucketed sorted arrays vs a
//     single global sorted array (rejected: "insertion has a prohibitive
//     cost"), a hashtable, and a tree.
//   * the bucket-index byte pair under forged-ID pollution: first-two-byte
//     indexing (hot buckets -> quadratic insertions) vs the fixed choice.
//
// Workloads replay the anonymiser's reality: Zipf-repeating lookups over a
// growing universe (billions of searches, millions of insertions).
#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/distinct.hpp"
#include "analysis/hyperloglog.hpp"
#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "workload/idstream.hpp"

namespace {

using namespace dtr;

// ---------------------------------------------------------------------------
// clientID tables
// ---------------------------------------------------------------------------

// Two regimes:
//   * insert-heavy (ops = 4x distinct): dominated by first-sight inserts —
//     a small-scale stress of table growth.
//   * lookup-heavy (ops = 24x distinct, stronger Zipf): the paper's actual
//     regime — "several billions" of searches against ~90 M insertions
//     (~100 lookups per identity), where the direct array's single memory
//     access per operation is the whole argument of §2.4.
template <typename Table>
void client_table_bench(benchmark::State& state, std::uint64_t ops_per_distinct,
                        double zipf_skew) {
  const auto distinct = static_cast<std::uint64_t>(state.range(0));
  workload::ClientIdStreamConfig cfg{distinct, zipf_skew, 42};
  for (auto _ : state) {
    state.PauseTiming();
    Table table;
    workload::ClientIdStream stream(cfg);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < distinct * ops_per_distinct; ++i) {
      benchmark::DoNotOptimize(table.anonymise(stream.next()));
    }
    state.counters["distinct"] = static_cast<double>(table.distinct());
    state.counters["MiB"] =
        static_cast<double>(table.memory_bytes()) / (1024.0 * 1024.0);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(distinct * ops_per_distinct));
}

void BM_ClientDirectArray(benchmark::State& state) {
  client_table_bench<anon::DirectClientTable>(state, 4, 0.8);
}
void BM_ClientHashTable(benchmark::State& state) {
  client_table_bench<anon::HashClientTable>(state, 4, 0.8);
}
void BM_ClientTree(benchmark::State& state) {
  client_table_bench<anon::TreeClientTable>(state, 4, 0.8);
}

BENCHMARK(BM_ClientDirectArray)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_ClientHashTable)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_ClientTree)->Arg(100'000)->Arg(1'000'000);

void BM_ClientDirectArrayLookupHeavy(benchmark::State& state) {
  client_table_bench<anon::DirectClientTable>(state, 24, 1.05);
}
void BM_ClientHashTableLookupHeavy(benchmark::State& state) {
  client_table_bench<anon::HashClientTable>(state, 24, 1.05);
}
void BM_ClientTreeLookupHeavy(benchmark::State& state) {
  client_table_bench<anon::TreeClientTable>(state, 24, 1.05);
}

BENCHMARK(BM_ClientDirectArrayLookupHeavy)->Arg(1'000'000);
BENCHMARK(BM_ClientHashTableLookupHeavy)->Arg(1'000'000);
BENCHMARK(BM_ClientTreeLookupHeavy)->Arg(1'000'000);

// ---------------------------------------------------------------------------
// fileID stores — clean (uniform) ID streams
// ---------------------------------------------------------------------------

template <typename Store>
void fileid_store_bench(benchmark::State& state, double forged_fraction) {
  const auto distinct = static_cast<std::uint64_t>(state.range(0));
  workload::FileIdStreamConfig cfg{distinct, 0.9, forged_fraction, 7};
  for (auto _ : state) {
    state.PauseTiming();
    Store store;
    workload::FileIdStream stream(cfg);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < distinct * 3; ++i) {
      benchmark::DoNotOptimize(store.anonymise(stream.next()));
    }
    state.counters["distinct"] = static_cast<double>(store.distinct());
    state.counters["MiB"] =
        static_cast<double>(store.memory_bytes()) / (1024.0 * 1024.0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distinct * 3));
}

void BM_FileBucketedSorted(benchmark::State& state) {
  fileid_store_bench<anon::BucketedFileIdStore>(state, 0.0);
}
void BM_FileGlobalSortedArray(benchmark::State& state) {
  fileid_store_bench<anon::SortedArrayFileIdStore>(state, 0.0);
}
void BM_FileHashTable(benchmark::State& state) {
  fileid_store_bench<anon::HashFileIdStore>(state, 0.0);
}
void BM_FileTree(benchmark::State& state) {
  fileid_store_bench<anon::TreeFileIdStore>(state, 0.0);
}

// The global sorted array is O(n) per insert — cap its size so the bench
// binary finishes; the slowdown is visible well before 1M.
BENCHMARK(BM_FileBucketedSorted)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_FileGlobalSortedArray)->Arg(20'000)->Arg(100'000);
BENCHMARK(BM_FileHashTable)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_FileTree)->Arg(100'000)->Arg(1'000'000);

// ---------------------------------------------------------------------------
// bucket-index byte pair under pollution (the Figure 3 pathology, timed)
// ---------------------------------------------------------------------------

void bucketed_bytepair_bench(benchmark::State& state, unsigned b0, unsigned b1) {
  const auto distinct = static_cast<std::uint64_t>(state.range(0));
  workload::FileIdStreamConfig cfg{distinct, 0.9, /*forged=*/0.35, 7};
  for (auto _ : state) {
    state.PauseTiming();
    anon::BucketedFileIdStore store(b0, b1);
    workload::FileIdStream stream(cfg);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < distinct * 3; ++i) {
      benchmark::DoNotOptimize(store.anonymise(stream.next()));
    }
    state.counters["largest_bucket"] =
        static_cast<double>(store.largest_bucket());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distinct * 3));
}

void BM_PollutedFirstTwoBytes(benchmark::State& state) {
  bucketed_bytepair_bench(state, 0, 1);
}
void BM_PollutedFixedBytePair(benchmark::State& state) {
  bucketed_bytepair_bench(state, 5, 11);
}

BENCHMARK(BM_PollutedFirstTwoBytes)->Arg(100'000)->Arg(400'000);
BENCHMARK(BM_PollutedFixedBytePair)->Arg(100'000)->Arg(400'000);

// ---------------------------------------------------------------------------
// distinct counting — the §2.5 "counting the number of distinct fileID"
// challenge: exact paged bitset vs a 16 KiB HyperLogLog sketch.
// ---------------------------------------------------------------------------

void BM_DistinctExactBitset(benchmark::State& state) {
  const auto distinct = static_cast<std::uint64_t>(state.range(0));
  workload::ClientIdStreamConfig cfg{distinct, 0.8, 42};
  for (auto _ : state) {
    state.PauseTiming();
    analysis::BitsetDistinctCounter counter;
    workload::ClientIdStream stream(cfg);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < distinct * 4; ++i) counter.observe(stream.next());
    state.counters["distinct"] = static_cast<double>(counter.distinct());
    state.counters["MiB"] =
        static_cast<double>(counter.memory_bytes()) / (1024.0 * 1024.0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distinct * 4));
}

void BM_DistinctHyperLogLog(benchmark::State& state) {
  const auto distinct = static_cast<std::uint64_t>(state.range(0));
  workload::ClientIdStreamConfig cfg{distinct, 0.8, 42};
  for (auto _ : state) {
    state.PauseTiming();
    analysis::HyperLogLog hll(14);
    workload::ClientIdStream stream(cfg);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < distinct * 4; ++i) hll.observe(stream.next());
    state.counters["estimate"] = hll.estimate();
    state.counters["MiB"] =
        static_cast<double>(hll.memory_bytes()) / (1024.0 * 1024.0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distinct * 4));
}

BENCHMARK(BM_DistinctExactBitset)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_DistinctHyperLogLog)->Arg(100'000)->Arg(1'000'000);

}  // namespace
