// Shared harness for the figure-reproduction benches: one bench-scale
// campaign configuration, run through the full pipeline, plus helpers for
// the paper-vs-measured output format.
//
// Scale note (see DESIGN.md): the paper's campaign is ~9e9 messages /
// 89.9M clients / 275M files over 10 weeks.  The default bench scale is
// ~1e6 messages; pass a scale factor as argv[1] to grow or shrink it.
// Shapes, not absolute counts, are the reproduction target.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/donkeytrace.hpp"

namespace dtr::bench {

inline core::RunnerConfig bench_config(int argc, char** argv,
                                       std::uint64_t seed = 42) {
  double scale = argc > 1 ? std::strtod(argv[1], nullptr) : 1.0;
  core::RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 2 * kWeek;
  cfg.campaign.population.client_count =
      static_cast<std::uint32_t>(8000 * scale);
  // Catalog-to-ask-volume ratio matters for Figure 5's shape: the paper's
  // file universe (275 M) dwarfs its per-file ask counts, so files asked
  // exactly once dominate.  Keep the same regime at bench scale.
  cfg.campaign.catalog.file_count =
      static_cast<std::uint32_t>(100'000 * scale);
  cfg.campaign.population.collector_share_max = 12'000;
  cfg.campaign.population.casual_ask_max = 600;
  cfg.campaign.population.scanner_ask_max =
      static_cast<std::uint32_t>(8'000 * scale);
  // UDP realism knobs: real eDonkey UDP datagrams are small — clients
  // announce in MTU-sized batches and the server answers source requests
  // with a bounded list, so IP fragmentation is *rare* (paper: 2,981
  // fragments in 14 B packets), not the norm.
  cfg.campaign.publish_batch = 16;
  cfg.campaign.server.max_sources_per_answer = 200;
  cfg.campaign.server.max_search_results = 15;  // short global search
                                                // answers fit one datagram;
                                                // the rare fragments come
                                                // from the jumbo-announcer
                                                // client minority instead
  // Capture must be lossless for the distribution figures (losses are
  // Figure 2's subject, not Figures 4-8's).
  cfg.buffer.capacity = 1 << 22;
  cfg.buffer.drain_rate = 1e9;
  cfg.buffer.stall_per_hour = 0.0;
  return cfg;
}

inline void print_header(const std::string& figure,
                         const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << figure << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==============================================================\n";
}

inline void print_campaign_scale(const core::CampaignReport& report) {
  std::cout << "[campaign] " << with_thousands(report.truth.total_messages())
            << " messages, " << with_thousands(report.pipeline.distinct_clients)
            << " distinct clients, "
            << with_thousands(report.pipeline.distinct_files)
            << " distinct fileIDs\n\n";
}

}  // namespace dtr::bench
