// Figure 8 — "File size distribution".
//
// Paper: many small files (music); clear peaks at 700 MB (CD-ROM) and at
// fractions (1/2 = 350 MB, 1/3 = 233 MB, 1/4 = 175 MB) and multiples
// (2x = 1.4 GB); a peak at 1 GB (DVD images split into 1 GB pieces).
// "Even though in principle files exchanged in P2P systems may have any
// size, their actual sizes are strongly related to the space capacity of
// classical exchange and storage supports."
//
// Two passes: (1) the generative model at scale — the exact histogram the
// campaign draws sizes from; (2) the size distribution recovered from a
// full campaign's anonymised dataset (sizes in KB, as released), verifying
// the peaks survive the pipeline.
#include "fig_common.hpp"

namespace {

struct Peak {
  const char* label;
  std::uint64_t center_kb;
};

// Peak mass within ±2 % of the centre.
std::uint64_t mass_near(const dtr::CountHistogram& h, std::uint64_t center,
                        double width = 0.02) {
  auto lo = static_cast<std::uint64_t>(static_cast<double>(center) * (1 - width));
  auto hi = static_cast<std::uint64_t>(static_cast<double>(center) * (1 + width));
  std::uint64_t mass = 0;
  for (auto it = h.bins().lower_bound(lo);
       it != h.bins().end() && it->first <= hi; ++it) {
    mass += it->second;
  }
  return mass;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtr;
  bench::print_header(
      "Figure 8 — file size distribution",
      "small-file bulk + peaks at 175/233/350/700/1400 MB and 1 GB");

  // Pass 1: the generative model at high resolution.
  workload::FileSizeModel model;
  Rng rng(8);
  CountHistogram model_kb;
  const int kSamples = 400'000;
  for (int i = 0; i < kSamples; ++i) {
    model_kb.add((model.sample(rng) + 1023) / 1024);
  }

  std::cout << "# model histogram (x = size KB, y = files), log-binned\n";
  analysis::print_distribution(std::cout, model_kb, "size KB", "files",
                               /*log_binned=*/true, 1.3);

  const Peak peaks[] = {
      {"175 MB (CD/4)", 175'000'000 / 1024},
      {"233 MB (CD/3)", 233'000'000 / 1024},
      {"350 MB (CD/2)", 350'000'000 / 1024},
      {"700 MB (CD)", 700'000'000 / 1024},
      {"1 GB (DVD split)", 1'073'741'824 / 1024},
      {"1.4 GB (2x CD)", 1'400'000'000 / 1024},
  };

  std::cout << "\n== peak detection in the generative model ==\n";
  bool model_ok = true;
  std::uint64_t small = 0;
  for (const auto& [kb, count] : model_kb.bins()) {
    if (kb < 20'000) small += count;  // < ~20 MB
  }
  std::printf("  small files (<20 MB): %.1f%% of all files\n",
              100.0 * static_cast<double>(small) / kSamples);
  for (const Peak& p : peaks) {
    std::uint64_t at_peak = mass_near(model_kb, p.center_kb);
    // Background estimate: same-width windows offset by ±10 %.
    std::uint64_t bg = (mass_near(model_kb, p.center_kb * 110 / 100) +
                        mass_near(model_kb, p.center_kb * 90 / 100)) /
                       2;
    bool present = at_peak > 3 * bg + 20;
    std::printf("  %-18s mass %6llu vs background %6llu -> %s\n", p.label,
                static_cast<unsigned long long>(at_peak),
                static_cast<unsigned long long>(bg),
                present ? "PEAK" : "absent");
    model_ok &= present;
  }

  // Pass 2: through the whole pipeline (catalog -> publish -> capture ->
  // anonymise -> dataset size histogram).
  core::RunnerConfig cfg = bench::bench_config(argc, argv);
  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();
  bench::print_campaign_scale(report);
  const CountHistogram& dataset_kb = runner.stats().size_distribution();

  std::cout << "== peak survival in the anonymised dataset ==\n";
  int survived = 0, checked = 0;
  for (const Peak& p : peaks) {
    std::uint64_t at_peak = mass_near(dataset_kb, p.center_kb);
    std::uint64_t bg = (mass_near(dataset_kb, p.center_kb * 110 / 100) +
                        mass_near(dataset_kb, p.center_kb * 90 / 100)) /
                       2;
    bool present = at_peak > 2 * bg + 5;
    std::printf("  %-18s mass %6llu vs background %6llu -> %s\n", p.label,
                static_cast<unsigned long long>(at_peak),
                static_cast<unsigned long long>(bg),
                present ? "PEAK" : "absent");
    ++checked;
    survived += present;
  }

  bool small_dominates = small > kSamples / 2;
  std::cout << "\n== paper vs measured ==\n"
            << "  small-file bulk dominates: "
            << (small_dominates ? "yes" : "NO") << "\n"
            << "  model peaks: " << (model_ok ? "all present" : "MISSING SOME")
            << "; dataset peaks surviving the pipeline: " << survived << "/"
            << checked << "\n";
  return (model_ok && small_dominates && survived >= checked - 2) ? 0 : 1;
}
