// §2.3 — "the processing method ... is able to decode udp traffic in
// real-time, which is crucial in our context."
//
// Measures the stages of the real-time path in isolation and end to end:
//   * eDonkey datagram structural validation alone,
//   * full datagram decode,
//   * the whole frame path (ethernet -> IP -> UDP -> eDonkey),
//   * frame path + anonymisation (the complete per-packet work).
//
// Real time for the paper's server means ~2,300 UDP packets/s sustained
// (14.1e9 packets / 10 weeks); the items/s counters show the margin.
#include <benchmark/benchmark.h>

#include <sstream>

#include "anon/anonymiser.hpp"
#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"
#include "decode/decoder.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "proto/codec.hpp"
#include "proto/tcp_codec.hpp"
#include "sim/campaign.hpp"
#include "xmlio/compress.hpp"
#include "xmlio/schema.hpp"

namespace {

using namespace dtr;

constexpr std::uint32_t kServerIp = 0xC0A80001;
constexpr std::uint16_t kServerPort = 4665;

/// A realistic message mix, pre-encoded once.
std::vector<Bytes> message_mix() {
  std::vector<Bytes> out;
  Rng rng(5);
  for (int i = 0; i < 256; ++i) {
    double u = rng.uniform();
    if (u < 0.3) {
      proto::GetSourcesReq req;
      FileId id;
      for (auto& b : id.bytes) b = static_cast<std::uint8_t>(rng.below(256));
      req.file_ids.push_back(id);
      out.push_back(proto::encode_message(proto::Message(std::move(req))));
    } else if (u < 0.5) {
      proto::FoundSourcesRes res;
      for (auto& b : res.file_id.bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
      std::size_t n = 1 + rng.below(40);
      for (std::size_t s = 0; s < n; ++s)
        res.sources.push_back({static_cast<std::uint32_t>(rng.next()),
                               static_cast<std::uint16_t>(4662)});
      out.push_back(proto::encode_message(proto::Message(std::move(res))));
    } else if (u < 0.7) {
      proto::FileSearchReq req;
      req.expr = proto::SearchExpr::keywords(
          {"token" + std::to_string(rng.below(100)),
           "word" + std::to_string(rng.below(100))});
      out.push_back(proto::encode_message(proto::Message(std::move(req))));
    } else if (u < 0.9) {
      proto::PublishReq req;
      std::size_t n = 1 + rng.below(20);
      for (std::size_t f = 0; f < n; ++f) {
        proto::FileEntry e;
        for (auto& b : e.file_id.bytes)
          b = static_cast<std::uint8_t>(rng.below(256));
        e.client_id = static_cast<std::uint32_t>(rng.next());
        e.tags = {proto::Tag::str(proto::TagName::kFileName,
                                  "file " + std::to_string(f) + ".mp3"),
                  proto::Tag::u32(proto::TagName::kFileSize,
                                  static_cast<std::uint32_t>(rng.below(1u << 30)))};
        req.files.push_back(std::move(e));
      }
      out.push_back(proto::encode_message(proto::Message(std::move(req))));
    } else {
      out.push_back(proto::encode_message(
          proto::ServStatReq{static_cast<std::uint32_t>(rng.next())}));
    }
  }
  return out;
}

std::vector<Bytes> frame_mix() {
  std::vector<Bytes> frames;
  Rng rng(9);
  for (const Bytes& payload : message_mix()) {
    net::UdpDatagram udp;
    udp.src_port = 4662;
    udp.dst_port = kServerPort;
    udp.payload = payload;
    net::Ipv4Packet ip;
    ip.src = static_cast<std::uint32_t>(rng.next());
    ip.dst = kServerIp;
    ip.identification = static_cast<std::uint16_t>(rng.next());
    ip.payload = net::encode_udp(udp, ip.src, ip.dst);
    net::EthernetFrame eth;
    eth.payload = net::encode_ipv4(ip);
    frames.push_back(net::encode_ethernet(eth));
  }
  return frames;
}

void BM_ValidateStructureOnly(benchmark::State& state) {
  auto msgs = message_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::validate_structure(msgs[i % msgs.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ValidateStructureOnly);

void BM_DecodeDatagram(benchmark::State& state) {
  auto msgs = message_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode_datagram(msgs[i % msgs.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeDatagram);

void BM_FullFramePath(benchmark::State& state) {
  auto frames = frame_mix();
  decode::FrameDecoder decoder(kServerIp, kServerPort,
                               [](decode::DecodedMessage&&) {});
  std::size_t i = 0;
  for (auto _ : state) {
    decoder.push(sim::TimedFrame{static_cast<SimTime>(i), frames[i % frames.size()]});
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullFramePath);

void BM_FramePathPlusAnonymisation(benchmark::State& state) {
  auto frames = frame_mix();
  anon::DirectClientTable clients;
  anon::BucketedFileIdStore files;
  anon::Anonymiser anonymiser(clients, files);
  decode::FrameDecoder decoder(
      kServerIp, kServerPort, [&](decode::DecodedMessage&& msg) {
        benchmark::DoNotOptimize(
            anonymiser.anonymise(msg.time, msg.src_ip, msg.message));
      });
  std::size_t i = 0;
  for (auto _ : state) {
    decoder.push(sim::TimedFrame{static_cast<SimTime>(i), frames[i % frames.size()]});
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["distinct_clients"] =
      static_cast<double>(clients.distinct());
  state.counters["distinct_files"] = static_cast<double>(files.distinct());
}
BENCHMARK(BM_FramePathPlusAnonymisation);

// --- TCP extension: stream reassembly + frame extraction --------------------

void BM_TcpReassemblyAndExtraction(benchmark::State& state) {
  // One long flow of offer messages, pre-segmented at the MSS.
  Bytes stream;
  Rng rng(13);
  for (int m = 0; m < 64; ++m) {
    proto::OfferFiles offer;
    for (int f = 0; f < 20; ++f) {
      proto::FileEntry e;
      for (auto& b : e.file_id.bytes)
        b = static_cast<std::uint8_t>(rng.below(256));
      e.tags = {proto::Tag::str(proto::TagName::kFileName,
                                "offer file " + std::to_string(f) + ".mp3"),
                proto::Tag::u32(proto::TagName::kFileSize, 1u << 22)};
      offer.files.push_back(std::move(e));
    }
    Bytes wire = proto::encode_tcp_message(proto::TcpMessage(std::move(offer)));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  std::vector<net::TcpSegment> segments;
  constexpr std::size_t kMss = 1448;
  for (std::size_t off = 0; off < stream.size(); off += kMss) {
    net::TcpSegment seg;
    seg.src_port = 1000;
    seg.dst_port = 4661;
    seg.seq = static_cast<std::uint32_t>(off + 1);
    seg.flags.ack = true;
    std::size_t n = std::min(kMss, stream.size() - off);
    seg.payload.assign(stream.begin() + static_cast<std::ptrdiff_t>(off),
                       stream.begin() + static_cast<std::ptrdiff_t>(off + n));
    segments.push_back(std::move(seg));
  }

  std::uint64_t messages = 0;
  for (auto _ : state) {
    proto::TcpMessageExtractor extractor(
        [&](proto::TcpMessage&&) { ++messages; });
    net::TcpStreamReassembler reassembler(
        [&](const net::FlowKey&, BytesView data, bool gap) {
          if (gap) extractor.resync();
          extractor.feed(data);
        });
    net::TcpSegment syn;
    syn.src_port = 1000;
    syn.dst_port = 4661;
    syn.seq = 0;
    syn.flags.syn = true;
    reassembler.push(1, 2, syn, 0);
    for (const auto& seg : segments) reassembler.push(1, 2, seg, 0);
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * segments.size()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * stream.size()));
}
BENCHMARK(BM_TcpReassemblyAndExtraction);

// --- parallel vs serial pipeline ---------------------------------------------

void BM_PipelineEndToEnd(benchmark::State& state) {
  // Pre-generate a frame batch once; pump it through the full pipeline
  // (decode -> anonymise -> stats).  range(0) = worker count (0 = serial).
  static const std::vector<Bytes>* frames = [] {
    auto* out = new std::vector<Bytes>(frame_mix());
    // Repeat to a meaningful batch.
    std::vector<Bytes> base = *out;
    for (int rep = 0; rep < 15; ++rep) {
      out->insert(out->end(), base.begin(), base.end());
    }
    return out;
  }();

  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    if (workers == 0) {
      core::PipelineConfig cfg;
      cfg.server_ip = kServerIp;
      cfg.server_port = kServerPort;
      core::CapturePipeline pipeline(cfg);
      std::uint64_t i = 0;
      for (const Bytes& f : *frames) {
        pipeline.push(sim::TimedFrame{static_cast<SimTime>(i++), f});
      }
      auto result = pipeline.finish();
      state.counters["decoded"] = static_cast<double>(result.decode.decoded);
    } else {
      core::ParallelPipelineConfig cfg;
      cfg.server_ip = kServerIp;
      cfg.server_port = kServerPort;
      cfg.workers = workers;
      core::ParallelCapturePipeline pipeline(cfg);
      std::uint64_t i = 0;
      for (const Bytes& f : *frames) {
        pipeline.push(sim::TimedFrame{static_cast<SimTime>(i++), f});
      }
      auto result = pipeline.finish();
      state.counters["decoded"] = static_cast<double>(result.decode.decoded);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frames->size()));
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

// --- dataset compression -----------------------------------------------------

void BM_DatasetCompression(benchmark::State& state) {
  std::ostringstream doc;
  {
    xmlio::DatasetWriter w(doc);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
      anon::AnonEvent ev;
      ev.time = static_cast<SimTime>(i) * 1000;
      ev.peer = static_cast<anon::AnonClientId>(rng.below(500));
      ev.is_query = true;
      ev.message = anon::AGetSourcesReq{{rng.below(5000)}};
      w.write(ev);
    }
  }
  std::string text = doc.str();
  Bytes data(text.begin(), text.end());
  for (auto _ : state) {
    Bytes compressed = xmlio::lz_compress(data);
    benchmark::DoNotOptimize(compressed);
    state.counters["ratio"] = xmlio::lz_ratio(data, compressed);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_DatasetCompression);

}  // namespace
