// §2.1 — the directory server "indexes files and users" and must answer
// searches and publishes from millions of clients in real time.
//
// Measures the sharded FileIndex (server/index.hpp) across shard counts
// {1, 2, 4, 8}, with the LRU search cache off and on:
//
//   * BM_SearchThroughput: a steady state of cached searches with a live
//     publish stream (one publish per 16 searches).  A publish dirties one
//     shard; with the cache on, a revalidation recomputes only the dirty
//     shard's partial, so the recomputed work per search shrinks roughly
//     linearly with the shard count.  This is where sharding pays off on a
//     single core — the win is confinement of cache invalidation, not
//     thread parallelism.
//   * BM_PublishThroughput: batch-publish rate as shards grow (each batch
//     locks every shard at most once).
//
// Queries are shaped to evaluate their whole posting list (a keyword AND a
// never-satisfied size bound): real servers spend their time walking
// postings for selective queries, and a limit-bounded common-word query
// would stop at the cap and mask the effect being measured.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hash/md4.hpp"
#include "server/index.hpp"

namespace {

using namespace dtr;

constexpr std::size_t kWords = 16;

std::string word(std::size_t k) { return "keyword" + std::to_string(k); }

proto::FileEntry make_entry(const std::string& name, proto::ClientId client) {
  proto::FileEntry e;
  e.file_id = Md4::digest(name);
  e.client_id = client;
  e.port = 4662;
  e.tags = {proto::Tag::str(proto::TagName::kFileName, name),
            proto::Tag::u32(proto::TagName::kFileSize, 1u << 20),
            proto::Tag::str(proto::TagName::kFileType, "audio")};
  return e;
}

/// ~6000 files, each carrying one of the 16 query keywords, so every
/// keyword's posting list holds ~375 files spread across the shards.
std::vector<proto::FileEntry> make_catalog(std::size_t files) {
  std::vector<proto::FileEntry> out;
  out.reserve(files);
  for (std::size_t i = 0; i < files; ++i) {
    out.push_back(make_entry(word(i % kWords) + " file " + std::to_string(i) +
                                 ".mp3",
                             static_cast<proto::ClientId>(1 + i % 512)));
  }
  return out;
}

/// One query per keyword: the size bound never matches, so the scan
/// evaluates the keyword's entire posting list instead of stopping at the
/// answer cap.
std::vector<proto::SearchExprPtr> make_queries() {
  std::vector<proto::SearchExprPtr> out;
  for (std::size_t k = 0; k < kWords; ++k) {
    out.push_back(proto::SearchExpr::boolean(
        proto::BoolOp::kAnd, proto::SearchExpr::keyword(word(k)),
        proto::SearchExpr::numeric(0xF0000000u, proto::NumCmp::kMin,
                                   proto::TagName::kFileSize)));
  }
  return out;
}

void BM_SearchThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool cache = state.range(1) != 0;

  server::FileIndexConfig cfg;
  cfg.shards = shards;
  cfg.search_cache_entries = cache ? 64 : 0;
  server::FileIndex index(cfg);
  for (const proto::FileEntry& e : make_catalog(6000)) index.publish(e);
  const std::vector<proto::SearchExprPtr> queries = make_queries();

  std::uint64_t searches = 0;
  std::uint64_t fresh = 0;  // distinct names for the live publish stream
  for (auto _ : state) {
    // One "cycle": every query once, then one publish to dirty a shard —
    // the mix a live server sees (searches dominate, publishes trickle).
    for (const auto& q : queries) {
      benchmark::DoNotOptimize(index.search(*q, 201));
      ++searches;
    }
    index.publish(make_entry(
        word(fresh % kWords) + " fresh " + std::to_string(fresh) + ".mp3",
        static_cast<proto::ClientId>(1 + fresh % 512)));
    ++fresh;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(searches));
  const server::FileIndex::CacheStats cs = index.cache_stats();
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  state.counters["cache_partial_hits"] = static_cast<double>(cs.partial_hits);
  state.counters["cache_misses"] = static_cast<double>(cs.misses);
  state.counters["files"] = static_cast<double>(index.file_count());
}
BENCHMARK(BM_SearchThroughput)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "cache"});

void BM_PublishThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 64;

  server::FileIndexConfig cfg;
  cfg.shards = shards;
  server::FileIndex index(cfg);

  std::uint64_t published = 0;
  std::uint64_t serial = 0;
  std::vector<proto::FileEntry> batch;
  batch.reserve(kBatch);
  for (auto _ : state) {
    batch.clear();
    for (std::size_t i = 0; i < kBatch; ++i, ++serial) {
      batch.push_back(make_entry(
          word(serial % kWords) + " pub " + std::to_string(serial) + ".mp3",
          static_cast<proto::ClientId>(1 + serial % 512)));
    }
    benchmark::DoNotOptimize(index.publish_batch(batch));
    published += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(published));
  state.counters["files"] = static_cast<double>(index.file_count());
}
BENCHMARK(BM_PublishThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"shards"});

}  // namespace
