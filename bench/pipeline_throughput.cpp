// End-to-end pipeline throughput baseline (the ISSUE 5 perf trajectory).
//
// The paper's capture box decoded and anonymised eDonkey traffic at line
// rate for ten straight weeks; the pipeline must never be the bottleneck.
// This bench drives a fixed-seed simulated campaign — materialised once
// into memory so frame generation is off the clock — through:
//
//   * the serial CapturePipeline (reference), and
//   * the ParallelCapturePipeline at 2, 4 and 8 workers over the sharded
//     anonymiser, in two data-plane modes: "perframe" (batch size 1,
//     pooling off, writer inline — the pre-batching per-frame hand-off
//     path) and "batched" (micro-batches over SPSC rings + buffer pooling
//     + parallel anonymise/pre-render + offloaded XML writer).
//
// Every run must produce the same message count and the same number of
// XML bytes (a built-in differential check); the JSON it emits
// (BENCH_pipeline.json) records frames/s, messages/s and allocation
// counts per run, plus the batched-vs-perframe speedup at 4 workers.
// Smoke mode (--smoke) shrinks the campaign to seconds for CI; on hosts
// with >= 4 hardware threads it additionally asserts the perf-regression
// floor (4-worker batched must reach 85% of serial messages/s — in
// practice it should exceed it).  Below 4 hardware threads the floor is
// reported but advisory: parallel overhead on an oversubscribed core is
// real, not a regression.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/resource.hpp"
#include "sim/background.hpp"
#include "sim/campaign.hpp"

// Global allocation counting: every operator new in the process ticks the
// shared obs counters, so the per-run deltas count the pipeline's hot-path
// allocations (the pooling claim is "steady state allocates nothing", and
// this measures it).  The counting operators live in obs/alloc_counting.hpp
// (one TU per binary); this bench is that TU.
#include "obs/alloc_counting.hpp"

namespace {

using namespace dtr;

/// Swallows the XML stream but keeps the byte count — the dataset writer
/// runs at full formatting cost without disk noise, and the byte count is
/// the cross-run differential check.
class CountingNullBuf : public std::streambuf {
 public:
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 protected:
  int overflow(int c) override {
    if (c != traits_type::eof()) ++bytes_;
    return c;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    bytes_ += static_cast<std::uint64_t>(n);
    return n;
  }

 private:
  std::uint64_t bytes_ = 0;
};

sim::CampaignConfig corpus_config(bool smoke) {
  sim::CampaignConfig cfg;
  cfg.seed = 42;
  if (smoke) {
    cfg.duration = 2 * kHour;
    cfg.population.client_count = 40;
    cfg.catalog.file_count = 300;
    cfg.catalog.vocabulary = 120;
    cfg.flash_crowd_count = 1;
  } else {
    cfg.duration = 24 * kHour;
    cfg.population.client_count = 800;
    cfg.catalog.file_count = 2'000;
    cfg.catalog.vocabulary = 500;
    cfg.population.collector_share_max = 2'000;
    cfg.population.scanner_ask_max = 1'500;
  }
  return cfg;
}

// The mirror also carries the non-decoded TCP half of the traffic (§2.2:
// UDP is only "about half" of what the NIC captures).  Those frames are
// classified and skipped by the decoder, so their cost is almost purely
// data-plane overhead — exactly what micro-batching amortises.  Rates are
// scaled down from the paper's (5000 SYNs/min) so the corpus fits in a
// bench-sized run while keeping the decoded/skipped frame mix realistic.
sim::BackgroundConfig background_config(bool smoke, SimTime duration) {
  sim::BackgroundConfig cfg;
  cfg.seed = 7;
  cfg.duration = duration;
  cfg.syn_per_minute = smoke ? 60.0 : 600.0;
  cfg.data_rate_quiet = smoke ? 0.5 : 1.0;
  cfg.data_rate_burst = smoke ? 5.0 : 10.0;
  cfg.data_frame_bytes = 400;
  return cfg;
}

// Materialise the merged mirror stream (eDonkey campaign + background TCP)
// in time order, so frame generation happens once and off the clock.
std::vector<sim::TimedFrame> build_corpus(const sim::CampaignConfig& campaign,
                                          const sim::BackgroundConfig& bg) {
  std::vector<sim::TimedFrame> frames;
  {
    sim::CampaignSimulator simulator(campaign);
    simulator.run([&](const sim::TimedFrame& f) { frames.push_back(f); });
  }
  std::vector<sim::TimedFrame> merged;
  sim::BackgroundTraffic background(bg);
  std::optional<sim::TimedFrame> next_bg = background.next();
  merged.reserve(frames.size());
  for (sim::TimedFrame& f : frames) {
    while (next_bg && next_bg->time <= f.time) {
      merged.push_back(std::move(*next_bg));
      next_bg = background.next();
    }
    merged.push_back(std::move(f));
  }
  while (next_bg) {
    merged.push_back(std::move(*next_bg));
    next_bg = background.next();
  }
  return merged;
}

struct RunSpec {
  const char* name;
  std::size_t workers;  // 0 = serial CapturePipeline
  std::size_t batch_frames;
  bool buffer_pool;
  bool writer_offload;
  std::size_t anon_shards = 8;
};

struct RunStats {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t xml_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::string error;
};

RunStats run_once(const std::vector<sim::TimedFrame>& frames,
                  const RunSpec& spec, obs::Registry* metrics = nullptr,
                  obs::Profiler* profiler = nullptr) {
  CountingNullBuf xml_buf;
  std::ostream xml(&xml_buf);
  RunStats stats;
  core::PipelineResult result;

  if (spec.workers == 0) {
    core::PipelineConfig cfg;
    cfg.xml_out = &xml;
    cfg.metrics = metrics;
    cfg.profiler = profiler;
    core::CapturePipeline pipeline(cfg);
    const std::uint64_t allocs0 = obs::allocation_count();
    const std::uint64_t bytes0 = obs::allocation_bytes();
    const auto t0 = std::chrono::steady_clock::now();
    for (const sim::TimedFrame& frame : frames) pipeline.push(frame);
    result = pipeline.finish();
    const auto t1 = std::chrono::steady_clock::now();
    stats.seconds = std::chrono::duration<double>(t1 - t0).count();
    stats.allocs = obs::allocation_count() - allocs0;
    stats.alloc_bytes = obs::allocation_bytes() - bytes0;
  } else {
    core::ParallelPipelineConfig cfg;
    cfg.workers = spec.workers;
    cfg.batch_frames = spec.batch_frames;
    cfg.buffer_pool = spec.buffer_pool;
    cfg.writer_offload = spec.writer_offload;
    cfg.anon_shards = spec.anon_shards;
    cfg.xml_out = &xml;
    cfg.metrics = metrics;
    cfg.profiler = profiler;
    core::ParallelCapturePipeline pipeline(cfg);
    const std::uint64_t allocs0 = obs::allocation_count();
    const std::uint64_t bytes0 = obs::allocation_bytes();
    const auto t0 = std::chrono::steady_clock::now();
    for (const sim::TimedFrame& frame : frames) pipeline.push(frame);
    result = pipeline.finish();
    const auto t1 = std::chrono::steady_clock::now();
    stats.seconds = std::chrono::duration<double>(t1 - t0).count();
    stats.allocs = obs::allocation_count() - allocs0;
    stats.alloc_bytes = obs::allocation_bytes() - bytes0;
  }

  stats.messages = result.anonymised_events;
  stats.xml_bytes = xml_buf.bytes();
  stats.error = result.error;
  return stats;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

int run_bench(bool smoke, const std::string& out_path) {
  const sim::CampaignConfig cfg = corpus_config(smoke);
  const std::vector<sim::TimedFrame> frames =
      build_corpus(cfg, background_config(smoke, cfg.duration));
  std::uint64_t corpus_bytes = 0;
  for (const sim::TimedFrame& f : frames) corpus_bytes += f.bytes.size();
  std::cerr << "corpus: " << frames.size() << " frames, " << corpus_bytes
            << " bytes (seed " << cfg.seed << ", "
            << (smoke ? "smoke" : "full") << " mode)\n";

  const RunSpec specs[] = {
      {"serial", 0, 1, false, false},
      {"parallel-2w-perframe", 2, 1, false, false},
      {"parallel-2w-batched", 2, 128, true, true},
      {"parallel-4w-perframe", 4, 1, false, false},
      {"parallel-4w-batched", 4, 128, true, true},
      {"parallel-8w-batched", 8, 128, true, true},
  };

  std::string runs_json;
  std::uint64_t reference_messages = 0;
  std::uint64_t reference_xml_bytes = 0;
  double serial_rate = 0.0;
  double perframe_4w = 0.0;
  double batched_4w = 0.0;
  double batched_8w = 0.0;
  bool ok = true;

  for (const RunSpec& spec : specs) {
    const RunStats stats = run_once(frames, spec);
    const double frames_per_s =
        stats.seconds > 0 ? static_cast<double>(frames.size()) / stats.seconds
                          : 0.0;
    const double messages_per_s =
        stats.seconds > 0 ? static_cast<double>(stats.messages) / stats.seconds
                          : 0.0;
    std::cerr << spec.name << ": " << fmt_double(stats.seconds) << " s, "
              << static_cast<std::uint64_t>(messages_per_s) << " msgs/s, "
              << stats.allocs << " allocs\n";
    if (!stats.error.empty()) {
      std::cerr << spec.name << " failed: " << stats.error << "\n";
      ok = false;
    }
    // Differential check: every configuration must produce the same
    // anonymised stream (count and formatted XML size).
    if (reference_messages == 0) {
      reference_messages = stats.messages;
      reference_xml_bytes = stats.xml_bytes;
    } else if (stats.messages != reference_messages ||
               stats.xml_bytes != reference_xml_bytes) {
      std::cerr << spec.name << " output mismatch: " << stats.messages << "/"
                << stats.xml_bytes << " vs reference " << reference_messages
                << "/" << reference_xml_bytes << "\n";
      ok = false;
    }
    if (std::string(spec.name) == "serial") serial_rate = messages_per_s;
    if (std::string(spec.name) == "parallel-4w-perframe") {
      perframe_4w = messages_per_s;
    }
    if (std::string(spec.name) == "parallel-4w-batched") {
      batched_4w = messages_per_s;
    }
    if (std::string(spec.name) == "parallel-8w-batched") {
      batched_8w = messages_per_s;
    }

    if (!runs_json.empty()) runs_json += ",\n";
    runs_json += "    {\"name\": \"" + std::string(spec.name) +
                 "\", \"workers\": " + std::to_string(spec.workers) +
                 ", \"batch_frames\": " + std::to_string(spec.batch_frames) +
                 ", \"buffer_pool\": " + (spec.buffer_pool ? "true" : "false") +
                 ", \"writer_offload\": " +
                 (spec.writer_offload ? "true" : "false") +
                 ", \"seconds\": " + fmt_double(stats.seconds) +
                 ", \"frames_per_s\": " + fmt_double(frames_per_s) +
                 ", \"messages_per_s\": " + fmt_double(messages_per_s) +
                 ", \"messages\": " + std::to_string(stats.messages) +
                 ", \"xml_bytes\": " + std::to_string(stats.xml_bytes) +
                 ", \"allocs\": " + std::to_string(stats.allocs) +
                 ", \"alloc_bytes\": " + std::to_string(stats.alloc_bytes) +
                 "}";
  }

  // Perf-regression floor: with enough real cores, the 4-worker batched
  // pipeline must not fall behind serial (15% slack for machine noise).
  // On narrower hosts the same ratio is reported but only advisory: the
  // parallel pipeline's coordination overhead cannot amortise when every
  // thread shares one core, and failing CI over core count would make the
  // gate meaningless.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_enforced = hw >= 4;
  const double floor_ratio = 0.85;
  const double serial_ratio_4w = serial_rate > 0 ? batched_4w / serial_rate : 0.0;
  if (gate_enforced) {
    if (serial_ratio_4w < floor_ratio) {
      std::cerr << "PERF REGRESSION: 4w-batched is " << fmt_double(serial_ratio_4w)
                << "x serial (floor " << fmt_double(floor_ratio) << "x, "
                << hw << " hardware threads)\n";
      ok = false;
    }
  } else {
    // Unenforced hosts still report the number they measured: a narrow CI
    // box going from 0.9x to 0.3x is worth noticing even when it cannot
    // fail the run.
    std::cerr << "perf floor advisory only (gate needs >= 4 hardware "
              << "threads, have " << hw << "): 4w-batched is "
              << fmt_double(serial_ratio_4w) << "x serial (floor "
              << fmt_double(floor_ratio) << "x, "
              << (serial_ratio_4w < floor_ratio ? "below" : "meets")
              << " floor)\n";
  }

  const double speedup = perframe_4w > 0 ? batched_4w / perframe_4w : 0.0;
  std::string json = "{\n  \"bench\": \"pipeline_throughput\",\n";
  json += "  \"mode\": \"" + std::string(smoke ? "smoke" : "full") + "\",\n";
  json += "  \"hardware_threads\": " + std::to_string(hw) + ",\n";
  json += "  \"corpus\": {\"seed\": " + std::to_string(cfg.seed) +
          ", \"frames\": " + std::to_string(frames.size()) +
          ", \"bytes\": " + std::to_string(corpus_bytes) + "},\n";
  json += "  \"runs\": [\n" + runs_json + "\n  ],\n";
  json += "  \"summary\": {\"serial_messages_per_s\": " + fmt_double(serial_rate) +
          ", \"perframe_4w_messages_per_s\": " + fmt_double(perframe_4w) +
          ", \"batched_4w_messages_per_s\": " + fmt_double(batched_4w) +
          ", \"batched_8w_messages_per_s\": " + fmt_double(batched_8w) +
          ", \"speedup_4w\": " + fmt_double(speedup) +
          ", \"serial_ratio_4w\": " + fmt_double(serial_ratio_4w) +
          ", \"perf_gate_enforced\": " +
          (gate_enforced ? "true" : "false") + "}\n}\n";

  if (!obs::json_valid(json)) {
    std::cerr << "internal error: emitted invalid JSON\n";
    return 2;
  }
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  std::cerr << "wrote " << out_path << " (4w batched/perframe speedup "
            << fmt_double(speedup) << "x)\n";
  return ok ? 0 : 1;
}

// --profile-out: one 4-worker batched run with the pipeline profiler and
// the resource sampler attached, ending in the bottleneck report (text to
// stderr, JSON to FILE).  This is the "which stage is saturated" follow-up
// question the throughput numbers alone cannot answer.
int run_profiled(bool smoke, const std::string& profile_path) {
  const sim::CampaignConfig cfg = corpus_config(smoke);
  const std::vector<sim::TimedFrame> frames =
      build_corpus(cfg, background_config(smoke, cfg.duration));
  std::cerr << "corpus: " << frames.size() << " frames (seed " << cfg.seed
            << ", " << (smoke ? "smoke" : "full") << " mode, profiled)\n";

  obs::Registry registry;
  obs::Profiler profiler;
  obs::ResourceSamplerOptions opts;
  opts.interval = std::chrono::milliseconds(smoke ? 10 : 50);
  opts.counters = {"pipeline.frames", "pipeline.messages", "anon.events"};
  opts.gauges = {{"pipeline.queue.merge", ""}, {"pipeline.queue.writer", ""}};
  obs::ResourceSampler sampler(&registry, opts);

  RunSpec spec{"parallel-4w-batched-profiled", 4, 128, true, true};
  sampler.start();
  const RunStats stats = run_once(frames, spec, &registry, &profiler);
  sampler.stop();
  if (!stats.error.empty()) {
    std::cerr << spec.name << " failed: " << stats.error << "\n";
    return 1;
  }
  std::cerr << spec.name << ": " << fmt_double(stats.seconds) << " s, "
            << stats.messages << " messages, " << stats.allocs << " allocs\n";

  const obs::BottleneckReport report =
      obs::build_bottleneck_report(profiler, &sampler);
  report.render_text(std::cerr);
  std::ostringstream json;
  report.render_json(json);
  if (!obs::json_valid(json.str())) {
    std::cerr << "internal error: emitted invalid JSON\n";
    return 2;
  }
  std::ofstream out(profile_path, std::ios::binary);
  out << json.str() << "\n";
  if (!out) {
    std::cerr << "cannot write " << profile_path << "\n";
    return 2;
  }
  std::cerr << "wrote " << profile_path << " (bottleneck report)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pipeline.json";
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else {
      std::cerr << "usage: pipeline_throughput [--smoke] [--out FILE] "
                   "[--profile-out FILE]\n";
      return 2;
    }
  }
  if (!profile_path.empty()) return run_profiled(smoke, profile_path);
  return run_bench(smoke, out_path);
}
