#include "proto/tags.hpp"

namespace dtr::proto {

namespace {
std::string special_name(TagName n) {
  return std::string(1, static_cast<char>(static_cast<std::uint8_t>(n)));
}
}  // namespace

Tag Tag::str(TagName n, std::string v) {
  return Tag{special_name(n), std::move(v)};
}
Tag Tag::u32(TagName n, std::uint32_t v) { return Tag{special_name(n), v}; }
Tag Tag::str_named(std::string name, std::string v) {
  return Tag{std::move(name), std::move(v)};
}
Tag Tag::u32_named(std::string name, std::uint32_t v) {
  return Tag{std::move(name), v};
}

const Tag* find_tag(const TagList& tags, TagName name) {
  for (const Tag& t : tags) {
    if (t.has_special_name(name)) return &t;
  }
  return nullptr;
}

std::optional<std::string> tag_string(const TagList& tags, TagName name) {
  const Tag* t = find_tag(tags, name);
  if (t == nullptr || !t->is_string()) return std::nullopt;
  return t->as_string();
}

std::optional<std::uint32_t> tag_u32(const TagList& tags, TagName name) {
  const Tag* t = find_tag(tags, name);
  if (t == nullptr || !t->is_u32()) return std::nullopt;
  return t->as_u32();
}

void encode_tag(ByteWriter& w, const Tag& tag) {
  if (tag.is_string()) {
    w.u8(static_cast<std::uint8_t>(TagType::kString));
  } else {
    w.u8(static_cast<std::uint8_t>(TagType::kU32));
  }
  w.str16(tag.name);
  if (tag.is_string()) {
    w.str16(tag.as_string());
  } else {
    w.u32le(tag.as_u32());
  }
}

void encode_tag_list(ByteWriter& w, const TagList& tags) {
  w.u32le(static_cast<std::uint32_t>(tags.size()));
  for (const Tag& t : tags) encode_tag(w, t);
}

Tag decode_tag(ByteReader& r) {
  Tag tag;
  auto type = r.u8();
  tag.name = r.str16();
  if (type == static_cast<std::uint8_t>(TagType::kString)) {
    tag.value = r.str16();
  } else if (type == static_cast<std::uint8_t>(TagType::kU32)) {
    tag.value = r.u32le();
  } else {
    r.fail();  // unknown tag type: the classic server dialect has only two
  }
  if (tag.name.empty()) r.fail();  // a tag must be named
  return tag;
}

TagList decode_tag_list(ByteReader& r) {
  std::uint32_t count = r.u32le();
  // Each tag occupies >= 4 bytes on the wire; a count larger than the
  // remaining payload could allocate unbounded memory on forged input.
  if (count > r.remaining() / 4) {
    r.fail();
    return {};
  }
  TagList tags;
  tags.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    tags.push_back(decode_tag(r));
  }
  return tags;
}

}  // namespace dtr::proto
