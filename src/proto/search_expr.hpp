// eDonkey search expressions.
//
// A file-search request carries a serialized boolean expression tree over
// string terms and metadata constraints ("the protocol embeds complex
// encoding optimisations", paper §2.3).  Wire grammar, following the eMule
// protocol specification:
//
//   expr     := 0x00 op expr expr          (boolean node: op 0x00=AND,
//                                           0x01=OR, 0x02=ANDNOT)
//            |  0x01 str16                 (keyword term)
//            |  0x02 str16 str16           (metadata string constraint:
//                                           value, tag name)
//            |  0x03 u32 u8 str16          (numeric constraint: value,
//                                           comparator, tag name)
//
// Comparators for numeric constraints: 0x01 = min (>=), 0x02 = max (<=).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "proto/tags.hpp"

namespace dtr::proto {

enum class BoolOp : std::uint8_t { kAnd = 0x00, kOr = 0x01, kAndNot = 0x02 };
enum class NumCmp : std::uint8_t { kMin = 0x01, kMax = 0x02 };

struct SearchExpr;
using SearchExprPtr = std::unique_ptr<SearchExpr>;

/// One node of the expression tree.
struct SearchExpr {
  enum class Kind : std::uint8_t {
    kBool = 0x00,
    kKeyword = 0x01,
    kMetaString = 0x02,
    kMetaNumeric = 0x03,
  };

  Kind kind = Kind::kKeyword;

  // kBool
  BoolOp op = BoolOp::kAnd;
  SearchExprPtr left;
  SearchExprPtr right;

  // kKeyword / kMetaString
  std::string text;
  std::string tag_name;  // kMetaString / kMetaNumeric

  // kMetaNumeric
  std::uint32_t number = 0;
  NumCmp cmp = NumCmp::kMin;

  // -- constructors -------------------------------------------------------
  static SearchExprPtr keyword(std::string word);
  static SearchExprPtr meta_string(std::string value, TagName tag);
  static SearchExprPtr numeric(std::uint32_t value, NumCmp cmp, TagName tag);
  static SearchExprPtr boolean(BoolOp op, SearchExprPtr l, SearchExprPtr r);

  /// AND-chain of keywords — the overwhelmingly common real-world query.
  static SearchExprPtr keywords(const std::vector<std::string>& words);

  [[nodiscard]] SearchExprPtr clone() const;
  bool operator==(const SearchExpr& other) const;

  /// Number of nodes (used to bound decoding of hostile input).
  [[nodiscard]] std::size_t node_count() const;

  /// Collect all keyword terms, left to right.
  void collect_keywords(std::vector<std::string>& out) const;
};

void encode_search_expr(ByteWriter& w, const SearchExpr& e);

/// Decodes one expression; enforces a depth limit so forged deeply-nested
/// input cannot blow the stack.
SearchExprPtr decode_search_expr(ByteReader& r, int max_depth = 32);

}  // namespace dtr::proto
