// eDonkey metadata tags.
//
// Files in search results and publish messages carry a list of tags.  A tag
// is (type, name, value); well-known names are single special bytes
// (0x01 = filename, 0x02 = filesize, ...), other names are strings.  Only
// the two value types the classic server protocol uses are implemented:
// string (0x02) and 32-bit integer (0x03).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace dtr::proto {

/// Well-known single-byte tag names.
enum class TagName : std::uint8_t {
  kFileName = 0x01,
  kFileSize = 0x02,
  kFileType = 0x03,
  kFileFormat = 0x04,
  kVersion = 0x11,
  kPort = 0x0F,
  kDescription = 0x0B,
  kAvailability = 0x15,
  kCompleteSources = 0x30,
};

enum class TagType : std::uint8_t {
  kString = 0x02,
  kU32 = 0x03,
};

/// A metadata tag.  `name` is either a special byte (stored as a one-byte
/// string) or a free-form string; the helpers below hide the difference.
struct Tag {
  std::string name;                              // raw wire name bytes
  std::variant<std::string, std::uint32_t> value;

  static Tag str(TagName n, std::string v);
  static Tag u32(TagName n, std::uint32_t v);
  static Tag str_named(std::string name, std::string v);
  static Tag u32_named(std::string name, std::uint32_t v);

  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value);
  }
  [[nodiscard]] bool is_u32() const {
    return std::holds_alternative<std::uint32_t>(value);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value);
  }
  [[nodiscard]] std::uint32_t as_u32() const {
    return std::get<std::uint32_t>(value);
  }
  [[nodiscard]] bool has_special_name(TagName n) const {
    return name.size() == 1 &&
           static_cast<std::uint8_t>(name[0]) == static_cast<std::uint8_t>(n);
  }

  bool operator==(const Tag&) const = default;
};

using TagList = std::vector<Tag>;

/// Find the first tag with the given special name.
const Tag* find_tag(const TagList& tags, TagName name);

/// Convenience accessors used throughout the server and analysis code.
std::optional<std::string> tag_string(const TagList& tags, TagName name);
std::optional<std::uint32_t> tag_u32(const TagList& tags, TagName name);

/// Wire encoding: u8 type, u16le name length, name bytes, then the value
/// (str16 for strings, u32le for integers).
void encode_tag(ByteWriter& w, const Tag& tag);
void encode_tag_list(ByteWriter& w, const TagList& tags);

/// Decoding; on malformed input the reader's failure flag is set and the
/// return value must be discarded.
Tag decode_tag(ByteReader& r);
TagList decode_tag_list(ByteReader& r);

}  // namespace dtr::proto
