#include "proto/search_expr.hpp"

namespace dtr::proto {

namespace {
std::string special(TagName n) {
  return std::string(1, static_cast<char>(static_cast<std::uint8_t>(n)));
}
}  // namespace

SearchExprPtr SearchExpr::keyword(std::string word) {
  auto e = std::make_unique<SearchExpr>();
  e->kind = Kind::kKeyword;
  e->text = std::move(word);
  return e;
}

SearchExprPtr SearchExpr::meta_string(std::string value, TagName tag) {
  auto e = std::make_unique<SearchExpr>();
  e->kind = Kind::kMetaString;
  e->text = std::move(value);
  e->tag_name = special(tag);
  return e;
}

SearchExprPtr SearchExpr::numeric(std::uint32_t value, NumCmp cmp, TagName tag) {
  auto e = std::make_unique<SearchExpr>();
  e->kind = Kind::kMetaNumeric;
  e->number = value;
  e->cmp = cmp;
  e->tag_name = special(tag);
  return e;
}

SearchExprPtr SearchExpr::boolean(BoolOp op, SearchExprPtr l, SearchExprPtr r) {
  auto e = std::make_unique<SearchExpr>();
  e->kind = Kind::kBool;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

SearchExprPtr SearchExpr::keywords(const std::vector<std::string>& words) {
  if (words.empty()) return nullptr;
  SearchExprPtr acc = keyword(words[0]);
  for (std::size_t i = 1; i < words.size(); ++i) {
    acc = boolean(BoolOp::kAnd, std::move(acc), keyword(words[i]));
  }
  return acc;
}

SearchExprPtr SearchExpr::clone() const {
  auto e = std::make_unique<SearchExpr>();
  e->kind = kind;
  e->op = op;
  e->text = text;
  e->tag_name = tag_name;
  e->number = number;
  e->cmp = cmp;
  if (left) e->left = left->clone();
  if (right) e->right = right->clone();
  return e;
}

bool SearchExpr::operator==(const SearchExpr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kBool: {
      if (op != other.op) return false;
      bool l = (left && other.left) ? (*left == *other.left)
                                    : (left == nullptr && other.left == nullptr);
      bool r = (right && other.right)
                   ? (*right == *other.right)
                   : (right == nullptr && other.right == nullptr);
      return l && r;
    }
    case Kind::kKeyword:
      return text == other.text;
    case Kind::kMetaString:
      return text == other.text && tag_name == other.tag_name;
    case Kind::kMetaNumeric:
      return number == other.number && cmp == other.cmp &&
             tag_name == other.tag_name;
  }
  return false;
}

std::size_t SearchExpr::node_count() const {
  std::size_t n = 1;
  if (left) n += left->node_count();
  if (right) n += right->node_count();
  return n;
}

void SearchExpr::collect_keywords(std::vector<std::string>& out) const {
  switch (kind) {
    case Kind::kBool:
      if (left) left->collect_keywords(out);
      if (right) right->collect_keywords(out);
      break;
    case Kind::kKeyword:
      out.push_back(text);
      break;
    default:
      break;
  }
}

void encode_search_expr(ByteWriter& w, const SearchExpr& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  switch (e.kind) {
    case SearchExpr::Kind::kBool:
      w.u8(static_cast<std::uint8_t>(e.op));
      encode_search_expr(w, *e.left);
      encode_search_expr(w, *e.right);
      break;
    case SearchExpr::Kind::kKeyword:
      w.str16(e.text);
      break;
    case SearchExpr::Kind::kMetaString:
      w.str16(e.text);
      w.str16(e.tag_name);
      break;
    case SearchExpr::Kind::kMetaNumeric:
      w.u32le(e.number);
      w.u8(static_cast<std::uint8_t>(e.cmp));
      w.str16(e.tag_name);
      break;
  }
}

SearchExprPtr decode_search_expr(ByteReader& r, int max_depth) {
  if (!r.ok()) return nullptr;  // don't keep exploring after a failure
  if (max_depth <= 0) {
    r.fail();
    return nullptr;
  }
  auto e = std::make_unique<SearchExpr>();
  auto kind = r.u8();
  switch (kind) {
    case 0x00: {
      e->kind = SearchExpr::Kind::kBool;
      auto op = r.u8();
      if (op > 0x02) {
        r.fail();
        return nullptr;
      }
      e->op = static_cast<BoolOp>(op);
      e->left = decode_search_expr(r, max_depth - 1);
      if (!r.ok()) return nullptr;
      e->right = decode_search_expr(r, max_depth - 1);
      if (!r.ok()) return nullptr;
      break;
    }
    case 0x01:
      e->kind = SearchExpr::Kind::kKeyword;
      e->text = r.str16();
      if (e->text.empty()) r.fail();  // empty keyword is not searchable
      break;
    case 0x02:
      e->kind = SearchExpr::Kind::kMetaString;
      e->text = r.str16();
      e->tag_name = r.str16();
      if (e->tag_name.empty()) r.fail();
      break;
    case 0x03: {
      e->kind = SearchExpr::Kind::kMetaNumeric;
      e->number = r.u32le();
      auto cmp = r.u8();
      if (cmp != 0x01 && cmp != 0x02) {
        r.fail();
        return nullptr;
      }
      e->cmp = static_cast<NumCmp>(cmp);
      e->tag_name = r.str16();
      if (e->tag_name.empty()) r.fail();
      break;
    }
    default:
      r.fail();
      return nullptr;
  }
  if (!r.ok()) return nullptr;
  return e;
}

}  // namespace dtr::proto
