#include "proto/tcp_codec.hpp"

#include <cstring>

#include "proto/tags.hpp"

namespace dtr::proto {

namespace {

void encode_file_id(ByteWriter& w, const FileId& id) {
  w.raw(id.bytes.data(), id.bytes.size());
}

FileId decode_file_id(ByteReader& r) {
  FileId id;
  BytesView v = r.raw(16);
  if (v.size() == 16) std::memcpy(id.bytes.data(), v.data(), 16);
  return id;
}

void encode_endpoint(ByteWriter& w, const Endpoint& e) {
  w.u32le(e.ip);
  w.u16le(e.port);
}

Endpoint decode_endpoint(ByteReader& r) {
  Endpoint e;
  e.ip = r.u32le();
  e.port = r.u16le();
  return e;
}

void encode_file_entry(ByteWriter& w, const FileEntry& f) {
  encode_file_id(w, f.file_id);
  w.u32le(f.client_id);
  w.u16le(f.port);
  encode_tag_list(w, f.tags);
}

FileEntry decode_file_entry(ByteReader& r) {
  FileEntry f;
  f.file_id = decode_file_id(r);
  f.client_id = r.u32le();
  f.port = r.u16le();
  f.tags = decode_tag_list(r);
  return f;
}

struct TcpBodyEncoder {
  ByteWriter& w;

  void operator()(const LoginRequest& m) {
    w.raw(m.user_hash.bytes.data(), m.user_hash.bytes.size());
    w.u32le(m.client_id);
    w.u16le(m.port);
    TagList tags = {Tag::str(TagName::kFileName, m.name),  // nickname tag
                    Tag::u32(TagName::kVersion, m.version)};
    encode_tag_list(w, tags);
  }
  void operator()(const IdChange& m) { w.u32le(m.client_id); }
  void operator()(const ServerMessage& m) { w.str16(m.text); }
  void operator()(const OfferFiles& m) {
    w.u32le(static_cast<std::uint32_t>(m.files.size()));
    for (const auto& f : m.files) encode_file_entry(w, f);
  }
  void operator()(const ServerStatus& m) {
    w.u32le(m.users);
    w.u32le(m.files);
  }
  void operator()(const FileSearchReq& m) { encode_search_expr(w, *m.expr); }
  void operator()(const FileSearchRes& m) {
    w.u32le(static_cast<std::uint32_t>(m.results.size()));
    for (const auto& f : m.results) encode_file_entry(w, f);
  }
  void operator()(const GetSourcesReq& m) {
    for (const auto& id : m.file_ids) encode_file_id(w, id);
  }
  void operator()(const FoundSourcesRes& m) {
    encode_file_id(w, m.file_id);
    w.u8(static_cast<std::uint8_t>(m.sources.size()));
    for (const auto& s : m.sources) encode_endpoint(w, s);
  }
};

struct TcpOpcodeOf {
  std::uint8_t operator()(const LoginRequest&) { return kOpLoginRequest; }
  std::uint8_t operator()(const IdChange&) { return kOpIdChange; }
  std::uint8_t operator()(const ServerMessage&) { return kOpServerMessage; }
  std::uint8_t operator()(const OfferFiles&) { return kOpOfferFiles; }
  std::uint8_t operator()(const ServerStatus&) { return kOpServerStatus; }
  std::uint8_t operator()(const FileSearchReq&) { return kOpTcpSearchRequest; }
  std::uint8_t operator()(const FileSearchRes&) { return kOpTcpSearchResult; }
  std::uint8_t operator()(const GetSourcesReq&) { return kOpTcpGetSources; }
  std::uint8_t operator()(const FoundSourcesRes&) { return kOpTcpFoundSources; }
};

}  // namespace

std::uint8_t tcp_opcode_of(const TcpMessage& m) {
  return std::visit(TcpOpcodeOf{}, m);
}

Bytes encode_tcp_message(const TcpMessage& m) {
  ByteWriter body(64);
  body.u8(tcp_opcode_of(m));
  std::visit(TcpBodyEncoder{body}, m);

  ByteWriter w(body.size() + 5);
  w.u8(kProtoEdonkey);
  w.u32le(static_cast<std::uint32_t>(body.size()));
  w.raw(body.view());
  return std::move(w).take();
}

const char* tcp_decode_error_name(TcpDecodeError e) {
  switch (e) {
    case TcpDecodeError::kNone:
      return "none";
    case TcpDecodeError::kBadMarker:
      return "bad-marker";
    case TcpDecodeError::kUnknownOpcode:
      return "unknown-opcode";
    case TcpDecodeError::kMalformedBody:
      return "malformed-body";
    case TcpDecodeError::kTrailingGarbage:
      return "trailing-garbage";
    case TcpDecodeError::kOversizedFrame:
      return "oversized-frame";
  }
  return "?";
}

TcpDecodeResult decode_tcp_frame_content(BytesView content) {
  TcpDecodeResult out;
  if (content.empty()) {
    out.error = TcpDecodeError::kMalformedBody;
    return out;
  }
  const std::uint8_t op = content[0];
  if (!tcp_opcode_known(op)) {
    out.error = TcpDecodeError::kUnknownOpcode;
    return out;
  }
  ByteReader r(content.subspan(1));
  TcpMessage m = IdChange{};

  switch (op) {
    case kOpLoginRequest: {
      LoginRequest v;
      BytesView hash = r.raw(16);
      if (hash.size() == 16) std::memcpy(v.user_hash.bytes.data(), hash.data(), 16);
      v.client_id = r.u32le();
      v.port = r.u16le();
      TagList tags = decode_tag_list(r);
      if (auto name = tag_string(tags, TagName::kFileName)) v.name = *name;
      if (auto ver = tag_u32(tags, TagName::kVersion)) v.version = *ver;
      m = std::move(v);
      break;
    }
    case kOpIdChange: {
      IdChange v;
      v.client_id = r.u32le();
      m = v;
      break;
    }
    case kOpServerMessage: {
      ServerMessage v;
      v.text = r.str16();
      m = std::move(v);
      break;
    }
    case kOpOfferFiles: {
      OfferFiles v;
      std::uint32_t n = r.u32le();
      if (n > r.remaining() / 22) {
        r.fail();
        break;
      }
      v.files.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        v.files.push_back(decode_file_entry(r));
      m = std::move(v);
      break;
    }
    case kOpServerStatus: {
      ServerStatus v;
      v.users = r.u32le();
      v.files = r.u32le();
      m = v;
      break;
    }
    case kOpTcpSearchRequest: {
      FileSearchReq v;
      v.expr = decode_search_expr(r);
      if (!v.expr) r.fail();
      m = std::move(v);
      break;
    }
    case kOpTcpSearchResult: {
      FileSearchRes v;
      std::uint32_t n = r.u32le();
      if (n > r.remaining() / 22) {
        r.fail();
        break;
      }
      v.results.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        v.results.push_back(decode_file_entry(r));
      m = std::move(v);
      break;
    }
    case kOpTcpGetSources: {
      GetSourcesReq v;
      while (r.ok() && r.remaining() >= 16) v.file_ids.push_back(decode_file_id(r));
      m = std::move(v);
      break;
    }
    case kOpTcpFoundSources: {
      FoundSourcesRes v;
      v.file_id = decode_file_id(r);
      std::uint8_t n = r.u8();
      v.sources.reserve(n);
      for (std::uint8_t i = 0; i < n && r.ok(); ++i)
        v.sources.push_back(decode_endpoint(r));
      m = std::move(v);
      break;
    }
    default:
      out.error = TcpDecodeError::kUnknownOpcode;
      return out;
  }

  if (!r.ok()) {
    out.error = TcpDecodeError::kMalformedBody;
    return out;
  }
  if (!r.at_end()) {
    out.error = TcpDecodeError::kTrailingGarbage;
    return out;
  }
  out.message = std::move(m);
  return out;
}

void TcpMessageExtractor::feed(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  drain();
}

void TcpMessageExtractor::resync() {
  buffer_.clear();
  scanning_ = true;
  ++stats_.resyncs;
}

void TcpMessageExtractor::drain() {
  for (;;) {
    if (scanning_) {
      // Look for the next plausible frame header: marker byte followed by a
      // sane length.  Heuristic, like any mid-stream resynchronisation.
      std::size_t i = 0;
      for (; i < buffer_.size(); ++i) {
        if (buffer_[i] != kProtoEdonkey) continue;
        if (buffer_.size() - i >= 6) {
          ByteReader peek(BytesView(buffer_.data() + i + 1, 5));
          std::uint32_t length = peek.u32le();
          std::uint8_t op = peek.u8();
          if (length >= 1 && length <= kMaxFrameLength && tcp_opcode_known(op)) {
            break;  // plausible header at i
          }
        } else {
          break;  // not enough bytes to judge: keep the tail, wait for more
        }
      }
      stats_.bytes_skipped += i;
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(i));
      if (buffer_.size() < 6) return;  // undecidable yet
      scanning_ = false;
    }

    if (buffer_.size() < 5) return;
    if (buffer_[0] != kProtoEdonkey) {
      // Corrupt framing where a header should be: scan forward.
      scanning_ = true;
      ++stats_.undecoded;
      buffer_.erase(buffer_.begin());
      continue;
    }
    ByteReader header(BytesView(buffer_.data() + 1, 4));
    std::uint32_t length = header.u32le();
    if (length == 0 || length > kMaxFrameLength) {
      scanning_ = true;
      ++stats_.undecoded;
      buffer_.erase(buffer_.begin());
      continue;
    }
    if (buffer_.size() < 5 + length) return;  // frame incomplete

    TcpDecodeResult result =
        decode_tcp_frame_content(BytesView(buffer_.data() + 5, length));
    if (result.ok()) {
      ++stats_.messages;
      if (sink_) sink_(std::move(*result.message));
    } else {
      ++stats_.undecoded;
    }
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(5 + length));
  }
}

}  // namespace dtr::proto
