#include "proto/codec.hpp"

#include <cstring>

namespace dtr::proto {

namespace {

void encode_endpoint(ByteWriter& w, const Endpoint& e) {
  w.u32le(e.ip);
  w.u16le(e.port);
}

Endpoint decode_endpoint(ByteReader& r) {
  Endpoint e;
  e.ip = r.u32le();
  e.port = r.u16le();
  return e;
}

void encode_file_id(ByteWriter& w, const FileId& id) {
  w.raw(id.bytes.data(), id.bytes.size());
}

FileId decode_file_id(ByteReader& r) {
  FileId id;
  BytesView v = r.raw(16);
  if (v.size() == 16) std::memcpy(id.bytes.data(), v.data(), 16);
  return id;
}

void encode_file_entry(ByteWriter& w, const FileEntry& f) {
  encode_file_id(w, f.file_id);
  w.u32le(f.client_id);
  w.u16le(f.port);
  encode_tag_list(w, f.tags);
}

FileEntry decode_file_entry(ByteReader& r) {
  FileEntry f;
  f.file_id = decode_file_id(r);
  f.client_id = r.u32le();
  f.port = r.u16le();
  f.tags = decode_tag_list(r);
  return f;
}

struct BodyEncoder {
  ByteWriter& w;

  void operator()(const ServStatReq& m) { w.u32le(m.challenge); }
  void operator()(const ServStatRes& m) {
    w.u32le(m.challenge);
    w.u32le(m.users);
    w.u32le(m.files);
  }
  void operator()(const ServerDescReq&) {}
  void operator()(const ServerDescRes& m) {
    w.str16(m.name);
    w.str16(m.description);
  }
  void operator()(const GetServerList&) {}
  void operator()(const ServerList& m) {
    w.u8(static_cast<std::uint8_t>(m.servers.size()));
    for (const auto& s : m.servers) encode_endpoint(w, s);
  }
  void operator()(const FileSearchReq& m) { encode_search_expr(w, *m.expr); }
  void operator()(const FileSearchRes& m) {
    w.u32le(static_cast<std::uint32_t>(m.results.size()));
    for (const auto& f : m.results) encode_file_entry(w, f);
  }
  void operator()(const GetSourcesReq& m) {
    for (const auto& id : m.file_ids) encode_file_id(w, id);
  }
  void operator()(const FoundSourcesRes& m) {
    encode_file_id(w, m.file_id);
    w.u8(static_cast<std::uint8_t>(m.sources.size()));
    for (const auto& s : m.sources) encode_endpoint(w, s);
  }
  void operator()(const PublishReq& m) {
    w.u32le(static_cast<std::uint32_t>(m.files.size()));
    for (const auto& f : m.files) encode_file_entry(w, f);
  }
  void operator()(const PublishAck& m) { w.u32le(m.accepted); }
};

}  // namespace

Opcode opcode_of(const Message& m) {
  struct Visitor {
    Opcode operator()(const ServStatReq&) { return kOpGlobServStatReq; }
    Opcode operator()(const ServStatRes&) { return kOpGlobServStatRes; }
    Opcode operator()(const ServerDescReq&) { return kOpServerDescReq; }
    Opcode operator()(const ServerDescRes&) { return kOpServerDescRes; }
    Opcode operator()(const GetServerList&) { return kOpGetServerList; }
    Opcode operator()(const ServerList&) { return kOpServerList; }
    Opcode operator()(const FileSearchReq&) { return kOpGlobSearchReq; }
    Opcode operator()(const FileSearchRes&) { return kOpGlobSearchRes; }
    Opcode operator()(const GetSourcesReq&) { return kOpGlobGetSources; }
    Opcode operator()(const FoundSourcesRes&) { return kOpGlobFoundSources; }
    Opcode operator()(const PublishReq&) { return kOpGlobPublish; }
    Opcode operator()(const PublishAck&) { return kOpGlobPublishAck; }
  };
  return std::visit(Visitor{}, m);
}

namespace {
// FileSearchReq owns a unique_ptr and is handled before visitation; the
// visitor still needs an overload for it to satisfy std::visit, but that
// branch is unreachable.
struct MessageCopier {
  Message operator()(const FileSearchReq& req) const {
    return FileSearchReq{req.expr ? req.expr->clone() : nullptr};
  }
  template <typename T>
  Message operator()(const T& v) const {
    return T{v};
  }
};
}  // namespace

Message clone_message(const Message& m) {
  return std::visit(MessageCopier{}, m);
}

bool is_query(const Message& m) {
  switch (opcode_of(m)) {
    case kOpGlobServStatReq:
    case kOpServerDescReq:
    case kOpGetServerList:
    case kOpGlobSearchReq:
    case kOpGlobGetSources:
    case kOpGlobPublish:
      return true;
    default:
      return false;
  }
}

Family family_of(const Message& m) {
  switch (opcode_of(m)) {
    case kOpGlobServStatReq:
    case kOpGlobServStatRes:
    case kOpServerDescReq:
    case kOpServerDescRes:
    case kOpGetServerList:
    case kOpServerList:
      return Family::kManagement;
    case kOpGlobSearchReq:
    case kOpGlobSearchRes:
      return Family::kFileSearch;
    case kOpGlobGetSources:
    case kOpGlobFoundSources:
      return Family::kSourceSearch;
    default:
      return Family::kAnnouncement;
  }
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kManagement:
      return "management";
    case Family::kFileSearch:
      return "file-search";
    case Family::kSourceSearch:
      return "source-search";
    case Family::kAnnouncement:
      return "announcement";
  }
  return "?";
}

Bytes encode_message(const Message& m) {
  ByteWriter w(64);
  w.u8(kProtoEdonkey);
  w.u8(static_cast<std::uint8_t>(opcode_of(m)));
  std::visit(BodyEncoder{w}, m);
  return std::move(w).take();
}

const char* decode_error_name(DecodeError e) {
  switch (e) {
    case DecodeError::kNone:
      return "none";
    case DecodeError::kTooShort:
      return "too-short";
    case DecodeError::kBadMarker:
      return "bad-marker";
    case DecodeError::kUnsupportedDialect:
      return "unsupported-dialect";
    case DecodeError::kUnknownOpcode:
      return "unknown-opcode";
    case DecodeError::kLengthMismatch:
      return "length-mismatch";
    case DecodeError::kMalformedBody:
      return "malformed-body";
    case DecodeError::kTrailingGarbage:
      return "trailing-garbage";
  }
  return "?";
}

DecodeError validate_structure(BytesView d) {
  if (d.size() < 2) return DecodeError::kTooShort;
  if (d[0] == kProtoEmuleExt || d[0] == 0xD4 /* compressed dialect */) {
    return DecodeError::kUnsupportedDialect;
  }
  if (d[0] != kProtoEdonkey) return DecodeError::kBadMarker;
  const std::uint8_t op = d[1];
  if (!opcode_known(op)) return DecodeError::kUnknownOpcode;
  const std::size_t body = d.size() - 2;

  // Per-opcode length plausibility ("structural validation of messages,
  // based on their expected length, for example" — paper §2.3).
  switch (op) {
    case kOpGlobServStatReq:
      if (body != 4) return DecodeError::kLengthMismatch;
      break;
    case kOpGlobServStatRes:
      if (body != 12) return DecodeError::kLengthMismatch;
      break;
    case kOpServerDescReq:
    case kOpGetServerList:
      if (body != 0) return DecodeError::kLengthMismatch;
      break;
    case kOpServerDescRes:
      if (body < 4) return DecodeError::kLengthMismatch;  // two str16 headers
      break;
    case kOpServerList:
      if (body < 1 || (body - 1) % 6 != 0) return DecodeError::kLengthMismatch;
      break;
    case kOpGlobSearchReq:
      if (body < 2) return DecodeError::kLengthMismatch;  // smallest expr node
      break;
    case kOpGlobSearchRes:
      if (body < 4) return DecodeError::kLengthMismatch;  // result count
      break;
    case kOpGlobGetSources:
      if (body == 0 || body % 16 != 0) return DecodeError::kLengthMismatch;
      break;
    case kOpGlobFoundSources:
      if (body < 17 || (body - 17) % 6 != 0) return DecodeError::kLengthMismatch;
      break;
    case kOpGlobPublish:
      if (body < 4) return DecodeError::kLengthMismatch;
      break;
    case kOpGlobPublishAck:
      if (body != 4) return DecodeError::kLengthMismatch;
      break;
    default:
      return DecodeError::kUnknownOpcode;
  }
  return DecodeError::kNone;
}

DecodeResult decode_datagram(BytesView d) {
  DecodeResult out;
  out.error = validate_structure(d);
  if (out.error != DecodeError::kNone) return out;

  const std::uint8_t op = d[1];
  ByteReader r(d.subspan(2));
  Message m = ServerDescReq{};

  switch (op) {
    case kOpGlobServStatReq: {
      ServStatReq v;
      v.challenge = r.u32le();
      m = v;
      break;
    }
    case kOpGlobServStatRes: {
      ServStatRes v;
      v.challenge = r.u32le();
      v.users = r.u32le();
      v.files = r.u32le();
      m = v;
      break;
    }
    case kOpServerDescReq:
      m = ServerDescReq{};
      break;
    case kOpServerDescRes: {
      ServerDescRes v;
      v.name = r.str16();
      v.description = r.str16();
      m = std::move(v);
      break;
    }
    case kOpGetServerList:
      m = GetServerList{};
      break;
    case kOpServerList: {
      ServerList v;
      std::uint8_t n = r.u8();
      v.servers.reserve(n);
      for (std::uint8_t i = 0; i < n && r.ok(); ++i)
        v.servers.push_back(decode_endpoint(r));
      m = std::move(v);
      break;
    }
    case kOpGlobSearchReq: {
      FileSearchReq v;
      v.expr = decode_search_expr(r);
      if (!v.expr) r.fail();
      m = std::move(v);
      break;
    }
    case kOpGlobSearchRes: {
      FileSearchRes v;
      std::uint32_t n = r.u32le();
      if (n > r.remaining() / 22) {  // entry is >= 22 bytes on the wire
        r.fail();
        break;
      }
      v.results.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        v.results.push_back(decode_file_entry(r));
      m = std::move(v);
      break;
    }
    case kOpGlobGetSources: {
      GetSourcesReq v;
      while (r.ok() && r.remaining() >= 16) v.file_ids.push_back(decode_file_id(r));
      m = std::move(v);
      break;
    }
    case kOpGlobFoundSources: {
      FoundSourcesRes v;
      v.file_id = decode_file_id(r);
      std::uint8_t n = r.u8();
      v.sources.reserve(n);
      for (std::uint8_t i = 0; i < n && r.ok(); ++i)
        v.sources.push_back(decode_endpoint(r));
      m = std::move(v);
      break;
    }
    case kOpGlobPublish: {
      PublishReq v;
      std::uint32_t n = r.u32le();
      if (n > r.remaining() / 22) {
        r.fail();
        break;
      }
      v.files.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        v.files.push_back(decode_file_entry(r));
      m = std::move(v);
      break;
    }
    case kOpGlobPublishAck: {
      PublishAck v;
      v.accepted = r.u32le();
      m = v;
      break;
    }
    default:
      out.error = DecodeError::kUnknownOpcode;
      return out;
  }

  if (!r.ok()) {
    out.error = DecodeError::kMalformedBody;
    return out;
  }
  if (!r.at_end()) {
    out.error = DecodeError::kTrailingGarbage;
    return out;
  }
  out.message = std::move(m);
  return out;
}

}  // namespace dtr::proto
