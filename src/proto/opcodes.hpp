// eDonkey UDP protocol constants.
//
// Opcode values follow the unofficial protocol specification by Kulbak &
// Bickson ("The eMule protocol specification", 2005) that the paper cites as
// its reference [10].  The server-UDP dialect historically has no publish
// message (clients announce shared files over TCP); because this
// reproduction captures UDP only — like the paper — but still must observe
// announcements (one of the paper's four message families), we add a
// documented dialect extension OP_GLOBPUBLISH/OP_GLOBPUBLISHACK carrying the
// same payload as the TCP offer-files message.  See DESIGN.md.
#pragma once

#include <cstdint>

namespace dtr::proto {

/// First byte of every eDonkey datagram.
enum Marker : std::uint8_t {
  kProtoEdonkey = 0xE3,   ///< classic eDonkey protocol
  kProtoEmuleExt = 0xC5,  ///< eMule extensions (observed, not decoded)
};

/// Second byte: the operation code.
enum Opcode : std::uint8_t {
  // Management family.
  kOpGlobServStatReq = 0x96,   ///< client -> server: ping + stats request
  kOpGlobServStatRes = 0x97,   ///< server -> client: users/files counts
  kOpServerDescReq = 0xA2,     ///< client -> server: name/description request
  kOpServerDescRes = 0xA3,     ///< server -> client: name + description
  kOpGetServerList = 0xA0,     ///< client -> server: known-servers request
  kOpServerList = 0xA1,        ///< server -> client: list of (ip, port)

  // File-search family (search by metadata).
  kOpGlobSearchReq = 0x98,     ///< client -> server: search expression
  kOpGlobSearchRes = 0x99,     ///< server -> client: list of matching files

  // Source-search family (search by fileID).
  kOpGlobGetSources = 0x9A,    ///< client -> server: fileID(s)
  kOpGlobFoundSources = 0x9B,  ///< server -> client: sources for a fileID

  // Announcement family (dialect extension, see header comment).
  kOpGlobPublish = 0x9C,       ///< client -> server: files the client shares
  kOpGlobPublishAck = 0x9D,    ///< server -> client: number accepted
};

/// True if the opcode is one this decoder knows how to parse.
constexpr bool opcode_known(std::uint8_t op) {
  switch (op) {
    case kOpGlobServStatReq:
    case kOpGlobServStatRes:
    case kOpServerDescReq:
    case kOpServerDescRes:
    case kOpGetServerList:
    case kOpServerList:
    case kOpGlobSearchReq:
    case kOpGlobSearchRes:
    case kOpGlobGetSources:
    case kOpGlobFoundSources:
    case kOpGlobPublish:
    case kOpGlobPublishAck:
      return true;
    default:
      return false;
  }
}

/// clientID semantics (paper §2.1): the client's IPv4 address when directly
/// reachable ("high ID"), else a server-assigned number below 2^24 ("low ID").
using ClientId = std::uint32_t;

constexpr ClientId kLowIdThreshold = 1u << 24;

constexpr bool is_low_id(ClientId id) { return id < kLowIdThreshold; }

}  // namespace dtr::proto
