#include "proto/fault.hpp"

#include "proto/opcodes.hpp"

namespace dtr::proto {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBadMarker:
      return "bad-marker";
    case FaultKind::kBadOpcode:
      return "bad-opcode";
    case FaultKind::kPadGarbage:
      return "pad-garbage";
    case FaultKind::kCorruptBody:
      return "corrupt-body";
  }
  return "?";
}

FaultProfile FaultProfile::paper_calibrated() {
  // Target: 0.68 % of *all dataset messages* undecodable, 78 % of which
  // structural.  Only client queries are faulted (the server's own encoder
  // is correct), and answers are roughly half of all messages, so the
  // per-query fault rate must be about twice the target.  kCorruptBody
  // flips body bytes and only *usually* breaks the decode; pad-garbage
  // lands as a structural length mismatch on fixed-length opcodes and as
  // an effective trailing-garbage failure on variable-length ones.
  // Structural-majority mix: marker/opcode faults always fail validation;
  // truncation fails structurally only on opcodes with strong length
  // expectations; padding and body flips mostly surface at effective
  // decode.  Weights solve for ~78 % structural share of failures.
  FaultProfile p;
  p.truncate = 0.0020;
  p.bad_marker = 0.0050;
  p.bad_opcode = 0.0040;
  p.pad_garbage = 0.0015;
  p.corrupt_body = 0.0020;
  return p;
}

FaultKind pick_fault(const FaultProfile& profile, Rng& rng) {
  double u = rng.uniform();
  if ((u -= profile.truncate) < 0) return FaultKind::kTruncate;
  if ((u -= profile.bad_marker) < 0) return FaultKind::kBadMarker;
  if ((u -= profile.bad_opcode) < 0) return FaultKind::kBadOpcode;
  if ((u -= profile.pad_garbage) < 0) return FaultKind::kPadGarbage;
  if ((u -= profile.corrupt_body) < 0) return FaultKind::kCorruptBody;
  return FaultKind::kNone;
}

FaultKind apply_fault(Bytes& d, FaultKind kind, Rng& rng) {
  switch (kind) {
    case FaultKind::kNone:
      return FaultKind::kNone;
    case FaultKind::kTruncate: {
      if (d.size() < 2) return FaultKind::kNone;
      // Keep at least 1 byte so the datagram still reaches the decoder.
      std::size_t keep = 1 + rng.below(d.size() - 1);
      d.resize(keep);
      return FaultKind::kTruncate;
    }
    case FaultKind::kBadMarker: {
      if (d.empty()) return FaultKind::kNone;
      std::uint8_t bad;
      do {
        bad = static_cast<std::uint8_t>(rng.below(256));
      } while (bad == kProtoEdonkey);
      d[0] = bad;
      return FaultKind::kBadMarker;
    }
    case FaultKind::kBadOpcode: {
      if (d.size() < 2) return FaultKind::kNone;
      std::uint8_t bad;
      do {
        bad = static_cast<std::uint8_t>(rng.below(256));
      } while (opcode_known(bad));
      d[1] = bad;
      return FaultKind::kBadOpcode;
    }
    case FaultKind::kPadGarbage: {
      std::size_t extra = 1 + rng.below(16);
      for (std::size_t i = 0; i < extra; ++i)
        d.push_back(static_cast<std::uint8_t>(rng.below(256)));
      return FaultKind::kPadGarbage;
    }
    case FaultKind::kCorruptBody: {
      if (d.size() < 3) return FaultKind::kNone;
      std::size_t flips = 1 + rng.below(4);
      for (std::size_t i = 0; i < flips; ++i) {
        std::size_t pos = 2 + rng.below(d.size() - 2);
        d[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      return FaultKind::kCorruptBody;
    }
  }
  return FaultKind::kNone;
}

}  // namespace dtr::proto
