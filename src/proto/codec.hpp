// Binary encode/decode of eDonkey datagrams, plus the two-step decoding
// procedure the paper describes (§2.3): a cheap structural validation of the
// whole datagram first, then the effective decode.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "proto/messages.hpp"

namespace dtr::proto {

/// Serialize a message into a full eDonkey datagram payload
/// (marker byte + opcode + body).
Bytes encode_message(const Message& m);

/// Why a datagram failed to decode.  Mirrors the paper's breakdown:
/// 78 % of undecoded messages were structurally incorrect (caught by
/// validation), the rest failed during effective decoding.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTooShort,           // structural: no room for marker + opcode
  kBadMarker,          // structural: first byte is not an eDonkey marker
  kUnsupportedDialect, // structural: eMule extension (0xC5) or compressed
                       // (0xD4) dialect — recognised, deliberately undecoded
  kUnknownOpcode,      // structural: opcode not in the spec
  kLengthMismatch,     // structural: payload size impossible for the opcode
  kMalformedBody,      // effective decode failed (bad tags/expr/counts)
  kTrailingGarbage,    // effective decode left unconsumed bytes
};

const char* decode_error_name(DecodeError e);

/// True when the error is caught by structural validation (before the
/// effective decode is even attempted).
constexpr bool is_structural(DecodeError e) {
  return e == DecodeError::kTooShort || e == DecodeError::kBadMarker ||
         e == DecodeError::kUnsupportedDialect ||
         e == DecodeError::kUnknownOpcode || e == DecodeError::kLengthMismatch;
}

struct DecodeResult {
  std::optional<Message> message;  // engaged iff error == kNone
  DecodeError error = DecodeError::kNone;

  [[nodiscard]] bool ok() const { return error == DecodeError::kNone; }
};

/// Step 1: structural validation only (length plausibility per opcode).
DecodeError validate_structure(BytesView datagram);

/// Step 1 + step 2: validation, then effective decode.
DecodeResult decode_datagram(BytesView datagram);

}  // namespace dtr::proto
