// Application-level message model: the four eDonkey message families
// (paper §2.1): management, file searches, source searches, announcements.
//
// Messages holding a search expression own it through a unique_ptr, so the
// Message variant is move-only; `clone_message` provides deep copies where
// a test or a retransmission model needs one.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "hash/digest.hpp"
#include "proto/opcodes.hpp"
#include "proto/search_expr.hpp"
#include "proto/tags.hpp"

namespace dtr::proto {

/// One (ip, port) endpoint as eDonkey transmits it.
struct Endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  bool operator==(const Endpoint&) const = default;
};

// --- Management family ------------------------------------------------------

struct ServStatReq {
  std::uint32_t challenge = 0;
  bool operator==(const ServStatReq&) const = default;
};
struct ServStatRes {
  std::uint32_t challenge = 0;
  std::uint32_t users = 0;
  std::uint32_t files = 0;
  bool operator==(const ServStatRes&) const = default;
};
struct ServerDescReq {
  bool operator==(const ServerDescReq&) const = default;
};
struct ServerDescRes {
  std::string name;
  std::string description;
  bool operator==(const ServerDescRes&) const = default;
};
struct GetServerList {
  bool operator==(const GetServerList&) const = default;
};
struct ServerList {
  std::vector<Endpoint> servers;
  bool operator==(const ServerList&) const = default;
};

// --- File-search family -----------------------------------------------------

struct FileSearchReq {
  SearchExprPtr expr;  // never null in a valid message
};

/// One file entry in a search result (also the publish entry payload).
struct FileEntry {
  FileId file_id;
  ClientId client_id = 0;  // a provider of the file
  std::uint16_t port = 0;
  TagList tags;            // filename, size, type, availability, ...
  bool operator==(const FileEntry&) const = default;
};

struct FileSearchRes {
  std::vector<FileEntry> results;
  bool operator==(const FileSearchRes&) const = default;
};

// --- Source-search family ---------------------------------------------------

struct GetSourcesReq {
  std::vector<FileId> file_ids;  // clients may batch several fileIDs
  bool operator==(const GetSourcesReq&) const = default;
};
struct FoundSourcesRes {
  FileId file_id;
  std::vector<Endpoint> sources;  // clientID is carried in Endpoint::ip
  bool operator==(const FoundSourcesRes&) const = default;
};

// --- Announcement family (dialect extension; see opcodes.hpp) ----------------

struct PublishReq {
  std::vector<FileEntry> files;
  bool operator==(const PublishReq&) const = default;
};
struct PublishAck {
  std::uint32_t accepted = 0;
  bool operator==(const PublishAck&) const = default;
};

// -----------------------------------------------------------------------------

using Message =
    std::variant<ServStatReq, ServStatRes, ServerDescReq, ServerDescRes,
                 GetServerList, ServerList, FileSearchReq, FileSearchRes,
                 GetSourcesReq, FoundSourcesRes, PublishReq, PublishAck>;

/// The opcode a message encodes to.
Opcode opcode_of(const Message& m);

/// Deep copy (needed because FileSearchReq owns a unique_ptr).
Message clone_message(const Message& m);

/// True for messages that flow client -> server (queries), false for
/// server -> client (answers).  The paper's dataset distinguishes the two.
bool is_query(const Message& m);

/// Family classification used by traffic statistics.
enum class Family : std::uint8_t {
  kManagement,
  kFileSearch,
  kSourceSearch,
  kAnnouncement,
};
Family family_of(const Message& m);
const char* family_name(Family f);

}  // namespace dtr::proto
