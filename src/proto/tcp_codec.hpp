// eDonkey over TCP (the paper's future-work direction, §4).
//
// TCP framing, per the eMule protocol specification: every message is
//   [marker u8 = 0xE3][length u32le][opcode u8][body (length-1 bytes)]
// so messages survive segmentation and several can share one segment.
//
// The TCP dialect carries the session-level exchanges the UDP capture never
// sees: the login handshake (client hash + requested ID -> server-assigned
// clientID), the authoritative share announcements (offer-files), and the
// server's textual messages.  Search and source requests reuse the bodies
// of their UDP counterparts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "hash/digest.hpp"
#include "proto/messages.hpp"
#include "proto/opcodes.hpp"

namespace dtr::proto {

/// TCP opcodes (classic eDonkey client<->server TCP protocol).
enum TcpOpcode : std::uint8_t {
  kOpLoginRequest = 0x01,
  kOpServerMessage = 0x38,
  kOpIdChange = 0x40,
  kOpOfferFiles = 0x15,
  kOpTcpSearchRequest = 0x16,
  kOpTcpSearchResult = 0x33,
  kOpTcpGetSources = 0x19,
  kOpTcpFoundSources = 0x42,
  kOpServerStatus = 0x34,
};

constexpr bool tcp_opcode_known(std::uint8_t op) {
  switch (op) {
    case kOpLoginRequest:
    case kOpServerMessage:
    case kOpIdChange:
    case kOpOfferFiles:
    case kOpTcpSearchRequest:
    case kOpTcpSearchResult:
    case kOpTcpGetSources:
    case kOpTcpFoundSources:
    case kOpServerStatus:
      return true;
    default:
      return false;
  }
}

// --- TCP-only message bodies -------------------------------------------------

struct LoginRequest {
  Digest128 user_hash;      // the client's self-generated identity hash
  ClientId client_id = 0;   // requested ID (0 = let the server choose)
  std::uint16_t port = 0;   // the client's TCP listen port
  std::string name;         // nickname tag
  std::uint32_t version = 0;
  bool operator==(const LoginRequest&) const = default;
};

struct IdChange {
  ClientId client_id = 0;  // the ID the server assigned (low or high)
  bool operator==(const IdChange&) const = default;
};

struct ServerMessage {
  std::string text;
  bool operator==(const ServerMessage&) const = default;
};

struct OfferFiles {
  std::vector<FileEntry> files;
  bool operator==(const OfferFiles&) const = default;
};

struct ServerStatus {
  std::uint32_t users = 0;
  std::uint32_t files = 0;
  bool operator==(const ServerStatus&) const = default;
};

using TcpMessage =
    std::variant<LoginRequest, IdChange, ServerMessage, OfferFiles,
                 ServerStatus, FileSearchReq, FileSearchRes, GetSourcesReq,
                 FoundSourcesRes>;

std::uint8_t tcp_opcode_of(const TcpMessage& m);

/// Serialize one framed message (marker + length + opcode + body).
Bytes encode_tcp_message(const TcpMessage& m);

enum class TcpDecodeError : std::uint8_t {
  kNone = 0,
  kBadMarker,
  kUnknownOpcode,
  kMalformedBody,
  kTrailingGarbage,
  kOversizedFrame,
};

const char* tcp_decode_error_name(TcpDecodeError e);

struct TcpDecodeResult {
  std::optional<TcpMessage> message;
  TcpDecodeError error = TcpDecodeError::kNone;
  [[nodiscard]] bool ok() const { return error == TcpDecodeError::kNone; }
};

/// Decode one frame's [opcode + body] content (after length removal).
TcpDecodeResult decode_tcp_frame_content(BytesView content);

/// Incremental frame extractor over a reassembled TCP stream: feed bytes in
/// any chunking, get complete messages out.  On a stream gap, call
/// `resync()` — the extractor drops its partial buffer and scans for the
/// next plausible frame header (this is why the paper couldn't easily use
/// lossy TCP flows; with framing knowledge it is merely lossy, not fatal).
class TcpMessageExtractor {
 public:
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t undecoded = 0;
    std::uint64_t resyncs = 0;
    std::uint64_t bytes_skipped = 0;  // during resync scans
  };

  /// Frames larger than this are treated as corruption (real offer lists
  /// stay far below; a bogus length would otherwise stall the stream).
  static constexpr std::uint32_t kMaxFrameLength = 4 * 1024 * 1024;

  using MessageSink = std::function<void(TcpMessage&&)>;

  explicit TcpMessageExtractor(MessageSink sink) : sink_(std::move(sink)) {}

  void feed(BytesView data);
  void resync();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  void drain();

  MessageSink sink_;
  Bytes buffer_;
  bool scanning_ = false;  // after a gap: looking for the next 0xE3 header
  Stats stats_;
};

}  // namespace dtr::proto
