#include "obs/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>

#include "obs/json.hpp"

namespace dtr::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Rank lands in the overflow bucket: the best defensible answer is
      // the largest finite edge (matches histogram_quantile semantics).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    if (buckets[i] == 0) return upper;
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t Snapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

void Snapshot::render_table(std::ostream& out) const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms) width = std::max(width, name.size());

  out << "-- metrics --\n";
  for (const auto& [name, value] : counters) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  count=" << h.count << " sum=" << json_double(h.sum);
    if (h.count > 0) {
      out << " p50=" << json_double(h.quantile(0.5))
          << " p95=" << json_double(h.quantile(0.95))
          << " p99=" << json_double(h.quantile(0.99));
    }
    // The non-empty buckets, compactly: le<bound>:<count>.
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out << " le";
      if (i < h.bounds.size()) {
        out << json_double(h.bounds[i]);
      } else {
        out << "+inf";
      }
      out << ":" << h.buckets[i];
    }
    out << "\n";
  }
}

void Snapshot::render_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out << (i ? ", " : "") << json_double(h.bounds[i]);
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i ? ", " : "") << h.buckets[i];
    }
    out << "], \"sum\": " << json_double(h.sum) << ", \"count\": " << h.count
        << "}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

namespace {

void save_string(ByteWriter& out, const std::string& s) {
  out.u32le(static_cast<std::uint32_t>(s.size()));
  out.raw(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                    s.size()));
}

bool restore_string(ByteReader& in, std::string& s) {
  const std::uint32_t len = in.u32le();
  if (len > in.remaining()) return false;
  BytesView raw = in.raw(len);
  if (!in.ok()) return false;
  s.assign(reinterpret_cast<const char*>(raw.data()), raw.size());
  return true;
}

}  // namespace

void Snapshot::save_state(ByteWriter& out) const {
  out.u64le(counters.size());
  for (const auto& [name, v] : counters) {
    save_string(out, name);
    out.u64le(v);
  }
  out.u64le(gauges.size());
  for (const auto& [name, v] : gauges) {
    save_string(out, name);
    out.u64le(static_cast<std::uint64_t>(v));
  }
  out.u64le(histograms.size());
  for (const auto& [name, h] : histograms) {
    save_string(out, name);
    out.u64le(h.bounds.size());
    for (double b : h.bounds) out.u64le(std::bit_cast<std::uint64_t>(b));
    out.u64le(h.buckets.size());
    for (std::uint64_t c : h.buckets) out.u64le(c);
    out.u64le(std::bit_cast<std::uint64_t>(h.sum));
    out.u64le(h.count);
  }
}

bool Snapshot::restore_state(ByteReader& in) {
  counters.clear();
  gauges.clear();
  histograms.clear();
  std::uint64_t n = in.u64le();
  if (n > in.remaining() / 12) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!restore_string(in, name)) return false;
    const std::uint64_t v = in.u64le();
    if (!counters.emplace(std::move(name), v).second) return false;
  }
  n = in.u64le();
  if (n > in.remaining() / 12) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!restore_string(in, name)) return false;
    const auto v = static_cast<std::int64_t>(in.u64le());
    if (!gauges.emplace(std::move(name), v).second) return false;
  }
  n = in.u64le();
  if (n > in.remaining() / 28) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!restore_string(in, name)) return false;
    HistogramSnapshot h;
    std::uint64_t m = in.u64le();
    if (m > in.remaining() / 8) return false;
    h.bounds.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t j = 0; j < m; ++j) {
      h.bounds.push_back(std::bit_cast<double>(in.u64le()));
    }
    m = in.u64le();
    if (m > in.remaining() / 8) return false;
    h.buckets.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t j = 0; j < m; ++j) h.buckets.push_back(in.u64le());
    h.sum = std::bit_cast<double>(in.u64le());
    h.count = in.u64le();
    if (h.buckets.size() != h.bounds.size() + 1) return false;
    if (!histograms.emplace(std::move(name), std::move(h)).second) {
      return false;
    }
  }
  return in.ok();
}

}  // namespace dtr::obs
