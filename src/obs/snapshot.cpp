#include "obs/snapshot.hpp"

#include <algorithm>
#include <iomanip>

#include "obs/json.hpp"

namespace dtr::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Rank lands in the overflow bucket: the best defensible answer is
      // the largest finite edge (matches histogram_quantile semantics).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    if (buckets[i] == 0) return upper;
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t Snapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

void Snapshot::render_table(std::ostream& out) const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms) width = std::max(width, name.size());

  out << "-- metrics --\n";
  for (const auto& [name, value] : counters) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  count=" << h.count << " sum=" << json_double(h.sum);
    if (h.count > 0) {
      out << " p50=" << json_double(h.quantile(0.5))
          << " p95=" << json_double(h.quantile(0.95))
          << " p99=" << json_double(h.quantile(0.99));
    }
    // The non-empty buckets, compactly: le<bound>:<count>.
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out << " le";
      if (i < h.bounds.size()) {
        out << json_double(h.bounds[i]);
      } else {
        out << "+inf";
      }
      out << ":" << h.buckets[i];
    }
    out << "\n";
  }
}

void Snapshot::render_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out << (i ? ", " : "") << json_double(h.bounds[i]);
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i ? ", " : "") << h.buckets[i];
    }
    out << "], \"sum\": " << json_double(h.sum) << ", \"count\": " << h.count
        << "}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace dtr::obs
