#include "obs/snapshot.hpp"

#include <cstdio>
#include <iomanip>

namespace dtr::obs {

namespace {

/// Shortest decimal that round-trips the double — JSON-safe (no inf/nan
/// enters a snapshot: bounds and sums come from finite observations).
std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips.
  char shorter[32];
  for (int prec = 1; prec < 17; ++prec) {
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t Snapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

void Snapshot::render_table(std::ostream& out) const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms) width = std::max(width, name.size());

  out << "-- metrics --\n";
  for (const auto& [name, value] : counters) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  count=" << h.count << " sum=" << json_double(h.sum);
    // The non-empty buckets, compactly: le<bound>:<count>.
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out << " le";
      if (i < h.bounds.size()) {
        out << json_double(h.bounds[i]);
      } else {
        out << "+inf";
      }
      out << ":" << h.buckets[i];
    }
    out << "\n";
  }
}

void Snapshot::render_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out << (i ? ", " : "") << json_double(h.bounds[i]);
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i ? ", " : "") << h.buckets[i];
    }
    out << "], \"sum\": " << json_double(h.sum) << ", \"count\": " << h.count
        << "}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace dtr::obs
