// Shared JSON primitives for the telemetry outputs (metrics snapshots,
// time-series files, flight-recorder dumps) plus a minimal validating
// parser used by tests and the `donkeytrace jsoncheck` command to catch
// escaping regressions end to end.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace dtr::obs {

/// Shortest decimal that round-trips the double — JSON-safe for the finite
/// values telemetry produces (no inf/nan enters a snapshot).
std::string json_double(double v);

/// Write `s` as a JSON string literal: quotes and backslashes escaped,
/// control characters (< 0x20) as \n/\t/\r/\b/\f or \u00XX.
void json_string(std::ostream& out, std::string_view s);

/// True iff `text` is exactly one valid JSON value (object, array, string,
/// number, true/false/null) with nothing but whitespace around it.
/// Deliberately strict about the things our emitters can get wrong:
/// raw control characters inside strings, bad escapes, trailing garbage.
bool json_valid(std::string_view text);

/// True iff every non-empty line of `text` is a valid JSON value — the
/// JSONL contract of the time-series files.
bool jsonl_valid(std::string_view text);

}  // namespace dtr::obs
