// Pipeline-wide metrics: named Counter / Gauge / Histogram instruments in a
// Registry, built for the measurement chain the paper depends on (§2.2
// quantifies kernel-buffer loss before trusting a single number downstream).
//
// Concurrency model: instruments are striped into per-thread shards — each
// thread gets a stable shard slot and increments its own cache line with a
// relaxed atomic, so the parallel pipeline's workers record without
// contending on a shared counter.  Reads (snapshots) sum the shards; the
// total is exact because every increment is an atomic RMW on *some* shard.
//
// Registration (Registry::counter/gauge/histogram) takes a mutex and is
// meant for construction time; call sites cache the returned pointer and
// record through it on the hot path.  All record operations are wait-free
// apart from the histogram sum (a CAS loop on an uncontended shard).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hpp"

namespace dtr::obs {

/// Number of shard slots per instrument.  Threads beyond this many share
/// slots (still exact — the slot is an atomic — just with some contention).
constexpr std::size_t kShardCount = 16;

/// Stable shard slot of the calling thread, assigned on first use.
inline std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return slot;
}

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Exact sum over all per-thread shards.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// One shard's contribution (exposed so tests can verify the merge).
  [[nodiscard]] std::uint64_t shard_value(std::size_t shard) const {
    return shards_[shard].v.load(std::memory_order_relaxed);
  }

  /// Checkpoint restore: replace the value (every shard zeroed, the total
  /// stored into shard 0).  Not thread-safe against concurrent inc().
  void store(std::uint64_t v) {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
    shards_[0].v.store(v, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShardCount> shards_;
};

/// Last-write-wins instantaneous value (occupancy, table sizes, depths).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }

  /// Raise the gauge to `v` if larger — high-water marks.
  void record_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket catches the rest.  Bounds are fixed at
/// registration so merging shards and snapshots is trivial.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket totals, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Checkpoint restore: replace the contents from a snapshot.  Fails
  /// (returns false, histogram untouched) when the snapshot's bounds do
  /// not match this histogram's.  Not thread-safe against observe().
  bool store(const HistogramSnapshot& snap);

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;  // sorted ascending
  std::array<Shard, kShardCount> shards_;
};

/// Common bucket layouts.
/// Latencies in seconds: 1 us .. ~8.4 s in powers of two.
std::vector<double> latency_buckets_s();
/// Sizes/counts: 1 .. 65536 in powers of two.
std::vector<double> size_buckets();
/// Lock acquisition waits: 250 ns .. ~1 s in powers of four.  Finer at the
/// bottom than latency_buckets_s because an uncontended-but-measured wait
/// is tens of nanoseconds, not microseconds.
std::vector<double> lock_wait_buckets_s();

/// Named instruments.  Thread-safe; instruments live as long as the
/// Registry and keep stable addresses, so callers cache the references.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Bounds are fixed on first registration; later calls with the same name
  /// return the existing histogram regardless of `upper_bounds`.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = latency_buckets_s());

  /// Point-in-time copy of every instrument.
  [[nodiscard]] Snapshot snapshot() const;

  /// Checkpoint restore: overwrite (or register) every instrument named in
  /// `snap` with its snapshot value.  Instruments not named keep their
  /// current values.  Returns false if a histogram exists with different
  /// bounds.  Callers must quiesce recording threads first.
  bool restore(const Snapshot& snap);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Null-tolerant helpers: instrumented components keep instrument pointers
// that stay nullptr until bind_metrics() is called, so the uninstrumented
// hot path costs one predictable branch.
inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}
inline void set(Gauge* g, std::int64_t v) {
  if (g != nullptr) g->set(v);
}
inline void record_max(Gauge* g, std::int64_t v) {
  if (g != nullptr) g->record_max(v);
}
inline void observe(Histogram* h, double v) {
  if (h != nullptr) h->observe(v);
}

}  // namespace dtr::obs
