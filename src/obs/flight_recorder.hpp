// Flight recorder: a lock-free, per-thread bounded ring of the last N
// pipeline events, for post-mortems.
//
// When a ten-week capture misbehaves — a loss burst, a malformed-frame
// storm, a stage stall — the counters say *that* it happened but not what
// led up to it.  The flight recorder keeps the most recent events (frame
// accepted/dropped, decode reject with reason, buffer high-water crossing,
// stage stall, pipeline error) in per-thread rings and can dump a merged,
// time-ordered post-mortem as text or JSON.
//
// Cost model:
//   * Disabled (the component's `FlightRecorder*` is nullptr): one
//     predictable branch per event — the same contract as the metrics and
//     logging layers.
//   * Enabled: one relaxed fetch_add on a global sequence counter plus a
//     handful of relaxed stores into the calling thread's own ring — a few
//     nanoseconds, no locks, no allocation after the ring exists.
//
// Rings are registered per (thread, recorder) on first use behind a mutex
// and found through a thread-local cache afterwards.  Slots are seqlock-
// style: the writer invalidates, fills, then publishes with a release
// store, so a dump taken while threads are still recording skips events
// caught mid-write instead of reading torn values.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/clock.hpp"

namespace dtr::obs {

enum class FlightEvent : std::uint8_t {
  kFrameAccepted = 0,   ///< a=buffer occupancy after accept
  kFrameDropped,        ///< a=buffer occupancy, b=total dropped so far
  kDecodeReject,        ///< a=proto::DecodeError code (0 below the eDonkey
                        ///< layer), b=layer tag (decoder-defined)
  kBufferHighWater,     ///< a=new high-water occupancy, b=capacity
  kReassemblyExpired,   ///< a=IP identification, b=fragments dropped
  kStageStall,          ///< a=queue depth, b=worker index (parallel only)
  kPipelineError,       ///< stage identified by the paired error log
  kCheckpointWrite,     ///< a=boundary time, b=snapshot bytes (0 = failed)
  kCheckpointRestore,   ///< a=boundary time, b=snapshot bytes
  kMark,                ///< free-form caller marker
};

/// Stable dash-case name ("frame-dropped", "decode-reject", ...).
const char* flight_event_name(FlightEvent kind);

class FlightRecorder {
 public:
  /// `per_thread_capacity` is rounded up to a power of two, min 16.
  explicit FlightRecorder(std::size_t per_thread_capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightEvent kind, SimTime time, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed) - 1;
  }

  struct Event {
    std::uint64_t seq = 0;  ///< global order of recording (1-based)
    SimTime time = 0;
    FlightEvent kind = FlightEvent::kMark;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t thread = 0;  ///< ring id of the recording thread
    bool operator==(const Event&) const = default;
  };

  /// The surviving events from every thread's ring, merged into recording
  /// order (ascending seq), truncated to the most recent `last_n`.
  [[nodiscard]] std::vector<Event> merged(
      std::size_t last_n = static_cast<std::size_t>(-1)) const;

  /// Human-readable post-mortem ("== flight recorder ==" table).
  void dump_text(std::ostream& out, std::size_t last_n = 64) const;
  /// Machine-readable post-mortem: {"recorded": N, "events": [...]}\n —
  /// valid JSON (checked by `donkeytrace jsoncheck` in the smoke test).
  void dump_json(std::ostream& out, std::size_t last_n = 64) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty / being written
    std::atomic<std::uint64_t> time{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint8_t> kind{0};
  };
  struct Ring {
    explicit Ring(std::size_t n) : slots(n) {}
    std::vector<Slot> slots;
    std::uint64_t head = 0;  // owner-thread-only write index
    std::uint32_t id = 0;
  };

  Ring& this_thread_ring();

  const std::size_t capacity_;     // power of two
  const std::uint64_t instance_;   // distinguishes recorders in TLS cache
  std::atomic<std::uint64_t> seq_{1};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Null-tolerant helper, mirroring obs::inc: disabled recording is one
/// branch, nothing more.
inline void record(FlightRecorder* recorder, FlightEvent kind, SimTime time,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
  if (recorder != nullptr) recorder->record(kind, time, a, b);
}

}  // namespace dtr::obs
