#include "obs/resource.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace dtr::obs {

namespace detail {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace detail

std::uint64_t allocation_count() {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t allocation_bytes() {
  return detail::g_alloc_bytes.load(std::memory_order_relaxed);
}

std::uint64_t read_peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t read_rss_bytes() {
  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0, resident_pages = 0;
    const int parsed = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
    std::fclose(f);
    if (parsed == 2) {
      const long page = sysconf(_SC_PAGESIZE);
      return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
    }
  }
  return read_peak_rss_bytes();
}

ResourceSampler::ResourceSampler(Registry* registry,
                                 ResourceSamplerOptions options)
    : registry_(registry), options_(std::move(options)) {}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::resolve_instruments() {
  if (resolved_) return;
  resolved_ = true;
  if (registry_ == nullptr) return;
  for (const std::string& name : options_.counters)
    tracked_counters_.push_back(&registry_->counter(name));
  for (const TrackedGauge& gauge : options_.gauges)
    tracked_gauges_.push_back(&registry_->gauge(gauge.name));
  if (options_.publish_gauges) {
    rss_gauge_ = &registry_->gauge("proc.rss.bytes");
    peak_rss_gauge_ = &registry_->gauge("proc.rss.peak.bytes");
    alloc_count_gauge_ = &registry_->gauge("proc.alloc.count");
    alloc_bytes_gauge_ = &registry_->gauge("proc.alloc.bytes");
  }
}

void ResourceSampler::start() {
  std::unique_lock lock(mutex_);
  if (running_) return;
  resolve_instruments();
  started_at_ = std::chrono::steady_clock::now();
  running_ = true;
  stop_requested_ = false;
  lock.unlock();
  thread_ = std::thread([this] { run(); });
}

void ResourceSampler::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard lock(mutex_);
    running_ = false;
  }
  sample_now();  // final sample so short runs always record an endpoint
}

void ResourceSampler::run() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    sample_now();
    lock.lock();
    cv_.wait_for(lock, options_.interval, [this] { return stop_requested_; });
  }
}

void ResourceSampler::sample_now() {
  std::unique_lock lock(mutex_);
  if (!resolved_) {
    resolve_instruments();
    started_at_ = std::chrono::steady_clock::now();
  }
  lock.unlock();

  ResourceSample sample;
  sample.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_at_)
                            .count();
  sample.rss_bytes = read_rss_bytes();
  sample.peak_rss_bytes = read_peak_rss_bytes();
  sample.alloc_count = allocation_count();
  sample.alloc_bytes = allocation_bytes();
  sample.counters.reserve(tracked_counters_.size());
  for (Counter* counter : tracked_counters_)
    sample.counters.push_back(counter->value());
  sample.gauges.reserve(tracked_gauges_.size());
  for (Gauge* gauge : tracked_gauges_)
    sample.gauges.push_back(gauge->value());

  set(rss_gauge_, static_cast<std::int64_t>(sample.rss_bytes));
  set(peak_rss_gauge_, static_cast<std::int64_t>(sample.peak_rss_bytes));
  set(alloc_count_gauge_, static_cast<std::int64_t>(sample.alloc_count));
  set(alloc_bytes_gauge_, static_cast<std::int64_t>(sample.alloc_bytes));

  lock.lock();
  samples_.push_back(std::move(sample));
}

std::vector<ResourceSample> ResourceSampler::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

}  // namespace dtr::obs
