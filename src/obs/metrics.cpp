#include "obs/metrics.hpp"

#include <algorithm>

namespace dtr::obs {

namespace {

void add_double(std::atomic<double>& target, double d) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t n = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) shard.buckets[i] = 0;
  }
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; past-the-end = overflow.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[this_thread_shard()];
  shard.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  add_double(shard.sum, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> total(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < total.size(); ++i) {
      total[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (std::uint64_t c : bucket_counts()) n += c;
  return n;
}

double Histogram::sum() const {
  double s = 0.0;
  for (const Shard& shard : shards_) {
    s += shard.sum.load(std::memory_order_relaxed);
  }
  return s;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets = bucket_counts();
  snap.sum = sum();
  for (std::uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

bool Histogram::store(const HistogramSnapshot& snap) {
  if (snap.bounds != bounds_) return false;
  if (snap.buckets.size() != bounds_.size() + 1) return false;
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    shards_[0].buckets[i].store(snap.buckets[i], std::memory_order_relaxed);
  }
  shards_[0].sum.store(snap.sum, std::memory_order_relaxed);
  return true;
}

std::vector<double> latency_buckets_s() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 10.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> size_buckets() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> lock_wait_buckets_s() {
  std::vector<double> bounds;
  for (double b = 250e-9; b < 2.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

bool Registry::restore(const Snapshot& snap) {
  for (const auto& [name, v] : snap.counters) counter(name).store(v);
  for (const auto& [name, v] : snap.gauges) gauge(name).set(v);
  for (const auto& [name, h] : snap.histograms) {
    if (!histogram(name, h.bounds).store(h)) return false;
  }
  return true;
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

}  // namespace dtr::obs
