#include "obs/timeseries.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"

namespace dtr::obs {

namespace {

bool starts_with_any(const std::string& name,
                     const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&name](const std::string& p) {
                       return name.compare(0, p.size(), p) == 0;
                     });
}

std::string quantile_label(double q) {
  // 0.5 -> "p50", 0.95 -> "p95", 0.999 -> "p99.9".
  double pct = q * 100.0;
  auto rounded = static_cast<std::uint64_t>(pct);
  if (static_cast<double>(rounded) == pct) {
    return "p" + std::to_string(rounded);
  }
  std::string s = json_double(pct);
  return "p" + s;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(const Registry& registry,
                                       TimeSeriesOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.interval == 0) options_.interval = kSecond;
  next_ = options_.interval;
}

bool TimeSeriesRecorder::included(const std::string& name) const {
  if (!options_.include_prefixes.empty() &&
      !starts_with_any(name, options_.include_prefixes)) {
    return false;
  }
  return !starts_with_any(name, options_.exclude_prefixes);
}

Snapshot TimeSeriesRecorder::filtered_snapshot() const {
  Snapshot full = registry_.snapshot();
  Snapshot kept;
  for (auto& [name, v] : full.counters) {
    if (included(name)) kept.counters.emplace(name, v);
  }
  for (auto& [name, v] : full.gauges) {
    if (included(name)) kept.gauges.emplace(name, v);
  }
  for (auto& [name, h] : full.histograms) {
    if (included(name)) kept.histograms.emplace(name, std::move(h));
  }
  return kept;
}

void TimeSeriesRecorder::sample() {
  Snapshot snap = filtered_snapshot();
  const SimTime boundary = next_;
  next_ += options_.interval;
  if (options_.store_only_on_change && snap.counters == last_stored_.counters) {
    return;
  }
  samples_.push_back(Sample{boundary, snap});
  last_stored_ = std::move(snap);
}

void TimeSeriesRecorder::finish(SimTime end) {
  while (next_ <= end) sample();
}

std::vector<std::pair<SimTime, std::uint64_t>>
TimeSeriesRecorder::counter_deltas(const std::string& name) const {
  std::vector<std::pair<SimTime, std::uint64_t>> out;
  out.reserve(samples_.size());
  std::uint64_t previous = 0;
  for (const Sample& s : samples_) {
    const std::uint64_t value = s.snapshot.counter(name);
    out.emplace_back(s.time, value - previous);
    previous = value;
  }
  return out;
}

void TimeSeriesRecorder::write_jsonl(std::ostream& out) const {
  const Snapshot* previous = nullptr;
  for (const Sample& s : samples_) {
    out << "{\"t\": " << json_double(to_seconds_f(s.time))
        << ", \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : s.snapshot.counters) {
      const std::uint64_t prev =
          previous == nullptr ? 0 : previous->counter(name);
      out << (first ? "" : ", ");
      first = false;
      json_string(out, name);
      out << ": {\"v\": " << value << ", \"d\": " << value - prev << "}";
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : s.snapshot.gauges) {
      out << (first ? "" : ", ");
      first = false;
      json_string(out, name);
      out << ": " << value;
    }
    out << "}, \"histograms\": {";
    first = true;
    for (const auto& [name, h] : s.snapshot.histograms) {
      std::uint64_t prev_count = 0;
      if (previous != nullptr) {
        auto it = previous->histograms.find(name);
        if (it != previous->histograms.end()) prev_count = it->second.count;
      }
      out << (first ? "" : ", ");
      first = false;
      json_string(out, name);
      out << ": {\"count\": " << h.count << ", \"d\": " << h.count - prev_count;
      for (double q : options_.quantiles) {
        out << ", \"" << quantile_label(q) << "\": "
            << json_double(h.quantile(q));
      }
      out << "}";
    }
    out << "}}\n";
    previous = &s.snapshot;
  }
}

void TimeSeriesRecorder::write_csv(std::ostream& out) const {
  // Column union across samples, in sorted name order per instrument class.
  std::map<std::string, char> columns;  // name -> 'c' / 'g' / 'h'
  for (const Sample& s : samples_) {
    for (const auto& [name, v] : s.snapshot.counters) columns[name] = 'c';
    for (const auto& [name, v] : s.snapshot.gauges) columns[name] = 'g';
    for (const auto& [name, h] : s.snapshot.histograms) columns[name] = 'h';
  }

  out << "t";
  for (const auto& [name, type] : columns) {
    switch (type) {
      case 'c': out << "," << name << "," << name << ".delta"; break;
      case 'g': out << "," << name; break;
      case 'h':
        out << "," << name << ".count," << name << ".count.delta";
        for (double q : options_.quantiles) {
          out << "," << name << "." << quantile_label(q);
        }
        break;
    }
  }
  out << "\n";

  const Snapshot* previous = nullptr;
  for (const Sample& s : samples_) {
    out << json_double(to_seconds_f(s.time));
    for (const auto& [name, type] : columns) {
      switch (type) {
        case 'c': {
          const std::uint64_t value = s.snapshot.counter(name);
          const std::uint64_t prev =
              previous == nullptr ? 0 : previous->counter(name);
          out << "," << value << "," << value - prev;
          break;
        }
        case 'g':
          out << "," << s.snapshot.gauge(name);
          break;
        case 'h': {
          auto it = s.snapshot.histograms.find(name);
          static const HistogramSnapshot kEmpty;
          const HistogramSnapshot& h =
              it == s.snapshot.histograms.end() ? kEmpty : it->second;
          std::uint64_t prev_count = 0;
          if (previous != nullptr) {
            auto pit = previous->histograms.find(name);
            if (pit != previous->histograms.end()) {
              prev_count = pit->second.count;
            }
          }
          out << "," << h.count << "," << h.count - prev_count;
          for (double q : options_.quantiles) {
            out << "," << json_double(h.quantile(q));
          }
          break;
        }
      }
    }
    out << "\n";
  }
}

void TimeSeriesRecorder::save_state(ByteWriter& out) const {
  out.u64le(next_);
  last_stored_.save_state(out);
  out.u64le(samples_.size());
  for (const Sample& s : samples_) {
    out.u64le(s.time);
    s.snapshot.save_state(out);
  }
}

bool TimeSeriesRecorder::restore_state(ByteReader& in) {
  next_ = in.u64le();
  if (!last_stored_.restore_state(in)) return false;
  samples_.clear();
  const std::uint64_t n = in.u64le();
  if (n > in.remaining() / 32) return false;
  samples_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Sample s;
    s.time = in.u64le();
    if (!samples_.empty() && s.time <= samples_.back().time) return false;
    if (!s.snapshot.restore_state(in)) return false;
    samples_.push_back(std::move(s));
  }
  return in.ok();
}

}  // namespace dtr::obs
