// Process resource accounting for long captures: RSS, allocation totals,
// and a background sampler that turns them (plus selected queue/buffer
// gauges) into a wall-clock trajectory.
//
// The paper's ten-week campaign lives or dies on the capture box's memory
// budget (ROADMAP item 3 targets ~90M clients); the distributed-honeypots
// companion paper makes the same point per vantage.  Until now the tree
// never read RSS at all — this module reads it from /proc/self/statm
// (resident pages x page size) with a getrusage(RUSAGE_SELF) peak-RSS
// fallback for hosts without procfs.
//
// Allocation totals come from the global operator-new counters that
// bench/pipeline_throughput introduced; they now live here so the CLI and
// the bench share one definition.  The counters only tick in binaries that
// compile obs/alloc_counting.hpp into exactly one translation unit —
// everywhere else allocation_count() reads zero.
//
// Determinism contract: the sampler runs on *wall* time and publishes only
// under the "proc." prefix, which TimeSeriesOptions excludes by default —
// a profiled run's series/XML/checkpoint bytes match an unprofiled run's.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dtr::obs {

/// Current resident set size in bytes: /proc/self/statm when available,
/// otherwise getrusage peak RSS (a monotone over-estimate), otherwise 0.
std::uint64_t read_rss_bytes();

/// Peak resident set size in bytes via getrusage(RUSAGE_SELF); 0 on error.
std::uint64_t read_peak_rss_bytes();

namespace detail {
/// Ticked by the replacement operator new in obs/alloc_counting.hpp.
extern std::atomic<std::uint64_t> g_alloc_count;
extern std::atomic<std::uint64_t> g_alloc_bytes;
}  // namespace detail

/// Total operator-new calls / requested bytes since process start.  Zero
/// unless the binary compiled obs/alloc_counting.hpp into one TU.
std::uint64_t allocation_count();
std::uint64_t allocation_bytes();

/// A registry gauge to track, with the name it should carry in the report
/// (e.g. the kernel buffer publishes "capture.occupancy"; the report
/// records it as "capture.buffer.occupancy").
struct TrackedGauge {
  std::string name;  ///< registry name
  std::string as;    ///< output name (empty = same as `name`)
};

struct ResourceSamplerOptions {
  /// Wall-clock sampling interval.
  std::chrono::milliseconds interval{100};
  /// Registry counters whose running totals join each sample (throughput
  /// trajectories: "pipeline.messages", ...).  Resolved at start().
  std::vector<std::string> counters;
  /// Registry gauges to track (occupancy trajectories).
  std::vector<TrackedGauge> gauges;
  /// Publish proc.rss.bytes / proc.rss.peak.bytes / proc.alloc.count /
  /// proc.alloc.bytes gauges into the registry ("proc." is series-excluded
  /// by default, so this is visible in snapshots but not in series bytes).
  bool publish_gauges = true;
};

struct ResourceSample {
  double wall_seconds = 0;  ///< since sampler start
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::vector<std::uint64_t> counters;  ///< parallel to options().counters
  std::vector<std::int64_t> gauges;     ///< parallel to options().gauges
};

/// Background wall-clock sampler.  start() resolves the tracked instrument
/// pointers (registering absent names — fine: profiled runs only) and
/// launches the thread; stop() takes a final sample and joins.  The
/// registry may be null (process-only samples).
class ResourceSampler {
 public:
  explicit ResourceSampler(Registry* registry,
                           ResourceSamplerOptions options = {});
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void start();
  void stop();

  /// Take one sample synchronously (also what the thread does each tick).
  void sample_now();

  [[nodiscard]] std::vector<ResourceSample> samples() const;
  [[nodiscard]] const ResourceSamplerOptions& options() const {
    return options_;
  }

 private:
  void run();
  void resolve_instruments();

  Registry* registry_;
  ResourceSamplerOptions options_;

  std::vector<Counter*> tracked_counters_;
  std::vector<Gauge*> tracked_gauges_;
  Gauge* rss_gauge_ = nullptr;
  Gauge* peak_rss_gauge_ = nullptr;
  Gauge* alloc_count_gauge_ = nullptr;
  Gauge* alloc_bytes_gauge_ = nullptr;
  bool resolved_ = false;

  std::chrono::steady_clock::time_point started_at_{};
  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::vector<ResourceSample> samples_;
};

}  // namespace dtr::obs
