// Structured logging for the capture chain (obs::Logger).
//
// The paper's campaign is a ten-week unattended capture: the operational
// question is never "what is the counter now" (metrics answer that) but
// "what happened, when, and how often" — a malformed-frame storm, a buffer
// overflow burst, a reassembly expiry wave.  This logger gives every
// component a levelled, component-tagged, rate-limited channel:
//
//   * Levels: debug < info < warn < error, with a runtime threshold.
//   * Components: a short tag ("decode", "capture", ...) on every record.
//   * Rate limiting: a token bucket driven by *simulated* time, so a storm
//     of identical warnings cannot flood the sink no matter how fast it
//     arrives in wall time.  Errors always pass.  Suppressed records are
//     counted and the count is attached to the next record that passes.
//   * Sinks are pluggable: stderr/file streams for operation, a capturing
//     sink for tests.  No sink bound = every record is dropped after the
//     (cheap) level check.
//
// Hot-path contract (same as the metrics layer): components hold a
// `Logger*` that stays nullptr until bind time, and the DTR_LOG macros
// never evaluate the message expression unless the record would pass the
// level check — an unbound component pays one branch per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace dtr::obs {

class Counter;
class Registry;

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* log_level_name(LogLevel level);
/// Parse a level name (as printed by log_level_name); false on bad input.
bool parse_log_level(std::string_view name, LogLevel& out);

struct LogRecord {
  SimTime time = 0;          ///< simulated capture time of the event
  LogLevel level = LogLevel::kInfo;
  std::string component;     ///< short tag: "capture", "decode", ...
  std::string message;
  std::uint64_t suppressed_before = 0;  ///< records rate-limited since the
                                        ///< previous one that passed
};

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Writes "[   t.tttt] LEVEL component: message" lines to a stream
/// (stderr, a log file).  Serialised internally; safe from any thread.
class StreamSink : public LogSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(out) {}
  void write(const LogRecord& record) override;

 private:
  std::mutex mutex_;
  std::ostream& out_;
};

/// Retains every record in memory — the test harness's sink.
class CaptureSink : public LogSink {
 public:
  void write(const LogRecord& record) override;
  [[nodiscard]] std::vector<LogRecord> records() const;
  [[nodiscard]] std::size_t count() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<LogRecord> records_;
};

struct RateLimitConfig {
  double tokens_per_second = 1.0;  ///< refill rate, in simulated seconds
  double burst = 50.0;             ///< bucket capacity
};

class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The sink must outlive the logger (or be reset to nullptr first).
  void set_sink(LogSink* sink) { sink_.store(sink, std::memory_order_release); }
  void set_level(LogLevel level) {
    threshold_.store(static_cast<std::uint8_t>(level),
                     std::memory_order_relaxed);
  }
  void set_rate_limit(const RateLimitConfig& config);

  /// Cheap pre-check: callers (the DTR_LOG macros) skip message formatting
  /// entirely when this is false.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return sink_.load(std::memory_order_acquire) != nullptr &&
           static_cast<std::uint8_t>(level) >=
               threshold_.load(std::memory_order_relaxed);
  }

  /// Emit one record.  `time` is simulated capture time and also drives the
  /// token-bucket refill; errors bypass the limiter.
  void log(LogLevel level, std::string_view component, SimTime time,
           std::string message);

  /// Records dropped by the rate limiter so far.
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_total_.load(std::memory_order_relaxed);
  }

  /// Mirror the suppression tally into a `log.suppressed` counter so the
  /// metrics snapshot carries it ("log." is series-excluded by default).
  void bind_metrics(Registry& registry);

  /// Shutdown flush: emit one "N records rate-limited" summary line
  /// covering the whole run.  Bypasses the level threshold and the token
  /// bucket (it IS the limiter's accounting); no-op when nothing was
  /// suppressed or no sink is bound.
  void emit_suppressed_summary(SimTime now);

 private:
  std::atomic<LogSink*> sink_{nullptr};
  std::atomic<Counter*> suppressed_counter_{nullptr};
  std::atomic<std::uint8_t> threshold_{
      static_cast<std::uint8_t>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> suppressed_total_{0};

  // Token bucket (guarded: log records are rare by construction once the
  // limiter engages, so a mutex is the right tool).
  std::mutex mutex_;
  RateLimitConfig rate_;
  double tokens_ = 50.0;
  SimTime last_refill_ = 0;
  std::uint64_t suppressed_run_ = 0;  // since the last record that passed
};

}  // namespace dtr::obs

/// DTR_LOG_*(logger*, component, sim_time, streamable): formats and emits
/// only when `logger` is bound and the level passes — an unbound component
/// pays one branch and never touches an ostringstream.
#define DTR_LOG_AT(logger_expr, lvl, component, time_expr, stream_expr)     \
  do {                                                                      \
    ::dtr::obs::Logger* dtr_log_ptr = (logger_expr);                        \
    if (dtr_log_ptr != nullptr && dtr_log_ptr->enabled(lvl)) {              \
      std::ostringstream dtr_log_os;                                        \
      dtr_log_os << stream_expr;                                            \
      dtr_log_ptr->log(lvl, component, time_expr, dtr_log_os.str());        \
    }                                                                       \
  } while (0)

#define DTR_LOG_DEBUG(logger, component, time, stream_expr) \
  DTR_LOG_AT(logger, ::dtr::obs::LogLevel::kDebug, component, time, stream_expr)
#define DTR_LOG_INFO(logger, component, time, stream_expr) \
  DTR_LOG_AT(logger, ::dtr::obs::LogLevel::kInfo, component, time, stream_expr)
#define DTR_LOG_WARN(logger, component, time, stream_expr) \
  DTR_LOG_AT(logger, ::dtr::obs::LogLevel::kWarn, component, time, stream_expr)
#define DTR_LOG_ERROR(logger, component, time, stream_expr) \
  DTR_LOG_AT(logger, ::dtr::obs::LogLevel::kError, component, time, stream_expr)
