#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <iomanip>

#include "obs/json.hpp"

namespace dtr::obs {

const char* flight_event_name(FlightEvent kind) {
  switch (kind) {
    case FlightEvent::kFrameAccepted: return "frame-accepted";
    case FlightEvent::kFrameDropped: return "frame-dropped";
    case FlightEvent::kDecodeReject: return "decode-reject";
    case FlightEvent::kBufferHighWater: return "buffer-high-water";
    case FlightEvent::kReassemblyExpired: return "reassembly-expired";
    case FlightEvent::kStageStall: return "stage-stall";
    case FlightEvent::kPipelineError: return "pipeline-error";
    case FlightEvent::kCheckpointWrite: return "checkpoint-write";
    case FlightEvent::kCheckpointRestore: return "checkpoint-restore";
    case FlightEvent::kMark: return "mark";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t per_thread_capacity)
    : capacity_(round_up_pow2(per_thread_capacity)),
      instance_(next_instance_id()) {}

FlightRecorder::Ring& FlightRecorder::this_thread_ring() {
  // One cache entry per (thread, recorder); a handful of recorders at most,
  // so a linear scan beats any map.
  struct CacheEntry {
    std::uint64_t instance;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.instance == instance_) return *entry.ring;
  }
  std::lock_guard lock(mutex_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  Ring* ring = rings_.back().get();
  ring->id = static_cast<std::uint32_t>(rings_.size() - 1);
  cache.push_back(CacheEntry{instance_, ring});
  return *ring;
}

void FlightRecorder::record(FlightEvent kind, SimTime time, std::uint64_t a,
                            std::uint64_t b) {
  Ring& ring = this_thread_ring();
  Slot& slot = ring.slots[ring.head & (capacity_ - 1)];
  ++ring.head;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  // Seqlock-style publish: invalidate, fill, release the new seq.
  slot.seq.store(0, std::memory_order_release);
  slot.time.store(time, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::merged(
    std::size_t last_n) const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mutex_);
    for (const auto& ring : rings_) {
      for (const Slot& slot : ring->slots) {
        Event ev;
        ev.seq = slot.seq.load(std::memory_order_acquire);
        if (ev.seq == 0) continue;  // empty or mid-write
        ev.time = slot.time.load(std::memory_order_relaxed);
        ev.a = slot.a.load(std::memory_order_relaxed);
        ev.b = slot.b.load(std::memory_order_relaxed);
        ev.kind =
            static_cast<FlightEvent>(slot.kind.load(std::memory_order_relaxed));
        if (slot.seq.load(std::memory_order_acquire) != ev.seq) continue;
        ev.thread = ring->id;
        events.push_back(ev);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  if (events.size() > last_n) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  return events;
}

void FlightRecorder::dump_text(std::ostream& out, std::size_t last_n) const {
  const std::vector<Event> events = merged(last_n);
  out << "== flight recorder: last " << events.size() << " of " << recorded()
      << " events ==\n";
  for (const Event& ev : events) {
    out << "  #" << std::setw(8) << std::left << ev.seq << " t="
        << std::setw(12) << std::left << json_double(to_seconds_f(ev.time))
        << " thread=" << ev.thread << "  " << std::setw(18) << std::left
        << flight_event_name(ev.kind) << " a=" << ev.a << " b=" << ev.b
        << "\n";
  }
}

void FlightRecorder::dump_json(std::ostream& out, std::size_t last_n) const {
  const std::vector<Event> events = merged(last_n);
  out << "{\"recorded\": " << recorded() << ", \"events\": [";
  bool first = true;
  for (const Event& ev : events) {
    out << (first ? "\n  " : ",\n  ");
    first = false;
    out << "{\"seq\": " << ev.seq
        << ", \"t\": " << json_double(to_seconds_f(ev.time))
        << ", \"thread\": " << ev.thread << ", \"kind\": ";
    json_string(out, flight_event_name(ev.kind));
    out << ", \"a\": " << ev.a << ", \"b\": " << ev.b << "}";
  }
  out << (first ? "" : "\n") << "]}\n";
}

}  // namespace dtr::obs
