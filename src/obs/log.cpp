#include "obs/log.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace dtr::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

bool parse_log_level(std::string_view name, LogLevel& out) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    if (name == log_level_name(level)) {
      out = level;
      return true;
    }
  }
  return false;
}

void StreamSink::write(const LogRecord& record) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%12.4f", to_seconds_f(record.time));
  std::lock_guard lock(mutex_);
  out_ << "[" << stamp << "] " << log_level_name(record.level) << " "
       << record.component << ": " << record.message;
  if (record.suppressed_before > 0) {
    out_ << " (+" << record.suppressed_before << " suppressed)";
  }
  out_ << "\n";
}

void CaptureSink::write(const LogRecord& record) {
  std::lock_guard lock(mutex_);
  records_.push_back(record);
}

std::vector<LogRecord> CaptureSink::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::size_t CaptureSink::count() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

void CaptureSink::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
}

void Logger::set_rate_limit(const RateLimitConfig& config) {
  std::lock_guard lock(mutex_);
  rate_ = config;
  tokens_ = config.burst;
}

void Logger::log(LogLevel level, std::string_view component, SimTime time,
                 std::string message) {
  LogSink* sink = sink_.load(std::memory_order_acquire);
  if (sink == nullptr ||
      static_cast<std::uint8_t>(level) <
          threshold_.load(std::memory_order_relaxed)) {
    return;
  }

  std::uint64_t suppressed_before = 0;
  {
    std::lock_guard lock(mutex_);
    // Refill on simulated time.  Decode workers can present slightly
    // out-of-order times; never refill backwards.
    if (time > last_refill_) {
      tokens_ = std::min(rate_.burst,
                         tokens_ + to_seconds_f(time - last_refill_) *
                                       rate_.tokens_per_second);
      last_refill_ = time;
    }
    if (level != LogLevel::kError) {
      if (tokens_ < 1.0) {
        ++suppressed_run_;
        suppressed_total_.fetch_add(1, std::memory_order_relaxed);
        inc(suppressed_counter_.load(std::memory_order_relaxed));
        return;
      }
      tokens_ -= 1.0;
    }
    suppressed_before = suppressed_run_;
    suppressed_run_ = 0;
  }

  LogRecord record;
  record.time = time;
  record.level = level;
  record.component.assign(component);
  record.message = std::move(message);
  record.suppressed_before = suppressed_before;
  sink->write(record);
}

void Logger::bind_metrics(Registry& registry) {
  Counter& counter = registry.counter("log.suppressed");
  // Carry forward drops that happened before binding.
  const std::uint64_t already =
      suppressed_total_.load(std::memory_order_relaxed);
  if (already > counter.value()) counter.inc(already - counter.value());
  suppressed_counter_.store(&counter, std::memory_order_relaxed);
}

void Logger::emit_suppressed_summary(SimTime now) {
  LogSink* sink = sink_.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  const std::uint64_t total =
      suppressed_total_.load(std::memory_order_relaxed);
  if (total == 0) return;
  LogRecord record;
  record.time = now;
  record.level = LogLevel::kInfo;
  record.component = "log";
  record.message =
      std::to_string(total) + " records rate-limited over the run";
  {
    // The summary supersedes the pending "suppressed since last pass" run.
    std::lock_guard lock(mutex_);
    suppressed_run_ = 0;
  }
  sink->write(record);
}

}  // namespace dtr::obs
