// TimeSeriesRecorder: longitudinal telemetry over simulated time.
//
// The paper's headline figures are *time series* (Figure 2's losses per
// second, weekly query-volume tables), not point measurements.  PR 1's
// Registry answers "what are the counters now"; this recorder subscribes to
// the interval tick (driven by simulated frame/event timestamps, so output
// is byte-reproducible) and stores one filtered Snapshot per interval
// boundary, from which it derives per-interval rates:
//
//   * counters   -> value + delta since the previous stored sample,
//   * gauges     -> value,
//   * histograms -> count, count delta, and p50/p95/p99 via
//                   HistogramSnapshot::quantile.
//
// Determinism contract: with the default filters, two runs with the same
// seed and interval produce byte-identical JSONL/CSV files, and the serial
// and parallel pipelines produce identical counter *series* — provided the
// driver quiesces the pipeline before each sample (CampaignRunner::run
// flushes both pipelines at every boundary).  Wall-clock-valued
// instruments (span.* histograms) and scheduling-dependent gauges
// (pipeline.queue.*, pipeline.merge.*) are excluded by default because no
// flush can make them deterministic.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace dtr::obs {

struct TimeSeriesOptions {
  /// Sampling interval in simulated time.
  SimTime interval = kHour;
  /// Keep only instruments whose name starts with one of these (empty =
  /// keep everything not excluded).
  std::vector<std::string> include_prefixes;
  /// Drop instruments whose name starts with one of these.  Defaults to
  /// the wall-clock / scheduling-dependent names that would break
  /// byte-reproducibility.  checkpoint.* is excluded so a resumed run's
  /// series stays byte-identical to an uninterrupted run's (checkpointing
  /// activity is operational, not part of the measured campaign);
  /// pipeline.pool.* (free-list hit/miss) and pipeline.writer.* (offload
  /// chunk shapes) depend on thread scheduling the same way queue depths
  /// do.  pipeline.batch.* stays IN the series: batch formation happens on
  /// the pushing thread from input count/time alone, so batch shapes are
  /// deterministic.  pipeline.ring.* (SPSC park counts) and anon.shard.*
  /// (fast/deferred split, per-shard occupancy) are scheduling-dependent
  /// for the same reason: how many messages take the optimistic worker
  /// path depends on thread interleaving even though the output does not.
  /// proc.* (resource-sampler RSS/allocation gauges) is wall-clock-valued
  /// and only present in profiled runs; log.suppressed depends on which
  /// sinks/levels the operator enabled — both would make a profiled or
  /// verbosely-logged run's series differ from a plain run's.
  std::vector<std::string> exclude_prefixes = {
      "span.",           "pipeline.queue.", "pipeline.merge.",
      "pipeline.pool.",  "pipeline.writer.", "checkpoint.",
      "pipeline.ring.",  "anon.shard.",      "proc.",
      "log."};
  /// Store a sample only when some included counter changed since the last
  /// stored sample — sparse mode for long fine-grained series (Figure 2's
  /// per-second losses: almost every second is all-zero deltas).  Deltas
  /// stay exact: skipped boundaries had zero change by construction.
  bool store_only_on_change = false;
  /// Quantiles derived per histogram per sample.
  std::vector<double> quantiles = {0.5, 0.95, 0.99};
};

class TimeSeriesRecorder {
 public:
  /// The registry must outlive the recorder.  Sampling starts at
  /// `interval` (the first boundary) — time 0 is the capture start.
  explicit TimeSeriesRecorder(const Registry& registry,
                              TimeSeriesOptions options = {});

  /// True once `now` has reached the next boundary: the driver should
  /// quiesce the pipeline, then call sample() while due() holds.
  [[nodiscard]] bool due(SimTime now) const { return now >= next_; }
  [[nodiscard]] SimTime next_sample_time() const { return next_; }

  /// Record the sample for the current boundary and advance one interval.
  void sample();

  /// Record every remaining boundary up to and including `end` — the
  /// end-of-run tail (call after the pipeline has drained).
  void finish(SimTime end);

  struct Sample {
    /// Boundary time.  The driver samples when the first frame at or past
    /// the boundary shows up, so this covers frames in [time - interval,
    /// time) — a frame stamped exactly at the boundary lands in the next
    /// interval.
    SimTime time = 0;
    Snapshot snapshot;
  };

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const TimeSeriesOptions& options() const { return options_; }

  /// Derived per-interval increments of one counter, one entry per stored
  /// sample: (boundary time, delta since previous stored sample).
  [[nodiscard]] std::vector<std::pair<SimTime, std::uint64_t>> counter_deltas(
      const std::string& name) const;

  /// One JSON object per stored sample:
  ///   {"t": <seconds>, "counters": {"name": {"v": total, "d": delta}},
  ///    "gauges": {"name": value},
  ///    "histograms": {"name": {"count": n, "d": dn, "p50": ..,
  ///                            "p95": .., "p99": ..}}}
  /// Keys sorted, shortest round-trip doubles — byte-reproducible.
  void write_jsonl(std::ostream& out) const;

  /// Wide CSV: column union over all samples; counters emit `name` and
  /// `name.delta`, gauges `name`, histograms `name.count`,
  /// `name.count.delta` and one `name.pXX` per configured quantile.
  void write_csv(std::ostream& out) const;

  /// Checkpoint codec: boundary cursor, last stored snapshot and every
  /// stored sample.  Options are rebuilt from the config, not serialized.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  [[nodiscard]] bool included(const std::string& name) const;
  [[nodiscard]] Snapshot filtered_snapshot() const;

  const Registry& registry_;
  TimeSeriesOptions options_;
  SimTime next_;
  Snapshot last_stored_;  // empty before the first stored sample
  std::vector<Sample> samples_;
};

}  // namespace dtr::obs
