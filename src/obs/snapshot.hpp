// Point-in-time view of a metrics Registry, renderable as a text table or
// a JSON document.  Snapshots are plain values: comparing two of them is a
// deterministic operation, which the test harness relies on (snapshot
// idempotence, serial-vs-parallel reconciliation).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace dtr::obs {

struct HistogramSnapshot {
  std::vector<double> bounds;           // upper bounds, ascending
  std::vector<std::uint64_t> buckets;   // bounds.size() + 1 (last = overflow)
  double sum = 0.0;
  std::uint64_t count = 0;

  bool operator==(const HistogramSnapshot&) const = default;

  /// Quantile estimate by linear interpolation within the bucket holding
  /// rank q*count (Prometheus-style): the first bucket interpolates from 0,
  /// a rank landing in the overflow bucket returns the largest finite
  /// bound.  q is clamped to [0, 1]; an empty histogram returns 0.
  /// Deterministic — it reads only the bucket counts, never the sum.
  [[nodiscard]] double quantile(double q) const;
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const Snapshot&) const = default;

  /// Value lookups; absent names read as zero (instruments appear on first
  /// registration, so "never instrumented" and "never incremented" agree).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] std::int64_t gauge(const std::string& name) const;
  [[nodiscard]] bool has_counter(const std::string& name) const {
    return counters.count(name) != 0;
  }

  /// Human-oriented aligned table (one instrument per line).
  void render_table(std::ostream& out) const;

  /// Machine-oriented JSON document:
  ///   {"counters": {...}, "gauges": {...}, "histograms":
  ///     {"name": {"bounds": [...], "buckets": [...], "sum": s, "count": n}}}
  /// Keys are sorted, doubles use shortest round-trip formatting, and the
  /// document ends with a newline.
  void render_json(std::ostream& out) const;

  /// Checkpoint codec (doubles stored bit-exact, names sorted — maps give
  /// a canonical order for free).
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);
};

}  // namespace dtr::obs
