// Pipeline profiler: per-thread time attribution for the capture chain.
//
// The paper's capture box had to keep ~1,200 messages/second flowing for
// ten weeks; after PR 6 broke the merge-thread bottleneck the open question
// is "which stage is saturated *now*?".  Counters can say how often a ring
// parked, but not where the seconds went.  This profiler attributes every
// thread's wall time to one of four states:
//
//   working    — executing stage code (the default between scopes),
//   queue_wait — blocked pushing into a full downstream queue/ring
//                (backpressure: the stage *after* this thread is the
//                bottleneck),
//   park       — blocked waiting for upstream input (starvation: this
//                thread has spare capacity),
//   lock_wait  — blocked acquiring a contended lock (shard mutexes).
//
// Concurrency model (same shape as obs::Counter's striping): each thread
// owns a ThreadProfile — a cache-line-isolated block of per-state
// nanosecond accumulators written only by the owning thread with relaxed
// atomics, so flipping states never touches a shared cache line.  The
// report reader sums the accumulators cross-thread; totals are exact for
// finished threads and monotone-approximate for live ones.
//
// Hot-path contract (same as metrics/logging): components consult a
// thread-local ThreadProfile pointer that stays nullptr until the thread
// registers.  An unprofiled thread pays one TLS load and a predictable
// branch per scope — no clock reads.  A profiled thread pays two
// steady_clock reads per scope, and scopes sit on *blocking* paths (the
// park/wait slow paths), never on the per-frame fast path.
//
// Determinism contract: the profiler observes wall time only.  It never
// feeds the metrics Registry, the TimeSeriesRecorder, or the checkpoint
// fingerprint, so enabling it cannot perturb byte-identity pins.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "obs/resource.hpp"

namespace dtr::obs {

enum class ThreadState : std::uint8_t {
  kWorking = 0,
  kQueueWait = 1,
  kPark = 2,
  kLockWait = 3,
};

inline constexpr std::size_t kThreadStateCount = 4;

/// "working" / "queue_wait" / "park" / "lock_wait".
const char* thread_state_name(ThreadState state);

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t profiler_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's time-attribution ledger.  Owned by the Profiler (stable
/// address); written only by the registered thread, read by the report.
class alignas(64) ThreadProfile {
 public:
  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Owner thread only: accumulate the elapsed time into the current state
  /// and enter `next`.  Returns the previous state so RAII scopes can
  /// restore it.
  ThreadState switch_state(ThreadState next) {
    const std::uint64_t now = profiler_now_ns();
    const auto prev = static_cast<ThreadState>(
        state_.load(std::memory_order_relaxed));
    const std::uint64_t entered = entered_ns_.load(std::memory_order_relaxed);
    acc_ns_[static_cast<std::size_t>(prev)].fetch_add(
        now - entered, std::memory_order_relaxed);
    state_.store(static_cast<std::uint8_t>(next), std::memory_order_relaxed);
    entered_ns_.store(now, std::memory_order_relaxed);
    return prev;
  }

  /// Owner thread only: close the ledger (flushes the open state).  After
  /// this, totals() is exact and stable.
  void finish() {
    if (finished_.load(std::memory_order_relaxed)) return;
    switch_state(ThreadState::kWorking);
    finished_.store(true, std::memory_order_release);
  }

  struct Totals {
    std::array<double, kThreadStateCount> seconds{};  // per-state
    double total_seconds = 0;
    bool finished = false;
  };

  /// Any thread.  For a live thread the open state is credited up to "now",
  /// so totals are monotone but may slightly lag the owner's next switch.
  [[nodiscard]] Totals totals() const;

 private:
  friend class Profiler;
  ThreadProfile(std::string stage, std::string name);

  std::string stage_;
  std::string name_;
  std::array<std::atomic<std::uint64_t>, kThreadStateCount> acc_ns_{};
  std::atomic<std::uint8_t> state_{
      static_cast<std::uint8_t>(ThreadState::kWorking)};
  std::atomic<std::uint64_t> entered_ns_{0};
  std::atomic<bool> finished_{false};
};

namespace detail {
/// The calling thread's registered profile, nullptr when unprofiled.
inline thread_local ThreadProfile* t_thread_profile = nullptr;
}  // namespace detail

/// RAII state scope.  On an unprofiled thread: one TLS load, no clocks.
class ProfScope {
 public:
  explicit ProfScope(ThreadState state)
      : profile_(detail::t_thread_profile) {
    if (profile_ != nullptr) prev_ = profile_->switch_state(state);
  }
  ~ProfScope() {
    if (profile_ != nullptr) profile_->switch_state(prev_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ThreadProfile* profile_;
  ThreadState prev_ = ThreadState::kWorking;
};

/// Owns every ThreadProfile and the checkpoint-cost ledger; builds the
/// end-of-run bottleneck report.  Must outlive the pipelines it profiles
/// (threads must release before the profiler is destroyed — ThreadLease
/// and the pipelines' finish() paths guarantee that).
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Register the calling thread under `stage` (aggregation key: "worker",
  /// "merge", ...) and `name` (unique-ish: "worker.3").  Binds the
  /// thread-local profile so ProfScopes on this thread start recording.
  /// The thread (or its lease) must call release() before exiting.
  ThreadProfile* register_thread(std::string_view stage,
                                 std::string_view name);

  /// The calling thread's profile, nullptr when unregistered.
  [[nodiscard]] static ThreadProfile* current() {
    return detail::t_thread_profile;
  }

  /// Owner thread only: close `profile`'s ledger and unbind the
  /// thread-local pointer (if it still points at `profile`).
  static void release(ThreadProfile* profile);

  struct CheckpointCost {
    SimTime boundary = 0;        ///< simulated time of the snapshot
    double wall_seconds = 0;     ///< wall-clock cost of writing it
    std::uint64_t bytes = 0;     ///< snapshot size on disk
  };

  /// Record the wall cost of one checkpoint snapshot (CampaignRunner).
  void note_checkpoint(SimTime boundary, double wall_seconds,
                       std::uint64_t bytes);

  [[nodiscard]] std::vector<CheckpointCost> checkpoint_costs() const;

  /// Point-in-time totals of every registered thread (registration order).
  struct ThreadSummary {
    std::string stage;
    std::string name;
    std::array<double, kThreadStateCount> seconds{};
    std::array<double, kThreadStateCount> fraction{};  // sums to ~1.0
    double total_seconds = 0;
    bool finished = false;
  };
  [[nodiscard]] std::vector<ThreadSummary> thread_summaries() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadProfile>> profiles_;
  std::vector<CheckpointCost> checkpoints_;
};

/// RAII registration for a whole thread body: registers on construction
/// (when the profiler is non-null), releases on destruction.
class ThreadLease {
 public:
  ThreadLease() = default;
  ThreadLease(Profiler* profiler, std::string_view stage,
              std::string_view name) {
    if (profiler != nullptr) profile_ = profiler->register_thread(stage, name);
  }
  ~ThreadLease() { reset(); }
  ThreadLease(ThreadLease&& other) noexcept : profile_(other.profile_) {
    other.profile_ = nullptr;
  }
  ThreadLease& operator=(ThreadLease&& other) noexcept {
    if (this != &other) {
      reset();
      profile_ = other.profile_;
      other.profile_ = nullptr;
    }
    return *this;
  }
  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  /// Owner thread only.
  void reset() {
    if (profile_ != nullptr) {
      Profiler::release(profile_);
      profile_ = nullptr;
    }
  }
  [[nodiscard]] ThreadProfile* get() const { return profile_; }

 private:
  ThreadProfile* profile_ = nullptr;
};

/// Null-tolerant checkpoint-cost helper (mirrors obs::inc/set/observe).
inline void note_checkpoint(Profiler* profiler, SimTime boundary,
                            double wall_seconds, std::uint64_t bytes) {
  if (profiler != nullptr)
    profiler->note_checkpoint(boundary, wall_seconds, bytes);
}

/// The end-of-run bottleneck report: per-thread and per-stage utilisation,
/// the most-saturated stage, checkpoint wall costs, and (when a sampler is
/// supplied) the resource trajectory.
struct BottleneckReport {
  std::vector<Profiler::ThreadSummary> threads;

  struct StageSummary {
    std::string stage;
    std::size_t thread_count = 0;
    std::array<double, kThreadStateCount> seconds{};
    double total_seconds = 0;
    double utilisation = 0;  ///< working / total over the stage's threads
  };
  std::vector<StageSummary> stages;
  /// Stage with the highest working fraction — the saturated one.  Empty
  /// when no thread registered.
  std::string bottleneck;

  std::vector<Profiler::CheckpointCost> checkpoints;
  double checkpoint_total_seconds = 0;

  std::vector<ResourceSample> resources;
  std::vector<std::string> resource_counters;  ///< names for Sample.counters
  std::vector<std::string> resource_gauges;    ///< output names for .gauges
  double resource_interval_seconds = 0;

  /// Human table: per-thread state percentages, stage roll-up, bottleneck
  /// verdict, checkpoint and resource summaries.
  void render_text(std::ostream& out) const;
  /// One JSON object (valid per obs::json_valid); the campaign trajectory
  /// lands under "resources.series" in BENCH_campaign.json shape.
  void render_json(std::ostream& out) const;
};

/// Snapshot `profiler` (and optionally `sampler`) into a report.
BottleneckReport build_bottleneck_report(const Profiler& profiler,
                                         const ResourceSampler* sampler = nullptr);

}  // namespace dtr::obs
