#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace dtr::obs {

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips.
  char shorter[32];
  for (int prec = 1; prec < 17; ++prec) {
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

namespace {

/// Minimal recursive-descent JSON reader: validates, never builds a tree.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool check() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    take();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { take(); return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) return false;
      skip_ws();
      if (eof() || take() != ':') return false;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return false;
      char c = take();
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }

  bool array(int depth) {
    take();  // '['
    skip_ws();
    if (!eof() && peek() == ']') { take(); return true; }
    while (true) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return false;
      char c = take();
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }

  bool string() {
    take();  // '"'
    while (!eof()) {
      unsigned char c = static_cast<unsigned char>(take());
      if (c == '"') return true;
      if (c < 0x20) return false;  // raw control character: invalid JSON
      if (c == '\\') {
        if (eof()) return false;
        char e = take();
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(take()))) {
                return false;
              }
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    std::size_t digits = 0;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return false;
    // No leading zeros: "0" is fine, "01" is not.
    if (digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      digits = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      digits = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return JsonChecker(text).check(); }

bool jsonl_valid(std::string_view text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && !json_valid(line)) return false;
    start = end + 1;
  }
  return true;
}

}  // namespace dtr::obs
