// Span-style trace hooks: a SpanTimer measures the wall time of a scope and
// feeds it into a latency Histogram, so every pipeline stage gets a
// per-stage latency distribution for free.
//
//   obs::Histogram* h = &registry.histogram("span.decode.seconds");
//   ...
//   { DTR_SPAN(h); decoder.push(frame); }       // hot path: cached pointer
//   { DTR_SPAN(&registry, "flush"); flush(); }  // cold path: by name
//
// A SpanTimer over a nullptr histogram never reads the clock — unbound
// components pay one branch, nothing more.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace dtr::obs {

class SpanTimer {
 public:
  explicit SpanTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = Clock::now();
  }

  /// Cold-path convenience: resolves "span.<name>.seconds" in `registry`
  /// (nullptr registry = disabled span).
  SpanTimer(Registry* registry, const char* name)
      : SpanTimer(registry == nullptr
                      ? nullptr
                      : &registry->histogram("span." + std::string(name) +
                                             ".seconds")) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    if (hist_ == nullptr) return;
    const std::chrono::duration<double> elapsed = Clock::now() - start_;
    hist_->observe(elapsed.count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* hist_;
  Clock::time_point start_;
};

}  // namespace dtr::obs

#define DTR_OBS_CONCAT_INNER(a, b) a##b
#define DTR_OBS_CONCAT(a, b) DTR_OBS_CONCAT_INNER(a, b)
/// DTR_SPAN(histogram*) or DTR_SPAN(registry*, "name"): time the enclosing
/// scope into a latency histogram.
#define DTR_SPAN(...) \
  ::dtr::obs::SpanTimer DTR_OBS_CONCAT(dtr_span_, __COUNTER__)(__VA_ARGS__)
