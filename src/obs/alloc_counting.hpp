// Global operator-new counting, opt-in per binary.
//
// Include this header in EXACTLY ONE translation unit of a binary to
// replace the global allocation functions with counting versions that tick
// obs::detail::g_alloc_count / g_alloc_bytes (read back via
// obs::allocation_count() / allocation_bytes() — see obs/resource.hpp).
// It deliberately lives outside the obs library: replacing operator new in
// a library would silently hijack allocation in every linking binary,
// including sanitizer builds that interpose their own allocator.
//
// bench/pipeline_throughput and the donkeytrace CLI opt in; tests do not.
#pragma once

#include <cstdlib>
#include <new>

#include "obs/resource.hpp"

namespace dtr::obs::detail {

inline void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace dtr::obs::detail

void* operator new(std::size_t n) { return ::dtr::obs::detail::counted_alloc(n); }
void* operator new[](std::size_t n) {
  return ::dtr::obs::detail::counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return ::dtr::obs::detail::counted_alloc_aligned(n,
                                                   static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::dtr::obs::detail::counted_alloc_aligned(n,
                                                   static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
