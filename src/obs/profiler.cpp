#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <map>

#include "obs/json.hpp"

namespace dtr::obs {

const char* thread_state_name(ThreadState state) {
  switch (state) {
    case ThreadState::kWorking: return "working";
    case ThreadState::kQueueWait: return "queue_wait";
    case ThreadState::kPark: return "park";
    case ThreadState::kLockWait: return "lock_wait";
  }
  return "?";
}

ThreadProfile::ThreadProfile(std::string stage, std::string name)
    : stage_(std::move(stage)), name_(std::move(name)) {
  entered_ns_.store(profiler_now_ns(), std::memory_order_relaxed);
}

ThreadProfile::Totals ThreadProfile::totals() const {
  Totals out;
  out.finished = finished_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < kThreadStateCount; ++i)
    out.seconds[i] =
        static_cast<double>(acc_ns_[i].load(std::memory_order_relaxed)) * 1e-9;
  if (!out.finished) {
    // Credit the open state up to now.  The owner may be mid-switch; the
    // worst case is attributing a few ns to the previous state — totals
    // stay monotone and the error vanishes once finish() runs.
    const std::uint64_t now = profiler_now_ns();
    const std::uint64_t entered = entered_ns_.load(std::memory_order_relaxed);
    const auto state = static_cast<std::size_t>(
        state_.load(std::memory_order_relaxed));
    if (now > entered) out.seconds[state] += static_cast<double>(now - entered) * 1e-9;
  }
  for (double s : out.seconds) out.total_seconds += s;
  return out;
}

ThreadProfile* Profiler::register_thread(std::string_view stage,
                                         std::string_view name) {
  auto profile = std::unique_ptr<ThreadProfile>(
      new ThreadProfile(std::string(stage), std::string(name)));
  ThreadProfile* raw = profile.get();
  {
    std::lock_guard lock(mutex_);
    profiles_.push_back(std::move(profile));
  }
  detail::t_thread_profile = raw;
  return raw;
}

void Profiler::release(ThreadProfile* profile) {
  if (profile == nullptr) return;
  profile->finish();
  if (detail::t_thread_profile == profile) detail::t_thread_profile = nullptr;
}

void Profiler::note_checkpoint(SimTime boundary, double wall_seconds,
                               std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  checkpoints_.push_back(CheckpointCost{boundary, wall_seconds, bytes});
}

std::vector<Profiler::CheckpointCost> Profiler::checkpoint_costs() const {
  std::lock_guard lock(mutex_);
  return checkpoints_;
}

std::vector<Profiler::ThreadSummary> Profiler::thread_summaries() const {
  std::vector<ThreadSummary> out;
  std::lock_guard lock(mutex_);
  out.reserve(profiles_.size());
  for (const auto& profile : profiles_) {
    const ThreadProfile::Totals totals = profile->totals();
    ThreadSummary summary;
    summary.stage = profile->stage();
    summary.name = profile->name();
    summary.seconds = totals.seconds;
    summary.total_seconds = totals.total_seconds;
    summary.finished = totals.finished;
    if (totals.total_seconds > 0) {
      for (std::size_t i = 0; i < kThreadStateCount; ++i)
        summary.fraction[i] = totals.seconds[i] / totals.total_seconds;
    }
    out.push_back(std::move(summary));
  }
  return out;
}

BottleneckReport build_bottleneck_report(const Profiler& profiler,
                                         const ResourceSampler* sampler) {
  BottleneckReport report;
  report.threads = profiler.thread_summaries();

  // Stage roll-up in first-seen order.
  std::vector<std::string> stage_order;
  std::map<std::string, BottleneckReport::StageSummary> by_stage;
  for (const auto& thread : report.threads) {
    auto [it, inserted] = by_stage.try_emplace(thread.stage);
    if (inserted) {
      it->second.stage = thread.stage;
      stage_order.push_back(thread.stage);
    }
    it->second.thread_count += 1;
    for (std::size_t i = 0; i < kThreadStateCount; ++i)
      it->second.seconds[i] += thread.seconds[i];
    it->second.total_seconds += thread.total_seconds;
  }
  for (const std::string& stage : stage_order) {
    BottleneckReport::StageSummary summary = by_stage[stage];
    if (summary.total_seconds > 0)
      summary.utilisation =
          summary.seconds[static_cast<std::size_t>(ThreadState::kWorking)] /
          summary.total_seconds;
    report.stages.push_back(std::move(summary));
  }
  const auto most_saturated = std::max_element(
      report.stages.begin(), report.stages.end(),
      [](const auto& a, const auto& b) { return a.utilisation < b.utilisation; });
  if (most_saturated != report.stages.end())
    report.bottleneck = most_saturated->stage;

  report.checkpoints = profiler.checkpoint_costs();
  for (const auto& cost : report.checkpoints)
    report.checkpoint_total_seconds += cost.wall_seconds;

  if (sampler != nullptr) {
    report.resources = sampler->samples();
    const ResourceSamplerOptions& options = sampler->options();
    report.resource_counters = options.counters;
    for (const TrackedGauge& gauge : options.gauges)
      report.resource_gauges.push_back(gauge.as.empty() ? gauge.name
                                                        : gauge.as);
    report.resource_interval_seconds =
        std::chrono::duration<double>(options.interval).count();
  }
  return report;
}

namespace {

std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string percent1(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

void BottleneckReport::render_text(std::ostream& out) const {
  out << "bottleneck report\n";
  out << "  thread              stage      total_s   working  q_wait    park  lk_wait\n";
  for (const auto& thread : threads) {
    out << "  " << std::left << std::setw(18) << thread.name << "  "
        << std::setw(9) << thread.stage << std::right << "  "
        << std::setw(9) << fixed6(thread.total_seconds);
    for (std::size_t i = 0; i < kThreadStateCount; ++i)
      out << "  " << percent1(thread.fraction[i]);
    if (!thread.finished) out << "  (live)";
    out << "\n";
  }
  out << "  stage utilisation (working / total):\n";
  for (const auto& stage : stages) {
    out << "    " << std::left << std::setw(9) << stage.stage << std::right
        << "  " << percent1(stage.utilisation) << "  (" << stage.thread_count
        << (stage.thread_count == 1 ? " thread)" : " threads)") << "\n";
  }
  if (!bottleneck.empty())
    out << "  most saturated stage: " << bottleneck << "\n";
  if (!checkpoints.empty()) {
    out << "  checkpoints: " << checkpoints.size() << " snapshot"
        << (checkpoints.size() == 1 ? "" : "s") << ", "
        << fixed6(checkpoint_total_seconds) << " s total, "
        << fixed6(checkpoint_total_seconds /
                  static_cast<double>(checkpoints.size()))
        << " s mean\n";
  }
  if (!resources.empty()) {
    const ResourceSample& last = resources.back();
    std::uint64_t peak_rss = 0;
    for (const ResourceSample& sample : resources)
      peak_rss = std::max(peak_rss, sample.rss_bytes);
    out << "  resources: " << resources.size() << " samples over "
        << fixed6(last.wall_seconds) << " s, rss peak " << peak_rss
        << " B, allocs " << last.alloc_count << " (" << last.alloc_bytes
        << " B)\n";
  }
}

void BottleneckReport::render_json(std::ostream& out) const {
  out << "{\"profile\":{\"threads\":[";
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const auto& thread = threads[t];
    if (t != 0) out << ",";
    out << "{\"name\":";
    json_string(out, thread.name);
    out << ",\"stage\":";
    json_string(out, thread.stage);
    out << ",\"finished\":" << (thread.finished ? "true" : "false")
        << ",\"total_seconds\":" << fixed6(thread.total_seconds)
        << ",\"seconds\":{";
    for (std::size_t i = 0; i < kThreadStateCount; ++i) {
      if (i != 0) out << ",";
      json_string(out, thread_state_name(static_cast<ThreadState>(i)));
      out << ":" << fixed6(thread.seconds[i]);
    }
    out << "},\"fractions\":{";
    for (std::size_t i = 0; i < kThreadStateCount; ++i) {
      if (i != 0) out << ",";
      json_string(out, thread_state_name(static_cast<ThreadState>(i)));
      out << ":" << fixed6(thread.fraction[i]);
    }
    out << "}}";
  }
  out << "],\"stages\":[";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& stage = stages[s];
    if (s != 0) out << ",";
    out << "{\"stage\":";
    json_string(out, stage.stage);
    out << ",\"threads\":" << stage.thread_count
        << ",\"total_seconds\":" << fixed6(stage.total_seconds)
        << ",\"working_seconds\":"
        << fixed6(stage.seconds[static_cast<std::size_t>(ThreadState::kWorking)])
        << ",\"utilisation\":" << fixed6(stage.utilisation) << "}";
  }
  out << "],\"bottleneck\":";
  json_string(out, bottleneck);
  out << ",\"checkpoints\":{\"count\":" << checkpoints.size()
      << ",\"total_seconds\":" << fixed6(checkpoint_total_seconds)
      << ",\"snapshots\":[";
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    const auto& cost = checkpoints[c];
    if (c != 0) out << ",";
    out << "{\"boundary_s\":" << json_double(to_seconds_f(cost.boundary))
        << ",\"wall_seconds\":" << fixed6(cost.wall_seconds)
        << ",\"bytes\":" << cost.bytes << "}";
  }
  out << "]}},\"resources\":{\"interval_s\":"
      << fixed6(resource_interval_seconds) << ",\"series\":[";
  for (std::size_t r = 0; r < resources.size(); ++r) {
    const ResourceSample& sample = resources[r];
    if (r != 0) out << ",";
    out << "{\"t\":" << fixed6(sample.wall_seconds)
        << ",\"rss_bytes\":" << sample.rss_bytes
        << ",\"peak_rss_bytes\":" << sample.peak_rss_bytes
        << ",\"alloc_count\":" << sample.alloc_count
        << ",\"alloc_bytes\":" << sample.alloc_bytes << ",\"counters\":{";
    const std::size_t n_counters =
        std::min(resource_counters.size(), sample.counters.size());
    for (std::size_t i = 0; i < n_counters; ++i) {
      if (i != 0) out << ",";
      json_string(out, resource_counters[i]);
      out << ":" << sample.counters[i];
    }
    out << "},\"gauges\":{";
    const std::size_t n_gauges =
        std::min(resource_gauges.size(), sample.gauges.size());
    for (std::size_t i = 0; i < n_gauges; ++i) {
      if (i != 0) out << ",";
      json_string(out, resource_gauges[i]);
      out << ":" << sample.gauges[i];
    }
    out << "}}";
  }
  out << "]}}";
}

}  // namespace dtr::obs
