// fileID anonymisation (paper §2.4).
//
// fileIDs are 128-bit MD4 digests, so the clientID direct-array trick does
// not apply.  The paper's structure: split the set into 65 536 sorted arrays
// indexed by two bytes of the fileID.  Because real fileIDs are supposed to
// be uniform, any byte pair should spread insertions evenly — but the
// authors found that indexing by the *first two* bytes produces two
// pathologically large arrays (index 0 and 256), revealing massive forged
// fileIDs in the wild; choosing a different byte pair restores balance
// (their Figure 3).  The index byte pair is therefore a constructor
// parameter here, and the bucket-size distribution is observable, so the
// fig3 bench can show both the pathology and the fix.
//
// Baselines for the ablation bench: one global sorted array (the paper's
// rejected strawman with O(n) insertion), a hashtable, and a tree.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/binning.hpp"
#include "common/bytes.hpp"
#include "hash/digest.hpp"

namespace dtr::anon {

using AnonFileId = std::uint64_t;

constexpr AnonFileId kFileNotSeen = ~0ULL;

class FileIdAnonymiser {
 public:
  virtual ~FileIdAnonymiser() = default;

  /// Map `id` to its order-of-appearance index, inserting if unseen.
  virtual AnonFileId anonymise(const FileId& id) = 0;

  /// Non-inserting lookup; kFileNotSeen if never observed.
  [[nodiscard]] virtual AnonFileId lookup(const FileId& id) const = 0;

  [[nodiscard]] virtual std::uint64_t distinct() const = 0;
  [[nodiscard]] virtual std::uint64_t memory_bytes() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's bucketed sorted-array store.
class BucketedFileIdStore final : public FileIdAnonymiser {
 public:
  /// `index_byte_0/1` select which fileID bytes form the 16-bit bucket
  /// index.  (0, 1) reproduces the paper's first, pathological attempt;
  /// their fix is "selecting two different bytes" — we default to (5, 11).
  explicit BucketedFileIdStore(unsigned index_byte_0 = 5,
                               unsigned index_byte_1 = 11);

  AnonFileId anonymise(const FileId& id) override;
  [[nodiscard]] AnonFileId lookup(const FileId& id) const override;
  [[nodiscard]] std::uint64_t distinct() const override { return next_; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "bucketed-sorted"; }

  static constexpr std::size_t kBucketCount = 65536;

  [[nodiscard]] std::size_t bucket_size(std::size_t bucket) const {
    return buckets_[bucket].size();
  }
  /// Histogram of bucket sizes — the quantity plotted in Figure 3.
  [[nodiscard]] CountHistogram bucket_size_distribution() const;
  [[nodiscard]] std::size_t largest_bucket() const;
  [[nodiscard]] std::size_t largest_bucket_index() const;

  [[nodiscard]] unsigned index_byte_0() const { return b0_; }
  [[nodiscard]] unsigned index_byte_1() const { return b1_; }

  /// Checkpoint codec: entries in bucket-major order, so restore rebuilds
  /// each sorted bucket with plain appends.  Restore fails when the
  /// snapshot was taken with a different index-byte pair.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  struct Entry {
    FileId id;
    AnonFileId anon;
  };

  [[nodiscard]] std::size_t bucket_of(const FileId& id) const {
    return static_cast<std::size_t>(id.byte(b0_)) << 8 | id.byte(b1_);
  }

  unsigned b0_, b1_;
  std::vector<std::vector<Entry>> buckets_;
  AnonFileId next_ = 0;
};

/// Strawman: one global sorted array; dichotomic search is fast but every
/// insertion shifts O(n) entries ("insertion has a prohibitive cost").
class SortedArrayFileIdStore final : public FileIdAnonymiser {
 public:
  AnonFileId anonymise(const FileId& id) override;
  [[nodiscard]] AnonFileId lookup(const FileId& id) const override;
  [[nodiscard]] std::uint64_t distinct() const override { return next_; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "sorted-array"; }

 private:
  struct Entry {
    FileId id;
    AnonFileId anon;
  };
  std::vector<Entry> entries_;
  AnonFileId next_ = 0;
};

class HashFileIdStore final : public FileIdAnonymiser {
 public:
  AnonFileId anonymise(const FileId& id) override;
  [[nodiscard]] AnonFileId lookup(const FileId& id) const override;
  [[nodiscard]] std::uint64_t distinct() const override { return map_.size(); }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "hashtable"; }

 private:
  std::unordered_map<FileId, AnonFileId, DigestHasher> map_;
};

class TreeFileIdStore final : public FileIdAnonymiser {
 public:
  AnonFileId anonymise(const FileId& id) override;
  [[nodiscard]] AnonFileId lookup(const FileId& id) const override;
  [[nodiscard]] std::uint64_t distinct() const override { return map_.size(); }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "tree"; }

 private:
  std::map<FileId, AnonFileId> map_;
};

}  // namespace dtr::anon
