// clientID anonymisation (paper §2.4).
//
// The paper encodes each clientID by its order of appearance: the first
// clientID observed becomes 0, the second 1, and so on.  Hash- or
// shuffle-based schemes were rejected as reversible; order-of-appearance is
// both irreversible and convenient (anonymised IDs are dense integers in
// [0, N)).  Because *every* message carries at least one clientID, billions
// of lookups hit this table; the authors' solution is a flat array of 2^32
// integers (16 GB) indexed directly by the clientID.
//
// We provide:
//   * DirectClientTable  — the paper's structure.  By default it allocates
//     its 16 GB virtual array lazily in pages (one mmap-backed vector per
//     page, materialised on first touch), which preserves the O(1) direct
//     memory access while letting tests run in megabytes.  A flat mode
//     (`PageMode::kFlat`) performs the full up-front allocation like the
//     paper's deployment.
//   * HashClientTable / TreeClientTable — the "classical data structures
//     (like hashtables or trees)" the paper dismisses as too slow and/or too
//     space consuming; kept as ablation baselines.
//
// All tables share the ClientAnonymiser interface so benches can swap them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "proto/opcodes.hpp"

namespace dtr::anon {

/// Anonymised clientID: dense order-of-appearance index.
using AnonClientId = std::uint32_t;

constexpr AnonClientId kClientNotSeen = 0xFFFFFFFFu;

/// Interface: map a clientID to its anonymised value, assigning the next
/// dense integer on first sight.
class ClientAnonymiser {
 public:
  virtual ~ClientAnonymiser() = default;

  /// Look up `id`, inserting it with the next free index if unseen.
  virtual AnonClientId anonymise(proto::ClientId id) = 0;

  /// Look up without inserting; kClientNotSeen if never observed.
  [[nodiscard]] virtual AnonClientId lookup(proto::ClientId id) const = 0;

  /// Number of distinct clientIDs observed so far.
  [[nodiscard]] virtual std::uint64_t distinct() const = 0;

  /// Approximate resident bytes of the structure (for the space ablation).
  [[nodiscard]] virtual std::uint64_t memory_bytes() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's direct-index array over the full 32-bit clientID space.
class DirectClientTable final : public ClientAnonymiser {
 public:
  enum class PageMode {
    kPaged,  ///< allocate 4 Mi-entry pages on first touch (default)
    kFlat,   ///< allocate all 2^32 entries up front (16 GB, like the paper)
  };

  explicit DirectClientTable(PageMode mode = PageMode::kPaged);

  AnonClientId anonymise(proto::ClientId id) override;
  [[nodiscard]] AnonClientId lookup(proto::ClientId id) const override;
  [[nodiscard]] std::uint64_t distinct() const override { return next_; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "direct-array"; }

  [[nodiscard]] std::size_t pages_allocated() const;

  /// Checkpoint codec: every populated (clientID, anon) cell.  Restore
  /// replaces the table's contents; it fails (and leaves the table
  /// unusable for resume) on duplicate cells or out-of-range indices.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

  /// Entries per page: 2^10 entries = 4 KiB per page.  Small pages keep the
  /// resident set proportional to the number of *distinct* clients even for
  /// adversarially scattered IDs (uniform over the whole 32-bit space the
  /// worst case is distinct * 4 KiB); the paper's deployment instead paid
  /// the flat 16 GB once (PageMode::kFlat).
  static constexpr std::uint32_t kPageBits = 10;
  static constexpr std::uint32_t kPageEntries = 1u << kPageBits;
  static constexpr std::uint32_t kPageCount =
      1u << (32 - kPageBits);

 private:
  std::uint32_t* page_for(proto::ClientId id, bool create);

  PageMode mode_;
  // unique_ptr<uint32_t[]> pages; nullptr until first touch in paged mode.
  std::vector<std::unique_ptr<std::uint32_t[]>> pages_;
  AnonClientId next_ = 0;
};

/// Baseline: std::unordered_map (the "too slow and/or too space consuming"
/// hashtable of §2.4).
class HashClientTable final : public ClientAnonymiser {
 public:
  AnonClientId anonymise(proto::ClientId id) override;
  [[nodiscard]] AnonClientId lookup(proto::ClientId id) const override;
  [[nodiscard]] std::uint64_t distinct() const override {
    return map_.size();
  }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "hashtable"; }

 private:
  std::unordered_map<proto::ClientId, AnonClientId> map_;
};

/// Baseline: std::map (red-black tree).
class TreeClientTable final : public ClientAnonymiser {
 public:
  AnonClientId anonymise(proto::ClientId id) override;
  [[nodiscard]] AnonClientId lookup(proto::ClientId id) const override;
  [[nodiscard]] std::uint64_t distinct() const override { return map_.size(); }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "tree"; }

 private:
  std::map<proto::ClientId, AnonClientId> map_;
};

}  // namespace dtr::anon
