// Sharded anonymisation tables for the parallel pipeline.
//
// The paper's two §2.4 structures are both naturally index-partitioned: the
// clientID direct array by high bits of the 32-bit ID, the fileID store by
// its 16-bit bucket index (two bytes of the MD4 digest).  These variants
// keep the exact same layout — and the exact same checkpoint byte stream —
// as DirectClientTable / BucketedFileIdStore, but make reads safe from
// pipeline worker threads while the merge thread remains the only writer:
//
//   * ShardedClientTable: pages hold std::atomic cells behind atomic page
//     pointers, so worker lookup() is entirely lock-free.  Shards are the
//     top bits of the clientID and only partition the distinct-count
//     instrumentation; dense IDs are still assigned globally, in the order
//     the single writer calls anonymise().
//   * ShardedFileIdStore: the 65 536 sorted buckets are split into
//     contiguous shard ranges, each guarded by a shared_mutex.  Workers
//     take shared locks for lookup(); the writer upgrades to an exclusive
//     lock only on first sight of a fileID.
//
// Determinism is the point: anon IDs are a pure function of first-sight
// order on the *writer* thread, which processes messages in global sequence
// order.  Concurrent readers can race with an insertion and miss it — that
// is fine, because the pipeline treats a miss as "defer this message to the
// writer", never as an ID assignment.  Shard count therefore cannot change
// a single assigned ID, the XML output, or the checkpoint bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"

namespace dtr::anon {

/// Clamp an arbitrary shard request to a power of two in [1, 64].
std::size_t clamp_shard_count(std::size_t shards);

/// DirectClientTable layout with atomic cells: one writer, many readers.
class ShardedClientTable final : public ClientAnonymiser {
 public:
  explicit ShardedClientTable(std::size_t shards = 8);
  ~ShardedClientTable() override;

  ShardedClientTable(const ShardedClientTable&) = delete;
  ShardedClientTable& operator=(const ShardedClientTable&) = delete;

  /// Writer-only (single thread): assign the next dense ID on first sight.
  AnonClientId anonymise(proto::ClientId id) override;
  /// Safe from any thread concurrently with the writer.
  [[nodiscard]] AnonClientId lookup(proto::ClientId id) const override;
  [[nodiscard]] std::uint64_t distinct() const override {
    return next_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "sharded-direct"; }

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  /// Distinct clientIDs whose high bits land in shard `s` (writer-counted).
  [[nodiscard]] std::uint64_t shard_distinct(std::size_t s) const {
    return shard_distinct_[s].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pages_allocated() const;

  /// Byte-identical to DirectClientTable's codec: shard count is a runtime
  /// concern and never enters the snapshot.  Not thread-safe; quiesce first.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

  static constexpr std::uint32_t kPageBits = DirectClientTable::kPageBits;
  static constexpr std::uint32_t kPageEntries = DirectClientTable::kPageEntries;
  static constexpr std::uint32_t kPageCount = DirectClientTable::kPageCount;

 private:
  using Cell = std::atomic<std::uint32_t>;

  Cell* page_for(proto::ClientId id, bool create);
  [[nodiscard]] std::size_t shard_of(proto::ClientId id) const {
    // Widen before shifting: with one shard the shift is a full 32 bits,
    // which is UB on a 32-bit operand.
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(id) >> shard_shift_);
  }
  void release_pages();

  std::size_t shard_count_;
  unsigned shard_shift_;
  // Raw pages published through atomic pointers; owned by this table.
  std::vector<std::atomic<Cell*>> pages_;
  std::atomic<AnonClientId> next_{0};
  std::vector<std::atomic<std::uint64_t>> shard_distinct_;
};

/// BucketedFileIdStore layout with per-shard reader/writer locks.
class ShardedFileIdStore final : public FileIdAnonymiser {
 public:
  explicit ShardedFileIdStore(std::size_t shards = 8, unsigned index_byte_0 = 5,
                              unsigned index_byte_1 = 11);

  ShardedFileIdStore(const ShardedFileIdStore&) = delete;
  ShardedFileIdStore& operator=(const ShardedFileIdStore&) = delete;

  /// Writer-only (single thread): insert on first sight under the shard's
  /// exclusive lock.
  AnonFileId anonymise(const FileId& id) override;
  /// Safe from any thread; takes the shard's shared lock.
  [[nodiscard]] AnonFileId lookup(const FileId& id) const override;
  [[nodiscard]] std::uint64_t distinct() const override {
    return next_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] const char* name() const override { return "sharded-bucketed"; }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::uint64_t shard_distinct(std::size_t s) const {
    return shards_[s].distinct.load(std::memory_order_relaxed);
  }
  [[nodiscard]] unsigned index_byte_0() const { return b0_; }
  [[nodiscard]] unsigned index_byte_1() const { return b1_; }

  static constexpr std::size_t kBucketCount =
      BucketedFileIdStore::kBucketCount;

  /// Byte-identical to BucketedFileIdStore's codec (bucket-major entries).
  /// Not thread-safe; quiesce first.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  struct Entry {
    FileId id;
    AnonFileId anon;
  };
  struct alignas(64) Shard {
    mutable std::shared_mutex mutex;
    std::atomic<std::uint64_t> distinct{0};
  };

  [[nodiscard]] std::size_t bucket_of(const FileId& id) const {
    return static_cast<std::size_t>(id.byte(b0_)) << 8 | id.byte(b1_);
  }
  [[nodiscard]] std::size_t shard_of_bucket(std::size_t bucket) const {
    return bucket >> bucket_shift_;
  }

  unsigned b0_, b1_;
  unsigned bucket_shift_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Shard> shards_;
  std::atomic<AnonFileId> next_{0};
};

}  // namespace dtr::anon
