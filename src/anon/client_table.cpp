#include "anon/client_table.hpp"

#include <cstring>

namespace dtr::anon {

DirectClientTable::DirectClientTable(PageMode mode) : mode_(mode) {
  pages_.resize(kPageCount);
  if (mode_ == PageMode::kFlat) {
    for (auto& page : pages_) {
      page = std::make_unique<std::uint32_t[]>(kPageEntries);
      std::memset(page.get(), 0xFF, kPageEntries * sizeof(std::uint32_t));
    }
  }
}

std::uint32_t* DirectClientTable::page_for(proto::ClientId id, bool create) {
  const std::uint32_t index = id >> kPageBits;
  auto& page = pages_[index];
  if (!page) {
    if (!create) return nullptr;
    page = std::make_unique<std::uint32_t[]>(kPageEntries);
    std::memset(page.get(), 0xFF, kPageEntries * sizeof(std::uint32_t));
  }
  return page.get();
}

AnonClientId DirectClientTable::anonymise(proto::ClientId id) {
  std::uint32_t* page = page_for(id, /*create=*/true);
  std::uint32_t& cell = page[id & (kPageEntries - 1)];
  if (cell == kClientNotSeen) cell = next_++;
  return cell;
}

AnonClientId DirectClientTable::lookup(proto::ClientId id) const {
  const auto& page = pages_[id >> kPageBits];
  if (!page) return kClientNotSeen;
  return page[id & (kPageEntries - 1)];
}

std::uint64_t DirectClientTable::memory_bytes() const {
  return static_cast<std::uint64_t>(pages_allocated()) * kPageEntries *
         sizeof(std::uint32_t);
}

std::size_t DirectClientTable::pages_allocated() const {
  std::size_t n = 0;
  for (const auto& page : pages_) n += (page != nullptr);
  return n;
}

void DirectClientTable::save_state(ByteWriter& out) const {
  out.u32le(next_);
  for (std::uint32_t p = 0; p < kPageCount; ++p) {
    const auto& page = pages_[p];
    if (!page) continue;
    for (std::uint32_t o = 0; o < kPageEntries; ++o) {
      if (page[o] == kClientNotSeen) continue;
      out.u32le((p << kPageBits) | o);
      out.u32le(page[o]);
    }
  }
}

bool DirectClientTable::restore_state(ByteReader& in) {
  for (auto& page : pages_) {
    if (page) std::memset(page.get(), 0xFF, kPageEntries * sizeof(std::uint32_t));
    if (mode_ == PageMode::kPaged) page.reset();
  }
  next_ = 0;
  const std::uint32_t count = in.u32le();
  // Exactly `count` dense anon IDs were assigned, one pair each.
  if (static_cast<std::uint64_t>(count) * 8 > in.remaining()) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = in.u32le();
    const std::uint32_t anon = in.u32le();
    if (anon >= count) return false;
    std::uint32_t* page = page_for(id, /*create=*/true);
    std::uint32_t& cell = page[id & (kPageEntries - 1)];
    if (cell != kClientNotSeen) return false;  // duplicate clientID
    cell = anon;
  }
  next_ = count;
  return in.ok();
}

AnonClientId HashClientTable::anonymise(proto::ClientId id) {
  auto [it, inserted] =
      map_.try_emplace(id, static_cast<AnonClientId>(map_.size()));
  return it->second;
}

AnonClientId HashClientTable::lookup(proto::ClientId id) const {
  auto it = map_.find(id);
  return it == map_.end() ? kClientNotSeen : it->second;
}

std::uint64_t HashClientTable::memory_bytes() const {
  // Node-based buckets: key+value+next pointer per node plus bucket array.
  return map_.size() * (sizeof(proto::ClientId) + sizeof(AnonClientId) +
                        sizeof(void*) * 2) +
         map_.bucket_count() * sizeof(void*);
}

AnonClientId TreeClientTable::anonymise(proto::ClientId id) {
  auto [it, inserted] =
      map_.try_emplace(id, static_cast<AnonClientId>(map_.size()));
  return it->second;
}

AnonClientId TreeClientTable::lookup(proto::ClientId id) const {
  auto it = map_.find(id);
  return it == map_.end() ? kClientNotSeen : it->second;
}

std::uint64_t TreeClientTable::memory_bytes() const {
  // RB-tree node: 3 pointers + color + payload, rounded to allocator reality.
  return map_.size() * (sizeof(void*) * 4 + sizeof(proto::ClientId) +
                        sizeof(AnonClientId) + 8);
}

}  // namespace dtr::anon
