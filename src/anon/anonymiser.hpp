// Full-message anonymisation (paper §2.4): every decoded eDonkey message is
// rewritten with
//   * clientIDs   -> dense order-of-appearance integers,
//   * fileIDs     -> dense order-of-appearance integers,
//   * strings     -> their MD5 digest (search keywords, filenames, types,
//                    server name/description),
//   * file sizes  -> kilobytes (precision reduction),
//   * timestamps  -> time elapsed since the beginning of the capture.
//
// The output model below mirrors the released dataset's XML schema; the
// xmlio module serialises it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "common/clock.hpp"
#include "hash/digest.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"

namespace dtr::anon {

/// MD5-anonymised string token.
using StringToken = Digest128;

/// One anonymised metadata item on a file entry.  Only the metadata the
/// dataset keeps are retained; unknown tags are dropped (they could leak).
struct AnonFileMeta {
  std::optional<StringToken> name;   // md5(filename)
  std::optional<std::uint32_t> size_kb;
  std::optional<StringToken> type;   // md5(filetype)
  std::optional<std::uint32_t> availability;
  bool operator==(const AnonFileMeta&) const = default;
};

struct AnonFileEntry {
  AnonFileId file = 0;
  AnonClientId provider = 0;
  std::uint16_t port = 0;
  AnonFileMeta meta;
  bool operator==(const AnonFileEntry&) const = default;
};

struct AnonEndpoint {
  AnonClientId client = 0;
  std::uint16_t port = 0;
  bool operator==(const AnonEndpoint&) const = default;
};

/// Anonymised search expression node (flattened: the dataset stores the
/// keyword tokens and numeric constraints; tree shape is kept for fidelity).
struct AnonSearchExpr;
using AnonSearchExprPtr = std::unique_ptr<AnonSearchExpr>;
struct AnonSearchExpr {
  proto::SearchExpr::Kind kind = proto::SearchExpr::Kind::kKeyword;
  proto::BoolOp op = proto::BoolOp::kAnd;
  AnonSearchExprPtr left, right;
  std::optional<StringToken> token;        // keyword / meta-string value
  std::optional<StringToken> tag_token;    // constrained tag name
  std::uint32_t number = 0;                // numeric constraint (KB if size)
  proto::NumCmp cmp = proto::NumCmp::kMin;

  [[nodiscard]] std::size_t node_count() const;
  void collect_tokens(std::vector<StringToken>& out) const;
};

// Anonymised message bodies, one per protocol message type.
struct AServStatReq {
  bool operator==(const AServStatReq&) const = default;
};
struct AServStatRes {
  std::uint32_t users = 0, files = 0;
  bool operator==(const AServStatRes&) const = default;
};
struct AServerDescReq {
  bool operator==(const AServerDescReq&) const = default;
};
struct AServerDescRes {
  StringToken name, description;
  bool operator==(const AServerDescRes&) const = default;
};
struct AGetServerList {
  bool operator==(const AGetServerList&) const = default;
};
struct AServerList {
  std::uint32_t count = 0;  // server endpoints are fully redacted
  bool operator==(const AServerList&) const = default;
};
struct AFileSearchReq {
  AnonSearchExprPtr expr;
};
struct AFileSearchRes {
  std::vector<AnonFileEntry> results;
  bool operator==(const AFileSearchRes&) const = default;
};
struct AGetSourcesReq {
  std::vector<AnonFileId> files;
  bool operator==(const AGetSourcesReq&) const = default;
};
struct AFoundSourcesRes {
  AnonFileId file = 0;
  std::vector<AnonEndpoint> sources;
  bool operator==(const AFoundSourcesRes&) const = default;
};
struct APublishReq {
  std::vector<AnonFileEntry> files;
  bool operator==(const APublishReq&) const = default;
};
struct APublishAck {
  std::uint32_t accepted = 0;
  bool operator==(const APublishAck&) const = default;
};

using AnonMessage =
    std::variant<AServStatReq, AServStatRes, AServerDescReq, AServerDescRes,
                 AGetServerList, AServerList, AFileSearchReq, AFileSearchRes,
                 AGetSourcesReq, AFoundSourcesRes, APublishReq, APublishAck>;

/// One line of the released dataset: a timestamped, anonymised message with
/// the peer it came from / went to.
struct AnonEvent {
  SimTime time = 0;          // relative to capture start
  AnonClientId peer = 0;     // the client side of the dialog
  bool is_query = false;     // client->server query vs server answer
  AnonMessage message;
};

// Table-free pieces of the scheme, shared by the inserting Anonymiser and
// the read-only worker-side variant: string hashing and precision reduction
// never touch the order-of-appearance tables.
StringToken anon_hash_string(std::string_view s);
AnonFileMeta anon_meta(const proto::TagList& tags);
AnonSearchExprPtr anon_expr(const proto::SearchExpr& e);

/// Applies the anonymisation scheme, sharing the clientID table and fileID
/// store across the whole capture (order-of-appearance must be global).
class Anonymiser {
 public:
  Anonymiser(ClientAnonymiser& clients, FileIdAnonymiser& files)
      : clients_(clients), files_(files) {}

  /// `peer_ip` is the UDP/IP-level address of the client (which is also its
  /// clientID when it has a high ID — the reason the paper must anonymise
  /// in real time at both protocol levels).
  AnonEvent anonymise(SimTime time, proto::ClientId peer_ip,
                      const proto::Message& msg);

  static StringToken hash_string(std::string_view s);

  /// Register `anon.*` instruments in `registry` and record into them from
  /// now on: events anonymised, clientID/fileID table lookups, and the
  /// distinct-entry gauges behind Table 1's population counts.
  void bind_metrics(obs::Registry& registry);

  /// Attach a logger (may be null): population milestones — the distinct
  /// client/file tables doubling past each power of two — log at debug, a
  /// cheap way to watch Table 1's populations grow during a long campaign.
  void bind_telemetry(obs::Logger* log) { log_ = log; }

  [[nodiscard]] std::uint64_t distinct_clients() const {
    return clients_.distinct();
  }
  [[nodiscard]] std::uint64_t distinct_files() const {
    return files_.distinct();
  }

  /// Checkpoint codec for the milestone cursors, so a resumed campaign
  /// logs the same population milestones as an uninterrupted one (the
  /// tables themselves checkpoint separately).
  void save_state(ByteWriter& out) const {
    out.u64le(next_client_milestone_);
    out.u64le(next_file_milestone_);
  }
  bool restore_state(ByteReader& in) {
    next_client_milestone_ = in.u64le();
    next_file_milestone_ = in.u64le();
    return in.ok();
  }

 private:
  AnonFileMeta anonymise_meta(const proto::TagList& tags);
  AnonFileEntry anonymise_entry(const proto::FileEntry& e);
  AnonSearchExprPtr anonymise_expr(const proto::SearchExpr& e);

  AnonClientId anon_client(proto::ClientId id) {
    obs::inc(metrics_.client_lookups);
    return clients_.anonymise(id);
  }
  AnonFileId anon_file(const FileId& id) {
    obs::inc(metrics_.file_lookups);
    return files_.anonymise(id);
  }

  struct Metrics {
    obs::Counter* events = nullptr;
    obs::Counter* client_lookups = nullptr;
    obs::Counter* file_lookups = nullptr;
    obs::Gauge* clients_distinct = nullptr;
    obs::Gauge* files_distinct = nullptr;
  };

  ClientAnonymiser& clients_;
  FileIdAnonymiser& files_;
  Metrics metrics_;
  obs::Logger* log_ = nullptr;
  std::uint64_t next_client_milestone_ = 1;
  std::uint64_t next_file_milestone_ = 1;
};

/// Optimistic anonymisation against tables some other thread inserts into:
/// every ID is resolved with non-inserting lookup(), and the whole message
/// is abandoned (nullopt) when any ID has not been assigned yet.  Pipeline
/// workers use this to anonymise messages whose IDs are already known,
/// leaving first-sight assignment — and therefore the dense numbering — to
/// the merge thread's Anonymiser.
///
/// The tally mirrors exactly the lookups the inserting Anonymiser would
/// count for the same message, so callers can keep `anon.client_lookups` /
/// `anon.file_lookups` identical to a serial run by committing it only when
/// try_anonymise succeeds.
class ReadOnlyAnonymiser {
 public:
  struct Tally {
    std::uint64_t client_lookups = 0;
    std::uint64_t file_lookups = 0;
  };

  ReadOnlyAnonymiser(const ClientAnonymiser& clients,
                     const FileIdAnonymiser& files)
      : clients_(clients), files_(files) {}

  /// nullopt when the message references any not-yet-assigned ID; `tally`
  /// is filled either way but only meaningful on success.
  std::optional<AnonEvent> try_anonymise(SimTime time, proto::ClientId peer_ip,
                                         const proto::Message& msg,
                                         Tally& tally) const;

 private:
  const ClientAnonymiser& clients_;
  const FileIdAnonymiser& files_;
};

}  // namespace dtr::anon
