#include "anon/rejected_schemes.hpp"

#include <stdexcept>
#include <unordered_map>

#include "common/rng.hpp"

namespace dtr::anon {

std::uint64_t KeyedHashScheme::anonymise(proto::ClientId id) const {
  return mix64(key_ ^ (static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ULL));
}

std::vector<proto::ClientId> KeyedHashScheme::brute_force(
    std::uint64_t token, unsigned space_bits) const {
  std::vector<proto::ClientId> preimages;
  const std::uint64_t space = 1ULL << space_bits;
  for (std::uint64_t candidate = 0; candidate < space; ++candidate) {
    if (anonymise(static_cast<proto::ClientId>(candidate)) == token) {
      preimages.push_back(static_cast<proto::ClientId>(candidate));
    }
  }
  return preimages;
}

std::size_t KeyedHashScheme::brute_force_all(
    const std::vector<std::uint64_t>& tokens,
    std::vector<proto::ClientId>& out, unsigned space_bits) const {
  std::unordered_map<std::uint64_t, std::size_t> wanted;
  wanted.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) wanted.emplace(tokens[i], i);

  out.assign(tokens.size(), 0);
  std::vector<bool> found(tokens.size(), false);
  std::size_t recovered = 0;

  const std::uint64_t space = 1ULL << space_bits;
  for (std::uint64_t candidate = 0; candidate < space; ++candidate) {
    auto it = wanted.find(anonymise(static_cast<proto::ClientId>(candidate)));
    if (it != wanted.end() && !found[it->second]) {
      out[it->second] = static_cast<proto::ClientId>(candidate);
      found[it->second] = true;
      ++recovered;
      if (recovered == tokens.size()) break;
    }
  }
  return recovered;
}

AffineShuffleScheme::AffineShuffleScheme(std::uint32_t multiplier,
                                         std::uint32_t offset)
    : a_(multiplier), b_(offset) {
  if ((a_ & 1u) == 0) {
    throw std::invalid_argument(
        "AffineShuffleScheme: multiplier must be odd to be a bijection");
  }
}

std::uint32_t AffineShuffleScheme::anonymise(proto::ClientId id) const {
  return a_ * id + b_;
}

namespace {
/// Multiplicative inverse mod 2^32 (Newton iteration; exists iff odd).
std::uint32_t inverse_mod_2_32(std::uint32_t a) {
  std::uint32_t x = a;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2u - a * x;
  return x;
}
}  // namespace

std::optional<AffineShuffleScheme> AffineShuffleScheme::recover(
    proto::ClientId id1, std::uint32_t token1, proto::ClientId id2,
    std::uint32_t token2) {
  std::uint32_t did = id1 - id2;
  std::uint32_t dtk = token1 - token2;
  if ((did & 1u) == 0) return std::nullopt;  // need an invertible difference
  std::uint32_t a = dtk * inverse_mod_2_32(did);
  if ((a & 1u) == 0) return std::nullopt;
  std::uint32_t b = token1 - a * id1;
  AffineShuffleScheme scheme(a, b);
  // Verify against both pairs (guards inconsistent inputs).
  if (scheme.anonymise(id1) != token1 || scheme.anonymise(id2) != token2) {
    return std::nullopt;
  }
  return scheme;
}

proto::ClientId AffineShuffleScheme::deanonymise(std::uint32_t token) const {
  return inverse_mod_2_32(a_) * (token - b_);
}

}  // namespace dtr::anon
