#include "anon/fileid_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtr::anon {

BucketedFileIdStore::BucketedFileIdStore(unsigned index_byte_0,
                                         unsigned index_byte_1)
    : b0_(index_byte_0), b1_(index_byte_1), buckets_(kBucketCount) {
  if (b0_ >= 16 || b1_ >= 16)
    throw std::out_of_range("BucketedFileIdStore: fileID has 16 bytes");
  if (b0_ == b1_)
    throw std::invalid_argument(
        "BucketedFileIdStore: index bytes must differ (a single byte only "
        "yields 256 distinct buckets)");
}

AnonFileId BucketedFileIdStore::anonymise(const FileId& id) {
  auto& bucket = buckets_[bucket_of(id)];
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), id,
      [](const Entry& e, const FileId& key) { return e.id < key; });
  if (it != bucket.end() && it->id == id) return it->anon;
  it = bucket.insert(it, Entry{id, next_});
  return next_++;
}

AnonFileId BucketedFileIdStore::lookup(const FileId& id) const {
  const auto& bucket = buckets_[bucket_of(id)];
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), id,
      [](const Entry& e, const FileId& key) { return e.id < key; });
  if (it != bucket.end() && it->id == id) return it->anon;
  return kFileNotSeen;
}

void BucketedFileIdStore::save_state(ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(b0_));
  out.u8(static_cast<std::uint8_t>(b1_));
  out.u64le(next_);
  for (const auto& bucket : buckets_) {
    for (const Entry& e : bucket) {
      out.raw(e.id.bytes.data(), e.id.bytes.size());
      out.u64le(e.anon);
    }
  }
}

bool BucketedFileIdStore::restore_state(ByteReader& in) {
  for (auto& bucket : buckets_) bucket.clear();
  next_ = 0;
  if (in.u8() != b0_ || in.u8() != b1_) return false;
  const std::uint64_t count = in.u64le();
  if (count > in.remaining() / 24) return false;  // 16-byte id + u64 anon
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    BytesView id = in.raw(e.id.bytes.size());
    if (!in.ok()) return false;
    std::copy(id.begin(), id.end(), e.id.bytes.begin());
    e.anon = in.u64le();
    if (e.anon >= count) return false;
    auto& bucket = buckets_[bucket_of(e.id)];
    if (!bucket.empty() && !(bucket.back().id < e.id)) return false;
    bucket.push_back(e);
  }
  next_ = count;
  return in.ok();
}

std::uint64_t BucketedFileIdStore::memory_bytes() const {
  std::uint64_t total = kBucketCount * sizeof(std::vector<Entry>);
  for (const auto& bucket : buckets_) total += bucket.capacity() * sizeof(Entry);
  return total;
}

CountHistogram BucketedFileIdStore::bucket_size_distribution() const {
  CountHistogram h;
  for (const auto& bucket : buckets_) h.add(bucket.size());
  return h;
}

std::size_t BucketedFileIdStore::largest_bucket() const {
  std::size_t best = 0;
  for (const auto& bucket : buckets_) best = std::max(best, bucket.size());
  return best;
}

std::size_t BucketedFileIdStore::largest_bucket_index() const {
  std::size_t best = 0, arg = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].size() > best) {
      best = buckets_[i].size();
      arg = i;
    }
  }
  return arg;
}

AnonFileId SortedArrayFileIdStore::anonymise(const FileId& id) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, const FileId& key) { return e.id < key; });
  if (it != entries_.end() && it->id == id) return it->anon;
  it = entries_.insert(it, Entry{id, next_});
  return next_++;
}

AnonFileId SortedArrayFileIdStore::lookup(const FileId& id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, const FileId& key) { return e.id < key; });
  if (it != entries_.end() && it->id == id) return it->anon;
  return kFileNotSeen;
}

std::uint64_t SortedArrayFileIdStore::memory_bytes() const {
  return entries_.capacity() * sizeof(Entry);
}

AnonFileId HashFileIdStore::anonymise(const FileId& id) {
  auto [it, inserted] =
      map_.try_emplace(id, static_cast<AnonFileId>(map_.size()));
  return it->second;
}

AnonFileId HashFileIdStore::lookup(const FileId& id) const {
  auto it = map_.find(id);
  return it == map_.end() ? kFileNotSeen : it->second;
}

std::uint64_t HashFileIdStore::memory_bytes() const {
  return map_.size() *
             (sizeof(FileId) + sizeof(AnonFileId) + sizeof(void*) * 2) +
         map_.bucket_count() * sizeof(void*);
}

AnonFileId TreeFileIdStore::anonymise(const FileId& id) {
  auto [it, inserted] =
      map_.try_emplace(id, static_cast<AnonFileId>(map_.size()));
  return it->second;
}

AnonFileId TreeFileIdStore::lookup(const FileId& id) const {
  auto it = map_.find(id);
  return it == map_.end() ? kFileNotSeen : it->second;
}

std::uint64_t TreeFileIdStore::memory_bytes() const {
  return map_.size() * (sizeof(void*) * 4 + sizeof(FileId) +
                        sizeof(AnonFileId) + 8);
}

}  // namespace dtr::anon
