// The anonymisation schemes the paper REJECTED (§2.4), implemented so their
// weakness can be demonstrated and measured.
//
//   "Anonymising clientID with a hash code is not satisfactory: if one
//    knows the hash function, it is easy to find the original clientID by
//    applying the function to the 2^32 possible clientID.  Shuffling
//    strategies are not strong enough either for this very sensitive data."
//
// KeyedHashScheme   — clientID -> keyed 64-bit hash.  Deterministic and
//                     stateless, which is why it is tempting; reversible by
//                     brute force over the 2^32 input space once the
//                     function (and key) are known.
// AffineShuffleScheme — clientID -> (a*id + b) mod 2^32 with odd `a`: a
//                     bijective "shuffle".  Broken algebraically by TWO
//                     known (id, token) pairs — no brute force needed.
//
// Both are kept out of the ClientAnonymiser hierarchy on purpose: nothing
// in the pipeline can accidentally use them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/opcodes.hpp"

namespace dtr::anon {

/// The tempting-but-reversible scheme.
class KeyedHashScheme {
 public:
  explicit KeyedHashScheme(std::uint64_t key) : key_(key) {}

  [[nodiscard]] std::uint64_t anonymise(proto::ClientId id) const;

  /// The attack: enumerate `space_bits` of the clientID space (32 for the
  /// real attack) and return every preimage of `token`.  Complexity is one
  /// hash per candidate — seconds for the full 2^32 on one core.
  [[nodiscard]] std::vector<proto::ClientId> brute_force(
      std::uint64_t token, unsigned space_bits = 32) const;

  /// Attack throughput helper: recover many tokens in one sweep.
  /// Returns the number of tokens whose preimage was found.
  std::size_t brute_force_all(const std::vector<std::uint64_t>& tokens,
                              std::vector<proto::ClientId>& out,
                              unsigned space_bits = 32) const;

 private:
  std::uint64_t key_;
};

/// The "shuffling strategy": a bijection of the 32-bit space.
class AffineShuffleScheme {
 public:
  /// `multiplier` must be odd (bijectivity mod 2^32).
  AffineShuffleScheme(std::uint32_t multiplier, std::uint32_t offset);

  [[nodiscard]] std::uint32_t anonymise(proto::ClientId id) const;

  /// Known-plaintext attack: from two (id, token) pairs, recover the
  /// parameters (nullopt only if the pairs are inconsistent / non-invertible
  /// difference).  With them, every other token inverts in O(1).
  static std::optional<AffineShuffleScheme> recover(
      proto::ClientId id1, std::uint32_t token1, proto::ClientId id2,
      std::uint32_t token2);

  /// Invert a token back to the clientID.
  [[nodiscard]] proto::ClientId deanonymise(std::uint32_t token) const;

  [[nodiscard]] std::uint32_t multiplier() const { return a_; }
  [[nodiscard]] std::uint32_t offset() const { return b_; }

 private:
  std::uint32_t a_;
  std::uint32_t b_;
};

}  // namespace dtr::anon
