#include "anon/sharded.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace dtr::anon {

std::size_t clamp_shard_count(std::size_t shards) {
  if (shards < 1) return 1;
  std::size_t pow2 = 1;
  while (pow2 < shards && pow2 < 64) pow2 <<= 1;
  return pow2;
}

namespace {

unsigned log2_of(std::size_t pow2) {
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < pow2) ++bits;
  return bits;
}

}  // namespace

ShardedClientTable::ShardedClientTable(std::size_t shards)
    : shard_count_(clamp_shard_count(shards)),
      shard_shift_(32u - log2_of(shard_count_)),
      pages_(kPageCount),
      shard_distinct_(shard_count_) {
  for (auto& page : pages_) page.store(nullptr, std::memory_order_relaxed);
}

ShardedClientTable::~ShardedClientTable() { release_pages(); }

void ShardedClientTable::release_pages() {
  for (auto& page : pages_) {
    delete[] page.load(std::memory_order_relaxed);
    page.store(nullptr, std::memory_order_relaxed);
  }
}

ShardedClientTable::Cell* ShardedClientTable::page_for(proto::ClientId id,
                                                       bool create) {
  auto& slot = pages_[id >> kPageBits];
  Cell* page = slot.load(std::memory_order_acquire);
  if (page == nullptr && create) {
    // Single writer: no CAS needed, just publish after initialisation.
    page = new Cell[kPageEntries];
    for (std::uint32_t i = 0; i < kPageEntries; ++i) {
      page[i].store(kClientNotSeen, std::memory_order_relaxed);
    }
    slot.store(page, std::memory_order_release);
  }
  return page;
}

AnonClientId ShardedClientTable::anonymise(proto::ClientId id) {
  Cell* page = page_for(id, /*create=*/true);
  Cell& cell = page[id & (kPageEntries - 1)];
  std::uint32_t v = cell.load(std::memory_order_relaxed);
  if (v == kClientNotSeen) {
    v = next_.load(std::memory_order_relaxed);
    cell.store(v, std::memory_order_release);
    next_.store(v + 1, std::memory_order_release);
    shard_distinct_[shard_of(id)].fetch_add(1, std::memory_order_relaxed);
  }
  return v;
}

AnonClientId ShardedClientTable::lookup(proto::ClientId id) const {
  const Cell* page = pages_[id >> kPageBits].load(std::memory_order_acquire);
  if (page == nullptr) return kClientNotSeen;
  return page[id & (kPageEntries - 1)].load(std::memory_order_acquire);
}

std::uint64_t ShardedClientTable::memory_bytes() const {
  return static_cast<std::uint64_t>(pages_allocated()) * kPageEntries *
         sizeof(Cell);
}

std::size_t ShardedClientTable::pages_allocated() const {
  std::size_t n = 0;
  for (const auto& page : pages_) {
    n += (page.load(std::memory_order_relaxed) != nullptr);
  }
  return n;
}

void ShardedClientTable::save_state(ByteWriter& out) const {
  // Same stream as DirectClientTable: count, then (id, anon) pairs in
  // ascending clientID order.
  out.u32le(next_.load(std::memory_order_relaxed));
  for (std::uint32_t p = 0; p < kPageCount; ++p) {
    const Cell* page = pages_[p].load(std::memory_order_relaxed);
    if (page == nullptr) continue;
    for (std::uint32_t o = 0; o < kPageEntries; ++o) {
      const std::uint32_t v = page[o].load(std::memory_order_relaxed);
      if (v == kClientNotSeen) continue;
      out.u32le((p << kPageBits) | o);
      out.u32le(v);
    }
  }
}

bool ShardedClientTable::restore_state(ByteReader& in) {
  release_pages();
  next_.store(0, std::memory_order_relaxed);
  for (auto& d : shard_distinct_) d.store(0, std::memory_order_relaxed);
  const std::uint32_t count = in.u32le();
  if (static_cast<std::uint64_t>(count) * 8 > in.remaining()) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = in.u32le();
    const std::uint32_t anon = in.u32le();
    if (anon >= count) return false;
    Cell* page = page_for(id, /*create=*/true);
    Cell& cell = page[id & (kPageEntries - 1)];
    if (cell.load(std::memory_order_relaxed) != kClientNotSeen) {
      return false;  // duplicate clientID
    }
    cell.store(anon, std::memory_order_relaxed);
    shard_distinct_[shard_of(id)].fetch_add(1, std::memory_order_relaxed);
  }
  next_.store(count, std::memory_order_release);
  return in.ok();
}

ShardedFileIdStore::ShardedFileIdStore(std::size_t shards,
                                       unsigned index_byte_0,
                                       unsigned index_byte_1)
    : b0_(index_byte_0),
      b1_(index_byte_1),
      bucket_shift_(16u - log2_of(clamp_shard_count(shards))),
      buckets_(kBucketCount),
      shards_(clamp_shard_count(shards)) {
  if (b0_ >= 16 || b1_ >= 16)
    throw std::out_of_range("ShardedFileIdStore: fileID has 16 bytes");
  if (b0_ == b1_)
    throw std::invalid_argument(
        "ShardedFileIdStore: index bytes must differ (a single byte only "
        "yields 256 distinct buckets)");
}

AnonFileId ShardedFileIdStore::anonymise(const FileId& id) {
  const std::size_t bucket_index = bucket_of(id);
  Shard& shard = shards_[shard_of_bucket(bucket_index)];
  auto& bucket = buckets_[bucket_index];
  const auto by_id = [](const Entry& e, const FileId& key) {
    return e.id < key;
  };
  {
    // try_lock first: the uncontended path must stay clock-free even on a
    // profiled thread (see obs/profiler.hpp's hot-path contract).
    std::shared_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      obs::ProfScope prof(obs::ThreadState::kLockWait);
      lock.lock();
    }
    auto it = std::lower_bound(bucket.begin(), bucket.end(), id, by_id);
    if (it != bucket.end() && it->id == id) return it->anon;
  }
  // Single writer: nothing can have inserted between the two locks.
  const AnonFileId v = next_.load(std::memory_order_relaxed);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      obs::ProfScope prof(obs::ThreadState::kLockWait);
      lock.lock();
    }
    auto it = std::lower_bound(bucket.begin(), bucket.end(), id, by_id);
    bucket.insert(it, Entry{id, v});
  }
  next_.store(v + 1, std::memory_order_release);
  shard.distinct.fetch_add(1, std::memory_order_relaxed);
  return v;
}

AnonFileId ShardedFileIdStore::lookup(const FileId& id) const {
  const std::size_t bucket_index = bucket_of(id);
  const Shard& shard = shards_[shard_of_bucket(bucket_index)];
  const auto& bucket = buckets_[bucket_index];
  std::shared_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    obs::ProfScope prof(obs::ThreadState::kLockWait);
    lock.lock();
  }
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), id,
      [](const Entry& e, const FileId& key) { return e.id < key; });
  if (it != bucket.end() && it->id == id) return it->anon;
  return kFileNotSeen;
}

std::uint64_t ShardedFileIdStore::memory_bytes() const {
  std::uint64_t total = kBucketCount * sizeof(std::vector<Entry>);
  for (const auto& bucket : buckets_)
    total += bucket.capacity() * sizeof(Entry);
  return total;
}

void ShardedFileIdStore::save_state(ByteWriter& out) const {
  // Same stream as BucketedFileIdStore: byte pair, count, entries in
  // bucket-major order.
  out.u8(static_cast<std::uint8_t>(b0_));
  out.u8(static_cast<std::uint8_t>(b1_));
  out.u64le(next_.load(std::memory_order_relaxed));
  for (const auto& bucket : buckets_) {
    for (const Entry& e : bucket) {
      out.raw(e.id.bytes.data(), e.id.bytes.size());
      out.u64le(e.anon);
    }
  }
}

bool ShardedFileIdStore::restore_state(ByteReader& in) {
  for (auto& bucket : buckets_) bucket.clear();
  for (auto& shard : shards_) shard.distinct.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
  if (in.u8() != b0_ || in.u8() != b1_) return false;
  const std::uint64_t count = in.u64le();
  if (count > in.remaining() / 24) return false;  // 16-byte id + u64 anon
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    BytesView id = in.raw(e.id.bytes.size());
    if (!in.ok()) return false;
    std::copy(id.begin(), id.end(), e.id.bytes.begin());
    e.anon = in.u64le();
    if (e.anon >= count) return false;
    const std::size_t bucket_index = bucket_of(e.id);
    auto& bucket = buckets_[bucket_index];
    if (!bucket.empty() && !(bucket.back().id < e.id)) return false;
    bucket.push_back(e);
    shards_[shard_of_bucket(bucket_index)].distinct.fetch_add(
        1, std::memory_order_relaxed);
  }
  next_.store(count, std::memory_order_release);
  return in.ok();
}

}  // namespace dtr::anon
