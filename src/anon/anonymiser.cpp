#include "anon/anonymiser.hpp"

#include "hash/md5.hpp"

namespace dtr::anon {

std::size_t AnonSearchExpr::node_count() const {
  std::size_t n = 1;
  if (left) n += left->node_count();
  if (right) n += right->node_count();
  return n;
}

void AnonSearchExpr::collect_tokens(std::vector<StringToken>& out) const {
  if (token) out.push_back(*token);
  if (left) left->collect_tokens(out);
  if (right) right->collect_tokens(out);
}

StringToken anon_hash_string(std::string_view s) { return Md5::digest(s); }

AnonFileMeta anon_meta(const proto::TagList& tags) {
  AnonFileMeta meta;
  if (auto name = proto::tag_string(tags, proto::TagName::kFileName)) {
    meta.name = anon_hash_string(*name);
  }
  if (auto size = proto::tag_u32(tags, proto::TagName::kFileSize)) {
    // Bytes -> kilobytes, rounding up so no nonempty file becomes 0 KB.
    meta.size_kb = (*size + 1023) / 1024;
  }
  if (auto type = proto::tag_string(tags, proto::TagName::kFileType)) {
    meta.type = anon_hash_string(*type);
  }
  if (auto avail = proto::tag_u32(tags, proto::TagName::kAvailability)) {
    meta.availability = *avail;
  }
  return meta;
}

AnonSearchExprPtr anon_expr(const proto::SearchExpr& e) {
  auto out = std::make_unique<AnonSearchExpr>();
  out->kind = e.kind;
  switch (e.kind) {
    case proto::SearchExpr::Kind::kBool:
      out->op = e.op;
      if (e.left) out->left = anon_expr(*e.left);
      if (e.right) out->right = anon_expr(*e.right);
      break;
    case proto::SearchExpr::Kind::kKeyword:
      out->token = anon_hash_string(e.text);
      break;
    case proto::SearchExpr::Kind::kMetaString:
      out->token = anon_hash_string(e.text);
      out->tag_token = anon_hash_string(e.tag_name);
      break;
    case proto::SearchExpr::Kind::kMetaNumeric: {
      out->tag_token = anon_hash_string(e.tag_name);
      bool is_size =
          e.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(e.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kFileSize);
      out->number = is_size ? (e.number + 1023) / 1024 : e.number;
      out->cmp = e.cmp;
      break;
    }
  }
  return out;
}

StringToken Anonymiser::hash_string(std::string_view s) {
  return anon_hash_string(s);
}

AnonFileMeta Anonymiser::anonymise_meta(const proto::TagList& tags) {
  return anon_meta(tags);
}

AnonFileEntry Anonymiser::anonymise_entry(const proto::FileEntry& e) {
  AnonFileEntry out;
  out.file = anon_file(e.file_id);
  out.provider = anon_client(e.client_id);
  out.port = e.port;
  out.meta = anonymise_meta(e.tags);
  return out;
}

AnonSearchExprPtr Anonymiser::anonymise_expr(const proto::SearchExpr& e) {
  return anon_expr(e);
}

AnonEvent Anonymiser::anonymise(SimTime time, proto::ClientId peer_ip,
                                const proto::Message& msg) {
  AnonEvent ev;
  ev.time = time;  // already relative to capture start by construction
  ev.peer = anon_client(peer_ip);
  ev.is_query = proto::is_query(msg);

  struct Visitor {
    Anonymiser& a;

    AnonMessage operator()(const proto::ServStatReq&) { return AServStatReq{}; }
    AnonMessage operator()(const proto::ServStatRes& m) {
      return AServStatRes{m.users, m.files};
    }
    AnonMessage operator()(const proto::ServerDescReq&) {
      return AServerDescReq{};
    }
    AnonMessage operator()(const proto::ServerDescRes& m) {
      return AServerDescRes{hash_string(m.name), hash_string(m.description)};
    }
    AnonMessage operator()(const proto::GetServerList&) {
      return AGetServerList{};
    }
    AnonMessage operator()(const proto::ServerList& m) {
      // Other servers' addresses are third-party identities: keep only the
      // count, redact the endpoints entirely.
      return AServerList{static_cast<std::uint32_t>(m.servers.size())};
    }
    AnonMessage operator()(const proto::FileSearchReq& m) {
      AFileSearchReq out;
      out.expr = a.anonymise_expr(*m.expr);
      return out;
    }
    AnonMessage operator()(const proto::FileSearchRes& m) {
      AFileSearchRes out;
      out.results.reserve(m.results.size());
      for (const auto& e : m.results) out.results.push_back(a.anonymise_entry(e));
      return out;
    }
    AnonMessage operator()(const proto::GetSourcesReq& m) {
      AGetSourcesReq out;
      out.files.reserve(m.file_ids.size());
      for (const auto& id : m.file_ids) out.files.push_back(a.anon_file(id));
      return out;
    }
    AnonMessage operator()(const proto::FoundSourcesRes& m) {
      AFoundSourcesRes out;
      out.file = a.anon_file(m.file_id);
      out.sources.reserve(m.sources.size());
      for (const auto& s : m.sources) {
        out.sources.push_back(AnonEndpoint{a.anon_client(s.ip), s.port});
      }
      return out;
    }
    AnonMessage operator()(const proto::PublishReq& m) {
      APublishReq out;
      out.files.reserve(m.files.size());
      for (const auto& e : m.files) out.files.push_back(a.anonymise_entry(e));
      return out;
    }
    AnonMessage operator()(const proto::PublishAck& m) {
      return APublishAck{m.accepted};
    }
  };

  ev.message = std::visit(Visitor{*this}, msg);
  obs::inc(metrics_.events);
  obs::set(metrics_.clients_distinct,
           static_cast<std::int64_t>(clients_.distinct()));
  obs::set(metrics_.files_distinct,
           static_cast<std::int64_t>(files_.distinct()));
  if (log_ != nullptr && log_->enabled(obs::LogLevel::kDebug)) {
    while (clients_.distinct() >= next_client_milestone_) {
      DTR_LOG_DEBUG(log_, "anon", time,
                    "distinct clients reached " << next_client_milestone_);
      next_client_milestone_ *= 2;
    }
    while (files_.distinct() >= next_file_milestone_) {
      DTR_LOG_DEBUG(log_, "anon", time,
                    "distinct files reached " << next_file_milestone_);
      next_file_milestone_ *= 2;
    }
  }
  return ev;
}

void Anonymiser::bind_metrics(obs::Registry& registry) {
  metrics_.events = &registry.counter("anon.events");
  metrics_.client_lookups = &registry.counter("anon.client_lookups");
  metrics_.file_lookups = &registry.counter("anon.file_lookups");
  metrics_.clients_distinct = &registry.gauge("anon.clients.distinct");
  metrics_.files_distinct = &registry.gauge("anon.files.distinct");
}

std::optional<AnonEvent> ReadOnlyAnonymiser::try_anonymise(
    SimTime time, proto::ClientId peer_ip, const proto::Message& msg,
    Tally& tally) const {
  // Resolver mirroring Anonymiser's anon_client/anon_file call-for-call, so
  // the tally matches what a serial run counts for this message.  On a miss
  // we keep visiting (and keep counting) instead of bailing out early; the
  // caller discards the tally anyway and misses are the rare case.
  struct Resolver {
    const ClientAnonymiser& clients;
    const FileIdAnonymiser& files;
    Tally& tally;
    bool missed = false;

    AnonClientId client(proto::ClientId id) {
      ++tally.client_lookups;
      const AnonClientId v = clients.lookup(id);
      if (v == kClientNotSeen) missed = true;
      return v;
    }
    AnonFileId file(const FileId& id) {
      ++tally.file_lookups;
      const AnonFileId v = files.lookup(id);
      if (v == kFileNotSeen) missed = true;
      return v;
    }
    AnonFileEntry entry(const proto::FileEntry& e) {
      AnonFileEntry out;
      out.file = file(e.file_id);
      out.provider = client(e.client_id);
      out.port = e.port;
      out.meta = anon_meta(e.tags);
      return out;
    }
  };

  struct Visitor {
    Resolver& r;

    AnonMessage operator()(const proto::ServStatReq&) { return AServStatReq{}; }
    AnonMessage operator()(const proto::ServStatRes& m) {
      return AServStatRes{m.users, m.files};
    }
    AnonMessage operator()(const proto::ServerDescReq&) {
      return AServerDescReq{};
    }
    AnonMessage operator()(const proto::ServerDescRes& m) {
      return AServerDescRes{anon_hash_string(m.name),
                            anon_hash_string(m.description)};
    }
    AnonMessage operator()(const proto::GetServerList&) {
      return AGetServerList{};
    }
    AnonMessage operator()(const proto::ServerList& m) {
      return AServerList{static_cast<std::uint32_t>(m.servers.size())};
    }
    AnonMessage operator()(const proto::FileSearchReq& m) {
      AFileSearchReq out;
      out.expr = anon_expr(*m.expr);
      return out;
    }
    AnonMessage operator()(const proto::FileSearchRes& m) {
      AFileSearchRes out;
      out.results.reserve(m.results.size());
      for (const auto& e : m.results) out.results.push_back(r.entry(e));
      return out;
    }
    AnonMessage operator()(const proto::GetSourcesReq& m) {
      AGetSourcesReq out;
      out.files.reserve(m.file_ids.size());
      for (const auto& id : m.file_ids) out.files.push_back(r.file(id));
      return out;
    }
    AnonMessage operator()(const proto::FoundSourcesRes& m) {
      AFoundSourcesRes out;
      out.file = r.file(m.file_id);
      out.sources.reserve(m.sources.size());
      for (const auto& s : m.sources) {
        out.sources.push_back(AnonEndpoint{r.client(s.ip), s.port});
      }
      return out;
    }
    AnonMessage operator()(const proto::PublishReq& m) {
      APublishReq out;
      out.files.reserve(m.files.size());
      for (const auto& e : m.files) out.files.push_back(r.entry(e));
      return out;
    }
    AnonMessage operator()(const proto::PublishAck& m) {
      return APublishAck{m.accepted};
    }
  };

  Resolver resolver{clients_, files_, tally};
  AnonEvent ev;
  ev.time = time;
  ev.peer = resolver.client(peer_ip);
  ev.is_query = proto::is_query(msg);
  ev.message = std::visit(Visitor{resolver}, msg);
  if (resolver.missed) return std::nullopt;
  return ev;
}

}  // namespace dtr::anon
