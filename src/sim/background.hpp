// Background (non-decoded) traffic on the mirror port.
//
// The paper captures *everything* on the server NIC: UDP is "about half of
// the captured traffic" (§2.2); the TCP half (logins, file announcements,
// ~5000 SYN packets per minute — footnote 2) is captured but not decoded,
// and it contributes to the capture-buffer pressure responsible for the
// Figure 2 packet losses.  This generator produces that other half: a
// Markov-modulated Poisson process (quiet/burst states) of TCP frames plus
// the steady SYN drizzle.  Frames carry valid ethernet/IP headers and a TCP
// protocol number, so the decode pipeline correctly classifies and skips
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "sim/frames.hpp"

namespace dtr::sim {

struct BackgroundConfig {
  std::uint64_t seed = 7;
  SimTime duration = 2 * kWeek;

  double syn_per_minute = 5000.0;   // the paper's observed SYN rate
  double data_rate_quiet = 400.0;   // TCP data frames per second, quiet state
  double data_rate_burst = 4000.0;  // during bursts
  double mean_quiet_s = 600.0;      // MMPP state holding times
  double mean_burst_s = 12.0;
  std::uint32_t server_ip = 0xC0A80001;
  std::size_t data_frame_bytes = 1400;  // typical full-size TCP segment
};

/// Generates the background frame stream in time order.  Pull-based (a
/// generator) so it can be merged with the campaign stream frame by frame
/// without materialising tens of millions of frames; run() is a push-style
/// convenience over next().
class BackgroundTraffic {
 public:
  explicit BackgroundTraffic(const BackgroundConfig& config);

  /// Next frame, or nullopt once the duration is exhausted.
  std::optional<TimedFrame> next();

  /// Produce all remaining frames, in time order.
  void run(const FrameSink& sink);

  /// Rewind the generator to t = 0 (deterministic: same frames again).
  void reset();

  /// Scenario hook: multiply the MMPP data rate by `envelope(t)` (the SYN
  /// drizzle stays untouched — handshakes arrive from the whole internet
  /// regardless of the storm).  The envelope must be a pure function of
  /// sim time: it is not checkpointed, callers re-attach it after
  /// construction or restore.  Null (the default) means 1x everywhere.
  void set_envelope(std::function<double(SimTime)> envelope) {
    envelope_ = std::move(envelope);
  }

  /// Number of frames emitted so far (next() + run() combined).
  [[nodiscard]] std::uint64_t frames_emitted() const { return emitted_; }

  /// Checkpoint codec: RNG plus the generator cursors, so the resumed
  /// stream continues with exactly the frames an uninterrupted run would
  /// have produced next.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  Bytes make_tcp_frame(bool syn, Rng& rng) const;
  void advance_mmpp_state();

  BackgroundConfig config_;
  std::function<double(SimTime)> envelope_;
  Rng rng_;
  SimTime next_syn_ = 0;
  SimTime next_data_ = 0;
  bool burst_ = false;
  SimTime state_end_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Merge two time-ordered frame streams into one (used to combine campaign
/// and background traffic before the capture buffer).  Streams are first
/// materialised; for bench-scale runs this is bounded and simple.
class FrameMerger {
 public:
  void add(const TimedFrame& frame) { frames_.push_back(frame); }

  /// Stable sort by time, then replay into `sink`.
  void replay(const FrameSink& sink);

  [[nodiscard]] std::size_t size() const { return frames_.size(); }

 private:
  std::vector<TimedFrame> frames_;
};

}  // namespace dtr::sim
