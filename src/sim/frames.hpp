// The mirror-port abstraction: a time-stamped ethernet frame stream.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace dtr::sim {

struct TimedFrame {
  SimTime time = 0;
  Bytes bytes;  // full ethernet frame as the mirror port emits it
};

/// Consumes the mirrored traffic (the paper's "copy of the traffic sent to
/// a capture machine").
using FrameSink = std::function<void(const TimedFrame&)>;

}  // namespace dtr::sim
