#include "sim/background.hpp"

#include <algorithm>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"

namespace dtr::sim {

namespace {
constexpr std::uint8_t kProtocolTcp = 6;
constexpr net::MacAddress kServerMac = {0x02, 0xED, 0x0E, 0x00, 0x00, 0x01};
constexpr net::MacAddress kRouterMac = {0x02, 0xED, 0x0E, 0x00, 0x00, 0x02};
}  // namespace

BackgroundTraffic::BackgroundTraffic(const BackgroundConfig& config)
    : config_(config), rng_(0) {
  reset();
}

void BackgroundTraffic::reset() {
  rng_ = Rng(mix64(config_.seed ^ 0xBAC60ULL));
  const double syn_rate = config_.syn_per_minute / 60.0;
  next_syn_ = static_cast<SimTime>(rng_.exponential(syn_rate) *
                                   static_cast<double>(kSecond));
  burst_ = false;
  state_end_ = static_cast<SimTime>(
      rng_.exponential(1.0 / config_.mean_quiet_s) *
      static_cast<double>(kSecond));
  next_data_ = static_cast<SimTime>(
      rng_.exponential(config_.data_rate_quiet) * static_cast<double>(kSecond));
  emitted_ = 0;
}

void BackgroundTraffic::advance_mmpp_state() {
  while (next_data_ > state_end_) {
    burst_ = !burst_;
    double hold = burst_ ? config_.mean_burst_s : config_.mean_quiet_s;
    state_end_ += static_cast<SimTime>(rng_.exponential(1.0 / hold) *
                                       static_cast<double>(kSecond));
  }
}

std::optional<TimedFrame> BackgroundTraffic::next() {
  const double syn_rate = config_.syn_per_minute / 60.0;
  if (next_syn_ >= config_.duration && next_data_ >= config_.duration) {
    return std::nullopt;
  }
  if (next_syn_ <= next_data_) {
    TimedFrame f{next_syn_, make_tcp_frame(/*syn=*/true, rng_)};
    next_syn_ += static_cast<SimTime>(rng_.exponential(syn_rate) *
                                      static_cast<double>(kSecond));
    ++emitted_;
    return f;
  }
  advance_mmpp_state();
  TimedFrame f{next_data_, make_tcp_frame(/*syn=*/false, rng_)};
  double rate = burst_ ? config_.data_rate_burst : config_.data_rate_quiet;
  // Scenario envelope: the interarrival after this frame shrinks while the
  // storm is on (evaluated at the frame's own time, a pure function, so a
  // resumed generator recomputes the identical sequence).
  if (envelope_) rate *= envelope_(next_data_);
  next_data_ += static_cast<SimTime>(rng_.exponential(rate) *
                                     static_cast<double>(kSecond));
  ++emitted_;
  return f;
}

Bytes BackgroundTraffic::make_tcp_frame(bool syn, Rng& rng) const {
  // A minimal-but-wellformed TCP segment: 20-byte header (we do not model
  // TCP semantics; the decoder only needs the IP protocol field).
  ByteWriter tcp(20);
  tcp.u16be(static_cast<std::uint16_t>(1024 + rng.below(60000)));  // src port
  tcp.u16be(4661);                                                 // dst port
  tcp.u32be(static_cast<std::uint32_t>(rng.next()));               // seq
  tcp.u32be(0);                                                    // ack
  tcp.u8(0x50);                                    // data offset 5 words
  tcp.u8(syn ? 0x02 : 0x10);                       // SYN or ACK
  tcp.u16be(65535);                                // window
  tcp.u16be(0);                                    // checksum (not modelled)
  tcp.u16be(0);                                    // urgent
  Bytes payload = std::move(tcp).take();
  if (!syn) {
    std::size_t body = config_.data_frame_bytes > 20 + net::kIpv4HeaderSize
                           ? config_.data_frame_bytes - 20 - net::kIpv4HeaderSize
                           : 0;
    payload.resize(payload.size() + body, 0xAB);
  }

  net::Ipv4Packet ip;
  ip.protocol = kProtocolTcp;
  ip.src = static_cast<std::uint32_t>(rng.next());
  ip.dst = config_.server_ip;
  ip.identification = static_cast<std::uint16_t>(rng.next());
  ip.payload = std::move(payload);

  net::EthernetFrame frame;
  frame.dst = kServerMac;
  frame.src = kRouterMac;
  frame.payload = net::encode_ipv4(ip);
  return net::encode_ethernet(frame);
}

void BackgroundTraffic::save_state(ByteWriter& out) const {
  rng_.save_state(out);
  out.u64le(next_syn_);
  out.u64le(next_data_);
  out.u8(burst_ ? 1 : 0);
  out.u64le(state_end_);
  out.u64le(emitted_);
}

bool BackgroundTraffic::restore_state(ByteReader& in) {
  if (!rng_.restore_state(in)) return false;
  next_syn_ = in.u64le();
  next_data_ = in.u64le();
  burst_ = in.u8() != 0;
  state_end_ = in.u64le();
  emitted_ = in.u64le();
  return in.ok();
}

void BackgroundTraffic::run(const FrameSink& sink) {
  while (auto frame = next()) sink(*frame);
}

void FrameMerger::replay(const FrameSink& sink) {
  std::stable_sort(frames_.begin(), frames_.end(),
                   [](const TimedFrame& a, const TimedFrame& b) {
                     return a.time < b.time;
                   });
  for (const TimedFrame& f : frames_) sink(f);
}

}  // namespace dtr::sim
