// Event-driven campaign simulator.
//
// Replays the life of an eDonkey server over a (scaled) ten-week window:
// synthetic clients log in, announce the files they share, search by
// keyword, request sources by fileID, ping the server — and the server
// answers.  Both directions are encoded to real wire bytes (eDonkey over
// UDP over IPv4 over ethernet) and delivered, time-stamped, to a FrameSink
// that models the mirror port feeding the capture machine.
//
// Everything is deterministic in the seed; the ground-truth counters allow
// end-to-end tests to verify the capture/decode/anonymise pipeline against
// what was actually generated.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "proto/fault.hpp"
#include "proto/messages.hpp"
#include "server/server.hpp"
#include "sim/frames.hpp"
#include "sim/scenario.hpp"
#include "workload/behavior.hpp"
#include "workload/catalog.hpp"

namespace dtr::sim {

struct CampaignConfig {
  std::uint64_t seed = 42;
  SimTime duration = 2 * kWeek;  // scaled-down campaign (paper: ~10 weeks)

  workload::PopulationConfig population;
  workload::CatalogConfig catalog;
  server::ServerConfig server;  // answer caps etc.
  proto::FaultProfile faults = proto::FaultProfile::paper_calibrated();

  std::uint32_t server_ip = 0xC0A80001;  // capture never leaves the mirror,
                                         // so any address works
  std::uint16_t server_port = 4665;

  double inter_ask_mean_s = 240.0;       // think time between asks
  double publish_batch_interval_s = 0.6; // spacing of announce batches
  std::size_t publish_batch = 200;       // files per announce message
  /// A small minority of clients runs software that announces in oversized
  /// batches; their datagrams exceed the MTU and fragment at the IP layer —
  /// the source of the paper's *rare* fragments (2,981 in 14 B packets).
  double jumbo_publisher_fraction = 0.01;
  std::size_t jumbo_publish_batch = 48;
  SimTime answer_delay = 2 * kMillisecond;
  double getsources_batch_p = 0.08;      // P(batch a second fileID in a req)
  std::size_t mtu = net::kDefaultMtu;

  /// Fraction of sessions that cluster into flash-crowd windows, which
  /// create the traffic peaks responsible for capture-buffer overflows
  /// (Figure 2).
  double flash_crowd_fraction = 0.18;
  std::uint32_t flash_crowd_count = 24;       // windows over the campaign
  SimTime flash_crowd_width = 10 * kMinute;

  /// Hostile-regime preset (see sim/scenario.hpp).  Absent or steady means
  /// the workload above runs untouched — byte-identical to a build without
  /// the scenario subsystem.  An engaged scenario replaces the flash-crowd
  /// arrival model with its own envelope, scales think time, multiplies the
  /// background rate and (for pollution presets) aims forged announces at
  /// the most popular files.
  std::optional<ScenarioConfig> scenario;
};

/// What the simulator actually generated — the reference the pipeline's
/// output is checked against.
struct GroundTruth {
  std::uint64_t client_messages = 0;
  std::uint64_t server_messages = 0;
  std::uint64_t faulted_datagrams = 0;
  std::uint64_t frames = 0;
  std::uint64_t ip_fragments = 0;
  std::uint64_t family_counts[4] = {0, 0, 0, 0};  // proto::Family order
  std::uint64_t publishes = 0;
  std::uint64_t searches = 0;
  std::uint64_t source_requests = 0;
  std::uint64_t stat_pings = 0;
  /// Forged announce entries aimed at real popular files (only scenario
  /// pollution floods produce these; steady runs keep it at 0).
  std::uint64_t polluted_entries = 0;

  [[nodiscard]] std::uint64_t total_messages() const {
    return client_messages + server_messages;
  }
};

class CampaignSimulator {
 public:
  explicit CampaignSimulator(const CampaignConfig& config);

  /// Run the whole campaign.  `sink` receives every mirrored frame in
  /// non-decreasing time order.
  void run(const FrameSink& sink);

  /// Run until the next event at or past `until`: processes every event
  /// with time < until and releases every buffered frame that can no
  /// longer be preceded.  Returns true while work remains.  Segmenting a
  /// run with run_until produces the exact frame sequence run() does, so
  /// a checkpoint taken between segments resumes byte-identically.
  bool run_until(SimTime until, const FrameSink& sink);

  /// Checkpoint codec: RNG, event queue, frame reorder buffer, ground
  /// truth and the embedded server.  Structures derived purely from the
  /// config (catalog, population, share lists, flash windows) are rebuilt
  /// by the constructor and not serialized.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

  /// Register the embedded server's `server.index.*` instruments in
  /// `registry` (the simulator owns the server the campaign talks to).
  void bind_metrics(obs::Registry& registry) { server_.bind_metrics(registry); }

  /// Attach a logger to the embedded server (may be null).
  void bind_telemetry(obs::Logger* log) { server_.bind_telemetry(log); }

  [[nodiscard]] const GroundTruth& truth() const { return truth_; }
  [[nodiscard]] const server::EdonkeyServer& server() const { return server_; }
  [[nodiscard]] const workload::FileCatalog& catalog() const {
    return catalog_;
  }
  [[nodiscard]] const workload::ClientPopulation& population() const {
    return population_;
  }
  [[nodiscard]] const CampaignConfig& config() const { return config_; }
  /// The engaged scenario, or null when running steady / without one.
  [[nodiscard]] const Scenario* scenario() const {
    return scenario_ ? &*scenario_ : nullptr;
  }

 private:
  enum class Action : std::uint8_t {
    kSessionStart,
    kPublishBatch,
    kAsk,
    kSessionEnd,
  };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // tie-breaker: keeps ordering deterministic
    Action action = Action::kSessionStart;
    std::uint32_t client = 0;
    std::uint32_t arg = 0;  // batch offset / remaining asks

    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void schedule(SimTime time, Action action, std::uint32_t client,
                std::uint32_t arg);
  void schedule_sessions();
  void handle_event(const Event& ev);

  void start_session(const Event& ev);
  void publish_batch(const Event& ev);
  void do_ask(const Event& ev);

  /// One exponential think-time draw, scaled by the scenario envelope at
  /// `at` (identical to the raw draw when no scenario is engaged).
  SimTime think_gap(Rng& r, SimTime at) const;

  /// Encode and emit one client->server message (fault-injected), then let
  /// the server answer and emit the answers.
  void exchange(SimTime time, std::uint32_t client_index,
                const proto::Message& query);

  void emit_datagram(SimTime time, std::uint32_t src_ip,
                     std::uint16_t src_port, std::uint32_t dst_ip,
                     std::uint16_t dst_port, Bytes payload, bool from_client);

  /// The i-th file of a client's share list (precomputed, distinct files).
  std::size_t share_at(std::uint32_t client_index, std::uint32_t i) const;
  void build_share_lists();
  /// Remap a popularity draw into the client's taste-group slice (no-op
  /// unless PopulationConfig::taste_groups is enabled).
  std::size_t taste_biased(std::uint32_t client_index, std::size_t idx,
                           Rng& r) const;
  /// The fileID a client asks about on its i-th ask.
  FileId ask_target(std::uint32_t client_index, std::uint32_t i,
                    std::size_t* catalog_index) const;

  /// Frames are generated with small positive offsets from the current
  /// event time (answer latency, think time inside one ask), so they can
  /// momentarily be out of order across events.  This reorder buffer holds
  /// them and releases everything older than the next event, restoring the
  /// global time order a capture point would see.
  struct PendingFrame {
    SimTime time;
    std::uint64_t seq;
    Bytes bytes;
    bool operator>(const PendingFrame& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  void queue_frame(SimTime time, Bytes bytes);
  void flush_frames(SimTime up_to, const FrameSink& sink);

  CampaignConfig config_;
  workload::FileCatalog catalog_;
  workload::ClientPopulation population_;
  server::EdonkeyServer server_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::priority_queue<PendingFrame, std::vector<PendingFrame>, std::greater<>>
      frame_buffer_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_frame_seq_ = 0;
  std::uint16_t next_ip_id_ = 1;
  bool sessions_scheduled_ = false;
  GroundTruth truth_;
  std::vector<SimTime> flash_windows_;
  // Engaged hostile-regime envelope; pure function of the config, so it is
  // rebuilt by the constructor and never checkpointed.
  std::optional<Scenario> scenario_;
  // Pre-drawn distinct ask targets for kCapped52 clients (the peak-at-52
  // behaviour requires exact distinctness).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
      capped_targets_;
  // Per-client distinct share lists (Figure 6's cap bump requires exact
  // distinct counts).
  std::vector<std::vector<std::uint32_t>> share_lists_;
};

}  // namespace dtr::sim
