// TCP session simulator — the traffic the paper captured but could not
// decode (§2.2), generated so the TCP decode path (the paper's declared
// future work) can be exercised end to end.
//
// Each client session is a real TCP connection to the server's TCP port:
// three-way handshake, eDonkey login (LoginRequest -> IdChange [+ welcome
// ServerMessage]), the authoritative share announcement (OfferFiles,
// segmented at the MSS like a real stack would), an optional TCP search or
// source request, then FIN.  Sequence numbers are per-flow and honest, so
// reassembly is non-trivial; optional segment reordering and capture-loss
// emulation exercise the reassembler's out-of-order and gap paths.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/tcp.hpp"
#include "proto/tcp_codec.hpp"
#include "server/server.hpp"
#include "sim/frames.hpp"
#include "workload/behavior.hpp"
#include "workload/catalog.hpp"

namespace dtr::sim {

struct TcpCampaignConfig {
  std::uint64_t seed = 42;
  SimTime duration = 12 * kHour;
  std::uint32_t server_ip = 0xC0A80001;
  std::uint16_t server_port = 4661;  // classic eDonkey TCP port
  workload::PopulationConfig population;
  workload::CatalogConfig catalog;
  std::size_t mss = 1448;           // payload bytes per segment
  double reorder_p = 0.01;          // P(swap a segment with its successor)
  double welcome_message_p = 0.9;   // P(server sends a ServerMessage)
};

struct TcpGroundTruth {
  std::uint64_t sessions = 0;
  std::uint64_t client_messages = 0;  // login + offers + requests
  std::uint64_t server_messages = 0;  // idchange + welcome + answers
  std::uint64_t offer_entries = 0;    // files announced
  std::uint64_t segments = 0;
  std::uint64_t reordered = 0;

  [[nodiscard]] std::uint64_t total_messages() const {
    return client_messages + server_messages;
  }
};

class TcpCampaignSimulator {
 public:
  explicit TcpCampaignSimulator(const TcpCampaignConfig& config);

  /// Run all sessions; frames reach `sink` in non-decreasing time order.
  void run(const FrameSink& sink);

  [[nodiscard]] const TcpGroundTruth& truth() const { return truth_; }
  [[nodiscard]] const workload::ClientPopulation& population() const {
    return population_;
  }
  [[nodiscard]] const workload::FileCatalog& catalog() const {
    return catalog_;
  }
  [[nodiscard]] const server::EdonkeyServer& server() const { return server_; }

 private:
  struct SessionPlan {
    SimTime start = 0;
    std::uint32_t client = 0;
  };

  void emit_session(const SessionPlan& plan, const FrameSink& sink);

  /// Send `stream_bytes` over one flow direction as MSS-sized segments,
  /// advancing `seq` and `now`; segments may be locally reordered.
  void emit_stream(std::vector<TimedFrame>& out, SimTime& now,
                   std::uint32_t src_ip, std::uint16_t src_port,
                   std::uint32_t dst_ip, std::uint16_t dst_port,
                   std::uint32_t& seq, BytesView stream_bytes, Rng& rng);

  void emit_bare_segment(std::vector<TimedFrame>& out, SimTime now,
                         std::uint32_t src_ip, std::uint16_t src_port,
                         std::uint32_t dst_ip, std::uint16_t dst_port,
                         std::uint32_t seq, std::uint32_t ack,
                         net::TcpFlags flags);

  TcpCampaignConfig config_;
  workload::FileCatalog catalog_;
  workload::ClientPopulation population_;
  server::EdonkeyServer server_;
  Rng rng_;
  TcpGroundTruth truth_;
  std::uint16_t next_ip_id_ = 1;
};

}  // namespace dtr::sim
