#include "sim/tcp_session.hpp"

#include <algorithm>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"

namespace dtr::sim {

namespace {

constexpr net::MacAddress kServerMac = {0x02, 0xED, 0x0E, 0x00, 0x00, 0x01};
constexpr net::MacAddress kRouterMac = {0x02, 0xED, 0x0E, 0x00, 0x00, 0x02};

std::uint16_t client_tcp_port(std::uint32_t client_index, std::uint32_t session) {
  return static_cast<std::uint16_t>(1024 + (client_index * 7 + session * 131) % 60000);
}

}  // namespace

TcpCampaignSimulator::TcpCampaignSimulator(const TcpCampaignConfig& config)
    : config_(config),
      catalog_(config.catalog, config.seed),
      population_(config.population, config.seed),
      server_(),
      rng_(mix64(config.seed ^ 0x7C9CA321ULL)) {}

void TcpCampaignSimulator::emit_bare_segment(
    std::vector<TimedFrame>& out, SimTime now, std::uint32_t src_ip,
    std::uint16_t src_port, std::uint32_t dst_ip, std::uint16_t dst_port,
    std::uint32_t seq, std::uint32_t ack, net::TcpFlags flags) {
  net::TcpSegment seg;
  seg.src_port = src_port;
  seg.dst_port = dst_port;
  seg.seq = seq;
  seg.ack = ack;
  seg.flags = flags;

  net::Ipv4Packet ip;
  ip.protocol = net::kProtocolTcp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.identification = next_ip_id_++;
  ip.payload = net::encode_tcp(seg, src_ip, dst_ip);

  net::EthernetFrame eth;
  eth.dst = dst_ip == config_.server_ip ? kServerMac : kRouterMac;
  eth.src = dst_ip == config_.server_ip ? kRouterMac : kServerMac;
  eth.payload = net::encode_ipv4(ip);
  out.push_back(TimedFrame{now, net::encode_ethernet(eth)});
  ++truth_.segments;
}

void TcpCampaignSimulator::emit_stream(std::vector<TimedFrame>& out,
                                       SimTime& now, std::uint32_t src_ip,
                                       std::uint16_t src_port,
                                       std::uint32_t dst_ip,
                                       std::uint16_t dst_port,
                                       std::uint32_t& seq,
                                       BytesView stream_bytes, Rng& rng) {
  std::size_t emitted_before = out.size();
  std::size_t offset = 0;
  while (offset < stream_bytes.size()) {
    std::size_t n = std::min(config_.mss, stream_bytes.size() - offset);

    net::TcpSegment seg;
    seg.src_port = src_port;
    seg.dst_port = dst_port;
    seg.seq = seq;
    seg.flags.ack = true;
    seg.flags.psh = (offset + n == stream_bytes.size());
    seg.payload.assign(stream_bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                       stream_bytes.begin() +
                           static_cast<std::ptrdiff_t>(offset + n));

    net::Ipv4Packet ip;
    ip.protocol = net::kProtocolTcp;
    ip.src = src_ip;
    ip.dst = dst_ip;
    ip.identification = next_ip_id_++;
    ip.payload = net::encode_tcp(seg, src_ip, dst_ip);

    net::EthernetFrame eth;
    eth.dst = dst_ip == config_.server_ip ? kServerMac : kRouterMac;
    eth.src = dst_ip == config_.server_ip ? kRouterMac : kServerMac;
    eth.payload = net::encode_ipv4(ip);
    out.push_back(TimedFrame{now, net::encode_ethernet(eth)});
    ++truth_.segments;

    seq += static_cast<std::uint32_t>(n);
    offset += n;
    now += 500 * kMicrosecond;
  }

  // Local reordering: swap adjacent data segments with small probability —
  // real networks deliver mildly out of order, and the reassembler must cope.
  for (std::size_t i = emitted_before + 1; i < out.size(); ++i) {
    if (rng.chance(config_.reorder_p)) {
      std::swap(out[i - 1].bytes, out[i].bytes);
      ++truth_.reordered;
    }
  }
}

void TcpCampaignSimulator::emit_session(const SessionPlan& plan,
                                        const FrameSink& sink) {
  const auto& profile = population_.client(plan.client);
  Rng r = rng_.fork(0x7C550000ULL + plan.client).fork(plan.start);

  std::vector<TimedFrame> frames;
  SimTime now = plan.start;
  const std::uint32_t cip = profile.ip;
  const std::uint16_t cport = client_tcp_port(plan.client, static_cast<std::uint32_t>(plan.start % 97));
  const std::uint32_t sip = config_.server_ip;
  const std::uint16_t sport = config_.server_port;

  std::uint32_t cseq = static_cast<std::uint32_t>(r.next());
  std::uint32_t sseq = static_cast<std::uint32_t>(r.next());

  // Handshake.
  emit_bare_segment(frames, now, cip, cport, sip, sport, cseq, 0, {.syn = true});
  now += kMillisecond;
  emit_bare_segment(frames, now, sip, sport, cip, cport, sseq, cseq + 1,
                    {.syn = true, .ack = true});
  now += kMillisecond;
  ++cseq;
  ++sseq;
  emit_bare_segment(frames, now, cip, cport, sip, sport, cseq, sseq,
                    {.ack = true});
  now += kMillisecond;

  ++truth_.sessions;

  // --- Login ---------------------------------------------------------------
  proto::LoginRequest login;
  std::uint64_t h = mix64(profile.ip * 0x9E3779B97F4A7C15ULL);
  for (int i = 0; i < 8; ++i) {
    login.user_hash.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(h >> (8 * i));
    login.user_hash.bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(~h >> (8 * i));
  }
  login.client_id = 0;
  login.port = 4662;
  login.name = "user" + std::to_string(plan.client);
  login.version = 0x3C;
  Bytes client_stream = proto::encode_tcp_message(proto::TcpMessage(login));
  ++truth_.client_messages;

  // --- Server side of the login --------------------------------------------
  proto::ClientId cid = server_.client_id_for(profile.ip, profile.reachable);
  Bytes server_stream;
  {
    Bytes idchange =
        proto::encode_tcp_message(proto::TcpMessage(proto::IdChange{cid}));
    server_stream.insert(server_stream.end(), idchange.begin(), idchange.end());
    ++truth_.server_messages;
    if (r.chance(config_.welcome_message_p)) {
      Bytes welcome = proto::encode_tcp_message(proto::TcpMessage(
          proto::ServerMessage{"welcome to the donkeytrace server"}));
      server_stream.insert(server_stream.end(), welcome.begin(), welcome.end());
      ++truth_.server_messages;
    }
    Bytes status = proto::encode_tcp_message(proto::TcpMessage(
        proto::ServerStatus{server_.user_count(),
                            static_cast<std::uint32_t>(
                                server_.index().file_count())}));
    server_stream.insert(server_stream.end(), status.begin(), status.end());
    ++truth_.server_messages;
  }

  // --- Offers ----------------------------------------------------------------
  const bool polluter = profile.kind == workload::ClientKind::kPolluter;
  std::uint32_t to_offer = polluter ? profile.forged_files : profile.shares;
  to_offer = std::min<std::uint32_t>(
      to_offer, static_cast<std::uint32_t>(catalog_.size()));
  workload::FileSizeModel size_model(config_.catalog.size_model);
  for (std::uint32_t offset = 0; offset < to_offer; offset += 200) {
    proto::OfferFiles offer;
    std::uint32_t batch = std::min<std::uint32_t>(200, to_offer - offset);
    offer.files.reserve(batch);
    for (std::uint32_t i = 0; i < batch; ++i) {
      proto::FileEntry entry;
      if (polluter) {
        Rng fr = rng_.fork(0x7F04C000ULL + plan.client).fork(offset + i);
        entry.file_id = workload::make_forged_file_id(fr);
        entry.tags.push_back(proto::Tag::str(proto::TagName::kFileName,
                                             "tp" + std::to_string(offset + i) +
                                                 ".avi"));
        entry.tags.push_back(proto::Tag::u32(
            proto::TagName::kFileSize,
            static_cast<std::uint32_t>(size_model.sample(fr))));
      } else {
        const auto& f = catalog_.file(
            rng_.fork(0x751A2E00ULL + plan.client).fork(offset + i).below(
                catalog_.size()));
        entry.file_id = f.id;
        entry.tags.push_back(proto::Tag::str(proto::TagName::kFileName, f.name));
        entry.tags.push_back(proto::Tag::u32(proto::TagName::kFileSize, f.size));
        entry.tags.push_back(proto::Tag::str(proto::TagName::kFileType, f.type));
      }
      entry.client_id = cid;
      entry.port = 4662;
      // Keep the server's index in sync (TCP offers are authoritative).
      proto::PublishReq publish;
      publish.files.push_back(entry);
      server_.handle(cid, 4662, proto::Message(std::move(publish)), now);
      offer.files.push_back(std::move(entry));
    }
    truth_.offer_entries += offer.files.size();
    Bytes bytes = proto::encode_tcp_message(proto::TcpMessage(std::move(offer)));
    client_stream.insert(client_stream.end(), bytes.begin(), bytes.end());
    ++truth_.client_messages;
  }

  // --- Emit the two directions ------------------------------------------------
  emit_stream(frames, now, cip, cport, sip, sport, cseq, client_stream, r);
  now += 2 * kMillisecond;
  emit_stream(frames, now, sip, sport, cip, cport, sseq, server_stream, r);
  now += 2 * kMillisecond;

  // --- Teardown ----------------------------------------------------------------
  emit_bare_segment(frames, now, cip, cport, sip, sport, cseq, sseq,
                    {.ack = true, .fin = true});
  now += kMillisecond;
  emit_bare_segment(frames, now, sip, sport, cip, cport, sseq, cseq + 1,
                    {.ack = true, .fin = true});

  for (TimedFrame& f : frames) sink(f);
}

void TcpCampaignSimulator::run(const FrameSink& sink) {
  // Sessions, sorted by start time.  One TCP connection per session.
  std::vector<SessionPlan> plans;
  Rng srng = rng_.fork(0x7C5E55ULL);
  for (std::uint32_t c = 0; c < population_.size(); ++c) {
    for (std::uint32_t s = 0; s < population_.client(c).sessions; ++s) {
      plans.push_back(SessionPlan{srng.below(config_.duration), c});
    }
  }
  std::sort(plans.begin(), plans.end(),
            [](const SessionPlan& a, const SessionPlan& b) {
              return a.start < b.start;
            });

  // Sessions are short (tens of ms of frames) relative to their spacing;
  // buffer and release in time order across overlapping sessions.
  struct Pending {
    SimTime time;
    std::uint64_t seq;
    Bytes bytes;
    bool operator>(const Pending& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap;
  std::uint64_t heap_seq = 0;

  for (const SessionPlan& plan : plans) {
    while (!heap.empty() && heap.top().time <= plan.start) {
      sink(TimedFrame{heap.top().time, heap.top().bytes});
      heap.pop();
    }
    emit_session(plan, [&](const TimedFrame& f) {
      heap.push(Pending{f.time, heap_seq++, f.bytes});
    });
  }
  while (!heap.empty()) {
    sink(TimedFrame{heap.top().time, heap.top().bytes});
    heap.pop();
  }
}

}  // namespace dtr::sim
