#include "sim/campaign.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/strings.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"
#include "proto/codec.hpp"
#include "workload/filesize_model.hpp"

namespace dtr::sim {

namespace {

constexpr net::MacAddress kServerMac = {0x02, 0xED, 0x0E, 0x00, 0x00, 0x01};
constexpr net::MacAddress kRouterMac = {0x02, 0xED, 0x0E, 0x00, 0x00, 0x02};

std::uint16_t client_port_for(std::uint32_t client_index) {
  return static_cast<std::uint16_t>(4662 + (client_index % 1000));
}

// The workload hook: presets that reshape the population (bigger polluter
// cohort, churned sessions) do so before the population is built, so the
// share lists and ask budgets all follow.
CampaignConfig with_scenario_overrides(CampaignConfig config) {
  if (config.scenario) {
    apply_scenario_population_overrides(config.scenario->kind,
                                        config.population);
  }
  return config;
}

}  // namespace

CampaignSimulator::CampaignSimulator(const CampaignConfig& config)
    : config_(with_scenario_overrides(config)),
      catalog_(config_.catalog, config_.seed),
      population_(config_.population, config_.seed),
      server_(config_.server),
      rng_(mix64(config_.seed ^ 0x5133C4317A16ULL)) {
  if (config_.scenario &&
      config_.scenario->kind != ScenarioKind::kSteady) {
    scenario_.emplace(*config_.scenario, config_.duration, config_.seed);
    if (!scenario_->engaged()) scenario_.reset();
  }
  // Flash-crowd windows: moments when session starts cluster.
  Rng wrng = rng_.fork(0xF1A5);
  flash_windows_.reserve(config_.flash_crowd_count);
  for (std::uint32_t i = 0; i < config_.flash_crowd_count; ++i) {
    flash_windows_.push_back(wrng.below(config_.duration));
  }
  std::sort(flash_windows_.begin(), flash_windows_.end());

  // Pre-draw the distinct ask targets of capped-client-software users.
  for (std::uint32_t c = 0; c < population_.size(); ++c) {
    const auto& profile = population_.client(c);
    if (profile.kind != workload::ClientKind::kCapped52) continue;
    Rng r = rng_.fork(0xCA990000ULL + c);
    std::vector<std::uint32_t> targets;
    targets.reserve(profile.asks);
    while (targets.size() < profile.asks) {
      auto idx = static_cast<std::uint32_t>(catalog_.sample_popular(r));
      if (std::find(targets.begin(), targets.end(), idx) == targets.end()) {
        targets.push_back(idx);
      }
    }
    capped_targets_.emplace(c, std::move(targets));
  }

  build_share_lists();
}

void CampaignSimulator::queue_frame(SimTime time, Bytes bytes) {
  frame_buffer_.push(PendingFrame{time, next_frame_seq_++, std::move(bytes)});
}

void CampaignSimulator::flush_frames(SimTime up_to, const FrameSink& sink) {
  while (!frame_buffer_.empty() && frame_buffer_.top().time <= up_to) {
    const PendingFrame& f = frame_buffer_.top();
    sink(TimedFrame{f.time, f.bytes});
    frame_buffer_.pop();
  }
}

void CampaignSimulator::schedule(SimTime time, Action action,
                                 std::uint32_t client, std::uint32_t arg) {
  queue_.push(Event{time, next_seq_++, action, client, arg});
}

void CampaignSimulator::schedule_sessions() {
  Rng srng = rng_.fork(0x5E55);
  for (std::uint32_t c = 0; c < population_.size(); ++c) {
    const auto& profile = population_.client(c);
    for (std::uint32_t s = 0; s < profile.sessions; ++s) {
      SimTime start;
      if (scenario_) {
        // The scenario arrival envelope replaces the legacy flash-crowd
        // clustering wholesale: waves are where the sessions pile up.
        start = scenario_->sample_arrival(srng);
      } else if (!flash_windows_.empty() &&
                 srng.chance(config_.flash_crowd_fraction)) {
        SimTime window = flash_windows_[srng.below(flash_windows_.size())];
        start = window + srng.below(config_.flash_crowd_width);
      } else {
        start = srng.below(config_.duration);
      }
      schedule(start, Action::kSessionStart, c, s);
    }
  }
}

std::size_t CampaignSimulator::share_at(std::uint32_t client_index,
                                        std::uint32_t i) const {
  return share_lists_[client_index][i];
}

void CampaignSimulator::build_share_lists() {
  share_lists_.resize(population_.size());
  for (std::uint32_t c = 0; c < population_.size(); ++c) {
    const auto& profile = population_.client(c);
    if (profile.shares == 0) continue;
    // Distinct popularity-skewed draws.  Distinctness matters: Figure 6's
    // cap bump only exists if a client capped at N files really provides N
    // *distinct* files.  Popular ranks saturate under rejection sampling,
    // so after repeated collisions we fall back to an unused uniform slot.
    std::uint32_t target =
        std::min<std::uint32_t>(profile.shares,
                                static_cast<std::uint32_t>(catalog_.size()));
    Rng r = rng_.fork(0x51A2E0000ULL + c);
    std::unordered_set<std::uint32_t> chosen;
    auto& list = share_lists_[c];
    list.reserve(target);
    int consecutive_misses = 0;
    std::size_t cursor = r.below(catalog_.size());
    while (list.size() < target) {
      std::uint32_t idx;
      if (consecutive_misses < 8) {
        idx = static_cast<std::uint32_t>(
            taste_biased(c, catalog_.sample_popular(r), r));
      } else {
        while (chosen.count(static_cast<std::uint32_t>(cursor)) != 0) {
          cursor = (cursor + 1) % catalog_.size();
        }
        idx = static_cast<std::uint32_t>(cursor);
      }
      if (chosen.insert(idx).second) {
        list.push_back(idx);
        consecutive_misses = 0;
      } else {
        ++consecutive_misses;
      }
    }
  }
}

FileId CampaignSimulator::ask_target(std::uint32_t client_index,
                                     std::uint32_t i,
                                     std::size_t* catalog_index) const {
  const auto& profile = population_.client(client_index);
  Rng r = rng_.fork(0xA51C0000ULL + client_index).fork(i);
  std::size_t idx;
  switch (profile.kind) {
    case workload::ClientKind::kScanner: {
      // Stride walk: distinct indices as long as i < catalog size.
      Rng base = rng_.fork(0x5CA40000ULL + client_index);
      std::size_t start = base.below(catalog_.size());
      std::size_t stride = 1 + 2 * base.below(catalog_.size() / 2);  // odd-ish
      idx = (start + static_cast<std::size_t>(i) * stride) % catalog_.size();
      break;
    }
    case workload::ClientKind::kCapped52: {
      const auto& targets = capped_targets_.at(client_index);
      idx = targets[i % targets.size()];
      break;
    }
    default:
      idx = taste_biased(client_index, catalog_.sample_popular(r), r);
      break;
  }
  if (catalog_index != nullptr) *catalog_index = idx;
  return catalog_.file(idx).id;
}

std::size_t CampaignSimulator::taste_biased(std::uint32_t client_index,
                                            std::size_t idx, Rng& r) const {
  const auto groups = config_.population.taste_groups;
  if (groups <= 1) return idx;
  if (!r.chance(config_.population.taste_affinity)) return idx;
  const std::size_t slice = catalog_.size() / groups;
  if (slice == 0) return idx;
  const std::size_t group = client_index % groups;
  // Preserve the popularity rank inside the group's slice.
  return group * slice + (idx % slice);
}

void CampaignSimulator::run(const FrameSink& sink) {
  run_until(~SimTime{0}, sink);
}

bool CampaignSimulator::run_until(SimTime until, const FrameSink& sink) {
  if (!sessions_scheduled_) {
    schedule_sessions();
    sessions_scheduled_ = true;
  }
  while (!queue_.empty() && queue_.top().time < until) {
    Event ev = queue_.top();
    queue_.pop();
    // Frames generated by earlier events and timed before this event can no
    // longer be preceded by anything: release them in order.
    flush_frames(ev.time, sink);
    handle_event(ev);
  }
  if (queue_.empty()) {
    flush_frames(~SimTime{0}, sink);
  } else if (until > 0) {
    // Events at or past `until` can only generate frames at or past it, so
    // everything strictly earlier is safe to release (flush is inclusive).
    flush_frames(until - 1, sink);
  }
  return !queue_.empty() || !frame_buffer_.empty();
}

void CampaignSimulator::save_state(ByteWriter& out) const {
  rng_.save_state(out);
  out.u64le(next_seq_);
  out.u64le(next_frame_seq_);
  out.u16le(next_ip_id_);
  out.u8(sessions_scheduled_ ? 1 : 0);
  out.u64le(truth_.client_messages);
  out.u64le(truth_.server_messages);
  out.u64le(truth_.faulted_datagrams);
  out.u64le(truth_.frames);
  out.u64le(truth_.ip_fragments);
  for (std::uint64_t c : truth_.family_counts) out.u64le(c);
  out.u64le(truth_.publishes);
  out.u64le(truth_.searches);
  out.u64le(truth_.source_requests);
  out.u64le(truth_.stat_pings);
  out.u64le(truth_.polluted_entries);

  // Both priority queues are drained from a copy: (time, seq) is a total
  // order, so re-pushing the elements on restore rebuilds an equivalent
  // heap regardless of internal layout.
  auto events = queue_;
  out.u64le(events.size());
  while (!events.empty()) {
    const Event& e = events.top();
    out.u64le(e.time);
    out.u64le(e.seq);
    out.u8(static_cast<std::uint8_t>(e.action));
    out.u32le(e.client);
    out.u32le(e.arg);
    events.pop();
  }
  auto frames = frame_buffer_;
  out.u64le(frames.size());
  while (!frames.empty()) {
    const PendingFrame& f = frames.top();
    out.u64le(f.time);
    out.u64le(f.seq);
    out.u64le(f.bytes.size());
    out.raw(f.bytes);
    frames.pop();
  }
  server_.save_state(out);
}

bool CampaignSimulator::restore_state(ByteReader& in) {
  if (!rng_.restore_state(in)) return false;
  next_seq_ = in.u64le();
  next_frame_seq_ = in.u64le();
  next_ip_id_ = in.u16le();
  sessions_scheduled_ = in.u8() != 0;
  truth_.client_messages = in.u64le();
  truth_.server_messages = in.u64le();
  truth_.faulted_datagrams = in.u64le();
  truth_.frames = in.u64le();
  truth_.ip_fragments = in.u64le();
  for (std::uint64_t& c : truth_.family_counts) c = in.u64le();
  truth_.publishes = in.u64le();
  truth_.searches = in.u64le();
  truth_.source_requests = in.u64le();
  truth_.stat_pings = in.u64le();
  truth_.polluted_entries = in.u64le();

  queue_ = {};
  std::uint64_t n = in.u64le();
  if (n > in.remaining() / 25) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    Event e;
    e.time = in.u64le();
    e.seq = in.u64le();
    const std::uint8_t action = in.u8();
    if (action > static_cast<std::uint8_t>(Action::kSessionEnd)) return false;
    e.action = static_cast<Action>(action);
    e.client = in.u32le();
    e.arg = in.u32le();
    if (e.seq >= next_seq_ || e.client >= population_.size()) return false;
    queue_.push(e);
  }

  frame_buffer_ = {};
  n = in.u64le();
  if (n > in.remaining() / 24) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    PendingFrame f;
    f.time = in.u64le();
    f.seq = in.u64le();
    const std::uint64_t len = in.u64le();
    if (f.seq >= next_frame_seq_ || len > in.remaining()) return false;
    BytesView bytes = in.raw(static_cast<std::size_t>(len));
    if (!in.ok()) return false;
    f.bytes.assign(bytes.begin(), bytes.end());
    frame_buffer_.push(std::move(f));
  }
  return server_.restore_state(in) && in.ok();
}

void CampaignSimulator::handle_event(const Event& ev) {
  switch (ev.action) {
    case Action::kSessionStart:
      start_session(ev);
      break;
    case Action::kPublishBatch:
      publish_batch(ev);
      break;
    case Action::kAsk:
      do_ask(ev);
      break;
    case Action::kSessionEnd: {
      const auto& profile = population_.client(ev.client);
      proto::ClientId cid =
          server_.client_id_for(profile.ip, profile.reachable);
      server_.client_offline(cid);
      break;
    }
  }
}

void CampaignSimulator::start_session(const Event& ev) {
  const auto& profile = population_.client(ev.client);
  Rng r = rng_.fork(0x57A40000ULL + ev.client).fork(ev.arg);

  // Management traffic: every session pings the server; a few also ask for
  // the server list or description.
  ++truth_.stat_pings;
  exchange(ev.time, ev.client,
           proto::ServStatReq{static_cast<std::uint32_t>(r.next())});
  if (r.chance(0.05)) {
    exchange(ev.time + 50 * kMillisecond, ev.client, proto::GetServerList{});
  }
  if (r.chance(0.02)) {
    exchange(ev.time + 80 * kMillisecond, ev.client, proto::ServerDescReq{});
  }

  // Announce shared files (or forged ones for polluters), batched.
  std::uint32_t to_publish =
      profile.kind == workload::ClientKind::kPolluter
          ? profile.forged_files
          : static_cast<std::uint32_t>(share_lists_[ev.client].size());
  if (to_publish > 0) {
    schedule(ev.time + 200 * kMillisecond, Action::kPublishBatch, ev.client,
             /*offset=*/0);
  }

  // Ask budget for this session: an equal slice of the client's total.
  std::uint32_t per_session =
      (profile.asks + profile.sessions - 1) / profile.sessions;
  std::uint32_t done_before = per_session * ev.arg;
  std::uint32_t this_session =
      done_before >= profile.asks
          ? 0
          : std::min(per_session, profile.asks - done_before);
  if (this_session > 0) {
    SimTime first = ev.time + kSecond + think_gap(r, ev.time);
    // arg carries the client's absolute ask cursor; the session's slice end
    // is re-derived in do_ask from (cursor / per_session).
    schedule(first, Action::kAsk, ev.client, done_before);
  } else {
    // Nothing to ask this session; end it once publishing (if any) is over.
    SimTime linger = to_publish == 0 ? kMinute : 45 * kMinute;
    schedule(ev.time + linger, Action::kSessionEnd, ev.client, 0);
  }
}

void CampaignSimulator::publish_batch(const Event& ev) {
  const auto& profile = population_.client(ev.client);
  const bool polluter = profile.kind == workload::ClientKind::kPolluter;
  const std::uint32_t total =
      polluter ? profile.forged_files
               : static_cast<std::uint32_t>(share_lists_[ev.client].size());
  const std::uint32_t offset = ev.arg;
  // Per-client software behaviour: most clients batch conservatively; the
  // jumbo minority sends oversized announces that will fragment.
  std::size_t client_batch =
      rng_.fork(0x9B00000ULL + ev.client).chance(config_.jumbo_publisher_fraction)
          ? config_.jumbo_publish_batch
          : config_.publish_batch;
  const auto batch = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(client_batch, total - offset));

  proto::PublishReq req;
  req.files.reserve(batch);
  workload::FileSizeModel size_model(config_.catalog.size_model);
  for (std::uint32_t i = 0; i < batch; ++i) {
    proto::FileEntry entry;
    if (polluter) {
      Rng fr = rng_.fork(0xF04C0000ULL + ev.client).fork(offset + i);
      if (scenario_ && scenario_->polluter_targets_popular(ev.time)) {
        // Index-pollution flood: a forged fileID wearing the name and size
        // of a top-k popular file, so keyword searches for the real file
        // surface the decoy.
        const std::size_t k = std::max<std::size_t>(
            1, std::min<std::size_t>(scenario_->popular_target_k(),
                                     catalog_.size()));
        const auto& victim = catalog_.file(fr.below(k));
        entry.file_id = workload::make_forged_file_id(fr);
        entry.tags.push_back(
            proto::Tag::str(proto::TagName::kFileName, victim.name));
        entry.tags.push_back(
            proto::Tag::u32(proto::TagName::kFileSize, victim.size));
        entry.tags.push_back(
            proto::Tag::str(proto::TagName::kFileType, victim.type));
        ++truth_.polluted_entries;
      } else {
        entry.file_id = workload::make_forged_file_id(fr);
        entry.tags.push_back(proto::Tag::str(
            proto::TagName::kFileName,
            "p" + std::to_string(ev.client) + " n" +
                std::to_string(offset + i) + ".avi"));
        entry.tags.push_back(proto::Tag::u32(
            proto::TagName::kFileSize,
            static_cast<std::uint32_t>(size_model.sample(fr))));
        entry.tags.push_back(
            proto::Tag::str(proto::TagName::kFileType, "video"));
      }
    } else {
      const auto& f = catalog_.file(share_at(ev.client, offset + i));
      entry.file_id = f.id;
      entry.tags.push_back(proto::Tag::str(proto::TagName::kFileName, f.name));
      entry.tags.push_back(proto::Tag::u32(proto::TagName::kFileSize, f.size));
      entry.tags.push_back(proto::Tag::str(proto::TagName::kFileType, f.type));
    }
    // The client self-reports its address; the server overwrites it with
    // the transport address anyway, but the *captured query* must carry it
    // so the dataset can attribute announced files to the announcing peer.
    entry.client_id = profile.ip;
    entry.port = client_port_for(ev.client);
    req.files.push_back(std::move(entry));
  }
  ++truth_.publishes;
  exchange(ev.time, ev.client, std::move(req));

  if (offset + batch < total) {
    schedule(ev.time + static_cast<SimTime>(config_.publish_batch_interval_s *
                                            static_cast<double>(kSecond)),
             Action::kPublishBatch, ev.client, offset + batch);
  } else if (population_.client(ev.client).asks == 0) {
    // Publishing done and the client never asks: the session ends after an
    // idle period (upload serving is TCP, invisible at this capture point).
    schedule(ev.time + 30 * kMinute, Action::kSessionEnd, ev.client, 0);
  }
}

SimTime CampaignSimulator::think_gap(Rng& r, SimTime at) const {
  auto gap = static_cast<SimTime>(
      r.exponential(1.0 / config_.inter_ask_mean_s) *
      static_cast<double>(kSecond));
  if (scenario_) {
    gap = static_cast<SimTime>(static_cast<double>(gap) *
                               scenario_->think_scale(at));
  }
  return gap;
}

void CampaignSimulator::do_ask(const Event& ev) {
  const auto& profile = population_.client(ev.client);
  const std::uint32_t cursor = ev.arg;
  if (cursor >= profile.asks) {
    schedule(ev.time + 10 * kMinute, Action::kSessionEnd, ev.client, 0);
    return;
  }

  Rng r = rng_.fork(0xD0A50000ULL + ev.client).fork(cursor);
  std::size_t catalog_index = 0;
  FileId target = ask_target(ev.client, cursor, &catalog_index);

  // Keyword search first (most clients search before fetching sources).
  if (r.chance(config_.population.search_per_ask) &&
      profile.kind != workload::ClientKind::kScanner) {
    const auto& f = catalog_.file(catalog_index);
    auto tokens = tokenize_keywords(f.name);
    std::vector<std::string> words;
    if (!tokens.empty()) words.push_back(tokens.front());
    if (tokens.size() > 1 && r.chance(0.6)) words.push_back(tokens.back());
    if (!words.empty()) {
      proto::FileSearchReq search;
      search.expr = proto::SearchExpr::keywords(words);
      if (r.chance(0.1)) {
        // Some clients add a size constraint.
        search.expr = proto::SearchExpr::boolean(
            proto::BoolOp::kAnd, std::move(search.expr),
            proto::SearchExpr::numeric(1024 * 1024, proto::NumCmp::kMin,
                                       proto::TagName::kFileSize));
      }
      ++truth_.searches;
      exchange(ev.time, ev.client, std::move(search));
    }
  }

  // Source request, occasionally batching a second fileID.
  proto::GetSourcesReq req;
  req.file_ids.push_back(target);
  std::uint32_t consumed = 1;
  if (cursor + 1 < profile.asks && r.chance(config_.getsources_batch_p)) {
    req.file_ids.push_back(ask_target(ev.client, cursor + 1, nullptr));
    consumed = 2;
  }
  ++truth_.source_requests;
  exchange(ev.time + 300 * kMillisecond, ev.client, std::move(req));

  // Next ask of this session, or session end.
  std::uint32_t per_session =
      (profile.asks + profile.sessions - 1) / profile.sessions;
  std::uint32_t session_start_cursor = (cursor / per_session) * per_session;
  std::uint32_t next_cursor = cursor + consumed;
  SimTime gap = think_gap(r, ev.time);
  if (next_cursor < profile.asks &&
      next_cursor < session_start_cursor + per_session) {
    schedule(ev.time + kSecond + gap, Action::kAsk, ev.client, next_cursor);
  } else {
    schedule(ev.time + kMinute + gap, Action::kSessionEnd, ev.client, 0);
  }
}

void CampaignSimulator::exchange(SimTime time, std::uint32_t client_index,
                                 const proto::Message& query) {
  const auto& profile = population_.client(client_index);
  const std::uint16_t cport = client_port_for(client_index);

  // Ground truth (by family, before any wire mangling).
  ++truth_.client_messages;
  ++truth_.family_counts[static_cast<std::size_t>(proto::family_of(query))];

  // Encode + fault-inject the client's datagram.
  Bytes payload = proto::encode_message(query);
  proto::FaultKind fault = proto::pick_fault(config_.faults, rng_);
  if (fault != proto::FaultKind::kNone) {
    fault = proto::apply_fault(payload, fault, rng_);
    if (fault != proto::FaultKind::kNone) ++truth_.faulted_datagrams;
  }
  emit_datagram(time, profile.ip, cport, config_.server_ip,
                config_.server_port, std::move(payload), true);

  // The server answers the *intended* message (the fault models capture-side
  // corruption: the original datagram reached the server unharmed on its
  // own path often enough that answering is the right approximation).
  proto::ClientId cid = server_.client_id_for(profile.ip, profile.reachable);
  std::vector<proto::Message> answers =
      server_.handle(cid, cport, query, time);
  SimTime t = time + config_.answer_delay;
  for (const auto& answer : answers) {
    ++truth_.server_messages;
    ++truth_.family_counts[static_cast<std::size_t>(proto::family_of(answer))];
    emit_datagram(t, config_.server_ip, config_.server_port, profile.ip,
                  cport, proto::encode_message(answer), false);
    t += 200 * kMicrosecond;
  }
}

void CampaignSimulator::emit_datagram(SimTime time, std::uint32_t src_ip,
                                      std::uint16_t src_port,
                                      std::uint32_t dst_ip,
                                      std::uint16_t dst_port, Bytes payload,
                                      bool from_client) {
  net::UdpDatagram udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.payload = std::move(payload);

  net::Ipv4Packet ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.identification = next_ip_id_++;
  ip.payload = net::encode_udp(udp, src_ip, dst_ip);

  auto pieces = net::fragment_ipv4(ip, config_.mtu);
  if (pieces.size() > 1) truth_.ip_fragments += pieces.size();

  for (const auto& piece : pieces) {
    net::EthernetFrame frame;
    frame.dst = from_client ? kServerMac : kRouterMac;
    frame.src = from_client ? kRouterMac : kServerMac;
    frame.ether_type = net::kEtherTypeIpv4;
    frame.payload = net::encode_ipv4(piece);
    ++truth_.frames;
    queue_frame(time, net::encode_ethernet(frame));
  }
}

}  // namespace dtr::sim
