#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace dtr::sim {
namespace {

// Fold a double into the fingerprint chain by its exact bit pattern, so two
// configs fingerprint equal iff they behave identically (IEEE-exact).
std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix64(h ^ bits);
}

constexpr double kBoostMin = 0.01;
constexpr double kBoostMax = 1e4;
constexpr double kThinkMin = 1e-3;
constexpr double kThinkMax = 100.0;
constexpr std::uint32_t kWavesMax = 256;
constexpr double kDutyMax = 0.9;

}  // namespace

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kSteady: return "steady";
    case ScenarioKind::kFlashCrowd: return "flash_crowd";
    case ScenarioKind::kQueryStorm: return "query_storm";
    case ScenarioKind::kPolluterFlood: return "polluter_flood";
    case ScenarioKind::kChurnWave: return "churn_wave";
    case ScenarioKind::kRestartUnderLoad: return "restart_under_load";
  }
  return "unknown";
}

std::string ScenarioConfig::validate() const {
  if (kind == ScenarioKind::kSteady) return {};
  if (waves < 1 || waves > kWavesMax) {
    return "waves must be in [1, 256]";
  }
  if (!std::isfinite(wave_duty) || wave_duty <= 0.0 || wave_duty > kDutyMax) {
    return "wave_duty must be in (0, 0.9]";
  }
  if (!std::isfinite(arrival_boost) || arrival_boost < kBoostMin ||
      arrival_boost > kBoostMax) {
    return "arrival_boost must be in [0.01, 10000]";
  }
  if (!std::isfinite(background_boost) || background_boost < kBoostMin ||
      background_boost > kBoostMax) {
    return "background_boost must be in [0.01, 10000]";
  }
  if (!std::isfinite(think_scale) || think_scale < kThinkMin ||
      think_scale > kThinkMax) {
    return "think_scale must be in [0.001, 100]";
  }
  if (popular_target_k < 1) {
    return "popular_target_k must be at least 1";
  }
  return {};
}

std::uint64_t ScenarioConfig::fingerprint() const {
  if (kind == ScenarioKind::kSteady) return 0;
  std::uint64_t h = mix64(0xD0A5CE7A110ULL ^ static_cast<std::uint64_t>(kind));
  h = mix64(h ^ seed);
  h = mix64(h ^ waves);
  h = mix_double(h, wave_duty);
  h = mix_double(h, arrival_boost);
  h = mix_double(h, background_boost);
  h = mix_double(h, think_scale);
  h = mix64(h ^ (polluter_targets_popular ? 0x50FFULL : 0));
  h = mix64(h ^ popular_target_k);
  return h;
}

std::vector<std::string> scenario_names() {
  return {"steady",         "flash_crowd", "query_storm",
          "polluter_flood", "churn_wave",  "restart_under_load"};
}

std::optional<ScenarioConfig> scenario_preset(std::string_view name) {
  ScenarioConfig c;
  if (name == "steady") {
    c.kind = ScenarioKind::kSteady;
    return c;
  }
  if (name == "flash_crowd") {
    // A few short, violent arrival spikes: a popular release hitting the
    // network.  Sessions pile into 6%-duty windows at 25x density.
    c.kind = ScenarioKind::kFlashCrowd;
    c.waves = 3;
    c.wave_duty = 0.06;
    c.arrival_boost = 25.0;
    c.background_boost = 3.0;
    c.think_scale = 0.5;
    return c;
  }
  if (name == "query_storm") {
    // Ask + background storm tuned to saturate the kernel buffer: think
    // time collapses and the MMPP data plane runs 14x hot.
    c.kind = ScenarioKind::kQueryStorm;
    c.waves = 2;
    c.wave_duty = 0.08;
    c.arrival_boost = 6.0;
    c.background_boost = 14.0;
    c.think_scale = 0.08;
    return c;
  }
  if (name == "polluter_flood") {
    // Coordinated index pollution: the (enlarged) polluter cohort aims its
    // forged announces at the top-16 most popular files during the floods.
    c.kind = ScenarioKind::kPolluterFlood;
    c.waves = 2;
    c.wave_duty = 0.25;
    c.arrival_boost = 2.5;
    c.background_boost = 1.5;
    c.think_scale = 1.0;
    c.polluter_targets_popular = true;
    c.popular_target_k = 16;
    return c;
  }
  if (name == "churn_wave") {
    // Mass join/leave churn: many medium waves, most of the timeline under
    // elevated arrival pressure, sessions per client tripled.
    c.kind = ScenarioKind::kChurnWave;
    c.waves = 6;
    c.wave_duty = 0.45;
    c.arrival_boost = 8.0;
    c.background_boost = 1.2;
    c.think_scale = 0.8;
    return c;
  }
  if (name == "restart_under_load") {
    // One big storm whose peak is where the kill+resume tests inject a
    // restart: everything hot at once in a single window.
    c.kind = ScenarioKind::kRestartUnderLoad;
    c.waves = 1;
    c.wave_duty = 0.12;
    c.arrival_boost = 10.0;
    c.background_boost = 10.0;
    c.think_scale = 0.1;
    return c;
  }
  return std::nullopt;
}

void apply_scenario_population_overrides(
    ScenarioKind kind, workload::PopulationConfig& population) {
  switch (kind) {
    case ScenarioKind::kPolluterFlood: {
      // Polluters become a visible cohort; the mass comes out of casuals so
      // the fractions still sum to ~1.
      const double target = 0.08;
      if (population.polluter_fraction < target) {
        const double delta = target - population.polluter_fraction;
        population.polluter_fraction = target;
        population.casual_fraction =
            std::max(0.0, population.casual_fraction - delta);
      }
      break;
    }
    case ScenarioKind::kChurnWave:
      // Churning clients rejoin repeatedly.
      population.mean_sessions *= 3.0;
      break;
    default:
      break;
  }
}

Scenario::Scenario(const ScenarioConfig& config, SimTime duration,
                   std::uint64_t campaign_seed)
    : config_(config), duration_(duration) {
  if (config_.kind == ScenarioKind::kSteady || duration_ == 0 ||
      !config_.validate().empty()) {
    return;  // unengaged: no phases, no envelope
  }
  const std::uint32_t waves = config_.waves;
  const SimTime slot = duration_ / waves;
  if (slot < kSecond) return;
  auto wave_len = static_cast<SimTime>(
      static_cast<double>(duration_) * config_.wave_duty /
      static_cast<double>(waves));
  wave_len = std::clamp<SimTime>(wave_len, kSecond, slot);
  // Each wave lands at a seeded offset inside its own slot, so waves never
  // overlap and the layout depends on (preset seed, campaign seed, kind).
  Rng layout(mix64(config_.seed ^ mix64(campaign_seed) ^
                   (static_cast<std::uint64_t>(config_.kind) << 56)));
  phases_.reserve(waves);
  for (std::uint32_t i = 0; i < waves; ++i) {
    const SimTime lo = static_cast<SimTime>(i) * slot;
    const SimTime free_span = slot - wave_len;
    const SimTime begin = lo + (free_span > 0 ? layout.below(free_span) : 0);
    ScenarioPhase p;
    p.begin = begin;
    p.end = begin + wave_len;
    p.arrival_boost = config_.arrival_boost;
    p.background_boost = config_.background_boost;
    p.think_scale = config_.think_scale;
    p.polluter_targets_popular = config_.polluter_targets_popular;
    phases_.push_back(p);
  }
  // Compile the arrival envelope: alternating gap (density 1) and wave
  // (density arrival_boost) segments covering [0, duration).
  SimTime cursor = 0;
  auto push_segment = [this](SimTime b, SimTime e, double density) {
    if (e <= b) return;
    segments_.push_back({b, e, density});
    const double mass = to_seconds_f(e - b) * density;
    cum_weight_.push_back((cum_weight_.empty() ? 0.0 : cum_weight_.back()) +
                          mass);
  };
  for (const ScenarioPhase& p : phases_) {
    push_segment(cursor, p.begin, 1.0);
    push_segment(p.begin, p.end, p.arrival_boost);
    cursor = p.end;
  }
  push_segment(cursor, duration_, 1.0);
}

int Scenario::phase_index(SimTime t) const {
  // Phases are sorted and disjoint; find the last phase starting at or
  // before t.
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](SimTime v, const ScenarioPhase& p) { return v < p.begin; });
  if (it == phases_.begin()) return -1;
  --it;
  if (t < it->end) return static_cast<int>(it - phases_.begin());
  return -1;
}

double Scenario::arrival_boost(SimTime t) const {
  const int i = phase_index(t);
  return i < 0 ? 1.0 : phases_[static_cast<std::size_t>(i)].arrival_boost;
}

double Scenario::background_boost(SimTime t) const {
  const int i = phase_index(t);
  return i < 0 ? 1.0 : phases_[static_cast<std::size_t>(i)].background_boost;
}

double Scenario::think_scale(SimTime t) const {
  const int i = phase_index(t);
  return i < 0 ? 1.0 : phases_[static_cast<std::size_t>(i)].think_scale;
}

bool Scenario::polluter_targets_popular(SimTime t) const {
  const int i = phase_index(t);
  return i >= 0 &&
         phases_[static_cast<std::size_t>(i)].polluter_targets_popular;
}

SimTime Scenario::sample_arrival(Rng& rng) const {
  if (segments_.empty() || cum_weight_.back() <= 0.0) {
    return duration_ > 0 ? rng.below(duration_) : 0;
  }
  // Inverse-CDF over the piecewise-constant density: pick the segment by
  // cumulative mass, then place the arrival uniformly inside it.  One
  // uniform() draw per arrival regardless of the preset, so engaged
  // scenarios consume the session-scheduler RNG at the same rate.
  const double u = rng.uniform() * cum_weight_.back();
  const auto it = std::lower_bound(cum_weight_.begin(), cum_weight_.end(), u);
  const std::size_t idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cum_weight_.begin()),
      segments_.size() - 1);
  const Segment& seg = segments_[idx];
  const double prev = idx == 0 ? 0.0 : cum_weight_[idx - 1];
  const double mass = cum_weight_[idx] - prev;
  const double frac = mass > 0.0 ? (u - prev) / mass : 0.0;
  const auto offset = static_cast<SimTime>(
      frac * static_cast<double>(seg.end - seg.begin));
  const SimTime t = seg.begin + std::min(offset, seg.end - seg.begin - 1);
  return std::min(t, duration_ - 1);
}

SimTime Scenario::peak_time() const {
  if (phases_.empty()) return duration_ / 2;
  // "Intensity" of a wave: arrival and background pressure amplified by how
  // aggressively think time collapses.
  const auto intensity = [](const ScenarioPhase& p) {
    return p.arrival_boost * p.background_boost / std::max(p.think_scale, 1e-9);
  };
  const auto it = std::max_element(
      phases_.begin(), phases_.end(),
      [&](const ScenarioPhase& a, const ScenarioPhase& b) {
        return intensity(a) < intensity(b);
      });
  return it->begin + (it->end - it->begin) / 2;
}

}  // namespace dtr::sim
