// Hostile-regime scenario presets: named, seeded compositions of
// time-varying intensity envelopes over the steady-state workload.
//
// The paper's capture spans ten weeks of real server life, which includes
// regimes the steady heavy-tailed workload never produces: query storms
// that drive kernel-buffer losses far past Figure 2 levels, coordinated
// polluter campaigns against popular files, and mass client churn (the
// BitTorrent availability studies in PAPERS.md give the wave shapes).  A
// Scenario compiles one named preset into a deterministic piecewise-
// constant envelope over the campaign:
//   * session arrivals are drawn from a boosted density inside the waves
//     (flash crowds, churn waves),
//   * the background MMPP data rates are multiplied inside the waves
//     (query storms saturating the capture buffer),
//   * client think time shrinks inside the waves (ask bursts), and
//   * polluters switch from random forged fileIDs to forged announces
//     aimed at the top-k most popular real files (index-pollution floods).
//
// Everything is a pure function of (config, duration, campaign seed):
// nothing here needs checkpointing, serial == parallel == resumed holds
// byte for byte, and the preset joins the snapshot fingerprint so a storm
// campaign cannot silently resume as a steady one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "workload/behavior.hpp"

namespace dtr::sim {

enum class ScenarioKind : std::uint8_t {
  kSteady,           ///< no hostile regime (the default; a strict no-op)
  kFlashCrowd,       ///< short, intense arrival spikes
  kQueryStorm,       ///< background + ask storm overwhelming the buffer
  kPolluterFlood,    ///< forged-fileID floods against the top-k files
  kChurnWave,        ///< mass arrival/departure waves (churning clients)
  kRestartUnderLoad, ///< one big storm meant to be killed + resumed at peak
};

const char* scenario_kind_name(ScenarioKind kind);

struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kSteady;
  /// Folded with the campaign seed for wave placement, so the same preset
  /// lands its waves elsewhere under another campaign seed.
  std::uint64_t seed = 17;

  std::uint32_t waves = 1;        ///< hostile windows over the campaign
  double wave_duty = 0.10;        ///< fraction of the duration that is hostile
  double arrival_boost = 1.0;     ///< session-arrival density x inside a wave
  double background_boost = 1.0;  ///< MMPP data-rate x inside a wave
  double think_scale = 1.0;       ///< inter-ask think-time x inside a wave
  bool polluter_targets_popular = false;  ///< forged floods aim at the top-k
  std::uint32_t popular_target_k = 16;    ///< victim pool: popularity ranks

  /// Empty when the config is usable; otherwise the reason it is not.
  /// Steady is always valid (the envelope fields are ignored).
  [[nodiscard]] std::string validate() const;

  /// Stable hash of every field that shapes the run — the checkpoint
  /// fingerprint contribution.  Steady fingerprints to 0, matching "no
  /// scenario at all", because it *is* no scenario at all.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Registered preset names, in a stable order (steady first).
std::vector<std::string> scenario_names();

/// Look a preset up by name; nullopt for unknown names.
std::optional<ScenarioConfig> scenario_preset(std::string_view name);

/// The workload/behavior hook: overrides a preset applies to the client
/// population before it is built.  Polluter floods need polluters to be a
/// visible fraction of the population; churn waves need clients that come
/// and go repeatedly.  Steady (and every envelope-only preset) is a no-op.
void apply_scenario_population_overrides(ScenarioKind kind,
                                         workload::PopulationConfig& population);

/// One hostile window with its intensity multipliers.
struct ScenarioPhase {
  SimTime begin = 0;  ///< inclusive
  SimTime end = 0;    ///< exclusive
  double arrival_boost = 1.0;
  double background_boost = 1.0;
  double think_scale = 1.0;
  bool polluter_targets_popular = false;
};

class Scenario {
 public:
  /// Compile the preset into concrete waves over `[0, duration)`.  Invalid
  /// configs are defensively clamped — callers wanting a clean rejection
  /// check ScenarioConfig::validate() first (the campaign runner and the
  /// CLI both do).
  Scenario(const ScenarioConfig& config, SimTime duration,
           std::uint64_t campaign_seed);

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] SimTime duration() const { return duration_; }
  [[nodiscard]] const std::vector<ScenarioPhase>& phases() const {
    return phases_;
  }

  /// False for steady: an unengaged scenario must leave every byte of the
  /// run identical to a run with no scenario at all.
  [[nodiscard]] bool engaged() const { return !phases_.empty(); }

  /// Index of the wave covering `t`, or -1 between waves.
  [[nodiscard]] int phase_index(SimTime t) const;

  [[nodiscard]] double arrival_boost(SimTime t) const;
  [[nodiscard]] double background_boost(SimTime t) const;
  [[nodiscard]] double think_scale(SimTime t) const;
  [[nodiscard]] bool polluter_targets_popular(SimTime t) const;
  [[nodiscard]] std::uint32_t popular_target_k() const {
    return config_.popular_target_k;
  }

  /// Draw a session start time from the arrival envelope (piecewise-
  /// constant density: boosted inside waves, 1x between them).
  [[nodiscard]] SimTime sample_arrival(Rng& rng) const;

  /// Centre of the most intense wave — the moment the kill-at-peak tests
  /// checkpoint at.  Returns duration/2 for an unengaged scenario.
  [[nodiscard]] SimTime peak_time() const;

 private:
  ScenarioConfig config_;
  SimTime duration_ = 0;
  std::vector<ScenarioPhase> phases_;
  // Arrival envelope over the full duration: segments alternate gap/wave;
  // cum_weight_[i] is the total density mass of segments 0..i.
  struct Segment {
    SimTime begin = 0;
    SimTime end = 0;
    double density = 1.0;
  };
  std::vector<Segment> segments_;
  std::vector<double> cum_weight_;
};

}  // namespace dtr::sim
