#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/strings.hpp"

namespace dtr::analysis {

void print_distribution(std::ostream& out, const CountHistogram& h,
                        const std::string& x_label, const std::string& y_label,
                        bool log_binned, double bin_ratio) {
  out << "# " << x_label << "  " << y_label << "\n";
  if (log_binned) {
    for (const LogBin& bin : log_bin(h, bin_ratio)) {
      out << bin.lo << "\t" << bin.count << "\t" << bin.density << "\n";
    }
  } else {
    for (const auto& [value, count] : h.bins()) {
      out << value << "\t" << count << "\n";
    }
  }
}

void print_loglog_plot(std::ostream& out, const CountHistogram& h, int width,
                       int height) {
  if (h.empty()) {
    out << "(empty distribution)\n";
    return;
  }
  const double x_max = std::log10(static_cast<double>(
      std::max<std::uint64_t>(h.max_value(), 2)));
  std::uint64_t y_max_count = 0;
  for (const auto& [value, count] : h.bins())
    y_max_count = std::max(y_max_count, count);
  const double y_max = std::log10(static_cast<double>(
      std::max<std::uint64_t>(y_max_count, 2)));

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& [value, count] : h.bins()) {
    if (value == 0 || count == 0) continue;
    double xf = std::log10(static_cast<double>(value)) / x_max;
    double yf = std::log10(static_cast<double>(count)) / y_max;
    int col = std::min(width - 1, static_cast<int>(xf * (width - 1)));
    int row = std::min(height - 1, static_cast<int>(yf * (height - 1)));
    grid[static_cast<std::size_t>(height - 1 - row)]
        [static_cast<std::size_t>(col)] = '*';
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(y_max_count));
  out << "  y max = " << buf << " (log-log)\n";
  for (const auto& line : grid) out << "  |" << line << "\n";
  out << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  out << "   x: 1 .. " << h.max_value() << "\n";
}

void print_table(std::ostream& out, const std::string& title,
                 const std::vector<SummaryRow>& rows) {
  std::size_t label_width = 0;
  for (const auto& row : rows)
    label_width = std::max(label_width, row.label.size());
  out << "== " << title << " ==\n";
  for (const auto& row : rows) {
    out << "  " << row.label
        << std::string(label_width - row.label.size() + 2, ' ') << row.value
        << "\n";
  }
}

void print_scenario_summary(std::ostream& out, const ScenarioSummary& s) {
  char buf[200];
  out << "== scenario: " << s.name << " ==\n";
  std::snprintf(buf, sizeof(buf),
                "  duration %llus, %zu wave(s), sessions %llu\n",
                static_cast<unsigned long long>(s.duration_s), s.phases.size(),
                static_cast<unsigned long long>(s.sessions));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  frames captured %llu, lost %llu, peak occupancy %llu\n",
                static_cast<unsigned long long>(s.frames_captured),
                static_cast<unsigned long long>(s.frames_lost),
                static_cast<unsigned long long>(s.buffer_high_water));
  out << buf;
  const double hit_rate =
      s.publishes > 0 ? static_cast<double>(s.polluted_entries) /
                            static_cast<double>(s.publishes)
                      : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  pollution: %llu forged-popular entries over %llu publishes "
                "(%.3f per publish)\n",
                static_cast<unsigned long long>(s.polluted_entries),
                static_cast<unsigned long long>(s.publishes), hit_rate);
  out << buf;

  // The churn timeline: one row per wave with its multipliers and the
  // capture losses it caused.
  out << "  wave  window              arrival  background  think  flood  "
         "lost\n";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const auto& p = s.phases[i];
    std::snprintf(buf, sizeof(buf),
                  "  %4zu  [%7llus,%7llus)  x%-6.2f  x%-9.2f  x%-5.2f  %-5s  "
                  "%llu\n",
                  i, static_cast<unsigned long long>(p.begin_s),
                  static_cast<unsigned long long>(p.end_s), p.arrival_boost,
                  p.background_boost, p.think_scale,
                  p.polluter_flood ? "yes" : "no",
                  static_cast<unsigned long long>(p.frames_lost));
    out << buf;
  }

  // Loss curve: the campaign bucketed into fixed time bins, losses per bin
  // with a proportional bar — the Figure 2 shape under the storm.
  if (!s.loss_curve.empty() && s.duration_s > 0) {
    constexpr std::size_t kBins = 24;
    const std::uint64_t bin_s = std::max<std::uint64_t>(
        1, (s.duration_s + kBins - 1) / kBins);
    std::vector<std::uint64_t> bins(kBins, 0);
    for (const auto& [second, lost] : s.loss_curve) {
      bins[std::min(kBins - 1, static_cast<std::size_t>(second / bin_s))] +=
          lost;
    }
    const std::uint64_t peak =
        *std::max_element(bins.begin(), bins.end());
    out << "  loss curve (" << bin_s << "s bins):\n";
    for (std::size_t i = 0; i < kBins; ++i) {
      const auto width = peak > 0 ? static_cast<std::size_t>(
                                        (bins[i] * 40 + peak - 1) / peak)
                                  : 0;
      std::snprintf(buf, sizeof(buf), "  %7llus |%-40s| %llu\n",
                    static_cast<unsigned long long>(i * bin_s),
                    std::string(width, '#').c_str(),
                    static_cast<unsigned long long>(bins[i]));
      out << buf;
    }
  } else {
    out << "  loss curve: no capture losses\n";
  }
}

std::string scenario_summary_text(const ScenarioSummary& s) {
  std::ostringstream os;
  print_scenario_summary(os, s);
  return os.str();
}

std::string describe_fit(const PowerLawFit& fit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "alpha=%.3f xmin=%llu KS=%.4f n_tail=%llu -> %s", fit.alpha,
                static_cast<unsigned long long>(fit.xmin), fit.ks_distance,
                static_cast<unsigned long long>(fit.n_tail),
                fit.plausible() ? "plausible power law"
                                : "not a clean power law");
  return buf;
}

}  // namespace dtr::analysis
