#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/strings.hpp"

namespace dtr::analysis {

void print_distribution(std::ostream& out, const CountHistogram& h,
                        const std::string& x_label, const std::string& y_label,
                        bool log_binned, double bin_ratio) {
  out << "# " << x_label << "  " << y_label << "\n";
  if (log_binned) {
    for (const LogBin& bin : log_bin(h, bin_ratio)) {
      out << bin.lo << "\t" << bin.count << "\t" << bin.density << "\n";
    }
  } else {
    for (const auto& [value, count] : h.bins()) {
      out << value << "\t" << count << "\n";
    }
  }
}

void print_loglog_plot(std::ostream& out, const CountHistogram& h, int width,
                       int height) {
  if (h.empty()) {
    out << "(empty distribution)\n";
    return;
  }
  const double x_max = std::log10(static_cast<double>(
      std::max<std::uint64_t>(h.max_value(), 2)));
  std::uint64_t y_max_count = 0;
  for (const auto& [value, count] : h.bins())
    y_max_count = std::max(y_max_count, count);
  const double y_max = std::log10(static_cast<double>(
      std::max<std::uint64_t>(y_max_count, 2)));

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& [value, count] : h.bins()) {
    if (value == 0 || count == 0) continue;
    double xf = std::log10(static_cast<double>(value)) / x_max;
    double yf = std::log10(static_cast<double>(count)) / y_max;
    int col = std::min(width - 1, static_cast<int>(xf * (width - 1)));
    int row = std::min(height - 1, static_cast<int>(yf * (height - 1)));
    grid[static_cast<std::size_t>(height - 1 - row)]
        [static_cast<std::size_t>(col)] = '*';
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(y_max_count));
  out << "  y max = " << buf << " (log-log)\n";
  for (const auto& line : grid) out << "  |" << line << "\n";
  out << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  out << "   x: 1 .. " << h.max_value() << "\n";
}

void print_table(std::ostream& out, const std::string& title,
                 const std::vector<SummaryRow>& rows) {
  std::size_t label_width = 0;
  for (const auto& row : rows)
    label_width = std::max(label_width, row.label.size());
  out << "== " << title << " ==\n";
  for (const auto& row : rows) {
    out << "  " << row.label
        << std::string(label_width - row.label.size() + 2, ' ') << row.value
        << "\n";
  }
}

std::string describe_fit(const PowerLawFit& fit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "alpha=%.3f xmin=%llu KS=%.4f n_tail=%llu -> %s", fit.alpha,
                static_cast<unsigned long long>(fit.xmin), fit.ks_distance,
                static_cast<unsigned long long>(fit.n_tail),
                fit.plausible() ? "plausible power law"
                                : "not a clean power law");
  return buf;
}

}  // namespace dtr::analysis
