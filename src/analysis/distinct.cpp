#include "analysis/distinct.hpp"

#include <cstring>
#include <unordered_map>

namespace dtr::analysis {

BitsetDistinctCounter::BitsetDistinctCounter() {
  pages_.resize(1ull << (32 - kPageBits));
}

bool BitsetDistinctCounter::observe(std::uint32_t key) {
  const std::uint32_t page_index = key >> kPageBits;
  auto& page = pages_[page_index];
  if (!page) {
    page = std::make_unique<std::uint64_t[]>(kPageWords);
    std::memset(page.get(), 0, kPageWords * sizeof(std::uint64_t));
  }
  const std::uint32_t bit = key & ((1u << kPageBits) - 1);
  std::uint64_t& word = page[bit / 64];
  const std::uint64_t mask = 1ull << (bit % 64);
  if (word & mask) return false;
  word |= mask;
  ++distinct_;
  return true;
}

bool BitsetDistinctCounter::seen(std::uint32_t key) const {
  const auto& page = pages_[key >> kPageBits];
  if (!page) return false;
  const std::uint32_t bit = key & ((1u << kPageBits) - 1);
  return (page[bit / 64] >> (bit % 64)) & 1;
}

std::uint64_t BitsetDistinctCounter::memory_bytes() const {
  std::uint64_t pages = 0;
  for (const auto& p : pages_) pages += (p != nullptr);
  return pages * kPageWords * sizeof(std::uint64_t);
}

void BitsetDistinctCounter::save_state(ByteWriter& out) const {
  out.u64le(distinct_);
  for (std::size_t p = 0; p < pages_.size(); ++p) {
    const auto& page = pages_[p];
    if (!page) continue;
    for (std::uint32_t w = 0; w < kPageWords; ++w) {
      std::uint64_t word = page[w];
      while (word != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(word));
        word &= word - 1;
        out.u32le(static_cast<std::uint32_t>(p << kPageBits) + w * 64 + bit);
      }
    }
  }
}

bool BitsetDistinctCounter::restore_state(ByteReader& in) {
  for (auto& page : pages_) page.reset();
  distinct_ = 0;
  const std::uint64_t count = in.u64le();
  if (count > in.remaining() / 4) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!observe(in.u32le())) return false;  // duplicate key
  }
  return in.ok() && distinct_ == count;
}

bool PairSetCounter::observe(std::uint64_t a, std::uint32_t b) {
  return set_.insert(Key{a, b}).second;
}

void PairSetCounter::save_state(ByteWriter& out) const {
  out.u64le(set_.size());
  for (const Key& k : set_) {
    out.u64le(k.a);
    out.u32le(k.b);
  }
}

bool PairSetCounter::restore_state(ByteReader& in) {
  set_.clear();
  const std::uint64_t count = in.u64le();
  if (count > in.remaining() / 12) return false;
  set_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t a = in.u64le();
    const std::uint32_t b = in.u32le();
    if (!set_.insert(Key{a, b}).second) return false;
  }
  return in.ok();
}

CountHistogram PairSetCounter::degree_of_a() const {
  std::unordered_map<std::uint64_t, std::uint64_t> degree;
  for (const Key& k : set_) ++degree[k.a];
  CountHistogram h;
  for (const auto& [a, count] : degree) h.add(count);
  return h;
}

CountHistogram PairSetCounter::degree_of_b() const {
  std::unordered_map<std::uint32_t, std::uint64_t> degree;
  for (const Key& k : set_) ++degree[k.b];
  CountHistogram h;
  for (const auto& [b, count] : degree) h.add(count);
  return h;
}

}  // namespace dtr::analysis
