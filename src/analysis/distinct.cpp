#include "analysis/distinct.hpp"

#include <cstring>
#include <unordered_map>

namespace dtr::analysis {

BitsetDistinctCounter::BitsetDistinctCounter() {
  pages_.resize(1ull << (32 - kPageBits));
}

bool BitsetDistinctCounter::observe(std::uint32_t key) {
  const std::uint32_t page_index = key >> kPageBits;
  auto& page = pages_[page_index];
  if (!page) {
    page = std::make_unique<std::uint64_t[]>(kPageWords);
    std::memset(page.get(), 0, kPageWords * sizeof(std::uint64_t));
  }
  const std::uint32_t bit = key & ((1u << kPageBits) - 1);
  std::uint64_t& word = page[bit / 64];
  const std::uint64_t mask = 1ull << (bit % 64);
  if (word & mask) return false;
  word |= mask;
  ++distinct_;
  return true;
}

bool BitsetDistinctCounter::seen(std::uint32_t key) const {
  const auto& page = pages_[key >> kPageBits];
  if (!page) return false;
  const std::uint32_t bit = key & ((1u << kPageBits) - 1);
  return (page[bit / 64] >> (bit % 64)) & 1;
}

std::uint64_t BitsetDistinctCounter::memory_bytes() const {
  std::uint64_t pages = 0;
  for (const auto& p : pages_) pages += (p != nullptr);
  return pages * kPageWords * sizeof(std::uint64_t);
}

bool PairSetCounter::observe(std::uint64_t a, std::uint32_t b) {
  return set_.insert(Key{a, b}).second;
}

CountHistogram PairSetCounter::degree_of_a() const {
  std::unordered_map<std::uint64_t, std::uint64_t> degree;
  for (const Key& k : set_) ++degree[k.a];
  CountHistogram h;
  for (const auto& [a, count] : degree) h.add(count);
  return h;
}

CountHistogram PairSetCounter::degree_of_b() const {
  std::unordered_map<std::uint32_t, std::uint64_t> degree;
  for (const Key& k : set_) ++degree[k.b];
  CountHistogram h;
  for (const auto& [b, count] : degree) h.add(count);
  return h;
}

}  // namespace dtr::analysis
