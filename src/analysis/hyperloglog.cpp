#include "analysis/hyperloglog.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace dtr::analysis {

HyperLogLog::HyperLogLog(unsigned precision_bits) : p_(precision_bits) {
  if (p_ < 4 || p_ > 18) {
    throw std::invalid_argument("HyperLogLog: precision must be in [4, 18]");
  }
  registers_.assign(std::size_t{1} << p_, 0);
}

void HyperLogLog::observe_hash(std::uint64_t hash) {
  const std::size_t index = hash >> (64 - p_);
  const std::uint64_t rest = hash << p_;
  // Rank: position of the leftmost 1-bit in the remaining 64-p bits, 1-based;
  // all-zero rest maps to the maximum rank.
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? (64 - p_ + 1) : std::countl_zero(rest) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

void HyperLogLog::observe(std::uint32_t key) {
  observe_hash(mix64(0x9E3779B97F4A7C15ULL ^ key));
}

void HyperLogLog::observe(const Digest128& digest) {
  // fileIDs are (mostly) uniform already, but forged IDs are not: re-mix.
  observe_hash(mix64(digest.prefix64() ^
                     (static_cast<std::uint64_t>(digest.byte(8)) << 32 |
                      digest.byte(15))));
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  const double alpha =
      m == 16 ? 0.673 : m == 32 ? 0.697 : m == 64 ? 0.709
                                                  : 0.7213 / (1.0 + 1.079 / m);
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    zeros += (reg == 0);
  }
  double raw = alpha * m * m / sum;

  // Small-range correction: linear counting while registers stay sparse.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.p_ != p_) {
    throw std::invalid_argument("HyperLogLog: precision mismatch in merge");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::standard_error() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

}  // namespace dtr::analysis
