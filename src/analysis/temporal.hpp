// Temporal activity analysis — the paper's §4 direction "study and model
// user behaviors" over time.
//
// Streams anonymised events into fixed-width time bins and tracks, exactly:
// message rate, active distinct clients, newly-appearing clients and files
// per bin.  Anonymised clientIDs are dense order-of-appearance integers,
// which makes exact per-bin distinct counting cheap (a last-seen-bin vector
// instead of per-bin sets).
#pragma once

#include <cstdint>
#include <vector>

#include "anon/anonymiser.hpp"
#include "common/clock.hpp"

namespace dtr::analysis {

struct ActivityBin {
  std::uint64_t messages = 0;
  std::uint64_t queries = 0;
  std::uint32_t active_clients = 0;  // distinct peers seen in this bin
  std::uint32_t new_clients = 0;     // peers never seen before this bin
  std::uint32_t new_files = 0;       // fileIDs never seen before this bin
};

class ActivityTracker {
 public:
  explicit ActivityTracker(SimTime bin_width = kHour)
      : bin_width_(bin_width) {}

  void consume(const anon::AnonEvent& event);

  [[nodiscard]] const std::vector<ActivityBin>& bins() const { return bins_; }
  [[nodiscard]] SimTime bin_width() const { return bin_width_; }

  /// Index of the busiest bin (by messages); 0 if empty.
  [[nodiscard]] std::size_t peak_bin() const;

  /// Mean messages per non-empty bin.
  [[nodiscard]] double mean_rate() const;

  /// Peak-to-mean ratio — a burstiness indicator (flash crowds show up as
  /// ratios well above 1).
  [[nodiscard]] double peak_to_mean() const;

 private:
  void observe_client(std::uint32_t peer, std::size_t bin);
  void observe_file(anon::AnonFileId file, std::size_t bin);

  SimTime bin_width_;
  std::vector<ActivityBin> bins_;
  // peer -> last bin it was counted active in (+1; 0 = never seen).
  std::vector<std::uint32_t> client_last_bin_;
  std::vector<std::uint32_t> file_last_bin_;  // files: only "new" tracking
};

}  // namespace dtr::analysis
