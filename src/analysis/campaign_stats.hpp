// Campaign statistics: the §3 analyses, computed from the anonymised event
// stream (exactly what a user of the released dataset can compute).
//
//   Figure 4 — distribution of #clients providing each file
//   Figure 5 — distribution of #clients asking for each file
//   Figure 6 — distribution of #files provided by each client
//   Figure 7 — distribution of #files asked for by each client
//   Figure 8 — file size distribution
//
// Provider relations come from announcement messages and from the provider
// lists in the server's answers (foundsrc sources, results entries); asker
// relations from source requests.  All relations are exact-deduplicated.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "analysis/distinct.hpp"
#include "anon/anonymiser.hpp"
#include "common/binning.hpp"
#include "obs/metrics.hpp"

namespace dtr::analysis {

class CampaignStats {
 public:
  /// Feed one anonymised message.
  void consume(const anon::AnonEvent& event);

  /// Register `analysis.*` instruments in `registry` and record into them
  /// from now on (message/query counters, relation and population gauges).
  void bind_metrics(obs::Registry& registry);

  // --- dataset-summary numbers (the paper's headline table) --------------
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] std::uint64_t answers() const { return messages_ - queries_; }
  [[nodiscard]] std::uint64_t distinct_clients() const {
    return distinct_clients_.distinct();
  }
  [[nodiscard]] std::uint64_t distinct_files() const {
    return seen_files_.size();
  }

  // --- figure data --------------------------------------------------------
  /// Fig 4: x = #providers of a file, y = #files with x providers.
  [[nodiscard]] CountHistogram providers_per_file() const {
    return provides_.degree_of_a();
  }
  /// Fig 5: x = #askers of a file, y = #files with x askers.
  [[nodiscard]] CountHistogram askers_per_file() const {
    return asks_.degree_of_a();
  }
  /// Fig 6: x = #files provided, y = #clients providing x files.
  [[nodiscard]] CountHistogram files_per_provider() const {
    return provides_.degree_of_b();
  }
  /// Fig 7: x = #files asked, y = #clients asking x files.
  [[nodiscard]] CountHistogram files_per_asker() const {
    return asks_.degree_of_b();
  }
  /// Fig 8: x = file size (KB), y = #files with that size.
  [[nodiscard]] const CountHistogram& size_distribution() const {
    return sizes_;
  }

  [[nodiscard]] std::uint64_t provider_relations() const {
    return provides_.pairs();
  }
  [[nodiscard]] std::uint64_t asker_relations() const { return asks_.pairs(); }

  /// Checkpoint codec: counters, relation sets, distinct tables and the
  /// size histogram — everything consume() accumulates.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  void observe_file_meta(anon::AnonFileId file, const anon::AnonFileMeta& meta);

  struct Metrics {
    obs::Counter* messages = nullptr;
    obs::Counter* queries = nullptr;
    obs::Gauge* provider_relations = nullptr;
    obs::Gauge* asker_relations = nullptr;
    obs::Gauge* clients_distinct = nullptr;
    obs::Gauge* files_distinct = nullptr;
  };

  Metrics metrics_;
  std::uint64_t messages_ = 0;
  std::uint64_t queries_ = 0;
  BitsetDistinctCounter distinct_clients_;
  PairSetCounter provides_;  // a = file, b = providing client
  PairSetCounter asks_;      // a = file, b = asking client
  std::unordered_map<anon::AnonFileId, std::uint32_t> seen_files_;  // -> KB
  CountHistogram sizes_;     // over distinct files, by first-seen size
};

}  // namespace dtr::analysis
