#include "analysis/temporal.hpp"

#include <algorithm>

namespace dtr::analysis {

void ActivityTracker::observe_client(std::uint32_t peer, std::size_t bin) {
  if (client_last_bin_.size() <= peer) {
    client_last_bin_.resize(static_cast<std::size_t>(peer) + 1, 0);
  }
  std::uint32_t& last = client_last_bin_[peer];
  if (last == 0) ++bins_[bin].new_clients;
  if (last != bin + 1) {
    ++bins_[bin].active_clients;
    last = static_cast<std::uint32_t>(bin + 1);
  }
}

void ActivityTracker::observe_file(anon::AnonFileId file, std::size_t bin) {
  if (file_last_bin_.size() <= file) {
    file_last_bin_.resize(static_cast<std::size_t>(file) + 1, 0);
  }
  std::uint32_t& last = file_last_bin_[file];
  if (last == 0) {
    ++bins_[bin].new_files;
    last = static_cast<std::uint32_t>(bin + 1);
  }
}

namespace {
struct ActivityVisitor {
  ActivityTracker& t;
  std::size_t bin;
  void (ActivityTracker::*obs_file)(anon::AnonFileId, std::size_t);
  void (ActivityTracker::*obs_client)(std::uint32_t, std::size_t);

  void operator()(const anon::AGetSourcesReq& m) const;
  void operator()(const anon::AFoundSourcesRes& m) const;
  void operator()(const anon::APublishReq& m) const;
  void operator()(const anon::AFileSearchRes& m) const;
  template <typename T>
  void operator()(const T&) const {}
};
}  // namespace

void ActivityTracker::consume(const anon::AnonEvent& event) {
  const auto bin = static_cast<std::size_t>(event.time / bin_width_);
  if (bins_.size() <= bin) bins_.resize(bin + 1);
  ActivityBin& b = bins_[bin];
  ++b.messages;
  if (event.is_query) ++b.queries;
  observe_client(event.peer, bin);
  std::visit(ActivityVisitor{*this, bin, &ActivityTracker::observe_file,
                             &ActivityTracker::observe_client},
             event.message);
}

namespace {
void ActivityVisitor::operator()(const anon::AGetSourcesReq& m) const {
  for (auto f : m.files) (t.*obs_file)(f, bin);
}
void ActivityVisitor::operator()(const anon::AFoundSourcesRes& m) const {
  (t.*obs_file)(m.file, bin);
  for (const auto& s : m.sources) (t.*obs_client)(s.client, bin);
}
void ActivityVisitor::operator()(const anon::APublishReq& m) const {
  for (const auto& f : m.files) (t.*obs_file)(f.file, bin);
}
void ActivityVisitor::operator()(const anon::AFileSearchRes& m) const {
  for (const auto& f : m.results) (t.*obs_file)(f.file, bin);
}
}  // namespace

std::size_t ActivityTracker::peak_bin() const {
  std::size_t best = 0;
  std::uint64_t best_count = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].messages > best_count) {
      best_count = bins_[i].messages;
      best = i;
    }
  }
  return best;
}

double ActivityTracker::mean_rate() const {
  std::uint64_t total = 0;
  std::size_t nonempty = 0;
  for (const auto& b : bins_) {
    total += b.messages;
    nonempty += (b.messages > 0);
  }
  return nonempty == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(nonempty);
}

double ActivityTracker::peak_to_mean() const {
  double mean = mean_rate();
  if (mean == 0.0 || bins_.empty()) return 0.0;
  return static_cast<double>(bins_[peak_bin()].messages) / mean;
}

}  // namespace dtr::analysis
