// Power-law fitting.
//
// The paper notes that the decrease of the provider/asker distributions "is
// reasonably well fitted by a power-law" (Figs 4, 5), while the client-side
// distributions (Figs 6, 7) "are far from power-laws".  To make that
// comparison quantitative, we fit a discrete power law by maximum
// likelihood (Clauset–Shalizi–Newman style: continuous-approximation MLE
// for the exponent, Kolmogorov–Smirnov distance for goodness, optional
// xmin scan) on CountHistogram data.
#pragma once

#include <cstdint>

#include "common/binning.hpp"

namespace dtr::analysis {

struct PowerLawFit {
  double alpha = 0.0;     ///< exponent of P(x) ~ x^-alpha
  std::uint64_t xmin = 1; ///< fit range lower bound
  double ks_distance = 1.0;
  std::uint64_t n_tail = 0;  ///< observations with x >= xmin

  /// Rule-of-thumb verdict used by the benches to label each figure:
  /// small KS distance on a large tail = plausibly a power law.
  [[nodiscard]] bool plausible() const {
    return n_tail >= 50 && ks_distance < 0.08;
  }
};

/// Fit with a fixed xmin.
PowerLawFit fit_power_law(const CountHistogram& h, std::uint64_t xmin = 1);

/// Scan xmin over the distinct values (up to `max_candidates` of them) and
/// return the fit minimising the KS distance, following Clauset et al.
PowerLawFit fit_power_law_auto(const CountHistogram& h,
                               std::size_t max_candidates = 50);

}  // namespace dtr::analysis
