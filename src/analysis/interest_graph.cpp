#include "analysis/interest_graph.hpp"

#include <algorithm>

namespace dtr::analysis {

void InterestGraph::add_interest(anon::AnonClientId client,
                                 anon::AnonFileId file) {
  auto& files = by_client_[client];
  if (std::find(files.begin(), files.end(), file) != files.end()) return;
  files.push_back(file);
  by_file_[file].push_back(client);
  ++edges_;
}

namespace {
struct InterestVisitor {
  InterestGraph& g;
  anon::AnonClientId peer;

  void operator()(const anon::AGetSourcesReq& m) const {
    for (auto f : m.files) g.add_interest(peer, f);
  }
  template <typename T>
  void operator()(const T&) const {}
};
}  // namespace

void InterestGraph::consume(const anon::AnonEvent& event) {
  if (!event.is_query) return;
  std::visit(InterestVisitor{*this, event.peer}, event.message);
}

CountHistogram InterestGraph::client_degrees() const {
  CountHistogram h;
  for (const auto& [client, files] : by_client_) h.add(files.size());
  return h;
}

CountHistogram InterestGraph::file_degrees() const {
  CountHistogram h;
  for (const auto& [file, clients] : by_file_) h.add(clients.size());
  return h;
}

bool InterestGraph::interested(anon::AnonClientId client,
                               anon::AnonFileId file) const {
  auto it = by_client_.find(client);
  if (it == by_client_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), file) !=
         it->second.end();
}

InterestGraph::ClusteringEstimate InterestGraph::estimate_clustering(
    std::uint64_t samples, std::uint64_t seed) const {
  ClusteringEstimate out;
  if (by_client_.empty() || edges_ == 0) return out;

  // Clients with at least two interests, as a samplable vector.
  std::vector<const std::vector<anon::AnonFileId>*> wedge_clients;
  std::vector<anon::AnonClientId> wedge_ids;
  for (const auto& [client, files] : by_client_) {
    if (files.size() >= 2) {
      wedge_clients.push_back(&files);
      wedge_ids.push_back(client);
    }
  }
  if (wedge_clients.empty()) return out;

  // All files as a flat vector for the null model (degree-weighted pick:
  // choosing a random *edge* endpoint reproduces the degree bias).
  std::vector<anon::AnonFileId> edge_files;
  edge_files.reserve(edges_);
  for (const auto& [file, clients] : by_file_) {
    for (std::size_t i = 0; i < clients.size(); ++i) edge_files.push_back(file);
  }

  Rng rng(mix64(seed ^ 0x1273E57ULL));
  std::uint64_t closed = 0, null_closed = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    std::size_t ci = rng.below(wedge_clients.size());
    const auto& files = *wedge_clients[ci];
    std::size_t a = rng.below(files.size());
    std::size_t b = rng.below(files.size() - 1);
    if (b >= a) ++b;
    anon::AnonFileId fa = files[a], fb = files[b];

    // Closed wedge: some other client interested in both files.
    const auto& fa_clients = by_file_.at(fa);
    bool found = false;
    for (anon::AnonClientId other : fa_clients) {
      if (other == wedge_ids[ci]) continue;
      if (interested(other, fb)) {
        found = true;
        break;
      }
    }
    closed += found;

    // Null model: replace fb by a degree-weighted random file; how often is
    // some other fa-client interested in *that*?
    anon::AnonFileId fr = edge_files[rng.below(edge_files.size())];
    bool null_found = false;
    for (anon::AnonClientId other : fa_clients) {
      if (other == wedge_ids[ci]) continue;
      if (interested(other, fr)) {
        null_found = true;
        break;
      }
    }
    null_closed += null_found;
  }

  out.samples = samples;
  out.coefficient = static_cast<double>(closed) / static_cast<double>(samples);
  out.null_expectation =
      static_cast<double>(null_closed) / static_cast<double>(samples);
  return out;
}

std::vector<std::pair<anon::AnonClientId, std::uint32_t>>
InterestGraph::similar_clients(anon::AnonClientId client, std::size_t k) const {
  std::vector<std::pair<anon::AnonClientId, std::uint32_t>> out;
  auto it = by_client_.find(client);
  if (it == by_client_.end()) return out;

  std::unordered_map<anon::AnonClientId, std::uint32_t> common;
  for (anon::AnonFileId file : it->second) {
    for (anon::AnonClientId other : by_file_.at(file)) {
      if (other != client) ++common[other];
    }
  }
  out.assign(common.begin(), common.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace dtr::analysis
