// HyperLogLog — approximate distinct counting.
//
// The paper calls counting distinct fileIDs in 9 billion messages an
// "unusual and sometimes striking" challenge and solves it exactly with
// purpose-built structures (the bucketed stores; ~GBs of memory).  This is
// the other end of the trade-off: a fixed-size sketch (2^p registers, e.g.
// 16 KiB at p=14) that estimates the same count within ~1.04/sqrt(2^p)
// relative error, mergeable across captures.  The ablation bench and tests
// compare it against the exact counters.
//
// Implementation: standard HLL (Flajolet et al. 2007) with the empirical
// small-range correction (linear counting below 2.5m) and the 64-bit hash
// variant that needs no large-range correction.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/digest.hpp"

namespace dtr::analysis {

class HyperLogLog {
 public:
  /// `precision_bits` p in [4, 18]: 2^p one-byte registers.
  explicit HyperLogLog(unsigned precision_bits = 14);

  /// Observe an already-uniform 64-bit hash (callers hash their keys).
  void observe_hash(std::uint64_t hash);

  /// Convenience: 32-bit keys (clientIDs) and 128-bit digests (fileIDs).
  void observe(std::uint32_t key);
  void observe(const Digest128& digest);

  [[nodiscard]] double estimate() const;

  /// Union of two sketches (same precision): distinct-of-union estimator.
  void merge(const HyperLogLog& other);

  [[nodiscard]] unsigned precision() const { return p_; }
  [[nodiscard]] std::size_t memory_bytes() const { return registers_.size(); }

  /// Theoretical standard error of the estimate (1.04 / sqrt(m)).
  [[nodiscard]] double standard_error() const;

 private:
  unsigned p_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace dtr::analysis
