#include "analysis/spread.hpp"

namespace dtr::analysis {

void FileSpreadTracker::observe_provider(anon::AnonFileId file,
                                         anon::AnonClientId provider,
                                         SimTime time) {
  if (!seen_pairs_.insert({file, provider}).second) return;
  Spread& spread = files_[file];
  ++spread.providers;
  for (std::size_t i = 0; i < kMilestones.size(); ++i) {
    if (spread.providers == kMilestones[i]) {
      spread.milestone_time[i] = time;
      spread.reached[i] = true;
      break;  // milestones are strictly increasing; one can match
    }
  }
}

namespace {
struct SpreadVisitor {
  FileSpreadTracker& t;
  SimTime time;

  void operator()(const anon::APublishReq& m) const {
    for (const auto& f : m.files) t.observe_provider(f.file, f.provider, time);
  }
  void operator()(const anon::AFoundSourcesRes& m) const {
    for (const auto& s : m.sources) t.observe_provider(m.file, s.client, time);
  }
  void operator()(const anon::AFileSearchRes& m) const {
    for (const auto& f : m.results)
      t.observe_provider(f.file, f.provider, time);
  }
  template <typename T>
  void operator()(const T&) const {}
};
}  // namespace

void FileSpreadTracker::consume(const anon::AnonEvent& event) {
  std::visit(SpreadVisitor{*this, event.time}, event.message);
}

CountHistogram FileSpreadTracker::time_to_milestone(
    std::size_t milestone_index) const {
  CountHistogram h;
  for (const auto& [file, spread] : files_) {
    if (!spread.reached[0] || !spread.reached[milestone_index]) continue;
    SimTime delta =
        spread.milestone_time[milestone_index] - spread.milestone_time[0];
    h.add(to_seconds(delta));
  }
  return h;
}

std::array<std::uint64_t, FileSpreadTracker::kMilestones.size()>
FileSpreadTracker::milestone_counts() const {
  std::array<std::uint64_t, kMilestones.size()> counts{};
  for (const auto& [file, spread] : files_) {
    for (std::size_t i = 0; i < kMilestones.size(); ++i) {
      if (spread.reached[i]) ++counts[i];
    }
  }
  return counts;
}

}  // namespace dtr::analysis
