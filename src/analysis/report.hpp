// Plain-text rendering of distributions and summary tables, in the shape
// the paper's figures/tables use: log-log scatter columns for the
// distribution figures, thousands-separated counts for the summary.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/powerlaw.hpp"
#include "common/binning.hpp"

namespace dtr::analysis {

/// Dump "x count" rows (the raw scatter the paper plots), optionally
/// log-binned to keep the row count reasonable.
void print_distribution(std::ostream& out, const CountHistogram& h,
                        const std::string& x_label,
                        const std::string& y_label, bool log_binned = true,
                        double bin_ratio = 1.6);

/// Render an ASCII log-log scatter of a distribution — a quick visual check
/// that the shape (straight line = power law, bumps, peaks) matches the
/// paper's figure.
void print_loglog_plot(std::ostream& out, const CountHistogram& h, int width = 72,
                       int height = 20);

/// One row of a summary table.
struct SummaryRow {
  std::string label;
  std::string value;
};

void print_table(std::ostream& out, const std::string& title,
                 const std::vector<SummaryRow>& rows);

/// Format a power-law fit verdict line.
std::string describe_fit(const PowerLawFit& fit);

}  // namespace dtr::analysis
