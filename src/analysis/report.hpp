// Plain-text rendering of distributions and summary tables, in the shape
// the paper's figures/tables use: log-log scatter columns for the
// distribution figures, thousands-separated counts for the summary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/powerlaw.hpp"
#include "common/binning.hpp"

namespace dtr::analysis {

/// Dump "x count" rows (the raw scatter the paper plots), optionally
/// log-binned to keep the row count reasonable.
void print_distribution(std::ostream& out, const CountHistogram& h,
                        const std::string& x_label,
                        const std::string& y_label, bool log_binned = true,
                        double bin_ratio = 1.6);

/// Render an ASCII log-log scatter of a distribution — a quick visual check
/// that the shape (straight line = power law, bumps, peaks) matches the
/// paper's figure.
void print_loglog_plot(std::ostream& out, const CountHistogram& h, int width = 72,
                       int height = 20);

/// One row of a summary table.
struct SummaryRow {
  std::string label;
  std::string value;
};

void print_table(std::ostream& out, const std::string& title,
                 const std::vector<SummaryRow>& rows);

/// Format a power-law fit verdict line.
std::string describe_fit(const PowerLawFit& fit);

/// Figure-style summary of a hostile-regime scenario run (plain data: the
/// analysis layer knows nothing about the simulator — core assembles this
/// from the scenario phases and the campaign report).
struct ScenarioSummary {
  struct Phase {
    std::uint64_t begin_s = 0;  ///< wave start, seconds into the campaign
    std::uint64_t end_s = 0;    ///< wave end (exclusive)
    double arrival_boost = 1.0;
    double background_boost = 1.0;
    double think_scale = 1.0;
    bool polluter_flood = false;
    std::uint64_t frames_lost = 0;  ///< capture losses inside this wave
  };

  std::string name;             ///< preset name ("query_storm", ...)
  std::uint64_t duration_s = 0;
  std::vector<Phase> phases;
  std::uint64_t frames_captured = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t buffer_high_water = 0;
  std::uint64_t publishes = 0;
  std::uint64_t polluted_entries = 0;  ///< forged announces at popular files
  std::uint64_t sessions = 0;          ///< stat pings == sessions started
  /// Per-second capture losses, the Figure 2-style loss curve (sparse:
  /// only seconds with losses appear).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> loss_curve;
};

/// Render the scenario summary: phase table (the churn timeline), loss
/// curve and pollution hit-rate.  Deterministic text, suitable for golden
/// pinning.
void print_scenario_summary(std::ostream& out, const ScenarioSummary& s);

/// print_scenario_summary into a string (what the golden tests pin).
std::string scenario_summary_text(const ScenarioSummary& s);

}  // namespace dtr::analysis
