// Exact distinct counting.
//
// The paper calls out "unusual and sometimes striking challenges (like for
// instance counting the number of distinct fileID observed)" in 9 billion
// messages.  Two exact counters are provided:
//   * BitsetDistinctCounter — for 32-bit keys (IP addresses, clientIDs):
//     a lazily-paged bitmap over the 2^32 key space, 512 MiB worst case,
//     kilobytes for clustered key sets; O(1) per observation.
//   * PairSetCounter — for (file, client) relation dedup, used to build the
//     "clients per file" / "files per client" distributions exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/binning.hpp"
#include "common/bytes.hpp"

namespace dtr::analysis {

/// Exact distinct counter over 32-bit keys via a paged bitmap.
class BitsetDistinctCounter {
 public:
  BitsetDistinctCounter();

  /// Observe a key; returns true if it was new.
  bool observe(std::uint32_t key);

  [[nodiscard]] bool seen(std::uint32_t key) const;
  [[nodiscard]] std::uint64_t distinct() const { return distinct_; }
  [[nodiscard]] std::uint64_t memory_bytes() const;

  /// Checkpoint codec: the set bits, as keys.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

  static constexpr std::uint32_t kPageBits = 18;  // 2^18 bits = 32 KiB/page
  static constexpr std::uint32_t kPageWords = (1u << kPageBits) / 64;

 private:
  std::vector<std::unique_ptr<std::uint64_t[]>> pages_;
  std::uint64_t distinct_ = 0;
};

/// Deduplicated (a, b) pair relation with per-side degree histograms:
/// exactly the data behind Figures 4-7 (a = file, b = client).
class PairSetCounter {
 public:
  /// Record the pair; returns true if it was new.
  bool observe(std::uint64_t a, std::uint32_t b);

  [[nodiscard]] std::uint64_t pairs() const { return set_.size(); }

  /// Checkpoint codec: the deduplicated pairs (order irrelevant — the
  /// degree histograms are computed from the set, not from history).
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

  /// Histogram of "number of b's per a" values -> "number of a's with that
  /// many b's" (e.g. clients providing each file -> files per count).
  [[nodiscard]] CountHistogram degree_of_a() const;
  /// Symmetric: number of a's per b.
  [[nodiscard]] CountHistogram degree_of_b() const;

 private:
  struct Key {
    std::uint64_t a;
    std::uint32_t b;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.a * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::uint64_t>(k.b) + 0xD1B54A32D192ED03ULL +
            (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h * 0xBF58476D1CE4E5B9ULL >> 7);
    }
  };

  std::unordered_set<Key, KeyHash> set_;
};

}  // namespace dtr::analysis
