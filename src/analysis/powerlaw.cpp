#include "analysis/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dtr::analysis {

PowerLawFit fit_power_law(const CountHistogram& h, std::uint64_t xmin) {
  PowerLawFit fit;
  fit.xmin = std::max<std::uint64_t>(xmin, 1);

  // Continuous-approximation MLE (Clauset et al. eq. 3.7):
  //   alpha = 1 + n / sum_i ln(x_i / (xmin - 0.5))
  double log_sum = 0.0;
  std::uint64_t n = 0;
  const double shift = static_cast<double>(fit.xmin) - 0.5;
  for (const auto& [value, count] : h.bins()) {
    if (value < fit.xmin) continue;
    log_sum += static_cast<double>(count) *
               std::log(static_cast<double>(value) / shift);
    n += count;
  }
  fit.n_tail = n;
  if (n == 0 || log_sum <= 0.0) return fit;
  fit.alpha = 1.0 + static_cast<double>(n) / log_sum;

  // KS distance between the empirical tail CDF and the fitted CDF
  // (continuous approximation P(X >= x) = (x / xmin)^{1 - alpha}).
  double ks = 0.0;
  std::uint64_t cum = 0;
  for (const auto& [value, count] : h.bins()) {
    if (value < fit.xmin) continue;
    cum += count;
    double empirical = static_cast<double>(cum) / static_cast<double>(n);
    double model =
        1.0 - std::pow(static_cast<double>(value + 1) /
                           static_cast<double>(fit.xmin),
                       1.0 - fit.alpha);
    ks = std::max(ks, std::abs(empirical - model));
  }
  fit.ks_distance = ks;
  return fit;
}

PowerLawFit fit_power_law_auto(const CountHistogram& h,
                               std::size_t max_candidates) {
  // Candidate xmin values: the distinct observed values, subsampled evenly
  // if there are too many.  xmin candidates whose tail is tiny are skipped.
  std::vector<std::uint64_t> candidates;
  candidates.reserve(h.bins().size());
  for (const auto& [value, count] : h.bins()) {
    if (value >= 1) candidates.push_back(value);
  }
  if (candidates.empty()) return {};

  std::size_t stride =
      std::max<std::size_t>(1, candidates.size() / max_candidates);

  PowerLawFit best;
  bool have_best = false;
  for (std::size_t i = 0; i < candidates.size(); i += stride) {
    PowerLawFit fit = fit_power_law(h, candidates[i]);
    if (fit.n_tail < 25 || fit.alpha <= 1.0) continue;
    if (!have_best || fit.ks_distance < best.ks_distance) {
      best = fit;
      have_best = true;
    }
  }
  return have_best ? best : fit_power_law(h, 1);
}

}  // namespace dtr::analysis
