#include "analysis/campaign_stats.hpp"

namespace dtr::analysis {

void CampaignStats::observe_file_meta(anon::AnonFileId file,
                                      const anon::AnonFileMeta& meta) {
  auto [it, inserted] = seen_files_.try_emplace(file, 0);
  if (inserted) {
    std::uint32_t kb = meta.size_kb.value_or(0);
    it->second = kb;
    if (kb > 0) sizes_.add(kb);
  }
}

void CampaignStats::consume(const anon::AnonEvent& event) {
  ++messages_;
  obs::inc(metrics_.messages);
  if (event.is_query) {
    ++queries_;
    obs::inc(metrics_.queries);
  }
  distinct_clients_.observe(event.peer);

  struct Visitor {
    CampaignStats& s;
    const anon::AnonEvent& ev;

    void operator()(const anon::AServStatReq&) {}
    void operator()(const anon::AServStatRes&) {}
    void operator()(const anon::AServerDescReq&) {}
    void operator()(const anon::AServerDescRes&) {}
    void operator()(const anon::AGetServerList&) {}
    void operator()(const anon::AServerList&) {}

    void operator()(const anon::AFileSearchReq&) {
      // Keyword searches do not bind a client to a fileID; only source
      // requests do (the paper's Figs 5/7 are about files *asked for*,
      // which at the protocol level are getsources fileIDs).
    }
    void operator()(const anon::AFileSearchRes& m) {
      for (const auto& f : m.results) {
        s.distinct_clients_.observe(f.provider);
        s.provides_.observe(f.file, f.provider);
        s.observe_file_meta(f.file, f.meta);
      }
    }
    void operator()(const anon::AGetSourcesReq& m) {
      for (auto file : m.files) {
        s.asks_.observe(file, ev.peer);
        s.seen_files_.try_emplace(file, 0);
      }
    }
    void operator()(const anon::AFoundSourcesRes& m) {
      for (const auto& src : m.sources) {
        s.distinct_clients_.observe(src.client);
        s.provides_.observe(m.file, src.client);
      }
    }
    void operator()(const anon::APublishReq& m) {
      for (const auto& f : m.files) {
        s.distinct_clients_.observe(f.provider);
        s.provides_.observe(f.file, f.provider);
        s.observe_file_meta(f.file, f.meta);
      }
    }
    void operator()(const anon::APublishAck&) {}
  };

  std::visit(Visitor{*this, event}, event.message);

  // pairs()/distinct() are O(1) accessors, so refreshing the gauges on
  // every message is cheap and keeps snapshots exact at any point in time.
  obs::set(metrics_.provider_relations,
           static_cast<std::int64_t>(provides_.pairs()));
  obs::set(metrics_.asker_relations, static_cast<std::int64_t>(asks_.pairs()));
  obs::set(metrics_.clients_distinct,
           static_cast<std::int64_t>(distinct_clients_.distinct()));
  obs::set(metrics_.files_distinct,
           static_cast<std::int64_t>(seen_files_.size()));
}

void CampaignStats::save_state(ByteWriter& out) const {
  out.u64le(messages_);
  out.u64le(queries_);
  distinct_clients_.save_state(out);
  provides_.save_state(out);
  asks_.save_state(out);
  out.u64le(seen_files_.size());
  for (const auto& [file, kb] : seen_files_) {
    out.u64le(file);
    out.u32le(kb);
  }
  const auto& bins = sizes_.bins();
  out.u64le(bins.size());
  for (const auto& [value, count] : bins) {
    out.u64le(value);
    out.u64le(count);
  }
}

bool CampaignStats::restore_state(ByteReader& in) {
  messages_ = in.u64le();
  queries_ = in.u64le();
  if (queries_ > messages_) return false;
  if (!distinct_clients_.restore_state(in)) return false;
  if (!provides_.restore_state(in)) return false;
  if (!asks_.restore_state(in)) return false;
  seen_files_.clear();
  const std::uint64_t files = in.u64le();
  if (files > in.remaining() / 12) return false;
  seen_files_.reserve(files);
  for (std::uint64_t i = 0; i < files; ++i) {
    const std::uint64_t file = in.u64le();
    const std::uint32_t kb = in.u32le();
    if (!seen_files_.try_emplace(file, kb).second) return false;
  }
  sizes_ = CountHistogram{};
  const std::uint64_t bins = in.u64le();
  if (bins > in.remaining() / 16) return false;
  std::uint64_t last_value = 0;
  for (std::uint64_t i = 0; i < bins; ++i) {
    const std::uint64_t value = in.u64le();
    const std::uint64_t count = in.u64le();
    if (i > 0 && value <= last_value) return false;  // bins are sorted
    last_value = value;
    sizes_.add(value, count);
  }
  return in.ok();
}

void CampaignStats::bind_metrics(obs::Registry& registry) {
  metrics_.messages = &registry.counter("analysis.messages");
  metrics_.queries = &registry.counter("analysis.queries");
  metrics_.provider_relations = &registry.gauge("analysis.relations.provider");
  metrics_.asker_relations = &registry.gauge("analysis.relations.asker");
  metrics_.clients_distinct = &registry.gauge("analysis.clients.distinct");
  metrics_.files_distinct = &registry.gauge("analysis.files.distinct");
}

}  // namespace dtr::analysis
