#include "analysis/campaign_stats.hpp"

namespace dtr::analysis {

void CampaignStats::observe_file_meta(anon::AnonFileId file,
                                      const anon::AnonFileMeta& meta) {
  auto [it, inserted] = seen_files_.try_emplace(file, 0);
  if (inserted) {
    std::uint32_t kb = meta.size_kb.value_or(0);
    it->second = kb;
    if (kb > 0) sizes_.add(kb);
  }
}

void CampaignStats::consume(const anon::AnonEvent& event) {
  ++messages_;
  if (event.is_query) ++queries_;
  distinct_clients_.observe(event.peer);

  struct Visitor {
    CampaignStats& s;
    const anon::AnonEvent& ev;

    void operator()(const anon::AServStatReq&) {}
    void operator()(const anon::AServStatRes&) {}
    void operator()(const anon::AServerDescReq&) {}
    void operator()(const anon::AServerDescRes&) {}
    void operator()(const anon::AGetServerList&) {}
    void operator()(const anon::AServerList&) {}

    void operator()(const anon::AFileSearchReq&) {
      // Keyword searches do not bind a client to a fileID; only source
      // requests do (the paper's Figs 5/7 are about files *asked for*,
      // which at the protocol level are getsources fileIDs).
    }
    void operator()(const anon::AFileSearchRes& m) {
      for (const auto& f : m.results) {
        s.distinct_clients_.observe(f.provider);
        s.provides_.observe(f.file, f.provider);
        s.observe_file_meta(f.file, f.meta);
      }
    }
    void operator()(const anon::AGetSourcesReq& m) {
      for (auto file : m.files) {
        s.asks_.observe(file, ev.peer);
        s.seen_files_.try_emplace(file, 0);
      }
    }
    void operator()(const anon::AFoundSourcesRes& m) {
      for (const auto& src : m.sources) {
        s.distinct_clients_.observe(src.client);
        s.provides_.observe(m.file, src.client);
      }
    }
    void operator()(const anon::APublishReq& m) {
      for (const auto& f : m.files) {
        s.distinct_clients_.observe(f.provider);
        s.provides_.observe(f.file, f.provider);
        s.observe_file_meta(f.file, f.meta);
      }
    }
    void operator()(const anon::APublishAck&) {}
  };

  std::visit(Visitor{*this, event}, event.message);
}

}  // namespace dtr::analysis
