// File-spread analysis — the paper's §4 direction "how files spread among
// users".
//
// For every file, tracks the times at which its provider population
// crosses milestone sizes (1st, 2nd, 5th, 10th, 25th, 100th provider),
// exactly deduplicated.  From those, time-to-k distributions and a spread
// report (how long a file needs to become widely available) are derived —
// the quantities a replication or caching model would be fitted on.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "anon/anonymiser.hpp"
#include "common/binning.hpp"
#include "common/clock.hpp"

namespace dtr::analysis {

class FileSpreadTracker {
 public:
  static constexpr std::array<std::uint32_t, 6> kMilestones = {1,  2,  5,
                                                               10, 25, 100};

  void consume(const anon::AnonEvent& event);

  struct Spread {
    std::uint32_t providers = 0;
    // Time (since capture start) when the k-th milestone was reached;
    // engaged entries only for milestones actually crossed.
    std::array<SimTime, kMilestones.size()> milestone_time{};
    std::array<bool, kMilestones.size()> reached{};
  };

  [[nodiscard]] const std::unordered_map<anon::AnonFileId, Spread>& files()
      const {
    return files_;
  }

  /// Distribution over files of (time to reach `milestone_index+1`-th
  /// provider since first provider), in seconds.  Files that never crossed
  /// the milestone are excluded.
  [[nodiscard]] CountHistogram time_to_milestone(
      std::size_t milestone_index) const;

  /// Number of files that reached each milestone.
  [[nodiscard]] std::array<std::uint64_t, kMilestones.size()>
  milestone_counts() const;

  /// Record one (file, provider) relation directly (consume() routes the
  /// relevant message types here).
  void observe_provider(anon::AnonFileId file, anon::AnonClientId provider,
                        SimTime time);

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint32_t>& p)
        const noexcept {
      return static_cast<std::size_t>(
          (p.first * 0x9E3779B97F4A7C15ULL) ^
          (static_cast<std::uint64_t>(p.second) * 0xBF58476D1CE4E5B9ULL));
    }
  };

  std::unordered_map<anon::AnonFileId, Spread> files_;
  std::unordered_set<std::pair<std::uint64_t, std::uint32_t>, PairHash>
      seen_pairs_;
};

}  // namespace dtr::analysis
