// Interest-graph analysis — the paper's §4 direction "communities of
// interests", following the line of work it cites (Guillaume, Le-Blond &
// Latapy: "Clustering in P2P exchanges and consequences on performances",
// IPTPS 2005; Handurukande et al., EuroSys 2006).
//
// The dataset induces a bipartite client-interest graph: client c is linked
// to file f when c asked for f.  Communities of interest show up as
// *clustering* in the client projection (two clients sharing one file tend
// to share more).  Exact projection is quadratic in the worst case, so the
// estimator samples: it picks random clients with >= 2 files, random pairs
// of their files, and measures how often another client is interested in
// both — a sampled bipartite clustering coefficient, compared against the
// value expected under a degree-preserving null model.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "anon/anonymiser.hpp"
#include "common/binning.hpp"
#include "common/rng.hpp"

namespace dtr::analysis {

class InterestGraph {
 public:
  /// Record "client asked for file" (deduplicated internally).
  void add_interest(anon::AnonClientId client, anon::AnonFileId file);

  /// Route the relevant messages of an anonymised stream here.
  void consume(const anon::AnonEvent& event);

  [[nodiscard]] std::uint64_t edges() const { return edges_; }
  [[nodiscard]] std::size_t clients() const { return by_client_.size(); }
  [[nodiscard]] std::size_t files() const { return by_file_.size(); }

  /// Degree distributions of the bipartite graph.
  [[nodiscard]] CountHistogram client_degrees() const;
  [[nodiscard]] CountHistogram file_degrees() const;

  struct ClusteringEstimate {
    double coefficient = 0.0;   ///< sampled bipartite clustering cc*
    double null_expectation = 0.0;  ///< same statistic under random pairing
    std::uint64_t samples = 0;
    /// Communities exist when interests cluster well above the null model.
    [[nodiscard]] double lift() const {
      return null_expectation > 0 ? coefficient / null_expectation : 0.0;
    }
  };

  /// Sampled clustering: for random (client, file-pair) wedges, the
  /// fraction where some *other* client is interested in both files.
  [[nodiscard]] ClusteringEstimate estimate_clustering(
      std::uint64_t samples, std::uint64_t seed) const;

  /// Top-k most similar clients to `client` by common-interest count
  /// (the "neighbours of interest" a recommender would use).  Linear in
  /// the interest lists of the client's files.
  [[nodiscard]] std::vector<std::pair<anon::AnonClientId, std::uint32_t>>
  similar_clients(anon::AnonClientId client, std::size_t k) const;

 private:
  [[nodiscard]] bool interested(anon::AnonClientId client,
                                anon::AnonFileId file) const;

  std::unordered_map<anon::AnonClientId, std::vector<anon::AnonFileId>>
      by_client_;
  std::unordered_map<anon::AnonFileId, std::vector<anon::AnonClientId>>
      by_file_;
  std::uint64_t edges_ = 0;
};

}  // namespace dtr::analysis
