// Bounded multi-producer/multi-consumer queue with blocking backpressure.
//
// This is the coupling between pipeline stages (Figure 1 of the paper):
// unlike the kernel capture buffer — which *drops* on overflow, by design —
// the stages downstream of the capture must not lose data, so a full queue
// blocks the producer instead.  Mutex + condition variables are entirely
// sufficient at the message rates involved (the paper's own pipeline is
// bounded by disk and network, not synchronisation).
//
// When the calling thread is registered with an obs::Profiler, blocked
// time is attributed (queue_wait on the full-queue producer side, park on
// the empty-queue consumer side).  Each wait site pre-checks its predicate
// so an uncontended call never reads a clock.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/profiler.hpp"

namespace dtr::core {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false if the queue was closed
  /// (the item is dropped in that case — shutdown path only).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      obs::ProfScope prof(obs::ThreadState::kQueueWait);
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt once the queue is
  /// closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty() && !closed_) {
      obs::ProfScope prof(obs::ThreadState::kPark);
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Enqueue every element of `items` (moved out of the vector), blocking
  /// while the queue is full.  Elements are admitted in chunks as capacity
  /// frees up — one lock round-trip per chunk instead of one per element —
  /// so a vector larger than the queue's capacity still goes through.
  /// Returns the number of elements enqueued; anything short of
  /// items.size() means the queue was closed mid-push and the remainder
  /// was dropped (shutdown path only).  `items` is left empty either way.
  std::size_t push_all(std::vector<T>& items) {
    std::size_t pushed = 0;
    {
      std::unique_lock lock(mutex_);
      while (pushed < items.size()) {
        if (items_.size() >= capacity_ && !closed_) {
          obs::ProfScope prof(obs::ThreadState::kQueueWait);
          not_full_.wait(
              lock, [this] { return items_.size() < capacity_ || closed_; });
        }
        if (closed_) break;
        while (pushed < items.size() && items_.size() < capacity_) {
          items_.push_back(std::move(items[pushed]));
          ++pushed;
        }
        // Wake consumers before (possibly) blocking for the next chunk:
        // they are what frees the capacity this loop is waiting on.
        not_empty_.notify_all();
      }
    }
    if (pushed > 0) not_empty_.notify_all();
    items.clear();
    return pushed;
  }

  /// Blocks while the queue is empty, then moves *every* queued element
  /// onto the back of `out` in FIFO order — the whole backlog in one lock
  /// round-trip.  Returns false (appending nothing) once the queue is
  /// closed and drained.
  bool pop_all(std::vector<T>& out) {
    {
      std::unique_lock lock(mutex_);
      if (items_.empty() && !closed_) {
        obs::ProfScope prof(obs::ThreadState::kPark);
        not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      }
      if (items_.empty()) return false;
      out.reserve(out.size() + items_.size());
      while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.notify_all();
    return true;
  }

  /// Wake all waiters; pending items remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dtr::core
