// Bounded multi-producer/multi-consumer queue with blocking backpressure.
//
// This is the coupling between pipeline stages (Figure 1 of the paper):
// unlike the kernel capture buffer — which *drops* on overflow, by design —
// the stages downstream of the capture must not lose data, so a full queue
// blocks the producer instead.  Mutex + condition variables are entirely
// sufficient at the message rates involved (the paper's own pipeline is
// bounded by disk and network, not synchronisation).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace dtr::core {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false if the queue was closed
  /// (the item is dropped in that case — shutdown path only).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt once the queue is
  /// closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wake all waiters; pending items remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dtr::core
