// donkeytrace — umbrella public header.
//
// Reproduction of "Ten weeks in the life of an eDonkey server" (Aidouni,
// Latapy, Magnien): an eDonkey directory server, a synthetic client
// population, a UDP/IP/pcap capture substrate, the real-time
// decode-and-anonymise pipeline with the paper's purpose-built data
// structures, and the analysis toolkit that regenerates the paper's
// figures.  See DESIGN.md for the module map.
#pragma once

#include "analysis/campaign_stats.hpp"   // IWYU pragma: export
#include "analysis/distinct.hpp"         // IWYU pragma: export
#include "analysis/interest_graph.hpp"   // IWYU pragma: export
#include "analysis/powerlaw.hpp"         // IWYU pragma: export
#include "analysis/report.hpp"           // IWYU pragma: export
#include "analysis/spread.hpp"           // IWYU pragma: export
#include "analysis/temporal.hpp"         // IWYU pragma: export
#include "anon/anonymiser.hpp"           // IWYU pragma: export
#include "anon/client_table.hpp"         // IWYU pragma: export
#include "anon/fileid_store.hpp"         // IWYU pragma: export
#include "anon/rejected_schemes.hpp"     // IWYU pragma: export
#include "capture/engine.hpp"            // IWYU pragma: export
#include "common/strings.hpp"            // IWYU pragma: export
#include "core/campaign_runner.hpp"      // IWYU pragma: export
#include "core/parallel_pipeline.hpp"    // IWYU pragma: export
#include "core/pipeline.hpp"             // IWYU pragma: export
#include "core/server_pool.hpp"          // IWYU pragma: export
#include "decode/decoder.hpp"            // IWYU pragma: export
#include "decode/tcp_decoder.hpp"        // IWYU pragma: export
#include "hash/md4.hpp"                  // IWYU pragma: export
#include "hash/md5.hpp"                  // IWYU pragma: export
#include "net/pcap.hpp"                  // IWYU pragma: export
#include "net/tcp.hpp"                   // IWYU pragma: export
#include "proto/codec.hpp"               // IWYU pragma: export
#include "proto/tcp_codec.hpp"           // IWYU pragma: export
#include "server/server.hpp"             // IWYU pragma: export
#include "sim/background.hpp"            // IWYU pragma: export
#include "sim/campaign.hpp"              // IWYU pragma: export
#include "sim/tcp_session.hpp"           // IWYU pragma: export
#include "workload/behavior.hpp"         // IWYU pragma: export
#include "workload/catalog.hpp"          // IWYU pragma: export
#include "workload/idstream.hpp"         // IWYU pragma: export
#include "xmlio/compress.hpp"            // IWYU pragma: export
#include "xmlio/schema.hpp"              // IWYU pragma: export
#include "xmlio/validate.hpp"            // IWYU pragma: export
