// Free-list object pool for the pipeline data plane.
//
// The batched pipelines shuttle container objects (frame batches, decoded-
// message vectors, anonymised-event chunks) between threads at a high rate;
// constructing them fresh each time puts an allocation — and later a free
// on a *different* thread — on the hot path.  The pool recycles them
// instead: release() parks an object after the owner reset() its logical
// contents (vector capacity survives, so a recycled batch's buffers are
// already warm), acquire() hands it back out.  Disabled, it degenerates to
// plain construction; the differential tests run both ways, because pooling
// must never change the output bytes.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dtr::core {

template <typename T>
class ObjectPool {
 public:
  ObjectPool(bool enabled, std::size_t max_retained)
      : enabled_(enabled), max_retained_(max_retained) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Instrument with shared hit/miss counters (several pools may bind the
  /// same pair; either may be null).  Call before any thread uses the pool.
  void bind_metrics(obs::Counter* hits, obs::Counter* misses) {
    hits_ = hits;
    misses_ = misses;
  }

  /// A recycled object when one is parked, a fresh T{} otherwise.  The
  /// caller owns it until release().
  [[nodiscard]] T acquire() {
    if (enabled_) {
      std::unique_lock lock(mutex_);
      if (!free_.empty()) {
        T obj = std::move(free_.back());
        free_.pop_back();
        lock.unlock();
        obs::inc(hits_);
        return obj;
      }
    }
    obs::inc(misses_);
    return T{};
  }

  /// Park `obj` for reuse (the caller must have reset its logical contents
  /// first).  Beyond max_retained — or with pooling disabled — the object
  /// is simply destroyed.
  void release(T&& obj) {
    if (!enabled_) return;
    std::lock_guard lock(mutex_);
    if (free_.size() < max_retained_) free_.push_back(std::move(obj));
  }

  [[nodiscard]] std::size_t retained() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  const bool enabled_;
  const std::size_t max_retained_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  mutable std::mutex mutex_;
  std::vector<T> free_;
};

}  // namespace dtr::core
