#include "core/campaign_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>

#include "core/checkpoint.hpp"

namespace dtr::core {

RunnerConfig RunnerConfig::tiny(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 6 * kHour;
  cfg.campaign.population.client_count = 120;
  cfg.campaign.catalog.file_count = 800;
  cfg.campaign.catalog.vocabulary = 300;
  cfg.campaign.population.collector_share_max = 1'200;
  cfg.campaign.population.scanner_ask_max = 700;
  cfg.campaign.flash_crowd_count = 2;
  return cfg;
}

RunnerConfig RunnerConfig::bench_scale(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 2 * kWeek;
  cfg.campaign.population.client_count = 20'000;
  cfg.campaign.catalog.file_count = 60'000;
  cfg.campaign.population.collector_share_max = 12'000;
  cfg.campaign.population.scanner_ask_max = 40'000;
  return cfg;
}

std::string checkpoint_file_name(SimTime boundary) {
  std::string digits = std::to_string(boundary);
  std::string name = "checkpoint-";
  name.append(20 - digits.size(), '0');  // u64 is at most 20 decimal digits
  name += digits;
  name += ".ckpt";
  return name;
}

namespace {

/// The config fingerprint stored in the "meta" section: a snapshot only
/// resumes into a runner whose config would have produced it.
struct CheckpointMeta {
  std::uint64_t seed = 0;
  std::uint64_t duration = 0;
  std::uint64_t clients = 0;
  std::uint64_t files = 0;
  std::uint64_t workers = 0;  // normalised: serial pipeline = 1
  std::uint64_t buffer_capacity = 0;
  std::uint8_t has_background = 0;
  std::uint64_t background_seed = 0;
  /// ScenarioConfig::fingerprint() — 0 for steady/no scenario.  A storm
  /// campaign must not silently resume as (or from) a steady one.
  std::uint64_t scenario_fingerprint = 0;
  std::uint8_t has_xml = 0;
  std::uint8_t has_pcap = 0;
  std::uint8_t has_series = 0;
  std::uint8_t has_metrics = 0;
  std::uint64_t boundary = 0;  // simulated time the snapshot was taken at
};

CheckpointMeta meta_of(const RunnerConfig& cfg, SimTime boundary) {
  CheckpointMeta m;
  m.seed = cfg.campaign.seed;
  m.duration = cfg.campaign.duration;
  m.clients = cfg.campaign.population.client_count;
  m.files = cfg.campaign.catalog.file_count;
  m.workers = cfg.workers > 1 ? cfg.workers : 1;
  m.buffer_capacity = cfg.buffer.capacity;
  m.has_background = cfg.background.has_value() ? 1 : 0;
  m.background_seed = cfg.background ? cfg.background->seed : 0;
  m.scenario_fingerprint =
      cfg.campaign.scenario ? cfg.campaign.scenario->fingerprint() : 0;
  m.has_xml = cfg.xml_out != nullptr ? 1 : 0;
  m.has_pcap = cfg.pcap_path.empty() ? 0 : 1;
  m.has_series = cfg.series != nullptr ? 1 : 0;
  m.has_metrics = cfg.metrics != nullptr ? 1 : 0;
  m.boundary = boundary;
  return m;
}

void save_meta(const CheckpointMeta& m, ByteWriter& out) {
  out.u64le(m.seed);
  out.u64le(m.duration);
  out.u64le(m.clients);
  out.u64le(m.files);
  out.u64le(m.workers);
  out.u64le(m.buffer_capacity);
  out.u8(m.has_background);
  out.u64le(m.background_seed);
  out.u64le(m.scenario_fingerprint);
  out.u8(m.has_xml);
  out.u8(m.has_pcap);
  out.u8(m.has_series);
  out.u8(m.has_metrics);
  out.u64le(m.boundary);
}

bool read_meta(ByteReader& in, CheckpointMeta& m) {
  m.seed = in.u64le();
  m.duration = in.u64le();
  m.clients = in.u64le();
  m.files = in.u64le();
  m.workers = in.u64le();
  m.buffer_capacity = in.u64le();
  m.has_background = in.u8();
  m.background_seed = in.u64le();
  m.scenario_fingerprint = in.u64le();
  m.has_xml = in.u8();
  m.has_pcap = in.u8();
  m.has_series = in.u8();
  m.has_metrics = in.u8();
  m.boundary = in.u64le();
  return in.ok();
}

/// First mismatching field name, or nullptr when the snapshot fits.
const char* meta_mismatch(const CheckpointMeta& want,
                          const CheckpointMeta& got) {
  if (got.seed != want.seed) return "seed";
  if (got.duration != want.duration) return "duration";
  if (got.clients != want.clients) return "client count";
  if (got.files != want.files) return "file count";
  if (got.workers != want.workers) return "worker count";
  if (got.buffer_capacity != want.buffer_capacity) return "buffer capacity";
  if (got.has_background != want.has_background ||
      got.background_seed != want.background_seed) {
    return "background traffic";
  }
  if (got.scenario_fingerprint != want.scenario_fingerprint) return "scenario";
  if (got.has_xml != want.has_xml) return "xml output";
  if (got.has_pcap != want.has_pcap) return "pcap output";
  if (got.has_series != want.has_series) return "time series";
  if (got.has_metrics != want.has_metrics) return "metrics registry";
  return nullptr;
}

}  // namespace

std::optional<analysis::ScenarioSummary> build_scenario_summary(
    const sim::Scenario* scenario, const CampaignReport& report) {
  if (scenario == nullptr || !scenario->engaged()) return std::nullopt;
  analysis::ScenarioSummary s;
  s.name = sim::scenario_kind_name(scenario->config().kind);
  s.duration_s = to_seconds(scenario->duration());
  s.frames_captured = report.frames_captured;
  s.frames_lost = report.frames_lost;
  s.buffer_high_water = report.buffer_high_water;
  s.publishes = report.truth.publishes;
  s.polluted_entries = report.truth.polluted_entries;
  s.sessions = report.truth.stat_pings;
  s.loss_curve.reserve(report.loss_series.size());
  for (const capture::LossPoint& p : report.loss_series) {
    s.loss_curve.emplace_back(p.second, p.lost);
  }
  for (const sim::ScenarioPhase& phase : scenario->phases()) {
    analysis::ScenarioSummary::Phase row;
    row.begin_s = to_seconds(phase.begin);
    row.end_s = to_seconds(phase.end);
    row.arrival_boost = phase.arrival_boost;
    row.background_boost = phase.background_boost;
    row.think_scale = phase.think_scale;
    row.polluter_flood = phase.polluter_targets_popular;
    for (const capture::LossPoint& p : report.loss_series) {
      if (p.second >= row.begin_s && p.second < row.end_s) {
        row.frames_lost += p.lost;
      }
    }
    s.phases.push_back(row);
  }
  return s;
}

CampaignRunner::CampaignRunner(const RunnerConfig& config)
    : config_(config), simulator_(config.campaign) {}

CampaignReport CampaignRunner::run() {
  const bool checkpointing = !config_.checkpoint_dir.empty();
  const bool resuming = !config_.resume_from.empty();

  // A malformed scenario config is rejected before any subsystem runs (the
  // CLI surfaces this as a clean nonzero exit, never an abort mid-storm).
  if (config_.campaign.scenario) {
    const std::string bad = config_.campaign.scenario->validate();
    if (!bad.empty()) {
      DTR_LOG_ERROR(config_.log, "scenario", 0,
                    "scenario config rejected: " << bad);
      CampaignReport report;
      report.pipeline.error = "scenario: " + bad;
      return report;
    }
  }

  // A failed checkpoint parse/restore reports through the pipeline error
  // channel (the run produced nothing trustworthy).
  auto fail_run = [&](const std::string& what) {
    DTR_LOG_ERROR(config_.log, "checkpoint", 0, what);
    CampaignReport report;
    if (parallel_) {
      report.pipeline = parallel_->finish();
    } else if (pipeline_) {
      report.pipeline = pipeline_->finish();
    }
    report.pipeline.error = "checkpoint: " + what;
    return report;
  };

  // Parse and fingerprint-check the snapshot before any subsystem exists:
  // a rejected snapshot must leave nothing half-restored.
  std::optional<CheckpointView> view;
  SimTime resume_time = 0;
  if (resuming) {
    std::string err;
    view = CheckpointView::load(config_.resume_from, err);
    if (!view) {
      return fail_run("cannot resume from '" + config_.resume_from +
                      "': " + err);
    }
    CheckpointMeta meta;
    ByteReader meta_reader = view->reader("meta");
    if (!read_meta(meta_reader, meta)) {
      return fail_run("snapshot meta section missing or malformed");
    }
    const CheckpointMeta want = meta_of(config_, 0);
    if (const char* field = meta_mismatch(want, meta)) {
      return fail_run(std::string("snapshot does not match this config (") +
                      field + " differs)");
    }
    resume_time = meta.boundary;
  }

  capture::CaptureEngine engine(config_.buffer);
  if (!config_.pcap_path.empty()) {
    if (resuming) {
      ByteReader r = view->reader("pcap");
      const std::uint64_t pcap_bytes = r.u64le();
      const std::uint64_t pcap_records = r.u64le();
      if (!r.ok()) return fail_run("snapshot pcap section rejected");
      pcap_ = std::make_unique<net::PcapWriter>(config_.pcap_path, pcap_bytes,
                                                pcap_records);
      if (!pcap_->ok()) {
        return fail_run("pcap file '" + config_.pcap_path +
                        "' is shorter than the snapshot's offset");
      }
    } else {
      pcap_ = std::make_unique<net::PcapWriter>(config_.pcap_path);
    }
    engine.set_pcap(pcap_.get());
  }

  if (config_.metrics != nullptr) {
    engine.bind_metrics(*config_.metrics);
    simulator_.bind_metrics(*config_.metrics);
  }
  engine.bind_telemetry(config_.log, config_.flight);
  simulator_.bind_telemetry(config_.log);

  // scenario.* instruments: which wave (if any) the campaign is in and the
  // intensity multipliers it applies.  Pure functions of simulated time, so
  // unlike the operational checkpoint.* family they ARE sampled into the
  // time series (byte-reproducible across serial/parallel/resume).
  const sim::Scenario* scenario = simulator_.scenario();
  obs::Gauge* sc_phase = nullptr;
  obs::Gauge* sc_arrival = nullptr;
  obs::Gauge* sc_background = nullptr;
  obs::Gauge* sc_think = nullptr;
  obs::Gauge* sc_flood = nullptr;
  if (config_.metrics != nullptr && scenario != nullptr) {
    sc_phase = &config_.metrics->gauge("scenario.phase");
    sc_arrival = &config_.metrics->gauge("scenario.arrival_boost_milli");
    sc_background = &config_.metrics->gauge("scenario.background_boost_milli");
    sc_think = &config_.metrics->gauge("scenario.think_scale_milli");
    sc_flood = &config_.metrics->gauge("scenario.polluter_flood");
  }
  // Only rewritten when the frame clock crosses a wave edge.
  int scenario_last_phase = -2;

  // checkpoint.* instruments (excluded from the series by default:
  // checkpointing is operational, not part of the measured campaign).
  obs::Counter* ckpt_writes = nullptr;
  obs::Counter* ckpt_write_failures = nullptr;
  obs::Counter* ckpt_bytes = nullptr;
  obs::Counter* ckpt_restores = nullptr;
  obs::Gauge* ckpt_last_time = nullptr;
  if (config_.metrics != nullptr && (checkpointing || resuming)) {
    ckpt_writes = &config_.metrics->counter("checkpoint.writes");
    ckpt_write_failures = &config_.metrics->counter("checkpoint.write_failures");
    ckpt_bytes = &config_.metrics->counter("checkpoint.bytes");
    ckpt_restores = &config_.metrics->counter("checkpoint.restores");
    ckpt_last_time = &config_.metrics->gauge("checkpoint.last_time");
  }

  // When checkpoint/resume is in play and an XML sink is attached, the
  // runner interposes its own buffer: the written prefix must be readable
  // (to snapshot it) and replaceable (to restore it), which a generic
  // ostream is not.  The content reaches the caller's stream at the end.
  std::ostringstream xml_buffer;
  const bool xml_interposed =
      (checkpointing || resuming) && config_.xml_out != nullptr;
  std::ostream* xml_sink = xml_interposed ? &xml_buffer : config_.xml_out;

  if (config_.workers > 1) {
    ParallelPipelineConfig parallel_config;
    parallel_config.server_ip = config_.campaign.server_ip;
    parallel_config.server_port = config_.campaign.server_port;
    parallel_config.workers = config_.workers;
    parallel_config.xml_out = xml_sink;
    parallel_config.extra_sink = config_.extra_sink;
    parallel_config.metrics = config_.metrics;
    parallel_config.log = config_.log;
    parallel_config.flight = config_.flight;
    parallel_config.batch_frames = config_.batch_frames;
    parallel_config.buffer_pool = config_.buffer_pool;
    parallel_config.writer_offload = config_.writer_offload;
    parallel_config.anon_shards = config_.anon_shards;
    parallel_config.profiler = config_.profiler;
    parallel_ = std::make_unique<ParallelCapturePipeline>(parallel_config);
    engine.set_sink(
        [this](const sim::TimedFrame& frame) { parallel_->push(frame); });
  } else {
    PipelineConfig pipeline_config;
    pipeline_config.server_ip = config_.campaign.server_ip;
    pipeline_config.server_port = config_.campaign.server_port;
    pipeline_config.xml_out = xml_sink;
    pipeline_config.keep_events = config_.keep_events;
    pipeline_config.extra_sink = config_.extra_sink;
    pipeline_config.metrics = config_.metrics;
    pipeline_config.log = config_.log;
    pipeline_config.flight = config_.flight;
    pipeline_config.profiler = config_.profiler;
    pipeline_ = std::make_unique<CapturePipeline>(pipeline_config);
    engine.set_sink(
        [this](const sim::TimedFrame& frame) { pipeline_->push(frame); });
  }

  auto quiesce = [&] {
    if (parallel_) {
      parallel_->flush();
    } else {
      pipeline_->flush();
    }
  };

  // The background generator and its one-frame lookahead live at runner
  // scope: the pending frame is part of the merge state a snapshot must
  // carry (the generator's cursor is already past it).
  std::optional<sim::BackgroundTraffic> background;
  std::optional<sim::TimedFrame> pending;
  if (config_.background) {
    sim::BackgroundConfig bg = *config_.background;
    bg.duration = config_.campaign.duration;
    bg.server_ip = config_.campaign.server_ip;
    background.emplace(bg);
    // Scenario envelope: a pure function of sim time, so it is attached
    // (not restored) — before the first next() and before any resume.
    if (const sim::Scenario* sc = simulator_.scenario()) {
      background->set_envelope(
          [sc](SimTime t) { return sc->background_boost(t); });
    }
    if (!resuming) pending = background->next();
  }

  if (resuming) {
    // Restore order: registry first (plain value overwrite), then the
    // subsystems — some recompute gauges from restored state, which must
    // win over the snapshot's raw values.
    if (config_.metrics != nullptr) {
      obs::Snapshot snap;
      ByteReader r = view->reader("metrics");
      if (!snap.restore_state(r) || !config_.metrics->restore(snap)) {
        return fail_run("snapshot metrics section rejected");
      }
    }
    {
      ByteReader r = view->reader("sim");
      if (!simulator_.restore_state(r)) {
        return fail_run("snapshot sim section rejected");
      }
    }
    {
      ByteReader r = view->reader("capture");
      if (!engine.restore_state(r)) {
        return fail_run("snapshot capture section rejected");
      }
    }
    if (xml_interposed) {
      const Bytes* prefix = view->section("xml");
      if (prefix == nullptr) return fail_run("snapshot xml section missing");
      xml_buffer.str(std::string(prefix->begin(), prefix->end()));
      xml_buffer.seekp(0, std::ios_base::end);
    }
    {
      ByteReader r = view->reader("pipeline");
      const bool restored = parallel_ ? parallel_->restore_state(r)
                                      : pipeline_->restore_state(r);
      if (!restored) return fail_run("snapshot pipeline section rejected");
    }
    if (config_.series != nullptr) {
      ByteReader r = view->reader("series");
      if (!config_.series->restore_state(r)) {
        return fail_run("snapshot series section rejected");
      }
    }
    if (background) {
      ByteReader r = view->reader("background");
      if (r.u8() != 0) {
        sim::TimedFrame f;
        f.time = r.u64le();
        const std::uint32_t len = r.u32le();
        if (len > r.remaining()) r.fail();
        const BytesView raw = r.raw(len);
        f.bytes.assign(raw.begin(), raw.end());
        pending = std::move(f);
      }
      if (!background->restore_state(r) || !r.ok()) {
        return fail_run("snapshot background section rejected");
      }
    }
    obs::inc(ckpt_restores);
    obs::set(ckpt_last_time, static_cast<std::int64_t>(resume_time));
    obs::record(config_.flight, obs::FlightEvent::kCheckpointRestore,
                resume_time, resume_time,
                view->section("sim") != nullptr ? view->section("sim")->size()
                                                : 0);
    DTR_LOG_INFO(config_.log, "checkpoint", resume_time,
                 "resumed from '" << config_.resume_from << "' (boundary "
                                  << resume_time << ")");
  }

  // Write one snapshot for the quiesced state at `boundary` (atomic
  // stage-and-rename; a failure leaves any previous snapshot intact and
  // the run continues — the next boundary tries again).
  auto write_checkpoint = [&](SimTime boundary) {
    // Wall-clock the whole snapshot (serialise + write + rename): the
    // profiler's checkpoint-cost series answers "what does a snapshot cost
    // the campaign per boundary".
    const auto ckpt_t0 = std::chrono::steady_clock::now();
    CheckpointBuilder builder;
    {
      ByteWriter w;
      save_meta(meta_of(config_, boundary), w);
      builder.add("meta", std::move(w).take());
    }
    {
      ByteWriter w;
      simulator_.save_state(w);
      builder.add("sim", std::move(w).take());
    }
    {
      ByteWriter w;
      engine.save_state(w);
      builder.add("capture", std::move(w).take());
    }
    {
      ByteWriter w;
      if (parallel_) {
        parallel_->save_state(w);
      } else {
        pipeline_->save_state(w);
      }
      builder.add("pipeline", std::move(w).take());
    }
    if (config_.metrics != nullptr) {
      ByteWriter w;
      config_.metrics->snapshot().save_state(w);
      builder.add("metrics", std::move(w).take());
    }
    if (config_.series != nullptr) {
      ByteWriter w;
      config_.series->save_state(w);
      builder.add("series", std::move(w).take());
    }
    if (xml_interposed) {
      const std::string prefix = xml_buffer.str();
      builder.add("xml", Bytes(prefix.begin(), prefix.end()));
    }
    if (background) {
      ByteWriter w;
      w.u8(pending.has_value() ? 1 : 0);
      if (pending) {
        w.u64le(pending->time);
        w.u32le(static_cast<std::uint32_t>(pending->bytes.size()));
        w.raw(pending->bytes);
      }
      background->save_state(w);
      builder.add("background", std::move(w).take());
    }
    if (pcap_) {
      pcap_->flush();  // the file on disk must cover the stored offset
      ByteWriter w;
      w.u64le(pcap_->bytes_written());
      w.u64le(pcap_->records_written());
      builder.add("pcap", std::move(w).take());
    }

    const std::string path =
        (std::filesystem::path(config_.checkpoint_dir) /
         checkpoint_file_name(boundary))
            .string();
    const std::string err = builder.write_file(path);
    if (err.empty()) {
      std::error_code ec;
      const std::uint64_t size = std::filesystem::file_size(path, ec);
      obs::inc(ckpt_writes);
      obs::inc(ckpt_bytes, ec ? 0 : size);
      obs::set(ckpt_last_time, static_cast<std::int64_t>(boundary));
      obs::note_checkpoint(
          config_.profiler, boundary,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ckpt_t0)
              .count(),
          ec ? 0 : size);
      obs::record(config_.flight, obs::FlightEvent::kCheckpointWrite, boundary,
                  boundary, size);
      DTR_LOG_INFO(config_.log, "checkpoint", boundary,
                   "snapshot written: " << path << " (" << size << " bytes)");
    } else {
      obs::inc(ckpt_write_failures);
      obs::record(config_.flight, obs::FlightEvent::kCheckpointWrite, boundary,
                  boundary, 0);
      DTR_LOG_ERROR(config_.log, "checkpoint", boundary,
                    "snapshot write failed: " << err);
    }
  };

  // Every frame funnels through here in time order, which makes it the
  // natural clock edge for the time-series recorder: when a frame's
  // timestamp crosses a sample boundary, quiesce the pipeline (so interval
  // counters are exact and scheduling-independent) and sample before the
  // frame is offered.  The frame at exactly the boundary lands in the next
  // interval.
  auto feed = [&](const sim::TimedFrame& f) {
    if (config_.series != nullptr && config_.series->due(f.time)) {
      if (config_.series_flush) quiesce();
      do {
        config_.series->sample();
      } while (config_.series->due(f.time));
    }
    if (sc_phase != nullptr) {
      const int phase = scenario->phase_index(f.time);
      if (phase != scenario_last_phase) {
        scenario_last_phase = phase;
        const auto milli = [](double v) {
          return static_cast<std::int64_t>(std::llround(v * 1000.0));
        };
        obs::set(sc_phase, phase);
        obs::set(sc_arrival, milli(scenario->arrival_boost(f.time)));
        obs::set(sc_background, milli(scenario->background_boost(f.time)));
        obs::set(sc_think, milli(scenario->think_scale(f.time)));
        obs::set(sc_flood, scenario->polluter_targets_popular(f.time) ? 1 : 0);
      }
    }
    engine.offer(f);
  };

  // Campaign + background streams are both time-ordered; merge them lazily
  // (the background alone can be tens of millions of frames — never
  // materialised).
  sim::FrameSink sink;
  if (background) {
    sink = [&](const sim::TimedFrame& f) {
      while (pending && pending->time <= f.time) {
        feed(*pending);
        pending = background->next();
      }
      feed(f);
    };
  } else {
    sink = feed;
  }

  if (checkpointing && config_.checkpoint_interval > 0) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    // Segment the campaign at checkpoint boundaries.  run_until() produces
    // the exact frame sequence run() does, and background frames drained at
    // a boundary are exactly those an uninterrupted merge would have fed
    // before the next campaign frame (whose time is >= the boundary), so
    // the capture stream is independent of where the boundaries fall.
    SimTime boundary =
        (resume_time / config_.checkpoint_interval + 1) *
        config_.checkpoint_interval;
    while (simulator_.run_until(boundary, sink)) {
      while (pending && pending->time < boundary) {
        feed(*pending);
        pending = background->next();
      }
      quiesce();
      write_checkpoint(boundary);
      boundary += config_.checkpoint_interval;
    }
  } else {
    simulator_.run_until(~SimTime{0}, sink);
  }
  // Campaign exhausted: drain whatever background outlives it.
  while (pending) {
    feed(*pending);
    pending = background->next();
  }

  CampaignReport report;
  report.pipeline = parallel_ ? parallel_->finish() : pipeline_->finish();
  if (config_.series != nullptr) {
    // The pipeline has fully drained: record the tail boundaries against
    // final counters.  Sessions started near the campaign end emit frames
    // past the nominal duration, so pad to whichever is later — the
    // campaign end or the next unsampled boundary — to guarantee the last
    // partial interval is captured (sum of deltas == end-of-run totals).
    config_.series->finish(std::max(config_.campaign.duration,
                                    config_.series->next_sample_time()));
  }
  if (!report.pipeline.ok()) {
    DTR_LOG_ERROR(config_.log, "runner", config_.campaign.duration,
                  "campaign pipeline failed: " << report.pipeline.error);
  }
  report.truth = simulator_.truth();
  report.frames_captured = engine.captured();
  report.frames_lost = engine.lost();
  report.buffer_high_water = engine.buffer_high_water();
  report.loss_series = engine.loss_series();
  if (pcap_) pcap_->flush();
  if (xml_interposed) *config_.xml_out << xml_buffer.str();
  return report;
}

}  // namespace dtr::core
