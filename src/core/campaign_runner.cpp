#include "core/campaign_runner.hpp"

#include <algorithm>

namespace dtr::core {

RunnerConfig RunnerConfig::tiny(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 6 * kHour;
  cfg.campaign.population.client_count = 120;
  cfg.campaign.catalog.file_count = 800;
  cfg.campaign.catalog.vocabulary = 300;
  cfg.campaign.population.collector_share_max = 1'200;
  cfg.campaign.population.scanner_ask_max = 700;
  cfg.campaign.flash_crowd_count = 2;
  return cfg;
}

RunnerConfig RunnerConfig::bench_scale(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 2 * kWeek;
  cfg.campaign.population.client_count = 20'000;
  cfg.campaign.catalog.file_count = 60'000;
  cfg.campaign.population.collector_share_max = 12'000;
  cfg.campaign.population.scanner_ask_max = 40'000;
  return cfg;
}

CampaignRunner::CampaignRunner(const RunnerConfig& config)
    : config_(config), simulator_(config.campaign) {}

CampaignReport CampaignRunner::run() {
  capture::CaptureEngine engine(config_.buffer);
  if (!config_.pcap_path.empty()) {
    pcap_ = std::make_unique<net::PcapWriter>(config_.pcap_path);
    engine.set_pcap(pcap_.get());
  }

  if (config_.metrics != nullptr) {
    engine.bind_metrics(*config_.metrics);
    simulator_.bind_metrics(*config_.metrics);
  }
  engine.bind_telemetry(config_.log, config_.flight);
  simulator_.bind_telemetry(config_.log);

  if (config_.workers > 1) {
    ParallelPipelineConfig parallel_config;
    parallel_config.server_ip = config_.campaign.server_ip;
    parallel_config.server_port = config_.campaign.server_port;
    parallel_config.workers = config_.workers;
    parallel_config.xml_out = config_.xml_out;
    parallel_config.extra_sink = config_.extra_sink;
    parallel_config.metrics = config_.metrics;
    parallel_config.log = config_.log;
    parallel_config.flight = config_.flight;
    parallel_ = std::make_unique<ParallelCapturePipeline>(parallel_config);
    engine.set_sink(
        [this](const sim::TimedFrame& frame) { parallel_->push(frame); });
  } else {
    PipelineConfig pipeline_config;
    pipeline_config.server_ip = config_.campaign.server_ip;
    pipeline_config.server_port = config_.campaign.server_port;
    pipeline_config.xml_out = config_.xml_out;
    pipeline_config.keep_events = config_.keep_events;
    pipeline_config.extra_sink = config_.extra_sink;
    pipeline_config.metrics = config_.metrics;
    pipeline_config.log = config_.log;
    pipeline_config.flight = config_.flight;
    pipeline_ = std::make_unique<CapturePipeline>(pipeline_config);
    engine.set_sink(
        [this](const sim::TimedFrame& frame) { pipeline_->push(frame); });
  }

  // Every frame funnels through here in time order, which makes it the
  // natural clock edge for the time-series recorder: when a frame's
  // timestamp crosses a sample boundary, quiesce the pipeline (so interval
  // counters are exact and scheduling-independent) and sample before the
  // frame is offered.  The frame at exactly the boundary lands in the next
  // interval.
  auto feed = [&](const sim::TimedFrame& f) {
    if (config_.series != nullptr && config_.series->due(f.time)) {
      if (config_.series_flush) {
        if (parallel_) {
          parallel_->flush();
        } else {
          pipeline_->flush();
        }
      }
      do {
        config_.series->sample();
      } while (config_.series->due(f.time));
    }
    engine.offer(f);
  };

  if (config_.background) {
    // Mirror carries campaign + background traffic.  Both streams are
    // time-ordered; merge them lazily (the background alone can be tens of
    // millions of frames — never materialised).
    sim::BackgroundConfig bg = *config_.background;
    bg.duration = config_.campaign.duration;
    bg.server_ip = config_.campaign.server_ip;
    sim::BackgroundTraffic background(bg);
    std::optional<sim::TimedFrame> pending = background.next();
    simulator_.run([&](const sim::TimedFrame& f) {
      while (pending && pending->time <= f.time) {
        feed(*pending);
        pending = background.next();
      }
      feed(f);
    });
    while (pending) {
      feed(*pending);
      pending = background.next();
    }
  } else {
    simulator_.run(feed);
  }

  CampaignReport report;
  report.pipeline = parallel_ ? parallel_->finish() : pipeline_->finish();
  if (config_.series != nullptr) {
    // The pipeline has fully drained: record the tail boundaries against
    // final counters.  Sessions started near the campaign end emit frames
    // past the nominal duration, so pad to whichever is later — the
    // campaign end or the next unsampled boundary — to guarantee the last
    // partial interval is captured (sum of deltas == end-of-run totals).
    config_.series->finish(std::max(config_.campaign.duration,
                                    config_.series->next_sample_time()));
  }
  if (!report.pipeline.ok()) {
    DTR_LOG_ERROR(config_.log, "runner", config_.campaign.duration,
                  "campaign pipeline failed: " << report.pipeline.error);
  }
  report.truth = simulator_.truth();
  report.frames_captured = engine.captured();
  report.frames_lost = engine.lost();
  report.buffer_high_water = engine.buffer_high_water();
  report.loss_series = engine.loss_series();
  if (pcap_) pcap_->flush();
  return report;
}

}  // namespace dtr::core
