#include "core/campaign_runner.hpp"

namespace dtr::core {

RunnerConfig RunnerConfig::tiny(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 6 * kHour;
  cfg.campaign.population.client_count = 120;
  cfg.campaign.catalog.file_count = 800;
  cfg.campaign.catalog.vocabulary = 300;
  cfg.campaign.population.collector_share_max = 1'200;
  cfg.campaign.population.scanner_ask_max = 700;
  cfg.campaign.flash_crowd_count = 2;
  return cfg;
}

RunnerConfig RunnerConfig::bench_scale(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.campaign.seed = seed;
  cfg.campaign.duration = 2 * kWeek;
  cfg.campaign.population.client_count = 20'000;
  cfg.campaign.catalog.file_count = 60'000;
  cfg.campaign.population.collector_share_max = 12'000;
  cfg.campaign.population.scanner_ask_max = 40'000;
  return cfg;
}

CampaignRunner::CampaignRunner(const RunnerConfig& config)
    : config_(config), simulator_(config.campaign) {}

CampaignReport CampaignRunner::run() {
  capture::CaptureEngine engine(config_.buffer);
  if (!config_.pcap_path.empty()) {
    pcap_ = std::make_unique<net::PcapWriter>(config_.pcap_path);
    engine.set_pcap(pcap_.get());
  }

  if (config_.metrics != nullptr) {
    engine.bind_metrics(*config_.metrics);
    simulator_.bind_metrics(*config_.metrics);
  }

  if (config_.workers > 1) {
    ParallelPipelineConfig parallel_config;
    parallel_config.server_ip = config_.campaign.server_ip;
    parallel_config.server_port = config_.campaign.server_port;
    parallel_config.workers = config_.workers;
    parallel_config.xml_out = config_.xml_out;
    parallel_config.extra_sink = config_.extra_sink;
    parallel_config.metrics = config_.metrics;
    parallel_ = std::make_unique<ParallelCapturePipeline>(parallel_config);
    engine.set_sink(
        [this](const sim::TimedFrame& frame) { parallel_->push(frame); });
  } else {
    PipelineConfig pipeline_config;
    pipeline_config.server_ip = config_.campaign.server_ip;
    pipeline_config.server_port = config_.campaign.server_port;
    pipeline_config.xml_out = config_.xml_out;
    pipeline_config.keep_events = config_.keep_events;
    pipeline_config.extra_sink = config_.extra_sink;
    pipeline_config.metrics = config_.metrics;
    pipeline_ = std::make_unique<CapturePipeline>(pipeline_config);
    engine.set_sink(
        [this](const sim::TimedFrame& frame) { pipeline_->push(frame); });
  }

  if (config_.background) {
    // Mirror carries campaign + background traffic.  Both streams are
    // time-ordered; merge them lazily (the background alone can be tens of
    // millions of frames — never materialised).
    sim::BackgroundConfig bg = *config_.background;
    bg.duration = config_.campaign.duration;
    bg.server_ip = config_.campaign.server_ip;
    sim::BackgroundTraffic background(bg);
    std::optional<sim::TimedFrame> pending = background.next();
    simulator_.run([&](const sim::TimedFrame& f) {
      while (pending && pending->time <= f.time) {
        engine.offer(*pending);
        pending = background.next();
      }
      engine.offer(f);
    });
    while (pending) {
      engine.offer(*pending);
      pending = background.next();
    }
  } else {
    simulator_.run([&](const sim::TimedFrame& f) { engine.offer(f); });
  }

  CampaignReport report;
  report.pipeline = parallel_ ? parallel_->finish() : pipeline_->finish();
  report.truth = simulator_.truth();
  report.frames_captured = engine.captured();
  report.frames_lost = engine.lost();
  report.buffer_high_water = engine.buffer_high_water();
  report.loss_series = engine.loss_series();
  if (pcap_) pcap_->flush();
  return report;
}

}  // namespace dtr::core
