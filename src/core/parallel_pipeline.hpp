// Order-preserving parallel decode pipeline.
//
// The serial pipeline (core/pipeline.hpp) decodes on one thread.  Decoding
// is independent per frame — except IP reassembly, which is stateful per
// (src, dst, id) — and anonymisation must see messages in capture order
// (order-of-appearance tokens).  The classic HPC recipe applies:
//
//   * PARTITION: frames are routed to N workers by a hash of their IP flow
//     identity, so all fragments of one packet meet in the same worker's
//     private reassembler.  No shared mutable state between workers.
//   * SEQUENCE: every frame carries a global sequence number; a worker
//     emits exactly one (seq, message count) entry per frame, batched.
//   * MERGE: a single merger restores sequence order with a min-heap of
//     pending batches and runs the order-sensitive stage.
//
// Anonymisation itself is parallel (the change that broke the merge-thread
// bottleneck): workers optimistically anonymise each decoded message with
// read-only lookups against the sharded tables (anon/sharded.hpp) and
// pre-render its XML bytes.  The merge thread stays the only *writer* of
// the tables and processes frames strictly in sequence order, so:
//
//   * a message whose every ID resolves on the worker produces the exact
//     event and bytes a serial run would — all its IDs were assigned at
//     earlier sequence numbers, and assignment order is merge-side only;
//   * a message touching any unseen ID is abandoned by the worker and the
//     merger runs the full inserting Anonymiser on it (the first-sight
//     slow path), which is precisely the serial behaviour.
//
// Dense IDs therefore depend only on publish order — never on shard count,
// worker count or interleaving — and the merger shrinks to ID assignment
// for first-sighted messages, ledger bookkeeping and splicing pre-rendered
// chunks.  Output bytes are pinned identical to serial by the differential
// tests.
//
// Three throughput devices keep synchronisation and allocation off the
// per-frame path while leaving the output bytes untouched:
//
//   * MICRO-BATCHING: the pushing thread accumulates a small run of frames
//     per worker (flushed by count or simulated-time gap) and hands the
//     whole run through the queue in one push; workers likewise emit one
//     ResultBatch per frame batch, with all decoded messages back to back
//     in a single vector.  N lock round-trips collapse into one.  Batch
//     formation happens entirely on the pushing thread, so batch shapes —
//     unlike queue depths — are deterministic for a fixed input.
//   * BUFFER POOLING: batches, their frame byte buffers and their message
//     vectors recycle through free-list pools (core/pool.hpp); in steady
//     state the hot path re-uses warm heap capacity instead of allocating.
//   * SPSC RINGS: every hand-off (pusher->worker, worker->merge,
//     merge->writer) is a single-producer/single-consumer ring
//     (core/spsc_ring.hpp) — two atomic ops in the common case instead of
//     a mutex round-trip.  The merger sleeps on one shared RingSignal that
//     fans in all worker output rings.
//   * WRITER OFFLOAD: the merger does not stream XML; it hands chunks of
//     pre-rendered bytes to a dedicated writer thread.  The merger flushes
//     its open chunk at the end of every drain cycle, so a flush()-quiesce
//     (wait for results_merged, then for the writer to catch up) always
//     leaves the XML stream byte-complete — which is what keeps
//     checkpoint/resume byte-identical.
//
// The output is bit-identical to the serial pipeline for any worker count,
// shard count, batch size, pool setting and thread interleaving — asserted
// by tests, not just claimed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_stats.hpp"
#include "anon/anonymiser.hpp"
#include "anon/sharded.hpp"
#include "core/pipeline.hpp"
#include "core/pool.hpp"
#include "core/spsc_ring.hpp"
#include "decode/decoder.hpp"
#include "sim/frames.hpp"

namespace dtr::core {

struct ParallelPipelineConfig {
  std::uint32_t server_ip = 0xC0A80001;
  std::uint16_t server_port = 4665;
  std::size_t workers = 2;
  std::size_t queue_capacity = 8192;   // per worker, in frames
  unsigned fileid_index_byte_0 = 5;
  unsigned fileid_index_byte_1 = 11;
  /// Shards for the anonymisation tables (clamped to a power of two in
  /// [1, 64]).  Purely a concurrency/observability knob: dense IDs, output
  /// bytes and checkpoint bytes are identical for every value.
  std::size_t anon_shards = 8;
  std::ostream* xml_out = nullptr;
  std::function<void(const anon::AnonEvent&)> extra_sink;
  /// Optional metrics registry (see PipelineConfig::metrics).  All workers
  /// bind their decoders to the same registry: the striped counters merge
  /// concurrent increments, so `decode.*` still totals across workers.
  obs::Registry* metrics = nullptr;
  /// Optional structured logger shared by every stage (may be null).
  obs::Logger* log = nullptr;
  /// Optional flight recorder; each worker records into its own
  /// per-thread ring (may be null).
  obs::FlightRecorder* flight = nullptr;
  /// Optional shadow-serving pool (see PipelineConfig::replay): decoded
  /// client->server queries are resubmitted, in merge order, to a live
  /// reference EdonkeyServer.  flush()/finish() drain it.
  ServerWorkerPool* replay = nullptr;
  /// Optional pipeline profiler (see PipelineConfig::profiler): the pushing
  /// (capture feeder) thread, every worker, the merger and the writer
  /// register and attribute their time.  Pure wall-clock observation —
  /// never part of the metrics registry, the series or the checkpoint
  /// fingerprint, so output bytes are identical with or without it.
  obs::Profiler* profiler = nullptr;
  /// Data-plane tuning.  Output bytes are identical for ANY setting here —
  /// pinned by the differential tests — so these trade only throughput
  /// against latency/memory.
  std::size_t batch_frames = 16;     ///< frames per worker micro-batch
  SimTime batch_time_gap = kSecond;  ///< flush an open batch across idle gaps
  bool buffer_pool = true;           ///< recycle batch/message/frame buffers
  bool writer_offload = true;        ///< dedicated XML dataset-writer thread
  std::size_t writer_chunk_events = 256;  ///< events per writer hand-off
  std::size_t writer_queue_chunks = 64;   ///< writer queue bound (chunks)
};

class ParallelCapturePipeline {
 public:
  explicit ParallelCapturePipeline(const ParallelPipelineConfig& config);
  ~ParallelCapturePipeline();

  ParallelCapturePipeline(const ParallelCapturePipeline&) = delete;
  ParallelCapturePipeline& operator=(const ParallelCapturePipeline&) = delete;

  void push(const sim::TimedFrame& frame);
  PipelineResult finish();

  /// Quiesce to the current intake boundary: flush the open per-worker
  /// batches, then block the pushing thread until every frame pushed so
  /// far has been decoded, merged back into sequence order and anonymised
  /// — and, with writer offload, until the writer thread has drained every
  /// chunk the merger handed it.  Workers emit exactly one result per
  /// frame and the merger flushes its open chunk at the end of every drain
  /// cycle, so the two waits together mean the XML stream holds the
  /// complete pushed prefix.  Call only between pushes (same contract as
  /// CapturePipeline::flush()).
  void flush();

  [[nodiscard]] const analysis::CampaignStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t anon_shards() const {
    return clients_.shard_count();
  }

  /// Checkpoint codec (same contract as CapturePipeline's).  The worker
  /// count is part of the snapshot: in-flight IP fragments live in the
  /// per-worker reassemblers frames are routed to by flow hash modulo the
  /// worker count, so restoring into a pipeline with a different worker
  /// count is rejected.  Batch/pool/writer settings and the anonymiser
  /// shard count are NOT part of the snapshot — they don't affect the
  /// output bytes (the sharded tables serialise exactly like the serial
  /// pipeline's unsharded ones).
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  struct SequencedFrame {
    std::uint64_t seq = 0;
    sim::TimedFrame frame;
  };

  /// A pushing-thread-built run of consecutive (in routing, not in global
  /// sequence) frames for one worker.  Slots are reused in place — add()
  /// assigns into an existing frame's byte buffer — so a recycled batch's
  /// Bytes never re-allocate in steady state.
  struct FrameBatch {
    std::vector<SequencedFrame> slots;
    std::size_t used = 0;

    void add(std::uint64_t seq, const sim::TimedFrame& frame) {
      if (used == slots.size()) slots.emplace_back();
      SequencedFrame& slot = slots[used];
      slot.seq = seq;
      slot.frame.time = frame.time;
      slot.frame.bytes.assign(frame.bytes.begin(), frame.bytes.end());
      ++used;
    }
    void reset() { used = 0; }  // keeps slots and their byte buffers warm
  };

  /// One worker's output for one FrameBatch: per-frame sequence numbers
  /// and message counts, every decoded message back to back in a single
  /// reusable vector, and — for messages whose IDs all resolved on the
  /// worker — the finished AnonEvent plus its pre-rendered XML bytes.
  /// seqs within a batch ascend (the pushing thread assigns them in
  /// order), which is what lets the merger treat a batch as a sorted run.
  struct ResultBatch {
    std::vector<std::uint64_t> seqs;
    std::vector<std::uint32_t> counts;  // messages per frame, same index
    std::vector<decode::DecodedMessage> messages;
    // Optimistic worker anonymisation, one slot per message.  prepared[i]
    // set means events[i] is the finished event and xml holds xml_len[i]
    // bytes (xml_elems[i] elements) for it; otherwise the merger runs the
    // inserting slow path on messages[i].
    std::vector<std::uint8_t> prepared;
    std::vector<anon::AnonEvent> events;
    std::vector<std::uint32_t> xml_len;
    std::vector<std::uint32_t> xml_elems;
    std::string xml;  // concatenated rendered bytes, batch order

    void reset() {
      seqs.clear();
      counts.clear();
      messages.clear();
      prepared.clear();
      events.clear();
      xml_len.clear();
      xml_elems.clear();
      xml.clear();
    }
  };

  /// Cursor over a partially consumed ResultBatch in the merge heap.
  struct PendingBatch {
    ResultBatch batch;
    std::size_t frame = 0;    // next unconsumed index into seqs/counts
    std::size_t msg = 0;      // next unconsumed index into messages
    std::size_t xml_off = 0;  // next unconsumed byte of batch.xml

    [[nodiscard]] std::uint64_t front_seq() const { return batch.seqs[frame]; }
  };

  /// Writer hand-off: pre-rendered bytes plus the ledger deltas they carry.
  struct XmlChunk {
    std::string bytes;
    std::uint64_t events = 0;
    std::uint64_t elements = 0;

    void reset() {
      bytes.clear();
      events = 0;
      elements = 0;
    }
  };

  struct Worker {
    std::unique_ptr<SpscRing<FrameBatch>> in;
    std::unique_ptr<SpscRing<ResultBatch>> out;
    std::unique_ptr<decode::FrameDecoder> decoder;
    std::thread thread;
    std::size_t index = 0;  // for the profiler's "worker.N" label
    SimTime last_time = 0;
    // Pushing-thread-only state: the open (unflushed) micro-batch.
    FrameBatch open;
    SimTime open_last_time = 0;
  };

  /// Stable frame -> worker routing that keeps IP fragments together.
  std::size_t route(const sim::TimedFrame& frame) const;

  void flush_open_batch(std::size_t target);
  void worker_loop(Worker& worker);
  /// The worker-side optimistic anonymise + XML pre-render pass.
  void optimistic_pass(ResultBatch& result);
  void merge_loop();
  void writer_loop();
  /// Unconditional lock+notify of the quiesce cv — cheap (once per drain
  /// cycle / writer chunk, not per frame) and immune to the missed-wakeup
  /// race an "is anyone waiting?" flag check would reintroduce.
  void notify_quiesce();
  void note_dropped(std::size_t count, const char* what);
  void bind_metrics(obs::Registry& registry);
  void fail(const char* stage, SimTime time, const std::string& what);

  struct Metrics {
    obs::Counter* frames = nullptr;
    obs::Counter* messages = nullptr;
    obs::Counter* dropped_on_close = nullptr;
    obs::Counter* pool_hits = nullptr;
    obs::Counter* pool_misses = nullptr;
    obs::Counter* writer_chunks = nullptr;
    obs::Counter* writer_events = nullptr;
    // Worker fast path mirrors of the Anonymiser's anon.* instruments,
    // committed only for messages that complete optimistically.
    obs::Counter* anon_events = nullptr;
    obs::Counter* anon_client_lookups = nullptr;
    obs::Counter* anon_file_lookups = nullptr;
    obs::Counter* fast_events = nullptr;      // anon.shard.fast_events
    obs::Counter* deferred_events = nullptr;  // anon.shard.deferred_events
    obs::Counter* push_parks = nullptr;
    obs::Counter* worker_parks = nullptr;
    obs::Counter* merge_parks = nullptr;
    obs::Counter* writer_parks = nullptr;
    obs::Gauge* merge_queue_depth = nullptr;
    obs::Gauge* merge_pending = nullptr;
    obs::Gauge* writer_queue_depth = nullptr;
    obs::Gauge* shard_count = nullptr;
    obs::Gauge* shard_clients_max = nullptr;
    obs::Gauge* shard_files_max = nullptr;
    obs::Histogram* batch_frames = nullptr;
    obs::Histogram* batch_messages = nullptr;
    obs::Histogram* decode_span = nullptr;
    obs::Histogram* anonymise_span = nullptr;
    obs::Histogram* write_span = nullptr;
  };

  ParallelPipelineConfig config_;
  std::size_t batch_frames_ = 16;       // normalized (>= 1)
  std::size_t in_capacity_batches_ = 0; // per-worker queue bound, in batches
  ObjectPool<FrameBatch> frame_pool_;
  ObjectPool<ResultBatch> result_pool_;
  ObjectPool<XmlChunk> chunk_pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  RingSignal merge_signal_;  // fans in every worker's out ring
  std::unique_ptr<SpscRing<XmlChunk>> writer_ring_;  // offload only

  anon::ShardedClientTable clients_;
  anon::ShardedFileIdStore files_;
  anon::Anonymiser anonymiser_;            // merge-side inserting slow path
  anon::ReadOnlyAnonymiser read_anonymiser_;  // worker-side fast path
  analysis::CampaignStats stats_;
  std::unique_ptr<xmlio::DatasetWriter> xml_;
  Metrics metrics_;
  /// The pushing thread's profiler registration, taken lazily on the first
  /// push() and released in finish() (both run on the pushing thread).
  obs::ThreadLease feeder_lease_;
  std::atomic<std::uint64_t> anonymised_events_{0};

  std::thread merge_thread_;
  std::thread writer_thread_;
  std::uint64_t next_seq_ = 0;
  /// Results fully processed by the merger (one per pushed frame); with
  /// next_seq_ it forms the first half of the flush() quiescence test.
  std::atomic<std::uint64_t> results_merged_{0};
  /// Events the writer thread has retired (second half of the quiescence
  /// test: the merger increments anonymised_events_ before handing the
  /// chunk off, the writer increments this after writing it).
  std::atomic<std::uint64_t> writer_events_done_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::atomic<bool> dropped_logged_{false};
  std::mutex error_mutex_;
  std::string error_;  // first failure wins; guarded by error_mutex_
  bool finished_ = false;
  decode::DecodeStats total_decode_;
};

}  // namespace dtr::core
