// Order-preserving parallel decode pipeline.
//
// The serial pipeline (core/pipeline.hpp) decodes on one thread.  Decoding
// is independent per frame — except IP reassembly, which is stateful per
// (src, dst, id) — and anonymisation must see messages in capture order
// (order-of-appearance tokens).  The classic HPC recipe applies:
//
//   * PARTITION: frames are routed to N workers by a hash of their IP flow
//     identity, so all fragments of one packet meet in the same worker's
//     private reassembler.  No shared mutable state between workers.
//   * SEQUENCE: every frame carries a global sequence number; a worker
//     emits exactly one (seq, message count) entry per frame, batched.
//   * MERGE: a single merger restores sequence order with a min-heap of
//     pending batches and runs the order-sensitive stage (anonymise ->
//     stats -> extra_sink -> replay submit).
//
// Three throughput devices keep synchronisation and allocation off the
// per-frame path while leaving the output bytes untouched:
//
//   * MICRO-BATCHING: the pushing thread accumulates a small run of frames
//     per worker (flushed by count or simulated-time gap) and hands the
//     whole run through the queue in one push; workers likewise emit one
//     ResultBatch per frame batch, with all decoded messages back to back
//     in a single vector.  N lock round-trips collapse into one.  Batch
//     formation happens entirely on the pushing thread, so batch shapes —
//     unlike queue depths — are deterministic for a fixed input.
//   * BUFFER POOLING: batches, their frame byte buffers and their message
//     vectors recycle through free-list pools (core/pool.hpp); in steady
//     state the hot path re-uses warm heap capacity instead of allocating.
//   * WRITER OFFLOAD: the merger no longer formats XML; it hands chunks of
//     anonymised events to a dedicated DatasetWriter thread over a bounded
//     queue.  The merger flushes its open chunk at the end of every drain
//     cycle, so a flush()-quiesce (wait for results_merged, then for the
//     writer to catch up) always leaves the XML stream byte-complete —
//     which is what keeps checkpoint/resume byte-identical.
//
// The output is bit-identical to the serial pipeline for any worker count,
// batch size, pool setting and thread interleaving — asserted by tests,
// not just claimed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_stats.hpp"
#include "anon/anonymiser.hpp"
#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "core/pipeline.hpp"
#include "core/pool.hpp"
#include "core/queue.hpp"
#include "decode/decoder.hpp"
#include "sim/frames.hpp"

namespace dtr::core {

struct ParallelPipelineConfig {
  std::uint32_t server_ip = 0xC0A80001;
  std::uint16_t server_port = 4665;
  std::size_t workers = 2;
  std::size_t queue_capacity = 8192;   // per worker, in frames
  unsigned fileid_index_byte_0 = 5;
  unsigned fileid_index_byte_1 = 11;
  std::ostream* xml_out = nullptr;
  std::function<void(const anon::AnonEvent&)> extra_sink;
  /// Optional metrics registry (see PipelineConfig::metrics).  All workers
  /// bind their decoders to the same registry: the striped counters merge
  /// concurrent increments, so `decode.*` still totals across workers.
  obs::Registry* metrics = nullptr;
  /// Optional structured logger shared by every stage (may be null).
  obs::Logger* log = nullptr;
  /// Optional flight recorder; each worker records into its own
  /// per-thread ring (may be null).
  obs::FlightRecorder* flight = nullptr;
  /// Optional shadow-serving pool (see PipelineConfig::replay): decoded
  /// client->server queries are resubmitted, in merge order, to a live
  /// reference EdonkeyServer.  flush()/finish() drain it.
  ServerWorkerPool* replay = nullptr;
  /// Data-plane tuning.  Output bytes are identical for ANY setting here —
  /// pinned by the differential tests — so these trade only throughput
  /// against latency/memory.
  std::size_t batch_frames = 16;     ///< frames per worker micro-batch
  SimTime batch_time_gap = kSecond;  ///< flush an open batch across idle gaps
  bool buffer_pool = true;           ///< recycle batch/message/frame buffers
  bool writer_offload = true;        ///< dedicated XML dataset-writer thread
  std::size_t writer_chunk_events = 256;  ///< events per writer hand-off
  std::size_t writer_queue_chunks = 64;   ///< writer queue bound (chunks)
};

class ParallelCapturePipeline {
 public:
  explicit ParallelCapturePipeline(const ParallelPipelineConfig& config);
  ~ParallelCapturePipeline();

  ParallelCapturePipeline(const ParallelCapturePipeline&) = delete;
  ParallelCapturePipeline& operator=(const ParallelCapturePipeline&) = delete;

  void push(const sim::TimedFrame& frame);
  PipelineResult finish();

  /// Quiesce to the current intake boundary: flush the open per-worker
  /// batches, then block the pushing thread until every frame pushed so
  /// far has been decoded, merged back into sequence order and anonymised
  /// — and, with writer offload, until the writer thread has drained every
  /// event chunk the merger handed it.  Workers emit exactly one result
  /// per frame and the merger flushes its open chunk at the end of every
  /// drain cycle, so the two waits together mean the XML stream holds the
  /// complete pushed prefix.  Call only between pushes (same contract as
  /// CapturePipeline::flush()).
  void flush();

  [[nodiscard]] const analysis::CampaignStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t workers() const { return workers_.size(); }

  /// Checkpoint codec (same contract as CapturePipeline's).  The worker
  /// count is part of the snapshot: in-flight IP fragments live in the
  /// per-worker reassemblers frames are routed to by flow hash modulo the
  /// worker count, so restoring into a pipeline with a different worker
  /// count is rejected.  Batch/pool/writer settings are NOT part of the
  /// snapshot — they don't affect the output bytes.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  struct SequencedFrame {
    std::uint64_t seq = 0;
    sim::TimedFrame frame;
  };

  /// A pushing-thread-built run of consecutive (in routing, not in global
  /// sequence) frames for one worker.  Slots are reused in place — add()
  /// assigns into an existing frame's byte buffer — so a recycled batch's
  /// Bytes never re-allocate in steady state.
  struct FrameBatch {
    std::vector<SequencedFrame> slots;
    std::size_t used = 0;

    void add(std::uint64_t seq, const sim::TimedFrame& frame) {
      if (used == slots.size()) slots.emplace_back();
      SequencedFrame& slot = slots[used];
      slot.seq = seq;
      slot.frame.time = frame.time;
      slot.frame.bytes.assign(frame.bytes.begin(), frame.bytes.end());
      ++used;
    }
    void reset() { used = 0; }  // keeps slots and their byte buffers warm
  };

  /// One worker's decode output for one FrameBatch: per-frame sequence
  /// numbers and message counts, plus every decoded message back to back
  /// in a single reusable vector.  seqs within a batch ascend (the pushing
  /// thread assigns them in order), which is what lets the merger treat a
  /// batch as a sorted run.
  struct ResultBatch {
    std::vector<std::uint64_t> seqs;
    std::vector<std::uint32_t> counts;  // messages per frame, same index
    std::vector<decode::DecodedMessage> messages;

    void reset() {
      seqs.clear();
      counts.clear();
      messages.clear();
    }
  };

  /// Cursor over a partially consumed ResultBatch in the merge heap.
  struct PendingBatch {
    ResultBatch batch;
    std::size_t frame = 0;  // next unconsumed index into seqs/counts
    std::size_t msg = 0;    // next unconsumed index into messages

    [[nodiscard]] std::uint64_t front_seq() const { return batch.seqs[frame]; }
  };

  using EventChunk = std::vector<anon::AnonEvent>;

  struct Worker {
    std::unique_ptr<BoundedQueue<FrameBatch>> in;
    std::unique_ptr<decode::FrameDecoder> decoder;
    std::thread thread;
    SimTime last_time = 0;
    // Pushing-thread-only state: the open (unflushed) micro-batch.
    FrameBatch open;
    SimTime open_last_time = 0;
  };

  /// Stable frame -> worker routing that keeps IP fragments together.
  std::size_t route(const sim::TimedFrame& frame) const;

  void flush_open_batch(std::size_t target);
  void worker_loop(Worker& worker);
  void merge_loop();
  void writer_loop();
  /// Unconditional lock+notify of the quiesce cv — cheap (once per drain
  /// cycle / writer chunk, not per frame) and immune to the missed-wakeup
  /// race an "is anyone waiting?" flag check would reintroduce.
  void notify_quiesce();
  void note_dropped(std::size_t count, const char* what);
  void bind_metrics(obs::Registry& registry);
  void fail(const char* stage, SimTime time, const std::string& what);

  struct Metrics {
    obs::Counter* frames = nullptr;
    obs::Counter* messages = nullptr;
    obs::Counter* dropped_on_close = nullptr;
    obs::Counter* pool_hits = nullptr;
    obs::Counter* pool_misses = nullptr;
    obs::Counter* writer_chunks = nullptr;
    obs::Counter* writer_events = nullptr;
    obs::Gauge* merge_queue_depth = nullptr;
    obs::Gauge* merge_pending = nullptr;
    obs::Gauge* writer_queue_depth = nullptr;
    obs::Histogram* batch_frames = nullptr;
    obs::Histogram* batch_messages = nullptr;
    obs::Histogram* decode_span = nullptr;
    obs::Histogram* anonymise_span = nullptr;
    obs::Histogram* write_span = nullptr;
  };

  ParallelPipelineConfig config_;
  std::size_t batch_frames_ = 16;       // normalized (>= 1)
  std::size_t in_capacity_batches_ = 0; // per-worker queue bound, in batches
  ObjectPool<FrameBatch> frame_pool_;
  ObjectPool<ResultBatch> result_pool_;
  ObjectPool<EventChunk> chunk_pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  BoundedQueue<ResultBatch> merge_queue_;
  std::unique_ptr<BoundedQueue<EventChunk>> writer_queue_;  // offload only

  anon::DirectClientTable clients_;
  anon::BucketedFileIdStore files_;
  anon::Anonymiser anonymiser_;
  analysis::CampaignStats stats_;
  std::unique_ptr<xmlio::DatasetWriter> xml_;
  Metrics metrics_;
  std::atomic<std::uint64_t> anonymised_events_{0};

  std::thread merge_thread_;
  std::thread writer_thread_;
  std::uint64_t next_seq_ = 0;
  /// Results fully processed by the merger (one per pushed frame); with
  /// next_seq_ it forms the first half of the flush() quiescence test.
  std::atomic<std::uint64_t> results_merged_{0};
  /// Events the writer thread has retired (second half of the quiescence
  /// test: the merger increments anonymised_events_ before handing the
  /// chunk off, the writer increments this after writing it).
  std::atomic<std::uint64_t> writer_events_done_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::atomic<bool> dropped_logged_{false};
  std::mutex error_mutex_;
  std::string error_;  // first failure wins; guarded by error_mutex_
  bool finished_ = false;
  decode::DecodeStats total_decode_;
};

}  // namespace dtr::core
