// Order-preserving parallel decode pipeline.
//
// The serial pipeline (core/pipeline.hpp) decodes on one thread.  Decoding
// is independent per frame — except IP reassembly, which is stateful per
// (src, dst, id) — and anonymisation must see messages in capture order
// (order-of-appearance tokens).  The classic HPC recipe applies:
//
//   * PARTITION: frames are routed to N workers by a hash of their IP flow
//     identity, so all fragments of one packet meet in the same worker's
//     private reassembler.  No shared mutable state between workers.
//   * SEQUENCE: every frame carries a global sequence number; a worker
//     emits exactly one result per frame (zero or more decoded messages).
//   * MERGE: a single merger restores sequence order with a pending-result
//     buffer and feeds the single-threaded anonymise/accumulate stage.
//
// The output is bit-identical to the serial pipeline for any worker count
// and any thread interleaving — asserted by tests, not just claimed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_stats.hpp"
#include "anon/anonymiser.hpp"
#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "core/pipeline.hpp"
#include "core/queue.hpp"
#include "decode/decoder.hpp"
#include "sim/frames.hpp"

namespace dtr::core {

struct ParallelPipelineConfig {
  std::uint32_t server_ip = 0xC0A80001;
  std::uint16_t server_port = 4665;
  std::size_t workers = 2;
  std::size_t queue_capacity = 8192;   // per worker
  unsigned fileid_index_byte_0 = 5;
  unsigned fileid_index_byte_1 = 11;
  std::ostream* xml_out = nullptr;
  std::function<void(const anon::AnonEvent&)> extra_sink;
  /// Optional metrics registry (see PipelineConfig::metrics).  All workers
  /// bind their decoders to the same registry: the striped counters merge
  /// concurrent increments, so `decode.*` still totals across workers.
  obs::Registry* metrics = nullptr;
  /// Optional structured logger shared by every stage (may be null).
  obs::Logger* log = nullptr;
  /// Optional flight recorder; each worker records into its own
  /// per-thread ring (may be null).
  obs::FlightRecorder* flight = nullptr;
  /// Optional shadow-serving pool (see PipelineConfig::replay): decoded
  /// client->server queries are resubmitted, in merge order, to a live
  /// reference EdonkeyServer.  flush()/finish() drain it.
  ServerWorkerPool* replay = nullptr;
};

class ParallelCapturePipeline {
 public:
  explicit ParallelCapturePipeline(const ParallelPipelineConfig& config);
  ~ParallelCapturePipeline();

  ParallelCapturePipeline(const ParallelCapturePipeline&) = delete;
  ParallelCapturePipeline& operator=(const ParallelCapturePipeline&) = delete;

  void push(const sim::TimedFrame& frame);
  PipelineResult finish();

  /// Quiesce to the current intake boundary: block the pushing thread
  /// until every frame pushed so far has been decoded, merged back into
  /// sequence order and anonymised.  Workers emit exactly one result per
  /// frame and the merger anonymises inside its in-order processing, so
  /// results_merged == frames_pushed means full quiescence.  Call only
  /// between pushes (same contract as CapturePipeline::flush()).
  void flush();

  [[nodiscard]] const analysis::CampaignStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t workers() const { return workers_.size(); }

  /// Checkpoint codec (same contract as CapturePipeline's).  The worker
  /// count is part of the snapshot: in-flight IP fragments live in the
  /// per-worker reassemblers frames are routed to by flow hash modulo the
  /// worker count, so restoring into a pipeline with a different worker
  /// count is rejected.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  struct SequencedFrame {
    std::uint64_t seq = 0;
    sim::TimedFrame frame;
  };
  struct WorkerResult {
    std::uint64_t seq = 0;
    std::vector<decode::DecodedMessage> messages;
  };
  struct Worker {
    std::unique_ptr<BoundedQueue<SequencedFrame>> in;
    std::unique_ptr<decode::FrameDecoder> decoder;
    std::vector<decode::DecodedMessage> scratch;
    std::thread thread;
    SimTime last_time = 0;
  };

  /// Stable frame -> worker routing that keeps IP fragments together.
  std::size_t route(const sim::TimedFrame& frame) const;

  void worker_loop(Worker& worker);
  void merge_loop();
  void bind_metrics(obs::Registry& registry);
  void fail(const char* stage, SimTime time, const std::string& what);

  struct Metrics {
    obs::Counter* frames = nullptr;
    obs::Counter* messages = nullptr;
    obs::Gauge* merge_queue_depth = nullptr;
    obs::Gauge* merge_pending = nullptr;
    obs::Histogram* batch_messages = nullptr;
    obs::Histogram* decode_span = nullptr;
    obs::Histogram* anonymise_span = nullptr;
  };

  ParallelPipelineConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  BoundedQueue<WorkerResult> merge_queue_;

  anon::DirectClientTable clients_;
  anon::BucketedFileIdStore files_;
  anon::Anonymiser anonymiser_;
  analysis::CampaignStats stats_;
  std::unique_ptr<xmlio::DatasetWriter> xml_;
  Metrics metrics_;
  std::uint64_t anonymised_events_ = 0;

  std::thread merge_thread_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t workers_done_ = 0;  // guarded by merge queue close protocol
  /// Results fully processed by the merger (one per pushed frame); with
  /// next_seq_ it forms the flush() quiescence test.
  std::atomic<std::uint64_t> results_merged_{0};
  std::mutex error_mutex_;
  std::string error_;  // first failure wins; guarded by error_mutex_
  bool finished_ = false;
  decode::DecodeStats total_decode_;
};

}  // namespace dtr::core
