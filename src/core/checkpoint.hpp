// Versioned, checksummed campaign snapshots.
//
// A ten-simulated-week campaign (the paper's horizon) must survive being
// stopped — or killed — without losing the anonymiser tables, the server
// index or the longitudinal series.  A snapshot is a flat container of
// named sections, one per subsystem; each subsystem serialises itself with
// the bounds-checked ByteWriter/ByteReader codecs it already uses for wire
// formats, so a corrupt or truncated snapshot is rejected exactly like a
// corrupt packet: cleanly, with a sticky error, never a crash.
//
// File layout (all integers little-endian):
//
//   magic   8 bytes  "DTRCKPT1"
//   version u32      kCheckpointVersion
//   count   u32      number of sections
//   count × { name_len u32, name bytes, payload_len u64, payload bytes }
//   md5     16 bytes MD5 of every preceding byte
//
// The trailing digest makes every single-bit corruption detectable, so the
// loader's contract is binary: a snapshot either restores completely or is
// rejected before any subsystem state is touched.  Writers go through
// write_file(), which stages to a temporary and renames into place — a
// crash mid-checkpoint leaves the previous snapshot valid.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace dtr::core {

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr char kCheckpointMagic[8] = {'D', 'T', 'R', 'C',
                                             'K', 'P', 'T', '1'};

/// Accumulates named sections and encodes/writes the snapshot file.
class CheckpointBuilder {
 public:
  /// Add a section; later sections with the same name are rejected by the
  /// reader, so callers must keep names unique.
  void add(std::string name, Bytes payload);

  [[nodiscard]] Bytes encode() const;

  /// Atomically write the snapshot: encode to `path + ".tmp"`, then rename
  /// over `path`.  Returns an empty string on success, else a description
  /// of the failure (the previous file at `path`, if any, is untouched).
  [[nodiscard]] std::string write_file(const std::string& path) const;

  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

 private:
  std::vector<std::pair<std::string, Bytes>> sections_;
};

/// A parsed, checksum-verified snapshot.  Parsing validates the whole
/// container before any section is handed out.
class CheckpointView {
 public:
  /// Parse from raw bytes; on failure returns std::nullopt and sets
  /// `error` to a human-readable reason.
  static std::optional<CheckpointView> parse(BytesView data,
                                             std::string& error);

  /// Read and parse a snapshot file.
  static std::optional<CheckpointView> load(const std::string& path,
                                            std::string& error);

  /// The payload of a named section, or nullptr when absent.
  [[nodiscard]] const Bytes* section(std::string_view name) const;

  /// Convenience: a bounds-checked reader over a section.  A missing
  /// section yields a reader that is already failed.
  [[nodiscard]] ByteReader reader(std::string_view name) const;

  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

  /// All section names, sorted (the storage order).  Lets tooling rebuild
  /// or audit a snapshot without knowing the writer's section list.
  [[nodiscard]] std::vector<std::string> section_names() const;

 private:
  std::map<std::string, Bytes, std::less<>> sections_;
};

}  // namespace dtr::core
