#include "core/parallel_pipeline.hpp"

#include <chrono>

#include "common/rng.hpp"
#include "core/server_pool.hpp"

namespace dtr::core {

namespace {

/// Sum per-worker decode statistics into campaign totals.
void accumulate(decode::DecodeStats& total, const decode::DecodeStats& part) {
  total.frames += part.frames;
  total.non_ipv4_frames += part.non_ipv4_frames;
  total.bad_ip_packets += part.bad_ip_packets;
  total.tcp_packets += part.tcp_packets;
  total.other_ip_packets += part.other_ip_packets;
  total.udp_packets += part.udp_packets;
  total.udp_fragments += part.udp_fragments;
  total.udp_malformed += part.udp_malformed;
  total.edonkey_messages += part.edonkey_messages;
  total.decoded += part.decoded;
  total.undecoded_structural += part.undecoded_structural;
  total.undecoded_effective += part.undecoded_effective;
}

}  // namespace

ParallelCapturePipeline::ParallelCapturePipeline(
    const ParallelPipelineConfig& config)
    : config_(config),
      merge_queue_(config.queue_capacity * std::max<std::size_t>(
                                               1, config.workers)),
      clients_(anon::DirectClientTable::PageMode::kPaged),
      files_(config.fileid_index_byte_0, config.fileid_index_byte_1),
      anonymiser_(clients_, files_) {
  if (config_.xml_out != nullptr) {
    xml_ = std::make_unique<xmlio::DatasetWriter>(*config_.xml_out);
  }

  const std::size_t n = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->in =
        std::make_unique<BoundedQueue<SequencedFrame>>(config_.queue_capacity);
    worker->decoder = std::make_unique<decode::FrameDecoder>(
        config_.server_ip, config_.server_port,
        [wp = worker.get()](decode::DecodedMessage&& msg) {
          wp->scratch.push_back(std::move(msg));
        });
    workers_.push_back(std::move(worker));
  }
  // Bind before any thread starts: instrument pointers must be visible to
  // the workers without extra synchronisation.
  if (config_.metrics != nullptr) bind_metrics(*config_.metrics);
  for (auto& worker : workers_) {
    worker->decoder->bind_telemetry(config_.log, config_.flight);
  }
  anonymiser_.bind_telemetry(config_.log);
  DTR_LOG_INFO(config_.log, "pipeline", 0,
               "parallel pipeline up (" << n << " workers, queue "
                                        << config_.queue_capacity
                                        << " per worker)");
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  merge_thread_ = std::thread([this] { merge_loop(); });
}

ParallelCapturePipeline::~ParallelCapturePipeline() {
  if (!finished_) finish();
}

std::size_t ParallelCapturePipeline::route(const sim::TimedFrame& frame) const {
  // Flow identity without a full decode: IPv4 src/dst/id live at fixed
  // offsets behind the 14-byte ethernet header when there are no IP
  // options (this traffic has none); short or non-IP frames route to 0 —
  // misrouting those is harmless since they carry no fragments.
  const Bytes& b = frame.bytes;
  if (b.size() < 34) return 0;
  std::uint64_t key = 0;
  for (std::size_t i = 26; i < 34; ++i) key = key << 8 | b[i];  // src+dst
  key ^= static_cast<std::uint64_t>(b[18]) << 40 |
         static_cast<std::uint64_t>(b[19]) << 32;  // identification
  return static_cast<std::size_t>(mix64(key) % workers_.size());
}

void ParallelCapturePipeline::push(const sim::TimedFrame& frame) {
  obs::inc(metrics_.frames);
  std::size_t target = route(frame);
  if (config_.flight != nullptr &&
      workers_[target]->in->size() >= config_.queue_capacity) {
    // The routed worker is not keeping up: this push is about to block.
    obs::record(config_.flight, obs::FlightEvent::kStageStall, frame.time,
                workers_[target]->in->size(), target);
  }
  workers_[target]->in->push(SequencedFrame{next_seq_++, frame});
}

void ParallelCapturePipeline::flush() {
  // next_seq_ is only written by the pushing thread — which is the only
  // thread allowed to call flush(), so reading it unsynchronised is fine.
  while (results_merged_.load(std::memory_order_acquire) < next_seq_) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  if (config_.replay != nullptr) config_.replay->drain();
}

void ParallelCapturePipeline::fail(const char* stage, SimTime time,
                                   const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_.empty()) error_ = std::string(stage) + ": " + what;
  }
  obs::record(config_.flight, obs::FlightEvent::kPipelineError, time);
  DTR_LOG_ERROR(config_.log, stage, time, "stage failed: " << what);
}

void ParallelCapturePipeline::worker_loop(Worker& worker) {
  bool failed = false;
  while (auto item = worker.in->pop()) {
    if (!failed) {
      try {
        obs::SpanTimer span(metrics_.decode_span);
        worker.decoder->push(item->frame);
        worker.last_time = item->frame.time;
      } catch (const std::exception& e) {
        failed = true;
        fail("decode", item->frame.time, e.what());
        worker.scratch.clear();
      }
    }
    // One result per frame even after a failure — the merger needs a
    // contiguous sequence to stay live (and flush() counts on it).
    WorkerResult result;
    result.seq = item->seq;
    result.messages = std::move(worker.scratch);
    worker.scratch.clear();
    obs::observe(metrics_.batch_messages,
                 static_cast<double>(result.messages.size()));
    merge_queue_.push(std::move(result));
  }
  if (!failed) worker.decoder->finish(worker.last_time);
}

void ParallelCapturePipeline::merge_loop() {
  std::map<std::uint64_t, WorkerResult> pending;
  std::uint64_t next_expected = 0;
  bool failed = false;

  auto process = [&](WorkerResult& result) {
    if (!failed) {
      try {
        for (decode::DecodedMessage& msg : result.messages) {
          obs::SpanTimer span(metrics_.anonymise_span);
          obs::inc(metrics_.messages);
          const bool from_client = msg.dst_ip == config_.server_ip &&
                                   msg.dst_port == config_.server_port;
          const std::uint32_t peer_ip = from_client ? msg.src_ip : msg.dst_ip;
          anon::AnonEvent event =
              anonymiser_.anonymise(msg.time, peer_ip, msg.message);
          ++anonymised_events_;
          stats_.consume(event);
          if (config_.extra_sink) config_.extra_sink(event);
          if (xml_) xml_->write(event);
          if (config_.replay != nullptr && from_client) {
            config_.replay->submit(ServerQuery{msg.src_ip, msg.src_port,
                                               std::move(msg.message),
                                               msg.time});
          }
        }
      } catch (const std::exception& e) {
        failed = true;  // keep consuming results so flush() never hangs
        const SimTime when =
            result.messages.empty() ? 0 : result.messages.front().time;
        fail("anonymise", when, e.what());
      }
    }
    results_merged_.fetch_add(1, std::memory_order_release);
  };

  while (auto result = merge_queue_.pop()) {
    obs::set(metrics_.merge_queue_depth,
             static_cast<std::int64_t>(merge_queue_.size()));
    if (result->seq == next_expected) {
      process(*result);
      ++next_expected;
      // Drain whatever became contiguous.
      auto it = pending.begin();
      while (it != pending.end() && it->first == next_expected) {
        process(it->second);
        ++next_expected;
        it = pending.erase(it);
      }
    } else {
      pending.emplace(result->seq, std::move(*result));
    }
    obs::set(metrics_.merge_pending, static_cast<std::int64_t>(pending.size()));
  }
  // Queue closed and drained: everything is contiguous by construction.
  for (auto& [seq, result] : pending) process(result);
  obs::set(metrics_.merge_pending, 0);
}

void ParallelCapturePipeline::save_state(ByteWriter& out) const {
  out.u64le(workers_.size());
  out.u64le(anonymised_events_);
  out.u64le(xml_ ? xml_->events_written() : 0);
  out.u64le(xml_ ? xml_->xml_elements_written() : 0);
  clients_.save_state(out);
  files_.save_state(out);
  anonymiser_.save_state(out);
  stats_.save_state(out);
  for (const auto& worker : workers_) {
    out.u64le(worker->last_time);
    worker->decoder->save_state(out);
  }
}

bool ParallelCapturePipeline::restore_state(ByteReader& in) {
  if (in.u64le() != workers_.size()) return false;
  anonymised_events_ = in.u64le();
  const std::uint64_t xml_events = in.u64le();
  const std::uint64_t xml_elements = in.u64le();
  if (xml_) xml_->resume(xml_events, xml_elements);
  if (!clients_.restore_state(in)) return false;
  if (!files_.restore_state(in)) return false;
  if (!anonymiser_.restore_state(in)) return false;
  if (!stats_.restore_state(in)) return false;
  for (auto& worker : workers_) {
    worker->last_time = in.u64le();
    if (!worker->decoder->restore_state(in)) return false;
  }
  return in.ok();
}

void ParallelCapturePipeline::bind_metrics(obs::Registry& registry) {
  metrics_.frames = &registry.counter("pipeline.frames");
  metrics_.messages = &registry.counter("pipeline.messages");
  metrics_.merge_queue_depth = &registry.gauge("pipeline.queue.merge");
  metrics_.merge_pending = &registry.gauge("pipeline.merge.pending");
  metrics_.batch_messages =
      &registry.histogram("pipeline.batch.messages", obs::size_buckets());
  metrics_.decode_span = &registry.histogram("span.decode.seconds");
  metrics_.anonymise_span = &registry.histogram("span.anonymise.seconds");
  for (auto& worker : workers_) worker->decoder->bind_metrics(registry);
  anonymiser_.bind_metrics(registry);
  stats_.bind_metrics(registry);
}

PipelineResult ParallelCapturePipeline::finish() {
  if (!finished_) {
    finished_ = true;
    for (auto& worker : workers_) worker->in->close();
    for (auto& worker : workers_) worker->thread.join();
    merge_queue_.close();
    merge_thread_.join();
    if (config_.replay != nullptr) config_.replay->drain();
    if (xml_) xml_->finish();
    for (auto& worker : workers_) {
      accumulate(total_decode_, worker->decoder->stats());
    }
    DTR_LOG_INFO(config_.log, "pipeline", 0,
                 "parallel pipeline drained (" << anonymised_events_
                                               << " events anonymised)");
  }
  PipelineResult result;
  result.decode = total_decode_;
  result.distinct_clients = anonymiser_.distinct_clients();
  result.distinct_files = anonymiser_.distinct_files();
  result.anonymised_events = anonymised_events_;
  result.xml_events = xml_ ? xml_->events_written() : 0;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    result.error = error_;
  }
  return result;
}

}  // namespace dtr::core
