#include "core/parallel_pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"
#include "core/server_pool.hpp"
#include "xmlio/schema.hpp"

namespace dtr::core {

namespace {

/// Sum per-worker decode statistics into campaign totals.
void accumulate(decode::DecodeStats& total, const decode::DecodeStats& part) {
  total.frames += part.frames;
  total.non_ipv4_frames += part.non_ipv4_frames;
  total.bad_ip_packets += part.bad_ip_packets;
  total.tcp_packets += part.tcp_packets;
  total.other_ip_packets += part.other_ip_packets;
  total.udp_packets += part.udp_packets;
  total.udp_fragments += part.udp_fragments;
  total.udp_malformed += part.udp_malformed;
  total.edonkey_messages += part.edonkey_messages;
  total.decoded += part.decoded;
  total.undecoded_structural += part.undecoded_structural;
  total.undecoded_effective += part.undecoded_effective;
}

/// Free-list retention caps.  In-flight object counts are already bounded
/// by the queue capacities, so these are backstops, not working limits.
constexpr std::size_t kMaxRetainedBatches = 4096;

}  // namespace

ParallelCapturePipeline::ParallelCapturePipeline(
    const ParallelPipelineConfig& config)
    : config_(config),
      batch_frames_(std::max<std::size_t>(1, config.batch_frames)),
      in_capacity_batches_(
          std::max<std::size_t>(2, config.queue_capacity / batch_frames_)),
      frame_pool_(config.buffer_pool, kMaxRetainedBatches),
      result_pool_(config.buffer_pool, kMaxRetainedBatches),
      chunk_pool_(config.buffer_pool, config.writer_queue_chunks + 8),
      clients_(config.anon_shards),
      files_(config.anon_shards, config.fileid_index_byte_0,
             config.fileid_index_byte_1),
      anonymiser_(clients_, files_),
      read_anonymiser_(clients_, files_) {
  if (config_.xml_out != nullptr) {
    // The prologue is written here, on the constructing thread; the writer
    // thread only touches the stream after a chunk arrives, and thread
    // creation below orders these writes before it.
    xml_ = std::make_unique<xmlio::DatasetWriter>(*config_.xml_out);
    if (config_.writer_offload) {
      writer_ring_ = std::make_unique<SpscRing<XmlChunk>>(
          std::max<std::size_t>(1, config_.writer_queue_chunks));
    }
  }

  const std::size_t n = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    worker->in = std::make_unique<SpscRing<FrameBatch>>(in_capacity_batches_);
    worker->out = std::make_unique<SpscRing<ResultBatch>>(in_capacity_batches_);
    worker->out->bind_consumer_signal(&merge_signal_);
    worker->decoder = std::make_unique<decode::FrameDecoder>(
        config_.server_ip, config_.server_port, decode::MessageSink{});
    workers_.push_back(std::move(worker));
  }
  // Bind before any thread starts: instrument pointers must be visible to
  // the workers without extra synchronisation.
  if (config_.metrics != nullptr) bind_metrics(*config_.metrics);
  frame_pool_.bind_metrics(metrics_.pool_hits, metrics_.pool_misses);
  result_pool_.bind_metrics(metrics_.pool_hits, metrics_.pool_misses);
  chunk_pool_.bind_metrics(metrics_.pool_hits, metrics_.pool_misses);
  for (auto& worker : workers_) {
    worker->in->bind_metrics(metrics_.push_parks, metrics_.worker_parks);
    worker->out->bind_metrics(metrics_.worker_parks, nullptr);
    worker->decoder->bind_telemetry(config_.log, config_.flight);
  }
  if (writer_ring_) {
    writer_ring_->bind_metrics(metrics_.merge_parks, metrics_.writer_parks);
  }
  anonymiser_.bind_telemetry(config_.log);
  DTR_LOG_INFO(config_.log, "pipeline", 0,
               "parallel pipeline up (" << n << " workers, "
                                        << clients_.shard_count()
                                        << " anon shards, batch "
                                        << batch_frames_ << " frames, queue "
                                        << in_capacity_batches_
                                        << " batches per worker, pool "
                                        << (config_.buffer_pool ? "on" : "off")
                                        << ", writer "
                                        << (writer_ring_ ? "offloaded"
                                                         : "inline")
                                        << ")");
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  merge_thread_ = std::thread([this] { merge_loop(); });
  if (writer_ring_) {
    writer_thread_ = std::thread([this] { writer_loop(); });
  }
}

ParallelCapturePipeline::~ParallelCapturePipeline() {
  if (!finished_) finish();
}

std::size_t ParallelCapturePipeline::route(const sim::TimedFrame& frame) const {
  // Flow identity without a full decode: IPv4 src/dst/id live at fixed
  // offsets behind the 14-byte ethernet header when there are no IP
  // options (this traffic has none); short or non-IP frames route to 0 —
  // misrouting those is harmless since they carry no fragments.
  const Bytes& b = frame.bytes;
  if (b.size() < 34) return 0;
  std::uint64_t key = 0;
  for (std::size_t i = 26; i < 34; ++i) key = key << 8 | b[i];  // src+dst
  key ^= static_cast<std::uint64_t>(b[18]) << 40 |
         static_cast<std::uint64_t>(b[19]) << 32;  // identification
  return static_cast<std::size_t>(mix64(key) % workers_.size());
}

void ParallelCapturePipeline::push(const sim::TimedFrame& frame) {
  if (config_.profiler != nullptr && feeder_lease_.get() == nullptr) {
    feeder_lease_ = obs::ThreadLease(config_.profiler, "capture", "feed");
  }
  obs::inc(metrics_.frames);
  const std::size_t target = route(frame);
  Worker& worker = *workers_[target];
  // An idle gap in simulated time flushes the open batch: batch boundaries
  // must depend only on the input stream (count + time), never on wall
  // clock, or batch shapes — and their histograms — would go
  // nondeterministic.
  if (worker.open.used > 0 &&
      frame.time > worker.open_last_time + config_.batch_time_gap) {
    flush_open_batch(target);
  }
  worker.open.add(next_seq_++, frame);
  worker.open_last_time = frame.time;
  if (worker.open.used >= batch_frames_) flush_open_batch(target);
}

void ParallelCapturePipeline::flush_open_batch(std::size_t target) {
  Worker& worker = *workers_[target];
  if (worker.open.used == 0) return;
  if (config_.flight != nullptr &&
      worker.in->size() >= worker.in->capacity()) {
    // The routed worker is not keeping up: this hand-off is about to block.
    obs::record(config_.flight, obs::FlightEvent::kStageStall,
                worker.open_last_time, worker.in->size(), target);
  }
  const std::size_t frames = worker.open.used;
  obs::observe(metrics_.batch_frames, static_cast<double>(frames));
  if (!worker.in->push(std::move(worker.open))) note_dropped(frames, "frames");
  worker.open = frame_pool_.acquire();
  worker.open.reset();
}

void ParallelCapturePipeline::flush() {
  // next_seq_ is only written by the pushing thread — which is the only
  // thread allowed to call flush(), so reading it unsynchronised is fine.
  for (std::size_t w = 0; w < workers_.size(); ++w) flush_open_batch(w);
  const std::uint64_t frames = next_seq_;
  if (results_merged_.load(std::memory_order_acquire) < frames) {
    // The feeder is blocked on downstream progress: backpressure time.
    obs::ProfScope prof(obs::ThreadState::kQueueWait);
    std::unique_lock lock(quiesce_mutex_);
    quiesce_cv_.wait(lock, [&] {
      return results_merged_.load(std::memory_order_acquire) >= frames;
    });
  }
  if (writer_ring_) {
    // The merger has handed off its last open chunk (it flushes at every
    // drain-cycle end), so anonymised_events_ is final for this prefix;
    // now wait for the writer thread to retire it all.
    const std::uint64_t events =
        anonymised_events_.load(std::memory_order_acquire);
    if (writer_events_done_.load(std::memory_order_acquire) < events) {
      obs::ProfScope prof(obs::ThreadState::kQueueWait);
      std::unique_lock lock(quiesce_mutex_);
      quiesce_cv_.wait(lock, [&] {
        return writer_events_done_.load(std::memory_order_acquire) >= events;
      });
    }
  }
  if (config_.replay != nullptr) config_.replay->drain();
}

void ParallelCapturePipeline::notify_quiesce() {
  {
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
  }
  quiesce_cv_.notify_all();
}

void ParallelCapturePipeline::note_dropped(std::size_t count,
                                           const char* what) {
  obs::inc(metrics_.dropped_on_close, count);
  if (!dropped_logged_.exchange(true)) {
    DTR_LOG_WARN(config_.log, "pipeline", 0,
                 "queue closed during shutdown: "
                     << count << ' ' << what
                     << " dropped (further drops counted, not logged)");
  }
}

void ParallelCapturePipeline::fail(const char* stage, SimTime time,
                                   const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_.empty()) error_ = std::string(stage) + ": " + what;
  }
  obs::record(config_.flight, obs::FlightEvent::kPipelineError, time);
  DTR_LOG_ERROR(config_.log, stage, time, "stage failed: " << what);
}

void ParallelCapturePipeline::optimistic_pass(ResultBatch& result) {
  const std::size_t n = result.messages.size();
  result.prepared.assign(n, 0);
  result.events.resize(n);
  result.xml_len.assign(n, 0);
  result.xml_elems.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const decode::DecodedMessage& msg = result.messages[i];
    const bool from_client = msg.dst_ip == config_.server_ip &&
                             msg.dst_port == config_.server_port;
    const std::uint32_t peer_ip = from_client ? msg.src_ip : msg.dst_ip;
    anon::ReadOnlyAnonymiser::Tally tally;
    const std::size_t xml_before = result.xml.size();
    const auto start = std::chrono::steady_clock::now();
    try {
      auto event = read_anonymiser_.try_anonymise(msg.time, peer_ip,
                                                  msg.message, tally);
      if (!event) continue;  // unseen ID: the merger runs the slow path
      if (xml_) {
        const std::uint64_t elems = xmlio::render_event(*event, result.xml);
        result.xml_len[i] =
            static_cast<std::uint32_t>(result.xml.size() - xml_before);
        result.xml_elems[i] = static_cast<std::uint32_t>(elems);
      }
      result.events[i] = std::move(*event);
      result.prepared[i] = 1;
      // Commit instrumentation only for completed fast-path messages, so
      // the anon.* totals stay exactly equal to a serial run's (deferred
      // messages are counted by the merge-side Anonymiser instead).  The
      // span is measured by hand because SpanTimer observes even when the
      // attempt abandons.
      obs::inc(metrics_.anon_client_lookups, tally.client_lookups);
      obs::inc(metrics_.anon_file_lookups, tally.file_lookups);
      obs::inc(metrics_.anon_events);
      obs::observe(metrics_.anonymise_span,
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    } catch (const std::exception&) {
      // Pre-rendering is best-effort: leave the message for the merge-side
      // slow path, whose failure handling is authoritative.
      result.xml.resize(xml_before);
      result.xml_len[i] = 0;
      result.xml_elems[i] = 0;
      result.prepared[i] = 0;
    }
  }
}

void ParallelCapturePipeline::worker_loop(Worker& worker) {
  obs::ThreadLease lease(config_.profiler, "worker",
                         "worker." + std::to_string(worker.index));
  bool failed = false;
  while (auto batch = worker.in->pop()) {
    ResultBatch result = result_pool_.acquire();
    result.reset();
    for (std::size_t i = 0; i < batch->used; ++i) {
      SequencedFrame& sf = batch->slots[i];
      const std::size_t before = result.messages.size();
      if (!failed) {
        try {
          obs::SpanTimer span(metrics_.decode_span);
          worker.decoder->decode_into(sf.frame, result.messages);
          worker.last_time = sf.frame.time;
        } catch (const std::exception& e) {
          failed = true;
          fail("decode", sf.frame.time, e.what());
          result.messages.resize(before);  // drop the half-decoded frame
        }
      }
      // One entry per frame even after a failure — the merger needs a
      // contiguous sequence to stay live (and flush() counts on it).
      result.seqs.push_back(sf.seq);
      result.counts.push_back(
          static_cast<std::uint32_t>(result.messages.size() - before));
    }
    batch->reset();
    frame_pool_.release(std::move(*batch));
    if (!failed) {
      optimistic_pass(result);
    } else {
      result.prepared.assign(result.messages.size(), 0);
      result.events.resize(result.messages.size());
      result.xml_len.assign(result.messages.size(), 0);
      result.xml_elems.assign(result.messages.size(), 0);
    }
    const std::size_t frames = result.seqs.size();
    obs::observe(metrics_.batch_messages,
                 static_cast<double>(result.messages.size()));
    if (!worker.out->push(std::move(result))) note_dropped(frames, "results");
  }
  if (!failed) worker.decoder->finish(worker.last_time);
  // The merger exits once every worker's out ring is closed and drained.
  worker.out->close();
}

void ParallelCapturePipeline::merge_loop() {
  obs::ThreadLease lease(config_.profiler, "merge", "merge");
  // Min-heap of partially consumed result batches keyed by their front
  // sequence number.  Each batch is internally an ascending run, so the
  // heap holds at most one entry per in-flight batch — far fewer nodes
  // than the per-frame map it replaces.
  auto later = [](const PendingBatch& a, const PendingBatch& b) {
    return a.front_seq() > b.front_seq();
  };
  std::vector<PendingBatch> heap;
  std::vector<ResultBatch> backlog;
  std::uint64_t next_expected = 0;
  bool failed = false;
  XmlChunk chunk;  // open XML hand-off chunk (writer offload only)

  auto hand_off_chunk = [&] {
    if (!writer_ring_ || chunk.events == 0) return;
    const std::uint64_t events = chunk.events;
    if (!writer_ring_->push(std::move(chunk))) {
      note_dropped(events, "events");
      // Keep the quiescence accounting alive even on this shutdown path.
      writer_events_done_.fetch_add(events, std::memory_order_release);
    }
    chunk = chunk_pool_.acquire();
    chunk.reset();
  };

  // Route one finished event's bytes to the XML stream: pre-rendered bytes
  // splice straight through, slow-path events render here (rare).
  auto emit_fast = [&](const anon::AnonEvent& event, std::string_view bytes,
                       std::uint32_t elements) {
    (void)event;
    if (writer_ring_) {
      chunk.bytes.append(bytes);
      chunk.events += 1;
      chunk.elements += elements;
      if (chunk.events >= config_.writer_chunk_events) hand_off_chunk();
    } else if (xml_) {
      xml_->write_rendered(bytes, 1, elements);
    }
  };
  auto emit_slow = [&](const anon::AnonEvent& event) {
    if (writer_ring_) {
      chunk.elements += xmlio::render_event(event, chunk.bytes);
      chunk.events += 1;
      if (chunk.events >= config_.writer_chunk_events) hand_off_chunk();
    } else if (xml_) {
      xml_->write(event);
    }
  };

  // The order-sensitive stage, one frame's messages at a time.  Fast-path
  // messages arrive finished from the worker; everything else goes through
  // the inserting Anonymiser — which is where dense IDs are assigned, in
  // strict sequence order, making the numbering independent of shard and
  // worker counts.
  auto process_frame = [&](PendingBatch& cur) {
    const std::uint32_t count = cur.batch.counts[cur.frame];
    if (!failed) {
      try {
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::size_t mi = cur.msg + i;
          decode::DecodedMessage& msg = cur.batch.messages[mi];
          obs::inc(metrics_.messages);
          const bool from_client = msg.dst_ip == config_.server_ip &&
                                   msg.dst_port == config_.server_port;
          const std::uint32_t len = cur.batch.xml_len[mi];
          if (cur.batch.prepared[mi] != 0) {
            obs::inc(metrics_.fast_events);
            anon::AnonEvent& event = cur.batch.events[mi];
            anonymised_events_.fetch_add(1, std::memory_order_relaxed);
            stats_.consume(event);
            if (config_.extra_sink) config_.extra_sink(event);
            if (xml_) {
              emit_fast(event,
                        std::string_view(cur.batch.xml.data() + cur.xml_off,
                                         len),
                        cur.batch.xml_elems[mi]);
            }
          } else {
            obs::SpanTimer span(metrics_.anonymise_span);
            obs::inc(metrics_.deferred_events);
            const std::uint32_t peer_ip =
                from_client ? msg.src_ip : msg.dst_ip;
            anon::AnonEvent event =
                anonymiser_.anonymise(msg.time, peer_ip, msg.message);
            anonymised_events_.fetch_add(1, std::memory_order_relaxed);
            stats_.consume(event);
            if (config_.extra_sink) config_.extra_sink(event);
            if (xml_) emit_slow(event);
          }
          cur.xml_off += len;
          if (config_.replay != nullptr && from_client) {
            config_.replay->submit(ServerQuery{msg.src_ip, msg.src_port,
                                               std::move(msg.message),
                                               msg.time});
          }
        }
      } catch (const std::exception& e) {
        failed = true;  // keep consuming results so flush() never hangs
        const SimTime when =
            count == 0 ? 0 : cur.batch.messages[cur.msg].time;
        fail("anonymise", when, e.what());
      }
    }
    cur.msg += count;
    ++cur.frame;
    results_merged_.fetch_add(1, std::memory_order_release);
  };

  auto drain_contiguous = [&] {
    while (!heap.empty() && heap.front().front_seq() == next_expected) {
      std::pop_heap(heap.begin(), heap.end(), later);
      PendingBatch cur = std::move(heap.back());
      heap.pop_back();
      for (;;) {
        process_frame(cur);
        ++next_expected;
        if (cur.frame == cur.batch.seqs.size()) {
          cur.batch.reset();
          result_pool_.release(std::move(cur.batch));
          break;
        }
        if (cur.batch.seqs[cur.frame] != next_expected) {
          // A gap inside this worker's stream: another worker owns the
          // next frame.  Park the cursor and wait for it.
          heap.push_back(std::move(cur));
          std::push_heap(heap.begin(), heap.end(), later);
          break;
        }
      }
    }
  };

  auto update_shard_gauges = [&] {
    if (metrics_.shard_clients_max == nullptr) return;
    std::int64_t cmax = 0;
    for (std::size_t s = 0; s < clients_.shard_count(); ++s) {
      cmax = std::max(cmax,
                      static_cast<std::int64_t>(clients_.shard_distinct(s)));
    }
    std::int64_t fmax = 0;
    for (std::size_t s = 0; s < files_.shard_count(); ++s) {
      fmax = std::max(fmax,
                      static_cast<std::int64_t>(files_.shard_distinct(s)));
    }
    obs::set(metrics_.shard_clients_max, cmax);
    obs::set(metrics_.shard_files_max, fmax);
  };

  for (;;) {
    // Fan-in sleep protocol: announce intent, scan every worker ring, and
    // only park when nothing arrived AND something can still arrive.
    const RingSignal::Epoch seen = merge_signal_.prepare();
    std::size_t got = 0;
    for (auto& worker : workers_) got += worker->out->pop_all(backlog);
    if (got == 0) {
      bool all_drained = true;
      for (auto& worker : workers_) all_drained &= worker->out->drained();
      if (all_drained) {
        merge_signal_.cancel();
        break;
      }
      obs::inc(metrics_.merge_parks);
      merge_signal_.wait(seen);
      continue;
    }
    merge_signal_.cancel();
    std::size_t depth = 0;
    for (auto& worker : workers_) depth += worker->out->size();
    obs::set(metrics_.merge_queue_depth, static_cast<std::int64_t>(depth));
    for (ResultBatch& result : backlog) {
      heap.push_back(PendingBatch{std::move(result)});
      std::push_heap(heap.begin(), heap.end(), later);
    }
    backlog.clear();
    drain_contiguous();
    obs::set(metrics_.merge_pending, static_cast<std::int64_t>(heap.size()));
    update_shard_gauges();
    // End of drain cycle: hand the open chunk to the writer — a checkpoint
    // quiesce must find the full anonymised prefix on its way to the XML
    // stream, never parked here — and wake any flush() waiter.
    hand_off_chunk();
    notify_quiesce();
  }
  // All rings closed and drained: everything left is contiguous.
  drain_contiguous();
  obs::set(metrics_.merge_pending, 0);
  update_shard_gauges();
  hand_off_chunk();
  notify_quiesce();
}

void ParallelCapturePipeline::writer_loop() {
  obs::ThreadLease lease(config_.profiler, "writer", "writer");
  bool failed = false;
  while (auto chunk = writer_ring_->pop()) {
    obs::set(metrics_.writer_queue_depth,
             static_cast<std::int64_t>(writer_ring_->size()));
    if (!failed) {
      try {
        obs::SpanTimer span(metrics_.write_span);
        xml_->write_rendered(chunk->bytes, chunk->events, chunk->elements);
      } catch (const std::exception& e) {
        failed = true;  // keep retiring chunks so flush() never hangs
        fail("write", 0, e.what());
      }
    }
    obs::inc(metrics_.writer_chunks);
    obs::inc(metrics_.writer_events, chunk->events);
    writer_events_done_.fetch_add(chunk->events, std::memory_order_release);
    chunk->reset();
    chunk_pool_.release(std::move(*chunk));
    notify_quiesce();
  }
}

void ParallelCapturePipeline::save_state(ByteWriter& out) const {
  out.u64le(workers_.size());
  out.u64le(anonymised_events_.load(std::memory_order_acquire));
  out.u64le(xml_ ? xml_->events_written() : 0);
  out.u64le(xml_ ? xml_->xml_elements_written() : 0);
  clients_.save_state(out);
  files_.save_state(out);
  anonymiser_.save_state(out);
  stats_.save_state(out);
  for (const auto& worker : workers_) {
    out.u64le(worker->last_time);
    worker->decoder->save_state(out);
  }
}

bool ParallelCapturePipeline::restore_state(ByteReader& in) {
  if (in.u64le() != workers_.size()) return false;
  anonymised_events_.store(in.u64le(), std::memory_order_release);
  const std::uint64_t xml_events = in.u64le();
  const std::uint64_t xml_elements = in.u64le();
  if (xml_) xml_->resume(xml_events, xml_elements);
  // The restored events are already on the stream (the owner re-seeded the
  // XML prefix), so the writer ledger starts even with the anonymise
  // ledger — flush() compares the two.
  writer_events_done_.store(anonymised_events_.load(std::memory_order_relaxed),
                            std::memory_order_release);
  if (!clients_.restore_state(in)) return false;
  if (!files_.restore_state(in)) return false;
  if (!anonymiser_.restore_state(in)) return false;
  if (!stats_.restore_state(in)) return false;
  for (auto& worker : workers_) {
    worker->last_time = in.u64le();
    if (!worker->decoder->restore_state(in)) return false;
  }
  return in.ok();
}

void ParallelCapturePipeline::bind_metrics(obs::Registry& registry) {
  metrics_.frames = &registry.counter("pipeline.frames");
  metrics_.messages = &registry.counter("pipeline.messages");
  metrics_.dropped_on_close = &registry.counter("pipeline.dropped_on_close");
  metrics_.pool_hits = &registry.counter("pipeline.pool.hits");
  metrics_.pool_misses = &registry.counter("pipeline.pool.misses");
  metrics_.writer_chunks = &registry.counter("pipeline.writer.chunks");
  metrics_.writer_events = &registry.counter("pipeline.writer.events");
  // Same instruments the Anonymiser binds: striped counters merge the
  // worker-side fast-path increments with the merge-side slow path.
  metrics_.anon_events = &registry.counter("anon.events");
  metrics_.anon_client_lookups = &registry.counter("anon.client_lookups");
  metrics_.anon_file_lookups = &registry.counter("anon.file_lookups");
  metrics_.fast_events = &registry.counter("anon.shard.fast_events");
  metrics_.deferred_events = &registry.counter("anon.shard.deferred_events");
  metrics_.push_parks = &registry.counter("pipeline.ring.parks.push");
  metrics_.worker_parks = &registry.counter("pipeline.ring.parks.worker");
  metrics_.merge_parks = &registry.counter("pipeline.ring.parks.merge");
  metrics_.writer_parks = &registry.counter("pipeline.ring.parks.writer");
  metrics_.merge_queue_depth = &registry.gauge("pipeline.queue.merge");
  metrics_.merge_pending = &registry.gauge("pipeline.merge.pending");
  metrics_.writer_queue_depth = &registry.gauge("pipeline.queue.writer");
  metrics_.shard_count = &registry.gauge("anon.shard.count");
  metrics_.shard_clients_max = &registry.gauge("anon.shard.clients.max");
  metrics_.shard_files_max = &registry.gauge("anon.shard.files.max");
  obs::set(metrics_.shard_count,
           static_cast<std::int64_t>(clients_.shard_count()));
  metrics_.batch_frames =
      &registry.histogram("pipeline.batch.frames", obs::size_buckets());
  metrics_.batch_messages =
      &registry.histogram("pipeline.batch.messages", obs::size_buckets());
  metrics_.decode_span = &registry.histogram("span.decode.seconds");
  metrics_.anonymise_span = &registry.histogram("span.anonymise.seconds");
  metrics_.write_span = &registry.histogram("span.write.seconds");
  for (auto& worker : workers_) worker->decoder->bind_metrics(registry);
  anonymiser_.bind_metrics(registry);
  stats_.bind_metrics(registry);
}

PipelineResult ParallelCapturePipeline::finish() {
  if (!finished_) {
    finished_ = true;
    for (std::size_t w = 0; w < workers_.size(); ++w) flush_open_batch(w);
    for (auto& worker : workers_) worker->in->close();
    for (auto& worker : workers_) worker->thread.join();
    // Workers close their out rings on exit; the merger drains them all
    // and stops once every ring reports drained.
    merge_thread_.join();
    if (writer_ring_) {
      // The merger handed off its last chunk before exiting; close after
      // it so nothing is stranded.
      writer_ring_->close();
      writer_thread_.join();
    }
    feeder_lease_.reset();  // finish() runs on the pushing thread
    if (config_.replay != nullptr) config_.replay->drain();
    if (xml_) xml_->finish();
    for (auto& worker : workers_) {
      accumulate(total_decode_, worker->decoder->stats());
    }
    DTR_LOG_INFO(config_.log, "pipeline", 0,
                 "parallel pipeline drained ("
                     << anonymised_events_.load() << " events anonymised)");
  }
  PipelineResult result;
  result.decode = total_decode_;
  result.distinct_clients = anonymiser_.distinct_clients();
  result.distinct_files = anonymiser_.distinct_files();
  result.anonymised_events = anonymised_events_.load();
  result.xml_events = xml_ ? xml_->events_written() : 0;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    result.error = error_;
  }
  return result;
}

}  // namespace dtr::core
