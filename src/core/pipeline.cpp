#include "core/pipeline.hpp"

namespace dtr::core {

CapturePipeline::CapturePipeline(const PipelineConfig& config)
    : config_(config),
      frame_queue_(config.frame_queue_capacity),
      message_queue_(config.message_queue_capacity),
      clients_(anon::DirectClientTable::PageMode::kPaged),
      files_(config.fileid_index_byte_0, config.fileid_index_byte_1),
      anonymiser_(clients_, files_) {
  if (config_.xml_out != nullptr) {
    xml_ = std::make_unique<xmlio::DatasetWriter>(*config_.xml_out);
  }
  decoder_ = std::make_unique<decode::FrameDecoder>(
      config_.server_ip, config_.server_port,
      [this](decode::DecodedMessage&& msg) {
        message_queue_.push(std::move(msg));
      });
  decode_thread_ = std::thread([this] { decode_loop(); });
  anonymise_thread_ = std::thread([this] { anonymise_loop(); });
}

CapturePipeline::~CapturePipeline() {
  if (!finished_) finish();
}

void CapturePipeline::push(const sim::TimedFrame& frame) {
  frame_queue_.push(frame);
}

void CapturePipeline::decode_loop() {
  while (auto frame = frame_queue_.pop()) {
    decoder_->push(*frame);
    last_time_ = frame->time;
  }
  decoder_->finish(last_time_);
  message_queue_.close();
}

void CapturePipeline::anonymise_loop() {
  while (auto msg = message_queue_.pop()) {
    // The dialog's client side: whoever is not the server.
    const bool from_client = msg->dst_ip == config_.server_ip &&
                             msg->dst_port == config_.server_port;
    const std::uint32_t peer_ip = from_client ? msg->src_ip : msg->dst_ip;

    anon::AnonEvent event =
        anonymiser_.anonymise(msg->time, peer_ip, msg->message);
    ++anonymised_events_;
    stats_.consume(event);
    if (config_.extra_sink) config_.extra_sink(event);
    if (xml_) xml_->write(event);
    if (config_.keep_events) events_.push_back(std::move(event));
  }
}

PipelineResult CapturePipeline::finish() {
  if (!finished_) {
    finished_ = true;
    frame_queue_.close();
    decode_thread_.join();
    anonymise_thread_.join();
    if (xml_) xml_->finish();
  }
  PipelineResult result;
  result.decode = decoder_->stats();
  result.distinct_clients = anonymiser_.distinct_clients();
  result.distinct_files = anonymiser_.distinct_files();
  result.anonymised_events = anonymised_events_;
  result.xml_events = xml_ ? xml_->events_written() : 0;
  return result;
}

}  // namespace dtr::core
