#include "core/pipeline.hpp"

namespace dtr::core {

CapturePipeline::CapturePipeline(const PipelineConfig& config)
    : config_(config),
      frame_queue_(config.frame_queue_capacity),
      message_queue_(config.message_queue_capacity),
      clients_(anon::DirectClientTable::PageMode::kPaged),
      files_(config.fileid_index_byte_0, config.fileid_index_byte_1),
      anonymiser_(clients_, files_) {
  if (config_.xml_out != nullptr) {
    xml_ = std::make_unique<xmlio::DatasetWriter>(*config_.xml_out);
  }
  decoder_ = std::make_unique<decode::FrameDecoder>(
      config_.server_ip, config_.server_port,
      [this](decode::DecodedMessage&& msg) {
        message_queue_.push(std::move(msg));
      });
  // Bind before the worker threads exist so instrument pointers are
  // published by the thread constructors' synchronisation.
  if (config_.metrics != nullptr) bind_metrics(*config_.metrics);
  decode_thread_ = std::thread([this] { decode_loop(); });
  anonymise_thread_ = std::thread([this] { anonymise_loop(); });
}

CapturePipeline::~CapturePipeline() {
  if (!finished_) finish();
}

void CapturePipeline::push(const sim::TimedFrame& frame) {
  obs::inc(metrics_.frames);
  frame_queue_.push(frame);
  obs::set(metrics_.frame_queue_depth,
           static_cast<std::int64_t>(frame_queue_.size()));
}

void CapturePipeline::decode_loop() {
  while (auto frame = frame_queue_.pop()) {
    obs::SpanTimer span(metrics_.decode_span);
    decoder_->push(*frame);
    last_time_ = frame->time;
  }
  decoder_->finish(last_time_);
  message_queue_.close();
}

void CapturePipeline::anonymise_loop() {
  while (auto msg = message_queue_.pop()) {
    obs::SpanTimer span(metrics_.anonymise_span);
    obs::inc(metrics_.messages);
    obs::set(metrics_.message_queue_depth,
             static_cast<std::int64_t>(message_queue_.size()));
    // The dialog's client side: whoever is not the server.
    const bool from_client = msg->dst_ip == config_.server_ip &&
                             msg->dst_port == config_.server_port;
    const std::uint32_t peer_ip = from_client ? msg->src_ip : msg->dst_ip;

    anon::AnonEvent event =
        anonymiser_.anonymise(msg->time, peer_ip, msg->message);
    ++anonymised_events_;
    stats_.consume(event);
    if (config_.extra_sink) config_.extra_sink(event);
    if (xml_) xml_->write(event);
    if (config_.keep_events) events_.push_back(std::move(event));
  }
}

void CapturePipeline::bind_metrics(obs::Registry& registry) {
  metrics_.frames = &registry.counter("pipeline.frames");
  metrics_.messages = &registry.counter("pipeline.messages");
  metrics_.frame_queue_depth = &registry.gauge("pipeline.queue.frames");
  metrics_.message_queue_depth = &registry.gauge("pipeline.queue.messages");
  metrics_.decode_span = &registry.histogram("span.decode.seconds");
  metrics_.anonymise_span = &registry.histogram("span.anonymise.seconds");
  decoder_->bind_metrics(registry);
  anonymiser_.bind_metrics(registry);
  stats_.bind_metrics(registry);
}

PipelineResult CapturePipeline::finish() {
  if (!finished_) {
    finished_ = true;
    frame_queue_.close();
    decode_thread_.join();
    anonymise_thread_.join();
    if (xml_) xml_->finish();
  }
  PipelineResult result;
  result.decode = decoder_->stats();
  result.distinct_clients = anonymiser_.distinct_clients();
  result.distinct_files = anonymiser_.distinct_files();
  result.anonymised_events = anonymised_events_;
  result.xml_events = xml_ ? xml_->events_written() : 0;
  return result;
}

}  // namespace dtr::core
