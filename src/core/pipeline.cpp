#include "core/pipeline.hpp"

#include <chrono>

#include "core/server_pool.hpp"

namespace dtr::core {

CapturePipeline::CapturePipeline(const PipelineConfig& config)
    : config_(config),
      frame_queue_(config.frame_queue_capacity),
      message_queue_(config.message_queue_capacity),
      clients_(anon::DirectClientTable::PageMode::kPaged),
      files_(config.fileid_index_byte_0, config.fileid_index_byte_1),
      anonymiser_(clients_, files_) {
  if (config_.xml_out != nullptr) {
    xml_ = std::make_unique<xmlio::DatasetWriter>(*config_.xml_out);
  }
  // The decode loop collects messages via decode_into() and hands them to
  // the message queue in per-drain batches; no per-message sink needed.
  decoder_ = std::make_unique<decode::FrameDecoder>(
      config_.server_ip, config_.server_port, decode::MessageSink{});
  // Bind before the worker threads exist so instrument pointers are
  // published by the thread constructors' synchronisation.
  if (config_.metrics != nullptr) bind_metrics(*config_.metrics);
  decoder_->bind_telemetry(config_.log, config_.flight);
  anonymiser_.bind_telemetry(config_.log);
  DTR_LOG_INFO(config_.log, "pipeline", 0,
               "serial pipeline up (frame queue "
                   << config_.frame_queue_capacity << ", message queue "
                   << config_.message_queue_capacity << ")");
  decode_thread_ = std::thread([this] { decode_loop(); });
  anonymise_thread_ = std::thread([this] { anonymise_loop(); });
}

CapturePipeline::~CapturePipeline() {
  if (!finished_) finish();
}

void CapturePipeline::push(const sim::TimedFrame& frame) {
  if (config_.profiler != nullptr && feeder_lease_.get() == nullptr) {
    feeder_lease_ = obs::ThreadLease(config_.profiler, "capture", "feed");
  }
  obs::inc(metrics_.frames);
  if (config_.flight != nullptr &&
      frame_queue_.size() >= config_.frame_queue_capacity) {
    // The decode stage is not keeping up: this push is about to block.
    obs::record(config_.flight, obs::FlightEvent::kStageStall, frame.time,
                frame_queue_.size());
  }
  frames_pushed_.fetch_add(1, std::memory_order_relaxed);
  if (!frame_queue_.push(frame)) note_dropped(1, "frames");
  obs::set(metrics_.frame_queue_depth,
           static_cast<std::int64_t>(frame_queue_.size()));
}

void CapturePipeline::flush() {
  const std::uint64_t frames = frames_pushed_.load(std::memory_order_relaxed);
  if (frames_decoded_.load(std::memory_order_acquire) < frames) {
    // The feeder is blocked on downstream progress: backpressure time.
    obs::ProfScope prof(obs::ThreadState::kQueueWait);
    while (frames_decoded_.load(std::memory_order_acquire) < frames) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  // Only now is the message count for this prefix final.
  const std::uint64_t messages =
      messages_enqueued_.load(std::memory_order_acquire);
  if (messages_done_.load(std::memory_order_acquire) < messages) {
    obs::ProfScope prof(obs::ThreadState::kQueueWait);
    while (messages_done_.load(std::memory_order_acquire) < messages) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  if (config_.replay != nullptr) config_.replay->drain();
}

void CapturePipeline::note_dropped(std::size_t count, const char* what) {
  obs::inc(metrics_.dropped_on_close, count);
  if (!dropped_logged_.exchange(true)) {
    DTR_LOG_WARN(config_.log, "pipeline", 0,
                 "queue closed during shutdown: "
                     << count << ' ' << what
                     << " dropped (further drops counted, not logged)");
  }
}

void CapturePipeline::fail(const char* stage, SimTime time,
                           const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_.empty()) error_ = std::string(stage) + ": " + what;
  }
  obs::record(config_.flight, obs::FlightEvent::kPipelineError, time);
  DTR_LOG_ERROR(config_.log, stage, time, "stage failed: " << what);
}

void CapturePipeline::decode_loop() {
  obs::ThreadLease lease(config_.profiler, "decode", "decode");
  bool failed = false;
  std::vector<sim::TimedFrame> frames;
  std::vector<decode::DecodedMessage> scratch;
  while (frame_queue_.pop_all(frames)) {
    obs::set(metrics_.frame_queue_depth,
             static_cast<std::int64_t>(frame_queue_.size()));
    for (const sim::TimedFrame& frame : frames) {
      if (!failed) {
        try {
          obs::SpanTimer span(metrics_.decode_span);
          decoder_->decode_into(frame, scratch);
          last_time_ = frame.time;
        } catch (const std::exception& e) {
          failed = true;  // keep draining so upstream push()/flush() never hang
          fail("decode", frame.time, e.what());
        }
      }
    }
    if (!scratch.empty()) {
      // Count before the hand-off and before the frame counter below:
      // flush() reads messages_enqueued_ only once frames_decoded_ has
      // caught up, so this order keeps its two-phase wait exact.
      const std::size_t produced = scratch.size();
      messages_enqueued_.fetch_add(produced, std::memory_order_release);
      if (message_queue_.push_all(scratch) != produced) {
        note_dropped(produced, "messages");
      }
    }
    frames_decoded_.fetch_add(frames.size(), std::memory_order_release);
    frames.clear();
  }
  if (!failed) decoder_->finish(last_time_);
  message_queue_.close();
}

void CapturePipeline::anonymise_loop() {
  obs::ThreadLease lease(config_.profiler, "anonymise", "anonymise");
  bool failed = false;
  std::vector<decode::DecodedMessage> batch;
  while (message_queue_.pop_all(batch)) {
    obs::set(metrics_.message_queue_depth,
             static_cast<std::int64_t>(message_queue_.size()));
    for (decode::DecodedMessage& msg : batch) {
      if (!failed) {
        try {
          obs::SpanTimer span(metrics_.anonymise_span);
          obs::inc(metrics_.messages);
          // The dialog's client side: whoever is not the server.
          const bool from_client = msg.dst_ip == config_.server_ip &&
                                   msg.dst_port == config_.server_port;
          const std::uint32_t peer_ip = from_client ? msg.src_ip : msg.dst_ip;

          anon::AnonEvent event =
              anonymiser_.anonymise(msg.time, peer_ip, msg.message);
          ++anonymised_events_;
          stats_.consume(event);
          if (config_.extra_sink) config_.extra_sink(event);
          if (xml_) xml_->write(event);
          if (config_.keep_events) events_.push_back(std::move(event));
          if (config_.replay != nullptr && from_client) {
            // The anonymised event is already extracted; the decoded message
            // itself is free to move into the shadow-serving pool.
            config_.replay->submit(ServerQuery{msg.src_ip, msg.src_port,
                                               std::move(msg.message),
                                               msg.time});
          }
        } catch (const std::exception& e) {
          failed = true;  // keep draining so flush() never hangs
          fail("anonymise", msg.time, e.what());
        }
      }
    }
    messages_done_.fetch_add(batch.size(), std::memory_order_release);
    batch.clear();
  }
}

void CapturePipeline::save_state(ByteWriter& out) const {
  out.u64le(last_time_);
  out.u64le(anonymised_events_);
  out.u64le(xml_ ? xml_->events_written() : 0);
  out.u64le(xml_ ? xml_->xml_elements_written() : 0);
  clients_.save_state(out);
  files_.save_state(out);
  anonymiser_.save_state(out);
  stats_.save_state(out);
  decoder_->save_state(out);
}

bool CapturePipeline::restore_state(ByteReader& in) {
  last_time_ = in.u64le();
  anonymised_events_ = in.u64le();
  const std::uint64_t xml_events = in.u64le();
  const std::uint64_t xml_elements = in.u64le();
  if (xml_) xml_->resume(xml_events, xml_elements);
  if (!clients_.restore_state(in)) return false;
  if (!files_.restore_state(in)) return false;
  if (!anonymiser_.restore_state(in)) return false;
  if (!stats_.restore_state(in)) return false;
  return decoder_->restore_state(in) && in.ok();
}

void CapturePipeline::bind_metrics(obs::Registry& registry) {
  metrics_.frames = &registry.counter("pipeline.frames");
  metrics_.messages = &registry.counter("pipeline.messages");
  metrics_.dropped_on_close = &registry.counter("pipeline.dropped_on_close");
  metrics_.frame_queue_depth = &registry.gauge("pipeline.queue.frames");
  metrics_.message_queue_depth = &registry.gauge("pipeline.queue.messages");
  metrics_.decode_span = &registry.histogram("span.decode.seconds");
  metrics_.anonymise_span = &registry.histogram("span.anonymise.seconds");
  decoder_->bind_metrics(registry);
  anonymiser_.bind_metrics(registry);
  stats_.bind_metrics(registry);
}

PipelineResult CapturePipeline::finish() {
  if (!finished_) {
    finished_ = true;
    frame_queue_.close();
    decode_thread_.join();
    anonymise_thread_.join();
    feeder_lease_.reset();  // finish() runs on the pushing thread
    if (config_.replay != nullptr) config_.replay->drain();
    if (xml_) xml_->finish();
    DTR_LOG_INFO(config_.log, "pipeline", last_time_,
                 "serial pipeline drained (" << anonymised_events_
                                             << " events anonymised)");
  }
  PipelineResult result;
  result.decode = decoder_->stats();
  result.distinct_clients = anonymiser_.distinct_clients();
  result.distinct_files = anonymiser_.distinct_files();
  result.anonymised_events = anonymised_events_;
  result.xml_events = xml_ ? xml_->events_written() : 0;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    result.error = error_;
  }
  return result;
}

}  // namespace dtr::core
