// The three-stage real-time processing pipeline (paper Figure 1):
//
//   capture (caller thread)  ->  [frame queue]  ->  decode thread
//   ->  [message queue]  ->  anonymise/format/accumulate thread
//
// The anonymisation stage is intentionally single-threaded: order-of-
// appearance encoding makes anonymised IDs depend on processing order, and
// a deterministic dataset requires a deterministic order.  The decode stage
// is stateless per datagram (IP reassembly aside) and feeds it in arrival
// order through the queue.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "analysis/campaign_stats.hpp"
#include "anon/anonymiser.hpp"
#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "core/queue.hpp"
#include "decode/decoder.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/frames.hpp"
#include "xmlio/schema.hpp"

namespace dtr::core {

class ServerWorkerPool;

struct PipelineConfig {
  std::uint32_t server_ip = 0xC0A80001;
  std::uint16_t server_port = 4665;
  std::size_t frame_queue_capacity = 65536;
  std::size_t message_queue_capacity = 65536;
  /// fileID anonymisation index bytes (paper §2.4: (0,1) is pathological
  /// under forged IDs; the default is the fixed choice).
  unsigned fileid_index_byte_0 = 5;
  unsigned fileid_index_byte_1 = 11;
  std::ostream* xml_out = nullptr;  ///< optional dataset destination
  bool keep_events = false;         ///< retain anonymised events in memory
  /// Optional extra consumer of the anonymised stream (runs on the
  /// anonymisation thread, in event order) — e.g. an ActivityTracker or
  /// FileSpreadTracker.
  std::function<void(const anon::AnonEvent&)> extra_sink;
  /// Optional metrics registry.  When set, every stage registers its
  /// instruments there (decode.*, anon.*, analysis.*, pipeline.*, span.*)
  /// and records during the run.  Must outlive the pipeline.
  obs::Registry* metrics = nullptr;
  /// Optional structured logger, shared by every stage (must outlive the
  /// pipeline; may be null).
  obs::Logger* log = nullptr;
  /// Optional flight recorder: stages record drop/reject/stall/error
  /// events into per-thread rings for post-mortem dumps (must outlive the
  /// pipeline; may be null — recording is a no-op then).
  obs::FlightRecorder* flight = nullptr;
  /// Optional shadow-serving pool: every decoded client->server query is
  /// resubmitted to a live reference EdonkeyServer through this pool, so a
  /// captured trace can be replayed against the sharded index at full
  /// concurrency.  flush()/finish() drain it (must outlive the pipeline).
  ServerWorkerPool* replay = nullptr;
  /// Optional pipeline profiler: the decode/anonymise threads and the
  /// pushing (capture feeder) thread register and attribute their time
  /// (working / queue_wait / park / lock_wait).  Never feeds the metrics
  /// registry, the time series, or the checkpoint fingerprint.  Must
  /// outlive the pipeline; may be null.
  obs::Profiler* profiler = nullptr;
};

/// End-of-run snapshot of everything the pipeline accumulated.
struct PipelineResult {
  decode::DecodeStats decode;
  std::uint64_t distinct_clients = 0;
  std::uint64_t distinct_files = 0;
  std::uint64_t anonymised_events = 0;
  std::uint64_t xml_events = 0;
  /// First stage failure ("stage: what"), empty on a clean run.  A failed
  /// stage stops processing but keeps draining its queue, so finish()
  /// still returns — with partial results and this set.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

class CapturePipeline {
 public:
  explicit CapturePipeline(const PipelineConfig& config);
  ~CapturePipeline();

  CapturePipeline(const CapturePipeline&) = delete;
  CapturePipeline& operator=(const CapturePipeline&) = delete;

  /// Feed one captured frame (blocking when the pipeline is saturated —
  /// loss, if any, belongs to the kernel buffer upstream, not here).
  void push(const sim::TimedFrame& frame);

  /// Close the intake, drain both stages, join the threads.
  PipelineResult finish();

  /// Quiesce to the current intake boundary: block the calling (pushing)
  /// thread until every frame pushed so far has been decoded AND every
  /// message those frames produced has been anonymised.  At return the
  /// metrics registry reflects exactly the pushed prefix — the hook the
  /// TimeSeriesRecorder needs for deterministic interval samples.  Cheap
  /// when already drained (two counter comparisons); call only between
  /// pushes.
  void flush();

  /// Statistics accumulator (valid after finish()).
  [[nodiscard]] const analysis::CampaignStats& stats() const { return stats_; }

  /// Anonymised events (only if keep_events was set; valid after finish()).
  [[nodiscard]] const std::vector<anon::AnonEvent>& events() const {
    return events_;
  }

  /// The anonymisation tables (valid after finish(); exposed for the
  /// Figure 3 bucket inspection and for tests).
  [[nodiscard]] const anon::BucketedFileIdStore& fileid_store() const {
    return files_;
  }
  [[nodiscard]] const anon::DirectClientTable& client_table() const {
    return clients_;
  }

  /// Checkpoint codec.  save_state may only run while the pipeline is
  /// quiesced (immediately after flush(), before the next push);
  /// restore_state must run before the first push after construction.
  /// keep_events buffers are not serialized — a resumed run retains only
  /// post-resume events.  When an XML sink is attached, the owner must
  /// restore the stream's contents to the checkpointed prefix itself
  /// (DatasetWriter::resume realigns the writer's cursor here).
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  void decode_loop();
  void anonymise_loop();
  void note_dropped(std::size_t count, const char* what);
  void bind_metrics(obs::Registry& registry);
  void fail(const char* stage, SimTime time, const std::string& what);

  struct Metrics {
    obs::Counter* frames = nullptr;
    obs::Counter* messages = nullptr;
    obs::Counter* dropped_on_close = nullptr;
    obs::Gauge* frame_queue_depth = nullptr;
    obs::Gauge* message_queue_depth = nullptr;
    obs::Histogram* decode_span = nullptr;
    obs::Histogram* anonymise_span = nullptr;
  };

  PipelineConfig config_;
  BoundedQueue<sim::TimedFrame> frame_queue_;
  BoundedQueue<decode::DecodedMessage> message_queue_;

  anon::DirectClientTable clients_;
  anon::BucketedFileIdStore files_;
  anon::Anonymiser anonymiser_;
  analysis::CampaignStats stats_;
  std::unique_ptr<xmlio::DatasetWriter> xml_;
  std::vector<anon::AnonEvent> events_;

  std::unique_ptr<decode::FrameDecoder> decoder_;
  Metrics metrics_;
  /// The pushing thread's profiler registration, taken lazily on the first
  /// push() and released in finish() (both run on the pushing thread).
  obs::ThreadLease feeder_lease_;
  std::uint64_t anonymised_events_ = 0;
  SimTime last_time_ = 0;

  // Stage progress counters for flush(): "done" trails "offered" on each
  // edge; equality on both edges means the pipeline is drained to the
  // intake boundary.
  std::atomic<std::uint64_t> frames_pushed_{0};
  std::atomic<std::uint64_t> frames_decoded_{0};
  std::atomic<std::uint64_t> messages_enqueued_{0};
  std::atomic<std::uint64_t> messages_done_{0};

  std::atomic<bool> dropped_logged_{false};
  std::mutex error_mutex_;
  std::string error_;  // first failure wins; guarded by error_mutex_

  std::thread decode_thread_;
  std::thread anonymise_thread_;
  bool finished_ = false;
};

}  // namespace dtr::core
