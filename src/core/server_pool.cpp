#include "core/server_pool.hpp"

#include <chrono>

namespace dtr::core {

ServerWorkerPool::ServerWorkerPool(server::EdonkeyServer& server,
                                   std::size_t workers,
                                   std::size_t queue_capacity,
                                   AnswerSink sink, obs::Profiler* profiler)
    : server_(server),
      sink_(std::move(sink)),
      profiler_(profiler),
      queue_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServerWorkerPool::~ServerWorkerPool() { finish(); }

bool ServerWorkerPool::submit(ServerQuery query) {
  // Count before pushing: a worker may finish the query (and compare
  // processed_ against submitted_) before push() even returns.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(std::move(query))) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  obs::inc(metrics_.queries);
  obs::record_max(metrics_.depth_high_water,
                  static_cast<std::int64_t>(queue_.size()));
  return true;
}

void ServerWorkerPool::worker_loop(std::size_t index) {
  obs::ThreadLease lease(profiler_, "server",
                         "server.worker." + std::to_string(index));
  while (auto query = queue_.pop()) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<proto::Message> answers = server_.handle(
        query->client_ip, query->client_port, query->query, query->time);
    obs::observe(
        metrics_.handle_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    answers_.fetch_add(answers.size(), std::memory_order_relaxed);
    obs::inc(metrics_.answers, answers.size());
    if (sink_) sink_(*query, std::move(answers));
    {
      // The lock pairs the increment with drain()'s predicate check, so a
      // drainer can't read a stale count and sleep through the last wakeup.
      std::lock_guard lock(drain_mutex_);
      processed_.fetch_add(1, std::memory_order_relaxed);
    }
    drained_.notify_all();
  }
}

void ServerWorkerPool::drain() {
  std::unique_lock lock(drain_mutex_);
  drained_.wait(lock, [this] {
    return processed_.load(std::memory_order_relaxed) >=
           submitted_.load(std::memory_order_relaxed);
  });
}

void ServerWorkerPool::finish() {
  if (finished_) return;
  finished_ = true;
  queue_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ServerWorkerPool::bind_metrics(obs::Registry& registry) {
  metrics_.queries = &registry.counter("server.pool.queries");
  metrics_.answers = &registry.counter("server.pool.answers");
  metrics_.depth_high_water = &registry.gauge("server.pool.depth.high_water");
  metrics_.handle_seconds =
      &registry.histogram("span.server.pool.handle.seconds");
}

}  // namespace dtr::core
