// CampaignRunner: the whole measurement in one call.
//
//   simulator (server + clients)  ->  mirror  ->  [+ background traffic]
//   ->  kernel capture buffer (losses)  ->  pipeline (decode, anonymise,
//   accumulate, optional XML/pcap)  ->  CampaignReport
//
// This is the facade the examples and the figure benches use.
#pragma once

#include <optional>
#include <string>

#include "analysis/campaign_stats.hpp"
#include "capture/engine.hpp"
#include "core/pipeline.hpp"
#include "sim/background.hpp"
#include "sim/campaign.hpp"

namespace dtr::core {

struct RunnerConfig {
  sim::CampaignConfig campaign;
  capture::KernelBufferConfig buffer;
  std::optional<sim::BackgroundConfig> background;  // engaged = mirror carries
                                                    // the TCP half too
  std::string pcap_path;     // non-empty = dump surviving frames to pcap
  std::ostream* xml_out = nullptr;
  bool keep_events = false;
  /// Extra streaming consumer of the anonymised events (see PipelineConfig).
  std::function<void(const anon::AnonEvent&)> extra_sink;

  /// Convenience: a small config that runs in well under a second.
  static RunnerConfig tiny(std::uint64_t seed = 42);
  /// Default bench-scale config (about a million messages).
  static RunnerConfig bench_scale(std::uint64_t seed = 42);
};

struct CampaignReport {
  sim::GroundTruth truth;
  std::uint64_t frames_captured = 0;
  std::uint64_t frames_lost = 0;
  std::vector<capture::LossPoint> loss_series;
  PipelineResult pipeline;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(const RunnerConfig& config);

  /// Run everything; blocks until the pipeline has drained.
  CampaignReport run();

  /// Valid after run().
  [[nodiscard]] const analysis::CampaignStats& stats() const {
    return pipeline_->stats();
  }
  [[nodiscard]] const CapturePipeline& pipeline() const { return *pipeline_; }
  [[nodiscard]] const sim::CampaignSimulator& simulator() const {
    return simulator_;
  }

 private:
  RunnerConfig config_;
  sim::CampaignSimulator simulator_;
  std::unique_ptr<net::PcapWriter> pcap_;
  std::unique_ptr<CapturePipeline> pipeline_;
};

}  // namespace dtr::core
