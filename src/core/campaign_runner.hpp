// CampaignRunner: the whole measurement in one call.
//
//   simulator (server + clients)  ->  mirror  ->  [+ background traffic]
//   ->  kernel capture buffer (losses)  ->  pipeline (decode, anonymise,
//   accumulate, optional XML/pcap)  ->  CampaignReport
//
// This is the facade the examples and the figure benches use.
#pragma once

#include <optional>
#include <string>

#include "analysis/campaign_stats.hpp"
#include "analysis/report.hpp"
#include "capture/engine.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/pipeline.hpp"
#include "obs/timeseries.hpp"
#include "sim/background.hpp"
#include "sim/campaign.hpp"

namespace dtr::core {

struct RunnerConfig {
  sim::CampaignConfig campaign;
  capture::KernelBufferConfig buffer;
  std::optional<sim::BackgroundConfig> background;  // engaged = mirror carries
                                                    // the TCP half too
  std::string pcap_path;     // non-empty = dump surviving frames to pcap
  std::ostream* xml_out = nullptr;
  bool keep_events = false;
  /// Extra streaming consumer of the anonymised events (see PipelineConfig).
  std::function<void(const anon::AnonEvent&)> extra_sink;
  /// Decode worker threads: 0 or 1 = serial CapturePipeline, >1 = the
  /// order-preserving ParallelCapturePipeline (same output, more cores).
  std::size_t workers = 0;
  /// Parallel data-plane tuning (ignored for serial runs; see
  /// ParallelPipelineConfig).  None of these affect the output bytes, so
  /// none join the checkpoint fingerprint: a campaign checkpointed with
  /// one batch size may resume with another.
  std::size_t batch_frames = 16;
  bool buffer_pool = true;
  bool writer_offload = true;
  /// Anonymisation table shards (clamped to a power of two in [1, 64]).
  /// Dense IDs are assigned by the merge thread in sequence order, so the
  /// shard count never changes the output — it only spreads lock-free
  /// lookup state for the workers' optimistic pass.  Like the knobs above
  /// it stays out of the checkpoint fingerprint: a campaign may resume
  /// with a different shard count.
  std::size_t anon_shards = 8;
  /// Optional metrics registry: when set, the capture buffer, the server
  /// index, and every pipeline stage register their instruments there.
  obs::Registry* metrics = nullptr;
  /// Optional structured logger, handed to the capture buffer, the server
  /// and every pipeline stage (must outlive run(); may be null).
  obs::Logger* log = nullptr;
  /// Optional flight recorder for post-mortem event dumps (must outlive
  /// run(); may be null).
  obs::FlightRecorder* flight = nullptr;
  /// Optional pipeline profiler (must outlive run(); may be null).  Handed
  /// to the pipeline so its threads attribute their time, and fed the wall
  /// cost + size of every checkpoint snapshot.  Deliberately NOT part of
  /// the checkpoint fingerprint: a profiled run may resume an unprofiled
  /// snapshot and vice versa, with byte-identical outputs.
  obs::Profiler* profiler = nullptr;
  /// Optional time-series recorder sampling `metrics` at its interval
  /// boundaries (simulated time).  Must be built over the same registry as
  /// `metrics`; the runner calls finish() on it after the pipeline drains.
  obs::TimeSeriesRecorder* series = nullptr;
  /// Quiesce the pipeline before every series sample so interval counters
  /// are exact and independent of thread scheduling (byte-reproducible
  /// output, serial == parallel).  Disable only for coarse "roughly now"
  /// sampling where stalling the intake is not worth it.
  bool series_flush = true;
  /// Checkpoint/resume — the crash-safe long-campaign story (the paper's
  /// horizon is ten weeks).  When `checkpoint_dir` is non-empty the runner
  /// quiesces the pipeline at every `checkpoint_interval` boundary of
  /// simulated time and atomically writes a full snapshot (simulator +
  /// server index, capture buffer and loss series, anonymiser tables,
  /// decoder, metrics, time series, XML prefix, pcap cursor) into the
  /// directory, one file per boundary (checkpoint_file_name()).  When
  /// `resume_from` names a snapshot file, the run continues from that
  /// boundary; the final outputs (XML dataset, series JSONL/CSV, pcap,
  /// report counters) are byte-identical to an uninterrupted run's.
  /// Resuming requires the same campaign/buffer config, worker count and
  /// attached outputs as the run that wrote the snapshot.
  std::string checkpoint_dir;
  SimTime checkpoint_interval = kWeek;
  std::string resume_from;

  /// Convenience: a small config that runs in well under a second.
  static RunnerConfig tiny(std::uint64_t seed = 42);
  /// Default bench-scale config (about a million messages).
  static RunnerConfig bench_scale(std::uint64_t seed = 42);
};

/// Snapshot file name for a boundary: "checkpoint-<zero-padded time>.ckpt"
/// (fixed width so lexicographic order equals time order).
std::string checkpoint_file_name(SimTime boundary);

struct CampaignReport {
  sim::GroundTruth truth;
  std::uint64_t frames_captured = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t buffer_high_water = 0;  // peak kernel-buffer occupancy
  std::vector<capture::LossPoint> loss_series;
  PipelineResult pipeline;
};

/// Assemble the figure-style scenario summary (churn timeline, loss curve,
/// pollution hit-rate) for a finished run.  `scenario` is the runner's
/// `simulator().scenario()`; returns nullopt when it is null (steady or no
/// scenario — there is nothing hostile to report).
std::optional<analysis::ScenarioSummary> build_scenario_summary(
    const sim::Scenario* scenario, const CampaignReport& report);

class CampaignRunner {
 public:
  explicit CampaignRunner(const RunnerConfig& config);

  /// Run everything; blocks until the pipeline has drained.
  CampaignReport run();

  /// Valid after run().
  [[nodiscard]] const analysis::CampaignStats& stats() const {
    return parallel_ ? parallel_->stats() : pipeline_->stats();
  }
  /// The serial pipeline (valid after run() with workers <= 1 only; the
  /// parallel pipeline does not expose retained events or tables).
  [[nodiscard]] const CapturePipeline& pipeline() const { return *pipeline_; }
  [[nodiscard]] const sim::CampaignSimulator& simulator() const {
    return simulator_;
  }

 private:
  RunnerConfig config_;
  sim::CampaignSimulator simulator_;
  std::unique_ptr<net::PcapWriter> pcap_;
  std::unique_ptr<CapturePipeline> pipeline_;
  std::unique_ptr<ParallelCapturePipeline> parallel_;
};

}  // namespace dtr::core
