#include "core/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "hash/md5.hpp"

namespace dtr::core {

namespace {

// Guards against absurd section tables in corrupt files; generous versus
// the handful of subsystems a campaign actually snapshots.
constexpr std::uint32_t kMaxSections = 1024;
constexpr std::uint32_t kMaxSectionName = 256;

constexpr std::size_t kDigestSize = 16;
constexpr std::size_t kMinFileSize =
    sizeof(kCheckpointMagic) + 2 * sizeof(std::uint32_t) + kDigestSize;

}  // namespace

void CheckpointBuilder::add(std::string name, Bytes payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

Bytes CheckpointBuilder::encode() const {
  ByteWriter out;
  out.raw(kCheckpointMagic, sizeof(kCheckpointMagic));
  out.u32le(kCheckpointVersion);
  out.u32le(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.u32le(static_cast<std::uint32_t>(name.size()));
    out.raw(name.data(), name.size());
    out.u64le(payload.size());
    out.raw(payload);
  }
  const Digest128 digest = Md5::digest(out.view());
  out.raw(digest.bytes.data(), digest.bytes.size());
  return std::move(out).take();
}

std::string CheckpointBuilder::write_file(const std::string& path) const {
  const Bytes data = encode();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return "cannot open " + tmp + " for writing";
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return "short write to " + tmp;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return "cannot rename " + tmp + " to " + path;
  }
  return {};
}

std::optional<CheckpointView> CheckpointView::parse(BytesView data,
                                                    std::string& error) {
  if (data.size() < kMinFileSize) {
    error = "truncated checkpoint (shorter than the fixed header)";
    return std::nullopt;
  }
  if (std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    error = "not a checkpoint file (bad magic)";
    return std::nullopt;
  }
  // Verify the trailing digest before trusting any length field: a single
  // flipped bit anywhere — including in the section table — fails here.
  const std::size_t body_size = data.size() - kDigestSize;
  const Digest128 expect = Md5::digest(data.subspan(0, body_size));
  if (std::memcmp(expect.bytes.data(), data.data() + body_size, kDigestSize) !=
      0) {
    error = "checkpoint checksum mismatch (corrupt or truncated file)";
    return std::nullopt;
  }

  ByteReader in(data.subspan(0, body_size));
  in.skip(sizeof(kCheckpointMagic));
  const std::uint32_t version = in.u32le();
  if (version != kCheckpointVersion) {
    error = "unsupported checkpoint version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kCheckpointVersion) + ")";
    return std::nullopt;
  }
  const std::uint32_t count = in.u32le();
  if (count > kMaxSections) {
    error = "implausible section count";
    return std::nullopt;
  }

  CheckpointView view;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = in.u32le();
    if (!in.ok() || name_len == 0 || name_len > kMaxSectionName) {
      error = "malformed section name";
      return std::nullopt;
    }
    BytesView name_bytes = in.raw(name_len);
    std::string name(reinterpret_cast<const char*>(name_bytes.data()),
                     name_bytes.size());
    const std::uint64_t payload_len = in.u64le();
    if (!in.ok() || payload_len > in.remaining()) {
      error = "truncated section payload";
      return std::nullopt;
    }
    BytesView payload = in.raw(static_cast<std::size_t>(payload_len));
    auto [it, inserted] =
        view.sections_.emplace(std::move(name), Bytes(payload.begin(),
                                                      payload.end()));
    if (!inserted) {
      error = "duplicate section '" + it->first + "'";
      return std::nullopt;
    }
  }
  if (!in.ok() || !in.at_end()) {
    error = "trailing bytes after the last section";
    return std::nullopt;
  }
  return view;
}

std::optional<CheckpointView> CheckpointView::load(const std::string& path,
                                                   std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read checkpoint file " + path;
    return std::nullopt;
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return parse(data, error);
}

const Bytes* CheckpointView::section(std::string_view name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

ByteReader CheckpointView::reader(std::string_view name) const {
  const Bytes* payload = section(name);
  if (payload == nullptr) {
    ByteReader failed{BytesView{}};
    failed.fail();
    return failed;
  }
  return ByteReader(*payload);
}

std::vector<std::string> CheckpointView::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, payload] : sections_) names.push_back(name);
  return names;
}

}  // namespace dtr::core
