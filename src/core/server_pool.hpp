// Concurrent driver for the directory-server stage.
//
// The paper's server fielded publishes and searches from tens of millions
// of clients; the sharded index (server/index.hpp) makes EdonkeyServer
// safe to call from many threads, and this pool is the harness that does
// so: a bounded MPMC queue of client queries fanned out to a fixed set of
// worker threads, each calling EdonkeyServer::handle().  Backpressure is
// inherited from BoundedQueue — a full queue blocks the submitter rather
// than dropping, mirroring the pipeline-stage coupling.
//
// Answers are delivered to an optional sink callback *from worker
// threads*; the sink must be thread-safe.  drain() blocks until every
// submitted query has been fully processed (including its sink call), so
// callers can quiesce before reading totals — ServerStats counters are
// atomic but only add up to a consistent story once the pool is idle.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "core/queue.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "proto/messages.hpp"
#include "server/server.hpp"

namespace dtr::core {

/// One client query as the pool transports it.
struct ServerQuery {
  proto::ClientId client_ip = 0;
  std::uint16_t client_port = 0;
  proto::Message query;
  SimTime time{};
};

class ServerWorkerPool {
 public:
  /// Called once per processed query, from a worker thread, with the
  /// answers handle() produced (possibly empty).  Must be thread-safe.
  using AnswerSink =
      std::function<void(const ServerQuery&, std::vector<proto::Message>)>;

  /// The pool starts its workers immediately; `server` must outlive it.
  /// `workers` is clamped to at least 1.  When `profiler` is set (it must
  /// outlive the pool), each worker registers as server.worker.N and
  /// attributes its time (park while the queue is empty, lock_wait inside
  /// contended index shards, working otherwise).
  ServerWorkerPool(server::EdonkeyServer& server, std::size_t workers,
                   std::size_t queue_capacity, AnswerSink sink = nullptr,
                   obs::Profiler* profiler = nullptr);
  ~ServerWorkerPool();

  ServerWorkerPool(const ServerWorkerPool&) = delete;
  ServerWorkerPool& operator=(const ServerWorkerPool&) = delete;

  /// Enqueue a query; blocks while the queue is full.  Returns false after
  /// finish() — the query is dropped in that case.
  bool submit(ServerQuery query);

  /// Block until every query submitted so far has been processed.  The
  /// pool remains usable afterwards.
  void drain();

  /// Close the queue, process what remains, and join the workers.
  /// Idempotent; the destructor calls it.
  void finish();

  [[nodiscard]] std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t answers() const {
    return answers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Register `server.pool.*` instruments: query/answer counters, a
  /// queue-depth high-water gauge, and a per-query handle-latency
  /// histogram (span.-prefixed: wall-clock, excluded from the series).
  void bind_metrics(obs::Registry& registry);

 private:
  void worker_loop(std::size_t index);

  server::EdonkeyServer& server_;
  AnswerSink sink_;
  obs::Profiler* profiler_ = nullptr;
  BoundedQueue<ServerQuery> queue_;
  std::vector<std::thread> threads_;
  bool finished_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> answers_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;

  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* answers = nullptr;
    obs::Gauge* depth_high_water = nullptr;
    obs::Histogram* handle_seconds = nullptr;
  } metrics_;
};

}  // namespace dtr::core
