// Single-producer / single-consumer bounded ring for the pipeline hot path.
//
// Replaces the mutex-protected BoundedQueue on the pusher→worker,
// worker→merge and merge→writer hand-offs.  The common case (ring neither
// full nor empty) is two atomic loads and one atomic store per side; the
// mutex + condition variable are only touched when a side has to park.
//
// Parking uses the classic store→fence→load (Dekker) protocol: the waiter
// publishes a "waiting" flag, re-checks the ring, and only then sleeps; the
// other side publishes its head/tail update, fences, and only grabs the
// mutex to notify when it observes the flag.  The empty lock_guard before
// notify mirrors notify_quiesce() in parallel_pipeline.cpp and closes the
// window between the waiter's predicate check and its cv wait.
//
// A ring can also be wired to an external RingSignal so a single consumer
// (the merge thread) can sleep on *several* producer rings at once.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace dtr::core {

/// Fan-in wakeup channel shared by several SpscRings feeding one consumer.
///
/// Consumer protocol:
///   const auto seen = signal.prepare();   // announce intent to sleep
///   ... scan all rings ...
///   if (found) signal.cancel(); else signal.wait(seen);
///
/// Producers call notify() after publishing; the epoch bump makes a wait()
/// that raced with the publish return immediately instead of sleeping.
class RingSignal {
 public:
  using Epoch = std::uint64_t;

  [[nodiscard]] Epoch prepare() {
    waiting_.store(true, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel() { waiting_.store(false, std::memory_order_relaxed); }

  void wait(Epoch seen) {
    // The consumer is starved for input across every bound ring.
    obs::ProfScope prof(obs::ThreadState::kPark);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return epoch_.load(std::memory_order_acquire) != seen; });
    waiting_.store(false, std::memory_order_relaxed);
  }

  void notify() {
    epoch_.fetch_add(1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!waiting_.load(std::memory_order_relaxed)) return;
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

 private:
  std::atomic<Epoch> epoch_{0};
  std::atomic<bool> waiting_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
};

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Route consumer wakeups through a shared fan-in signal instead of the
  /// internal condition variable.  Must be called before threads start.
  void bind_consumer_signal(RingSignal* signal) { signal_ = signal; }

  /// Count producer/consumer parks (sleeps) into shared instruments.  Park
  /// *durations* need no binding: when the parking thread is registered
  /// with an obs::Profiler, the ProfScopes on the wait paths attribute the
  /// blocked time (queue_wait for producers, park for consumers).
  void bind_metrics(obs::Counter* producer_parks, obs::Counter* consumer_parks) {
    producer_parks_ = producer_parks;
    consumer_parks_ = consumer_parks;
  }

  std::size_t capacity() const { return mask_ + 1; }

  std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Closed with nothing left to pop.
  bool drained() const {
    if (!closed_.load(std::memory_order_acquire)) return false;
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  /// Non-blocking push.  Returns false (item untouched) when full or closed.
  bool try_push(T& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    wake_consumer();
    return true;
  }

  /// Blocking push.  Returns false and drops the item if the ring is closed.
  bool push(T item) {
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (tail - head_.load(std::memory_order_acquire) <= mask_) {
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        wake_consumer();
        return true;
      }
      producer_waiting_.store(true, std::memory_order_seq_cst);
      if (tail - head_.load(std::memory_order_seq_cst) <= mask_ ||
          closed_.load(std::memory_order_acquire)) {
        producer_waiting_.store(false, std::memory_order_relaxed);
        continue;
      }
      obs::inc(producer_parks_);
      {
        // Blocked on a full downstream ring: backpressure, not idleness.
        obs::ProfScope prof(obs::ThreadState::kQueueWait);
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
          return closed_.load(std::memory_order_acquire) ||
                 tail - head_.load(std::memory_order_acquire) <= mask_;
        });
      }
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> item(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    wake_producer();
    return item;
  }

  /// Blocking pop.  Returns nullopt only after close() once the ring drains.
  std::optional<T> pop() {
    for (;;) {
      if (auto item = try_pop()) return item;
      if (closed_.load(std::memory_order_acquire) &&
          head_.load(std::memory_order_relaxed) == tail_.load(std::memory_order_acquire)) {
        return std::nullopt;
      }
      consumer_waiting_.store(true, std::memory_order_seq_cst);
      const std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (head != tail_.load(std::memory_order_seq_cst) ||
          closed_.load(std::memory_order_acquire)) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        continue;
      }
      obs::inc(consumer_parks_);
      {
        // Starved for upstream input.
        obs::ProfScope prof(obs::ThreadState::kPark);
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] {
          return closed_.load(std::memory_order_acquire) ||
                 head != tail_.load(std::memory_order_acquire);
        });
      }
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
  }

  /// Non-blocking bulk drain; appends everything currently visible to `out`
  /// in FIFO order and returns how many items were taken.
  std::size_t pop_all(std::vector<T>& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return 0;
    for (std::uint64_t i = head; i != tail; ++i) {
      out.push_back(std::move(slots_[i & mask_]));
    }
    head_.store(tail, std::memory_order_release);
    wake_producer();
    return static_cast<std::size_t>(tail - head);
  }

  /// Close the ring: pushes start failing, pops drain what is left.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    if (signal_ != nullptr) signal_->notify();
  }

 private:
  void wake_consumer() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
      }
      not_empty_.notify_all();
    }
    if (signal_ != nullptr) signal_->notify();
  }

  void wake_producer() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (producer_waiting_.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
      }
      not_full_.notify_all();
    }
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  RingSignal* signal_ = nullptr;
  obs::Counter* producer_parks_ = nullptr;
  obs::Counter* consumer_parks_ = nullptr;
};

}  // namespace dtr::core
