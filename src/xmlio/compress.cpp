#include "xmlio/compress.hpp"

#include <cstring>

namespace dtr::xmlio {

namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'T', 'Z', '1'};

// Hash-chain matcher state: head[hash] = most recent position with that
// 4-byte hash; prev[pos & mask] = previous position in the chain.
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kChainMask = kLzWindow - 1;
constexpr int kMaxChainSteps = 64;  // match-effort bound

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

}  // namespace

Bytes lz_compress(BytesView data) {
  ByteWriter out(data.size() / 2 + 32);
  out.raw(kMagic, 4);
  out.u64le(data.size());

  if (data.empty()) return std::move(out).take();

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(kLzWindow, -1);

  Bytes pending;          // token payload bytes for the current flag group
  std::uint8_t flags = 0;
  int flag_count = 0;

  auto flush_group = [&] {
    out.u8(flags);
    out.raw(pending);
    pending.clear();
    flags = 0;
    flag_count = 0;
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + kLzMinMatch <= data.size()) {
      std::uint32_t h = hash4(data.data() + pos);
      std::int64_t candidate = head[h];
      int steps = 0;
      while (candidate >= 0 && steps < kMaxChainSteps &&
             pos - static_cast<std::size_t>(candidate) <= kLzWindow) {
        const auto cpos = static_cast<std::size_t>(candidate);
        std::size_t len = 0;
        std::size_t max_len = std::min(kLzMaxMatch, data.size() - pos);
        while (len < max_len && data[cpos + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cpos;
          if (len == max_len) break;
        }
        candidate = prev[cpos & kChainMask];
        ++steps;
      }
    }

    if (best_len >= kLzMinMatch) {
      flags |= static_cast<std::uint8_t>(1u << flag_count);
      pending.push_back(static_cast<std::uint8_t>(best_dist - 1));
      pending.push_back(static_cast<std::uint8_t>((best_dist - 1) >> 8));
      pending.push_back(static_cast<std::uint8_t>(best_len - kLzMinMatch));
      // Insert all covered positions into the chains.
      std::size_t end = pos + best_len;
      for (; pos < end; ++pos) {
        if (pos + kLzMinMatch <= data.size()) {
          std::uint32_t h = hash4(data.data() + pos);
          prev[pos & kChainMask] = head[h];
          head[h] = static_cast<std::int64_t>(pos);
        }
      }
    } else {
      pending.push_back(data[pos]);
      if (pos + kLzMinMatch <= data.size()) {
        std::uint32_t h = hash4(data.data() + pos);
        prev[pos & kChainMask] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
      }
      ++pos;
    }

    if (++flag_count == 8) flush_group();
  }
  if (flag_count > 0) flush_group();
  return std::move(out).take();
}

std::optional<Bytes> lz_decompress(BytesView compressed) {
  if (compressed.size() < 12) return std::nullopt;
  if (std::memcmp(compressed.data(), kMagic, 4) != 0) return std::nullopt;
  ByteReader r(compressed.subspan(4));
  std::uint64_t original_size = r.u64le();
  // Refuse absurd sizes relative to the input (a 12-byte file cannot claim
  // terabytes: max expansion per token is kLzMaxMatch bytes from 3).
  if (original_size > (compressed.size() + 1) * kLzMaxMatch) {
    return std::nullopt;
  }

  Bytes out;
  out.reserve(original_size);
  while (out.size() < original_size) {
    if (!r.ok() || r.at_end()) return std::nullopt;
    std::uint8_t flags = r.u8();
    for (int bit = 0; bit < 8 && out.size() < original_size; ++bit) {
      if (flags & (1u << bit)) {
        std::uint16_t dist_raw = r.u16le();
        std::uint8_t len_raw = r.u8();
        if (!r.ok()) return std::nullopt;
        std::size_t dist = static_cast<std::size_t>(dist_raw) + 1;
        std::size_t len = static_cast<std::size_t>(len_raw) + kLzMinMatch;
        if (dist > out.size()) return std::nullopt;  // out-of-window
        if (out.size() + len > original_size) return std::nullopt;
        std::size_t from = out.size() - dist;
        for (std::size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
      } else {
        std::uint8_t byte = r.u8();
        if (!r.ok()) return std::nullopt;
        out.push_back(byte);
      }
    }
  }
  return out;
}

double lz_ratio(BytesView original, BytesView compressed) {
  if (original.empty()) return 1.0;
  return static_cast<double>(compressed.size()) /
         static_cast<double>(original.size());
}

}  // namespace dtr::xmlio
