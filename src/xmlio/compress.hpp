// LZSS compression for released datasets.
//
// The paper stores the dataset as XML because, "once compressed, [it] does
// not have a prohibitive space cost" (footnote 3).  This module provides
// the compression half of that story without external dependencies: a
// classic LZSS (sliding-window dictionary) codec with a hash-chain matcher.
// XML's repetitive structure compresses extremely well under it (typically
// 4-8x on dataset files).
//
// Container format ("DTZ1"): 4-byte magic, u64le original size, then token
// groups — one flag byte per 8 tokens (bit set = match), literals are raw
// bytes, matches are 3 bytes: u16le distance (1-based), u8 length-3.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace dtr::xmlio {

constexpr std::size_t kLzWindow = 65536;  // max match distance
constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxMatch = 258;  // kLzMinMatch + 254

/// Compress `data`.  Output is never more than input + input/8 + 16 bytes.
Bytes lz_compress(BytesView data);

/// Decompress; nullopt on malformed input (bad magic, truncated stream,
/// out-of-window reference, or size mismatch).
std::optional<Bytes> lz_decompress(BytesView compressed);

/// Convenience: compressed-size / original-size (1.0 when empty).
double lz_ratio(BytesView original, BytesView compressed);

}  // namespace dtr::xmlio
