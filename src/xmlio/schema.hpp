// Dataset schema: AnonEvent <-> XML.
//
// One <msg> element per anonymised message, inside a <capture> root:
//
//   <capture spec="donkeytrace-1">
//     <msg t="1234567" peer="42" dir="q" kind="getsrc"><f id="17"/></msg>
//     <msg t="1234590" peer="42" dir="a" kind="foundsrc" file="17">
//       <s c="99" p="4662"/>
//     </msg>
//     ...
//   </capture>
//
// Attributes:  t = microseconds since capture start, peer = anonymised
// clientID of the dialog's client side, dir = q(uery)/a(nswer).
// Search expressions serialise as nested <and>/<or>/<andnot>/<kw>/<meta>/
// <num> elements; hashes are 32-hex-digit MD5 tokens.
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "anon/anonymiser.hpp"
#include "xmlio/parser.hpp"
#include "xmlio/writer.hpp"

namespace dtr::xmlio {

constexpr const char* kCaptureSpec = "donkeytrace-1";

/// Streams AnonEvents into a <capture> document.
class DatasetWriter {
 public:
  explicit DatasetWriter(std::ostream& out, bool pretty = false);
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  void write(const anon::AnonEvent& event);

  /// Splice `events` pre-rendered <msg> elements (`xml_elements` XML
  /// elements in total) produced by render_event().  Byte-for-byte
  /// equivalent to calling write() on the same events when the writer is
  /// non-pretty — the pipeline's parallel fast path.
  void write_rendered(std::string_view bytes, std::uint64_t events,
                      std::uint64_t xml_elements);

  /// Close the root element.  Called by the destructor if omitted.
  void finish();

  /// Checkpoint resume: the owner has just replaced the output stream's
  /// contents with a checkpointed prefix holding `events` complete <msg>
  /// elements (`xml_elements` XML elements in total, nested ones
  /// included); realign the writer's state with it.  With zero events the
  /// freshly-constructed state already matches the prologue.
  void resume(std::uint64_t events, std::uint64_t xml_elements);

  [[nodiscard]] std::uint64_t events_written() const { return events_; }
  [[nodiscard]] std::uint64_t xml_elements_written() const {
    return writer_.elements_written();
  }

 private:
  XmlWriter writer_;
  bool finished_ = false;
  std::uint64_t events_ = 0;
};

/// Append the exact bytes DatasetWriter::write(event) would emit on a
/// non-pretty writer; returns the number of XML elements rendered (the
/// <msg> itself plus nested children).  Position-independent: non-pretty
/// output has no indentation, so chunks render on any thread and splice in
/// any order.
std::uint64_t render_event(const anon::AnonEvent& event, std::string& out);

/// Streams AnonEvents back out of a dataset document.
class DatasetReader {
 public:
  explicit DatasetReader(std::istream& in);

  /// Next event, or nullopt at end.  Malformed documents set ok() false.
  std::optional<anon::AnonEvent> next();

  [[nodiscard]] bool ok() const { return ok_ && parser_.ok(); }
  [[nodiscard]] const std::string& error() const {
    return error_.empty() ? parser_.error() : error_;
  }

 private:
  void fail(std::string message);
  std::optional<anon::AnonMessage> parse_body(const XmlToken& msg_tag);

  XmlParser parser_;
  bool ok_ = true;
  bool root_seen_ = false;
  std::string error_;
};

}  // namespace dtr::xmlio
