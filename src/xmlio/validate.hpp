// Dataset validation against the formal specification (docs/DATASET_SPEC.md).
//
// The paper releases its dataset "with its formal specification"; this
// validator makes our specification executable.  Beyond well-formedness
// (which DatasetReader already enforces), it checks the *semantic*
// invariants that the capture pipeline guarantees:
//
//   V1  timestamps are non-decreasing (capture order).
//   V2  client tokens appear first in increasing order: the k-th distinct
//       peer/provider/source token to appear is exactly k-1
//       (order-of-appearance anonymisation).
//   V3  file tokens likewise.
//   V4  dir attribute matches the message kind (queries vs answers).
//   V5  file sizes fit the protocol's 32-bit byte field (<= 4 GiB in KB).
//
// A dataset produced by any pipeline in this repository satisfies all five;
// a dataset edited by hand, corrupted, or produced by a buggy anonymiser
// does not.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "anon/anonymiser.hpp"

namespace dtr::xmlio {

struct Violation {
  std::uint64_t event_index = 0;
  std::string rule;     // "V1".."V5"
  std::string message;
};

class DatasetValidator {
 public:
  /// Feed events in document order.
  void consume(const anon::AnonEvent& event);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool valid() const { return violations_.empty(); }
  [[nodiscard]] std::uint64_t events() const { return index_; }

  /// Validate a whole document; returns the violations (empty = valid).
  /// Parse errors are reported as a single "parse" violation.
  static std::vector<Violation> validate_document(std::istream& in);

 private:
  struct TokenVisitor;  // walks a message's embedded tokens (defined in .cpp)

  void check_client_token(anon::AnonClientId token);
  void check_file_token(anon::AnonFileId token);
  void add(const char* rule, std::string message);

  std::uint64_t index_ = 0;
  SimTime last_time_ = 0;
  std::uint64_t next_client_ = 0;  // V2: next expected fresh client token
  std::uint64_t next_file_ = 0;    // V3
  std::vector<bool> seen_clients_;
  std::vector<bool> seen_files_;
  std::vector<Violation> violations_;
};

}  // namespace dtr::xmlio
