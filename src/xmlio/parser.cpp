#include "xmlio/parser.hpp"

#include <cctype>

namespace dtr::xmlio {

int XmlParser::get() { return in_.get(); }
int XmlParser::peek() { return in_.peek(); }

void XmlParser::fail(std::string message) {
  ok_ = false;
  if (error_.empty()) error_ = std::move(message);
}

bool XmlParser::expect(char c) {
  int got = get();
  if (got != c) {
    fail(std::string("expected '") + c + "'");
    return false;
  }
  return true;
}

std::string XmlParser::read_name() {
  std::string name;
  int c = peek();
  while (c != EOF && (std::isalnum(c) || c == '_' || c == '-' || c == ':' ||
                      c == '.')) {
    name.push_back(static_cast<char>(get()));
    c = peek();
  }
  if (name.empty()) fail("empty name");
  return name;
}

std::string XmlParser::decode_entities(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out.push_back(raw[i]);
      continue;
    }
    std::size_t semi = raw.find(';', i);
    if (semi == std::string::npos) {
      fail("unterminated entity");
      return out;
    }
    std::string entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp")
      out.push_back('&');
    else if (entity == "lt")
      out.push_back('<');
    else if (entity == "gt")
      out.push_back('>');
    else if (entity == "quot")
      out.push_back('"');
    else if (entity == "apos")
      out.push_back('\'');
    else
      fail("unknown entity: " + entity);
    i = semi;
  }
  return out;
}

void XmlParser::skip_whitespace() {
  while (std::isspace(peek())) get();
}

std::optional<XmlToken> XmlParser::next() {
  if (!ok_) return std::nullopt;
  if (pending_end_) {
    XmlToken t;
    t.kind = XmlToken::Kind::kEndElement;
    t.name = std::move(*pending_end_);
    pending_end_.reset();
    return t;
  }

  // Accumulate text until '<' or EOF.
  std::string text;
  for (;;) {
    int c = peek();
    if (c == EOF) {
      if (!text.empty() && text.find_first_not_of(" \t\r\n") != std::string::npos) {
        XmlToken t;
        t.kind = XmlToken::Kind::kText;
        t.text = decode_entities(text);
        return t;
      }
      return std::nullopt;
    }
    if (c == '<') break;
    text.push_back(static_cast<char>(get()));
  }
  if (text.find_first_not_of(" \t\r\n") != std::string::npos) {
    XmlToken t;
    t.kind = XmlToken::Kind::kText;
    t.text = decode_entities(text);
    return t;
  }
  return parse_tag();
}

std::optional<XmlToken> XmlParser::parse_tag() {
  expect('<');
  int c = peek();

  if (c == '?') {  // XML declaration / processing instruction: skip it
    while (ok_) {
      int ch = get();
      if (ch == EOF) {
        fail("unterminated declaration");
        return std::nullopt;
      }
      if (ch == '?' && peek() == '>') {
        get();
        return next();
      }
    }
    return std::nullopt;
  }

  if (c == '!') {  // comment: <!-- ... -->
    get();
    if (get() != '-' || get() != '-') {
      fail("malformed comment");
      return std::nullopt;
    }
    int dashes = 0;
    for (;;) {
      int ch = get();
      if (ch == EOF) {
        fail("unterminated comment");
        return std::nullopt;
      }
      if (ch == '-') {
        ++dashes;
      } else if (ch == '>' && dashes >= 2) {
        return next();
      } else {
        dashes = 0;
      }
    }
  }

  if (c == '/') {  // end tag
    get();
    XmlToken t;
    t.kind = XmlToken::Kind::kEndElement;
    t.name = read_name();
    skip_whitespace();
    if (!expect('>')) return std::nullopt;
    if (!ok_) return std::nullopt;
    return t;
  }

  // Start tag.
  XmlToken t;
  t.kind = XmlToken::Kind::kStartElement;
  t.name = read_name();
  for (;;) {
    skip_whitespace();
    int ch = peek();
    if (ch == EOF) {
      fail("unterminated start tag");
      return std::nullopt;
    }
    if (ch == '>') {
      get();
      break;
    }
    if (ch == '/') {
      get();
      if (!expect('>')) return std::nullopt;
      t.self_closing = true;
      pending_end_ = t.name;
      break;
    }
    // Attribute.
    std::string key = read_name();
    skip_whitespace();
    if (!expect('=')) return std::nullopt;
    skip_whitespace();
    if (!expect('"')) return std::nullopt;
    std::string value;
    for (;;) {
      int vc = get();
      if (vc == EOF) {
        fail("unterminated attribute value");
        return std::nullopt;
      }
      if (vc == '"') break;
      value.push_back(static_cast<char>(vc));
    }
    t.attrs.emplace_back(std::move(key), decode_entities(value));
    if (!ok_) return std::nullopt;
  }
  if (!ok_) return std::nullopt;
  return t;
}

}  // namespace dtr::xmlio
