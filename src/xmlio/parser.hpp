// Minimal streaming XML pull parser.
//
// Supports the subset the dataset schema uses: elements, attributes
// (double-quoted), text nodes, self-closing tags, comments, the XML
// declaration, and the five standard entities.  No DTDs, namespaces or
// CDATA — the writer never produces them.  One token at a time, so a
// multi-gigabyte dataset can be analysed without loading it into memory.
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dtr::xmlio {

struct XmlToken {
  enum class Kind { kStartElement, kEndElement, kText };

  Kind kind = Kind::kText;
  std::string name;                                       // element tokens
  std::vector<std::pair<std::string, std::string>> attrs; // start tokens
  std::string text;                                       // text tokens
  bool self_closing = false;                              // start tokens

  [[nodiscard]] const std::string* attr(std::string_view key) const {
    for (const auto& [k, v] : attrs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class XmlParser {
 public:
  explicit XmlParser(std::istream& in) : in_(in) {}

  /// Next token, or nullopt at end of input.  A syntax error sets ok() to
  /// false and ends the stream.
  std::optional<XmlToken> next();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  int get();
  int peek();
  void fail(std::string message);
  bool expect(char c);
  std::string read_name();
  std::string decode_entities(const std::string& raw);
  void skip_whitespace();
  std::optional<XmlToken> parse_tag();

  std::istream& in_;
  bool ok_ = true;
  std::string error_;
  // Emulated token for the EndElement of a self-closing tag.
  std::optional<std::string> pending_end_;
};

}  // namespace dtr::xmlio
