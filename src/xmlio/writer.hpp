// Streaming XML writer.
//
// The released dataset is XML: "it leads to easy-to-read and rigorously
// specified text files, and, once compressed, does not have a prohibitive
// space cost" (paper, footnote 3).  The writer is strictly streaming — the
// capture pipeline emits messages as they happen and never holds more than
// the current element in memory.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dtr::xmlio {

/// Escape the five XML special characters in attribute/text context.
/// Returns the input unchanged (one copy, no growth) when nothing needs
/// escaping — the overwhelmingly common case for this dataset.
std::string xml_escape(std::string_view s);

/// Append `s` to `out` with XML escaping, no temporary in the common
/// nothing-to-escape case.  Shared by XmlWriter and the pre-rendering
/// string writer in schema.cpp.
void xml_escape_append(std::string_view s, std::string& out);

class XmlWriter {
 public:
  /// The writer does not own the stream; it must outlive the writer.
  explicit XmlWriter(std::ostream& out, bool pretty = false);

  /// Emits the XML declaration.  Call at most once, before any element.
  void declaration();

  XmlWriter& open(std::string_view name);
  XmlWriter& attr(std::string_view name, std::string_view value);
  XmlWriter& attr(std::string_view name, std::uint64_t value);
  XmlWriter& text(std::string_view content);
  XmlWriter& close();       ///< close the innermost open element

  /// Splice `bytes` — a pre-rendered run of complete sibling elements in
  /// non-pretty form — at the current position, accounting `elements` of
  /// them.  Only valid on a non-pretty writer with an element open (the
  /// deferred '>' is emitted first); the parallel pipeline uses this to
  /// write worker-rendered <msg> chunks without re-walking the event model.
  XmlWriter& write_raw(std::string_view bytes, std::uint64_t elements);

  void close_all();

  /// Checkpoint resume: adopt the state of a writer whose stream already
  /// holds an open root element `root` with at least one completed child
  /// and `elements` elements written in total.  The caller restores the
  /// stream contents separately; this realigns the internal cursor.
  void resume_inside_root(std::string root, std::uint64_t elements);

  [[nodiscard]] std::size_t depth() const { return stack_.size(); }
  [[nodiscard]] std::uint64_t elements_written() const { return elements_; }

 private:
  void finish_open_tag();
  void indent();
  /// Stream `s` with XML escaping, without materialising a temporary
  /// string (attr/text are on the dataset writer's hot path).
  void write_escaped(std::string_view s);

  std::ostream& out_;
  bool pretty_;
  bool tag_open_ = false;    // '<name ...' emitted but not yet '>' closed
  bool has_children_ = false;
  std::vector<std::string> stack_;
  std::uint64_t elements_ = 0;
};

}  // namespace dtr::xmlio
