#include "xmlio/validate.hpp"

#include <istream>

#include "xmlio/schema.hpp"

namespace dtr::xmlio {

void DatasetValidator::add(const char* rule, std::string message) {
  // Cap the violation list: a corrupt gigabyte dataset should not OOM the
  // validator reporting it.
  if (violations_.size() < 1000) {
    violations_.push_back(Violation{index_, rule, std::move(message)});
  }
}

void DatasetValidator::check_client_token(anon::AnonClientId token) {
  if (token < seen_clients_.size() && seen_clients_[token]) return;
  if (token != next_client_) {
    add("V2", "client token " + std::to_string(token) +
                  " appeared before token " + std::to_string(next_client_));
  }
  if (seen_clients_.size() <= token) seen_clients_.resize(token + 1, false);
  seen_clients_[token] = true;
  if (token >= next_client_) next_client_ = token + 1;
}

void DatasetValidator::check_file_token(anon::AnonFileId token) {
  if (token < seen_files_.size() && seen_files_[token]) return;
  if (token != next_file_) {
    add("V3", "file token " + std::to_string(token) +
                  " appeared before token " + std::to_string(next_file_));
  }
  if (seen_files_.size() <= token) seen_files_.resize(token + 1, false);
  seen_files_[token] = true;
  if (token >= next_file_) next_file_ = token + 1;
}

namespace {

constexpr std::uint32_t kMaxSizeKb = 0xFFFFFFFFu / 1024 + 1;

struct KindInfo {
  bool is_query = false;
  bool known = true;
};

struct DirVisitor {
  KindInfo operator()(const anon::AServStatReq&) { return {true}; }
  KindInfo operator()(const anon::AServStatRes&) { return {false}; }
  KindInfo operator()(const anon::AServerDescReq&) { return {true}; }
  KindInfo operator()(const anon::AServerDescRes&) { return {false}; }
  KindInfo operator()(const anon::AGetServerList&) { return {true}; }
  KindInfo operator()(const anon::AServerList&) { return {false}; }
  KindInfo operator()(const anon::AFileSearchReq&) { return {true}; }
  KindInfo operator()(const anon::AFileSearchRes&) { return {false}; }
  KindInfo operator()(const anon::AGetSourcesReq&) { return {true}; }
  KindInfo operator()(const anon::AFoundSourcesRes&) { return {false}; }
  KindInfo operator()(const anon::APublishReq&) { return {true}; }
  KindInfo operator()(const anon::APublishAck&) { return {false}; }
};

}  // namespace

struct DatasetValidator::TokenVisitor {
  DatasetValidator& v;

  void entry(const anon::AnonFileEntry& e) const {
    v.check_file_token(e.file);
    v.check_client_token(e.provider);
    if (e.meta.size_kb && *e.meta.size_kb > kMaxSizeKb) {
      v.add("V5", "file size " + std::to_string(*e.meta.size_kb) +
                      " KB exceeds the protocol's 32-bit byte field");
    }
  }
  void operator()(const anon::AFileSearchRes& m) const {
    for (const auto& e : m.results) entry(e);
  }
  void operator()(const anon::APublishReq& m) const {
    for (const auto& e : m.files) entry(e);
  }
  void operator()(const anon::AGetSourcesReq& m) const {
    for (auto f : m.files) v.check_file_token(f);
  }
  void operator()(const anon::AFoundSourcesRes& m) const {
    v.check_file_token(m.file);
    for (const auto& s : m.sources) v.check_client_token(s.client);
  }
  template <typename T>
  void operator()(const T&) const {}
};

void DatasetValidator::consume(const anon::AnonEvent& event) {
  // V1 — capture order.
  if (index_ > 0 && event.time < last_time_) {
    add("V1", "time " + std::to_string(event.time) + " < previous " +
                  std::to_string(last_time_));
  }
  last_time_ = event.time;

  // V4 — direction matches kind.
  KindInfo kind = std::visit(DirVisitor{}, event.message);
  if (kind.is_query != event.is_query) {
    add("V4", std::string("dir attribute contradicts message kind (dir=") +
                  (event.is_query ? "q" : "a") + ")");
  }

  // V2/V3/V5 — token order and size bounds, over every embedded token.
  check_client_token(event.peer);
  std::visit(TokenVisitor{*this}, event.message);

  ++index_;
}


std::vector<Violation> DatasetValidator::validate_document(std::istream& in) {
  DatasetReader reader(in);
  DatasetValidator validator;
  while (auto ev = reader.next()) validator.consume(*ev);
  auto violations = validator.violations_;
  if (!reader.ok()) {
    violations.push_back(
        Violation{validator.events(), "parse", reader.error()});
  }
  return violations;
}

}  // namespace dtr::xmlio
