#include "xmlio/schema.hpp"

#include <charconv>
#include <ostream>

namespace dtr::xmlio {

namespace {

const char* kind_name(const anon::AnonMessage& m) {
  struct Visitor {
    const char* operator()(const anon::AServStatReq&) { return "statreq"; }
    const char* operator()(const anon::AServStatRes&) { return "statres"; }
    const char* operator()(const anon::AServerDescReq&) { return "descreq"; }
    const char* operator()(const anon::AServerDescRes&) { return "descres"; }
    const char* operator()(const anon::AGetServerList&) { return "getservers"; }
    const char* operator()(const anon::AServerList&) { return "servers"; }
    const char* operator()(const anon::AFileSearchReq&) { return "search"; }
    const char* operator()(const anon::AFileSearchRes&) { return "results"; }
    const char* operator()(const anon::AGetSourcesReq&) { return "getsrc"; }
    const char* operator()(const anon::AFoundSourcesRes&) { return "foundsrc"; }
    const char* operator()(const anon::APublishReq&) { return "publish"; }
    const char* operator()(const anon::APublishAck&) { return "puback"; }
  };
  return std::visit(Visitor{}, m);
}

// Renders the same bytes XmlWriter produces in non-pretty mode, but into a
// std::string — pipeline workers pre-serialise <msg> elements with this and
// the merge thread splices them via DatasetWriter::write_rendered.
class StringEventWriter {
 public:
  explicit StringEventWriter(std::string& out) : out_(out) {}

  StringEventWriter& open(std::string_view name) {
    finish_open_tag();
    out_ += '<';
    out_.append(name);
    stack_.push_back(name);
    tag_open_ = true;
    ++elements_;
    return *this;
  }

  StringEventWriter& attr(std::string_view name, std::string_view value) {
    out_ += ' ';
    out_.append(name);
    out_ += "=\"";
    xml_escape_append(value, out_);
    out_ += '"';
    return *this;
  }

  StringEventWriter& attr(std::string_view name, std::uint64_t value) {
    out_ += ' ';
    out_.append(name);
    out_ += "=\"";
    char buf[20];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    out_.append(buf, static_cast<std::size_t>(ptr - buf));
    out_ += '"';
    return *this;
  }

  StringEventWriter& close() {
    const std::string_view name = stack_.back();
    stack_.pop_back();
    if (tag_open_) {
      out_ += "/>";
      tag_open_ = false;
    } else {
      out_ += "</";
      out_.append(name);
      out_ += '>';
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t elements() const { return elements_; }

 private:
  void finish_open_tag() {
    if (tag_open_) {
      out_ += '>';
      tag_open_ = false;
    }
  }

  std::string& out_;
  // Element names in this schema are string literals; views are safe.
  std::vector<std::string_view> stack_;
  bool tag_open_ = false;
  std::uint64_t elements_ = 0;
};

template <typename W>
void write_expr(W& w, const anon::AnonSearchExpr& e) {
  using Kind = proto::SearchExpr::Kind;
  switch (e.kind) {
    case Kind::kBool: {
      const char* name = e.op == proto::BoolOp::kAnd     ? "and"
                         : e.op == proto::BoolOp::kOr    ? "or"
                                                         : "andnot";
      w.open(name);
      if (e.left) write_expr(w, *e.left);
      if (e.right) write_expr(w, *e.right);
      w.close();
      break;
    }
    case Kind::kKeyword:
      w.open("kw").attr("h", e.token->hex()).close();
      break;
    case Kind::kMetaString:
      w.open("meta")
          .attr("h", e.token->hex())
          .attr("tag", e.tag_token->hex())
          .close();
      break;
    case Kind::kMetaNumeric:
      w.open("num")
          .attr("tag", e.tag_token->hex())
          .attr("cmp", e.cmp == proto::NumCmp::kMin ? "min" : "max")
          .attr("v", static_cast<std::uint64_t>(e.number))
          .close();
      break;
  }
}

template <typename W>
void write_file_entry(W& w, const anon::AnonFileEntry& f) {
  w.open("f").attr("id", f.file).attr("prov", f.provider);
  if (f.port != 0) w.attr("port", f.port);
  if (f.meta.name) w.attr("name", f.meta.name->hex());
  if (f.meta.size_kb) w.attr("szkb", *f.meta.size_kb);
  if (f.meta.type) w.attr("type", f.meta.type->hex());
  if (f.meta.availability) w.attr("avail", *f.meta.availability);
  w.close();
}

template <typename W>
struct BodyWriter {
  W& w;

  void operator()(const anon::AServStatReq&) {}
  void operator()(const anon::AServStatRes& m) {
    w.attr("users", m.users).attr("files", m.files);
  }
  void operator()(const anon::AServerDescReq&) {}
  void operator()(const anon::AServerDescRes& m) {
    w.attr("name", m.name.hex()).attr("desc", m.description.hex());
  }
  void operator()(const anon::AGetServerList&) {}
  void operator()(const anon::AServerList& m) { w.attr("n", m.count); }
  void operator()(const anon::AFileSearchReq& m) {
    if (m.expr) write_expr(w, *m.expr);
  }
  void operator()(const anon::AFileSearchRes& m) {
    for (const auto& f : m.results) write_file_entry(w, f);
  }
  void operator()(const anon::AGetSourcesReq& m) {
    for (auto id : m.files) w.open("f").attr("id", id).close();
  }
  void operator()(const anon::AFoundSourcesRes& m) {
    w.attr("file", m.file);
    for (const auto& s : m.sources)
      w.open("s").attr("c", s.client).attr("p", s.port).close();
  }
  void operator()(const anon::APublishReq& m) {
    for (const auto& f : m.files) write_file_entry(w, f);
  }
  void operator()(const anon::APublishAck& m) { w.attr("n", m.accepted); }
};

template <typename W>
void write_msg(W& w, const anon::AnonEvent& event) {
  w.open("msg")
      .attr("t", event.time)
      .attr("peer", event.peer)
      .attr("dir", event.is_query ? "q" : "a")
      .attr("kind", kind_name(event.message));
  // Attribute-carrying bodies must write attrs before children; BodyWriter
  // follows that order internally.
  std::visit(BodyWriter<W>{w}, event.message);
  w.close();
}

}  // namespace

DatasetWriter::DatasetWriter(std::ostream& out, bool pretty)
    : writer_(out, pretty) {
  writer_.declaration();
  writer_.open("capture").attr("spec", kCaptureSpec);
}

DatasetWriter::~DatasetWriter() { finish(); }

void DatasetWriter::write(const anon::AnonEvent& event) {
  write_msg(writer_, event);
  ++events_;
}

void DatasetWriter::write_rendered(std::string_view bytes,
                                   std::uint64_t events,
                                   std::uint64_t xml_elements) {
  writer_.write_raw(bytes, xml_elements);
  events_ += events;
}

std::uint64_t render_event(const anon::AnonEvent& event, std::string& out) {
  StringEventWriter w(out);
  write_msg(w, event);
  return w.elements();
}

void DatasetWriter::finish() {
  if (finished_) return;
  finished_ = true;
  writer_.close_all();
}

void DatasetWriter::resume(std::uint64_t events, std::uint64_t xml_elements) {
  events_ = events;
  if (events > 0) writer_.resume_inside_root("capture", xml_elements);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

std::optional<std::uint64_t> attr_u64(const XmlToken& t, std::string_view key) {
  const std::string* raw = t.attr(key);
  if (raw == nullptr) return std::nullopt;
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size())
    return std::nullopt;
  return value;
}

std::optional<anon::StringToken> attr_hash(const XmlToken& t,
                                           std::string_view key) {
  const std::string* raw = t.attr(key);
  if (raw == nullptr || raw->size() != 32) return std::nullopt;
  return Digest128::from_hex(*raw);
}

}  // namespace

DatasetReader::DatasetReader(std::istream& in) : parser_(in) {}

void DatasetReader::fail(std::string message) {
  ok_ = false;
  if (error_.empty()) error_ = std::move(message);
}

std::optional<anon::AnonEvent> DatasetReader::next() {
  if (!ok()) return std::nullopt;

  for (;;) {
    auto token = parser_.next();
    if (!token) return std::nullopt;
    if (token->kind == XmlToken::Kind::kText) continue;
    if (token->kind == XmlToken::Kind::kEndElement) {
      if (token->name == "capture") return std::nullopt;
      continue;
    }
    if (token->name == "capture") {
      root_seen_ = true;
      continue;
    }
    if (!root_seen_) {
      fail("msg outside <capture> root");
      return std::nullopt;
    }
    if (token->name != "msg") {
      fail("unexpected element <" + token->name + ">");
      return std::nullopt;
    }

    anon::AnonEvent ev;
    auto t = attr_u64(*token, "t");
    auto peer = attr_u64(*token, "peer");
    const std::string* dir = token->attr("dir");
    if (!t || !peer || dir == nullptr || (*dir != "q" && *dir != "a")) {
      fail("msg missing t/peer/dir");
      return std::nullopt;
    }
    ev.time = *t;
    ev.peer = static_cast<anon::AnonClientId>(*peer);
    ev.is_query = (*dir == "q");
    auto body = parse_body(*token);
    if (!body) return std::nullopt;
    ev.message = std::move(*body);
    return ev;
  }
}

namespace {

/// Recursive expression parse: `start` is the already-consumed start tag.
anon::AnonSearchExprPtr parse_expr(XmlParser& parser, const XmlToken& start,
                                   bool& ok) {
  using Kind = proto::SearchExpr::Kind;
  auto e = std::make_unique<anon::AnonSearchExpr>();

  if (start.name == "kw") {
    e->kind = Kind::kKeyword;
    e->token = attr_hash(start, "h");
    if (!e->token) ok = false;
  } else if (start.name == "meta") {
    e->kind = Kind::kMetaString;
    e->token = attr_hash(start, "h");
    e->tag_token = attr_hash(start, "tag");
    if (!e->token || !e->tag_token) ok = false;
  } else if (start.name == "num") {
    e->kind = Kind::kMetaNumeric;
    e->tag_token = attr_hash(start, "tag");
    auto v = attr_u64(start, "v");
    const std::string* cmp = start.attr("cmp");
    if (!e->tag_token || !v || cmp == nullptr || (*cmp != "min" && *cmp != "max")) {
      ok = false;
    } else {
      e->number = static_cast<std::uint32_t>(*v);
      e->cmp = *cmp == "min" ? proto::NumCmp::kMin : proto::NumCmp::kMax;
    }
  } else if (start.name == "and" || start.name == "or" ||
             start.name == "andnot") {
    e->kind = Kind::kBool;
    e->op = start.name == "and"  ? proto::BoolOp::kAnd
            : start.name == "or" ? proto::BoolOp::kOr
                                 : proto::BoolOp::kAndNot;
  } else {
    ok = false;
  }
  if (!ok) return nullptr;

  // Consume children up to the matching end tag.
  int child_index = 0;
  for (;;) {
    auto token = parser.next();
    if (!token) {
      ok = false;
      return nullptr;
    }
    if (token->kind == XmlToken::Kind::kText) continue;
    if (token->kind == XmlToken::Kind::kEndElement) {
      if (token->name != start.name) ok = false;
      break;
    }
    // Child element: only boolean nodes have children.
    if (e->kind != Kind::kBool || child_index > 1) {
      ok = false;
      return nullptr;
    }
    auto child = parse_expr(parser, *token, ok);
    if (!ok) return nullptr;
    (child_index == 0 ? e->left : e->right) = std::move(child);
    ++child_index;
  }
  if (!ok) return nullptr;
  if (e->kind == Kind::kBool && child_index != 2) {
    ok = false;
    return nullptr;
  }
  return e;
}

std::optional<anon::AnonFileEntry> parse_file_entry(const XmlToken& t) {
  anon::AnonFileEntry f;
  auto id = attr_u64(t, "id");
  auto prov = attr_u64(t, "prov");
  if (!id || !prov) return std::nullopt;
  f.file = *id;
  f.provider = static_cast<anon::AnonClientId>(*prov);
  if (auto port = attr_u64(t, "port")) f.port = static_cast<std::uint16_t>(*port);
  f.meta.name = attr_hash(t, "name");
  if (auto sz = attr_u64(t, "szkb"))
    f.meta.size_kb = static_cast<std::uint32_t>(*sz);
  f.meta.type = attr_hash(t, "type");
  if (auto avail = attr_u64(t, "avail"))
    f.meta.availability = static_cast<std::uint32_t>(*avail);
  return f;
}

}  // namespace

std::optional<anon::AnonMessage> DatasetReader::parse_body(
    const XmlToken& msg_tag) {
  const std::string* kind = msg_tag.attr("kind");
  if (kind == nullptr) {
    fail("msg missing kind");
    return std::nullopt;
  }

  anon::AnonMessage out;
  bool want_children = false;

  if (*kind == "statreq") {
    out = anon::AServStatReq{};
  } else if (*kind == "statres") {
    anon::AServStatRes m;
    auto users = attr_u64(msg_tag, "users");
    auto files = attr_u64(msg_tag, "files");
    if (!users || !files) {
      fail("statres missing users/files");
      return std::nullopt;
    }
    m.users = static_cast<std::uint32_t>(*users);
    m.files = static_cast<std::uint32_t>(*files);
    out = m;
  } else if (*kind == "descreq") {
    out = anon::AServerDescReq{};
  } else if (*kind == "descres") {
    anon::AServerDescRes m;
    auto name = attr_hash(msg_tag, "name");
    auto desc = attr_hash(msg_tag, "desc");
    if (!name || !desc) {
      fail("descres missing name/desc");
      return std::nullopt;
    }
    m.name = *name;
    m.description = *desc;
    out = m;
  } else if (*kind == "getservers") {
    out = anon::AGetServerList{};
  } else if (*kind == "servers") {
    anon::AServerList m;
    auto n = attr_u64(msg_tag, "n");
    if (!n) {
      fail("servers missing n");
      return std::nullopt;
    }
    m.count = static_cast<std::uint32_t>(*n);
    out = m;
  } else if (*kind == "search" || *kind == "results" || *kind == "getsrc" ||
             *kind == "foundsrc" || *kind == "publish") {
    want_children = true;
  } else if (*kind == "puback") {
    anon::APublishAck m;
    auto n = attr_u64(msg_tag, "n");
    if (!n) {
      fail("puback missing n");
      return std::nullopt;
    }
    m.accepted = static_cast<std::uint32_t>(*n);
    out = m;
  } else {
    fail("unknown msg kind: " + *kind);
    return std::nullopt;
  }

  if (!want_children) {
    // Consume to </msg>.
    for (;;) {
      auto token = parser_.next();
      if (!token) {
        fail("unterminated msg");
        return std::nullopt;
      }
      if (token->kind == XmlToken::Kind::kEndElement && token->name == "msg")
        break;
      if (token->kind == XmlToken::Kind::kStartElement) {
        fail("unexpected child in <msg kind=\"" + *kind + "\">");
        return std::nullopt;
      }
    }
    return out;
  }

  // Children-bearing kinds.
  anon::AFileSearchReq search;
  anon::AFileSearchRes results;
  anon::AGetSourcesReq getsrc;
  anon::AFoundSourcesRes foundsrc;
  anon::APublishReq publish;

  if (*kind == "foundsrc") {
    auto file = attr_u64(msg_tag, "file");
    if (!file) {
      fail("foundsrc missing file");
      return std::nullopt;
    }
    foundsrc.file = *file;
  }

  for (;;) {
    auto token = parser_.next();
    if (!token) {
      fail("unterminated msg");
      return std::nullopt;
    }
    if (token->kind == XmlToken::Kind::kText) continue;
    if (token->kind == XmlToken::Kind::kEndElement) {
      if (token->name == "msg") break;
      fail("mismatched end tag </" + token->name + ">");
      return std::nullopt;
    }

    if (*kind == "search") {
      bool expr_ok = true;
      search.expr = parse_expr(parser_, *token, expr_ok);
      if (!expr_ok || search.expr == nullptr) {
        fail("malformed search expression");
        return std::nullopt;
      }
    } else if (*kind == "results" || *kind == "publish") {
      if (token->name != "f") {
        fail("expected <f> entry");
        return std::nullopt;
      }
      auto entry = parse_file_entry(*token);
      if (!entry) {
        fail("malformed <f> entry");
        return std::nullopt;
      }
      (*kind == "results" ? results.results : publish.files)
          .push_back(std::move(*entry));
      // Self-closing <f/> emits its end tag via the parser; consume it.
      if (!token->self_closing) {
        fail("<f> must be empty");
        return std::nullopt;
      }
      auto end = parser_.next();
      if (!end || end->kind != XmlToken::Kind::kEndElement) {
        fail("expected </f>");
        return std::nullopt;
      }
    } else if (*kind == "getsrc") {
      if (token->name != "f") {
        fail("expected <f> entry");
        return std::nullopt;
      }
      auto id = attr_u64(*token, "id");
      if (!id) {
        fail("<f> missing id");
        return std::nullopt;
      }
      getsrc.files.push_back(*id);
      if (!token->self_closing) {
        fail("<f> must be empty");
        return std::nullopt;
      }
      auto end = parser_.next();
      if (!end || end->kind != XmlToken::Kind::kEndElement) {
        fail("expected </f>");
        return std::nullopt;
      }
    } else if (*kind == "foundsrc") {
      if (token->name != "s") {
        fail("expected <s> source");
        return std::nullopt;
      }
      auto c = attr_u64(*token, "c");
      auto p = attr_u64(*token, "p");
      if (!c || !p) {
        fail("<s> missing c/p");
        return std::nullopt;
      }
      foundsrc.sources.push_back(
          {static_cast<anon::AnonClientId>(*c), static_cast<std::uint16_t>(*p)});
      if (!token->self_closing) {
        fail("<s> must be empty");
        return std::nullopt;
      }
      auto end = parser_.next();
      if (!end || end->kind != XmlToken::Kind::kEndElement) {
        fail("expected </s>");
        return std::nullopt;
      }
    }
  }

  if (*kind == "search") {
    if (search.expr == nullptr) {
      fail("search without expression");
      return std::nullopt;
    }
    return anon::AnonMessage{std::move(search)};
  }
  if (*kind == "results") return anon::AnonMessage{std::move(results)};
  if (*kind == "getsrc") return anon::AnonMessage{std::move(getsrc)};
  if (*kind == "foundsrc") return anon::AnonMessage{std::move(foundsrc)};
  return anon::AnonMessage{std::move(publish)};
}

}  // namespace dtr::xmlio
