#include "xmlio/writer.hpp"

namespace dtr::xmlio {

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

XmlWriter::XmlWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

void XmlWriter::declaration() {
  out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (pretty_) out_ << '\n';
}

void XmlWriter::finish_open_tag() {
  if (tag_open_) {
    out_ << '>';
    tag_open_ = false;
  }
}

void XmlWriter::indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

XmlWriter& XmlWriter::open(std::string_view name) {
  finish_open_tag();
  indent();
  out_ << '<' << name;
  stack_.emplace_back(name);
  tag_open_ = true;
  has_children_ = false;
  ++elements_;
  return *this;
}

XmlWriter& XmlWriter::attr(std::string_view name, std::string_view value) {
  out_ << ' ' << name << "=\"" << xml_escape(value) << '"';
  return *this;
}

XmlWriter& XmlWriter::attr(std::string_view name, std::uint64_t value) {
  out_ << ' ' << name << "=\"" << value << '"';
  return *this;
}

XmlWriter& XmlWriter::text(std::string_view content) {
  finish_open_tag();
  out_ << xml_escape(content);
  has_children_ = true;  // suppress indentation before the closing tag
  return *this;
}

XmlWriter& XmlWriter::close() {
  std::string name = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    out_ << "/>";
    tag_open_ = false;
  } else {
    if (!has_children_) indent();
    out_ << "</" << name << '>';
  }
  has_children_ = false;
  return *this;
}

void XmlWriter::close_all() {
  while (!stack_.empty()) close();
  if (pretty_) out_ << '\n';
}

void XmlWriter::resume_inside_root(std::string root, std::uint64_t elements) {
  stack_.clear();
  stack_.push_back(std::move(root));
  tag_open_ = false;
  has_children_ = false;
  elements_ = elements;
}

}  // namespace dtr::xmlio
