#include "xmlio/writer.hpp"

namespace dtr::xmlio {

namespace {

constexpr std::string_view kEscapable = "&<>\"'";

std::string_view entity_for(char c) {
  switch (c) {
    case '&':
      return "&amp;";
    case '<':
      return "&lt;";
    case '>':
      return "&gt;";
    case '"':
      return "&quot;";
    default:
      return "&apos;";
  }
}

}  // namespace

std::string xml_escape(std::string_view s) {
  // Fast path: scan first, and when nothing needs escaping hand back the
  // input as-is — one copy, no growth reallocations.
  std::size_t pos = s.find_first_of(kEscapable);
  if (pos == std::string_view::npos) return std::string(s);
  std::string out;
  out.reserve(s.size() + 8);
  while (pos != std::string_view::npos) {
    out.append(s.substr(0, pos));
    out.append(entity_for(s[pos]));
    s.remove_prefix(pos + 1);
    pos = s.find_first_of(kEscapable);
  }
  out.append(s);
  return out;
}

void xml_escape_append(std::string_view s, std::string& out) {
  std::size_t pos = s.find_first_of(kEscapable);
  while (pos != std::string_view::npos) {
    out.append(s.substr(0, pos));
    out.append(entity_for(s[pos]));
    s.remove_prefix(pos + 1);
    pos = s.find_first_of(kEscapable);
  }
  out.append(s);
}

XmlWriter::XmlWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

void XmlWriter::declaration() {
  out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (pretty_) out_ << '\n';
}

void XmlWriter::finish_open_tag() {
  if (tag_open_) {
    out_ << '>';
    tag_open_ = false;
  }
}

void XmlWriter::indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

XmlWriter& XmlWriter::open(std::string_view name) {
  finish_open_tag();
  indent();
  out_ << '<' << name;
  stack_.emplace_back(name);
  tag_open_ = true;
  has_children_ = false;
  ++elements_;
  return *this;
}

void XmlWriter::write_escaped(std::string_view s) {
  std::size_t pos = s.find_first_of(kEscapable);
  if (pos == std::string_view::npos) {
    out_ << s;  // common case: straight through, no temporary
    return;
  }
  while (pos != std::string_view::npos) {
    out_ << s.substr(0, pos) << entity_for(s[pos]);
    s.remove_prefix(pos + 1);
    pos = s.find_first_of(kEscapable);
  }
  out_ << s;
}

XmlWriter& XmlWriter::attr(std::string_view name, std::string_view value) {
  out_ << ' ' << name << "=\"";
  write_escaped(value);
  out_ << '"';
  return *this;
}

XmlWriter& XmlWriter::attr(std::string_view name, std::uint64_t value) {
  out_ << ' ' << name << "=\"" << value << '"';
  return *this;
}

XmlWriter& XmlWriter::text(std::string_view content) {
  finish_open_tag();
  write_escaped(content);
  has_children_ = true;  // suppress indentation before the closing tag
  return *this;
}

XmlWriter& XmlWriter::write_raw(std::string_view bytes,
                                std::uint64_t elements) {
  finish_open_tag();
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  has_children_ = true;
  elements_ += elements;
  return *this;
}

XmlWriter& XmlWriter::close() {
  std::string name = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    out_ << "/>";
    tag_open_ = false;
  } else {
    if (!has_children_) indent();
    out_ << "</" << name << '>';
  }
  has_children_ = false;
  return *this;
}

void XmlWriter::close_all() {
  while (!stack_.empty()) close();
  if (pretty_) out_ << '\n';
}

void XmlWriter::resume_inside_root(std::string root, std::uint64_t elements) {
  stack_.clear();
  stack_.push_back(std::move(root));
  tag_open_ = false;
  has_children_ = false;
  elements_ = elements;
}

}  // namespace dtr::xmlio
