// The eDonkey directory server.
//
// The server in the paper is a closed-source black box; this is a functional
// re-implementation of the behaviour the UDP capture observes: it answers
// stat/description/server-list requests, metadata file searches, source
// searches, and accepts publishes (see DESIGN.md on the publish dialect).
// Clients that are not directly reachable receive a "low ID" below 2^24
// (paper §2.1).
//
// handle() is safe to call from multiple threads concurrently: the index is
// sharded with per-shard locks, ServerStats counters are atomic, and the
// small client-tracking tables share one mutex (they are tiny compared to
// the index and never on a scan path).  answer ordering across threads is
// whatever the caller's scheduling produces — a serial driver gets the
// exact pre-sharding behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "obs/log.hpp"
#include "proto/messages.hpp"
#include "server/index.hpp"

namespace dtr::server {

struct ServerConfig {
  std::string name = "donkeytrace reference server";
  std::string description = "synthetic eDonkey directory server";
  std::uint16_t port = 4665;  // classic eDonkey server UDP port
  std::size_t max_search_results = 201;  // classic server answer cap
  std::size_t max_sources_per_answer = 255;  // u8 count field on the wire
  std::size_t max_files_per_publish = 200;
  std::size_t max_published_per_client = 1'000'000;  // effectively unlimited
  std::vector<proto::Endpoint> known_servers;  // answer to GetServerList
  /// Index shards (rounded to a power of two, clamped to [1, 64]).
  std::size_t index_shards = 4;
  /// LRU keyword-search cache entries; 0 disables the cache.
  std::size_t search_cache_entries = 0;
  /// First low ID handed out; lets tests start next to the 2^24 boundary.
  proto::ClientId first_low_id = 1;
};

/// Statistics the server keeps about the traffic it processed.  Counters
/// are atomic so concurrent handle() calls can bump them; reads are
/// monotonic per counter but not a consistent cross-counter snapshot while
/// serving is in flight — quiesce (drain the worker pool) before
/// reconciling totals.
struct ServerStats {
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> answers{0};
  std::atomic<std::uint64_t> searches{0};
  std::atomic<std::uint64_t> source_requests{0};
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::uint64_t> published_files_accepted{0};
  std::atomic<std::uint64_t> published_files_rejected{0};
  std::atomic<std::uint64_t> unanswerable{0};  // e.g. unknown-file sources

  ServerStats() = default;
  ServerStats(const ServerStats& other) { *this = other; }
  ServerStats& operator=(const ServerStats& other) {
    queries = other.queries.load();
    answers = other.answers.load();
    searches = other.searches.load();
    source_requests = other.source_requests.load();
    publishes = other.publishes.load();
    published_files_accepted = other.published_files_accepted.load();
    published_files_rejected = other.published_files_rejected.load();
    unanswerable = other.unanswerable.load();
    return *this;
  }
};

class EdonkeyServer {
 public:
  explicit EdonkeyServer(ServerConfig config = {});

  /// Process one client query; returns the answer messages to send back
  /// (zero or more — a batched GetSources yields one FoundSources per known
  /// fileID, like real servers).  Thread-safe.
  std::vector<proto::Message> handle(proto::ClientId client_ip,
                                     std::uint16_t client_port,
                                     const proto::Message& query,
                                     SimTime now);

  /// A client disconnected: drop its published files.  Thread-safe.
  void client_offline(proto::ClientId client_ip);

  /// The clientID the server would report for this client: its IP when
  /// directly reachable, else a stable per-client low ID (always in
  /// [1, 2^24), wrapping past the boundary).  Thread-safe.
  proto::ClientId client_id_for(proto::ClientId client_ip, bool reachable);

  /// Register the file index's `server.index.*` instruments in `registry`.
  void bind_metrics(obs::Registry& registry) { index_.bind_metrics(registry); }

  /// Attach a logger (may be null): answers truncated by protocol caps
  /// (search-result and per-answer source limits) log at debug.
  void bind_telemetry(obs::Logger* log) { log_ = log; }

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const FileIndex& index() const { return index_; }

  /// Checkpoint codec: traffic counters, client bookkeeping tables and the
  /// nested file index.  Not thread-safe: quiesce before calling.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t user_count() const {
    std::lock_guard lock(client_mutex_);
    return static_cast<std::uint32_t>(seen_clients_.size());
  }

 private:
  proto::Message answer_stat(const proto::ServStatReq& q);
  proto::Message answer_desc() const;
  proto::Message answer_server_list() const;
  proto::Message answer_search(const proto::FileSearchReq& q, SimTime now);
  std::vector<proto::Message> answer_sources(const proto::GetSourcesReq& q,
                                             SimTime now);
  proto::Message accept_publish(proto::ClientId client,
                                std::uint16_t client_port,
                                const proto::PublishReq& q);

  ServerConfig config_;
  FileIndex index_;
  ServerStats stats_;
  // Client bookkeeping: small tables, one mutex (not on any scan path).
  mutable std::mutex client_mutex_;
  std::unordered_map<proto::ClientId, proto::ClientId> low_ids_;
  std::unordered_map<proto::ClientId, SimTime> seen_clients_;
  std::unordered_map<proto::ClientId, std::uint64_t> published_count_;
  proto::ClientId next_low_id_ = 1;
  obs::Logger* log_ = nullptr;
};

}  // namespace dtr::server
