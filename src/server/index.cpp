#include "server/index.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace dtr::server {

bool FileIndex::publish(const proto::FileEntry& entry) {
  obs::inc(metrics_.publishes);
  auto [it, is_new_file] = files_.try_emplace(entry.file_id);
  FileRecord& record = it->second;
  if (is_new_file) {
    if (auto name = proto::tag_string(entry.tags, proto::TagName::kFileName))
      record.name = *name;
    if (auto size = proto::tag_u32(entry.tags, proto::TagName::kFileSize))
      record.size = *size;
    if (auto type = proto::tag_string(entry.tags, proto::TagName::kFileType))
      record.type = *type;
    index_keywords(entry.file_id, record.name);
  }

  Source src{entry.client_id, entry.port};
  auto found = std::find_if(
      record.sources.begin(), record.sources.end(),
      [&](const Source& s) { return s.client == src.client; });
  if (found != record.sources.end()) {
    found->port = src.port;  // refresh
    update_size_gauges();
    return false;
  }
  record.sources.push_back(src);
  by_client_[entry.client_id].push_back(entry.file_id);
  ++total_sources_;
  update_size_gauges();
  return true;
}

void FileIndex::retract_client(proto::ClientId client) {
  obs::inc(metrics_.retracts);
  auto it = by_client_.find(client);
  if (it == by_client_.end()) return;
  for (const FileId& id : it->second) {
    auto fit = files_.find(id);
    if (fit == files_.end()) continue;
    auto& sources = fit->second.sources;
    auto src = std::find_if(sources.begin(), sources.end(), [&](const Source& s) {
      return s.client == client;
    });
    if (src != sources.end()) {
      sources.erase(src);
      --total_sources_;
    }
    if (sources.empty()) {
      unindex_file(id, fit->second);
      files_.erase(fit);
    }
  }
  by_client_.erase(it);
  update_size_gauges();
}

const FileRecord* FileIndex::find(const FileId& id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

void FileIndex::index_keywords(const FileId& id, const std::string& name) {
  for (const std::string& kw : tokenize_keywords(name)) {
    keywords_[kw].push_back(id);
  }
}

void FileIndex::unindex_file(const FileId& id, const FileRecord& record) {
  for (const std::string& kw : tokenize_keywords(record.name)) {
    auto it = keywords_.find(kw);
    if (it == keywords_.end()) continue;
    auto& postings = it->second;
    postings.erase(std::remove(postings.begin(), postings.end(), id),
                   postings.end());
    if (postings.empty()) keywords_.erase(it);
  }
}

bool FileIndex::matches(const proto::SearchExpr& expr,
                        const FileRecord& record) {
  using Kind = proto::SearchExpr::Kind;
  switch (expr.kind) {
    case Kind::kBool: {
      bool l = expr.left != nullptr && matches(*expr.left, record);
      bool r = expr.right != nullptr && matches(*expr.right, record);
      switch (expr.op) {
        case proto::BoolOp::kAnd:
          return l && r;
        case proto::BoolOp::kOr:
          return l || r;
        case proto::BoolOp::kAndNot:
          return l && !r;
      }
      return false;
    }
    case Kind::kKeyword: {
      std::string lowered = to_lower(expr.text);
      for (const std::string& kw : tokenize_keywords(record.name)) {
        if (kw == lowered) return true;
      }
      return false;
    }
    case Kind::kMetaString: {
      if (expr.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(expr.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kFileType)) {
        return to_lower(record.type) == to_lower(expr.text);
      }
      return false;  // other string metadata are not indexed
    }
    case Kind::kMetaNumeric: {
      if (expr.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(expr.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kFileSize)) {
        return expr.cmp == proto::NumCmp::kMin ? record.size >= expr.number
                                               : record.size <= expr.number;
      }
      if (expr.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(expr.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kAvailability)) {
        return expr.cmp == proto::NumCmp::kMin
                   ? record.availability() >= expr.number
                   : record.availability() <= expr.number;
      }
      return false;
    }
  }
  return false;
}

std::vector<FileId> FileIndex::search(const proto::SearchExpr& expr,
                                      std::size_t limit) const {
  obs::inc(metrics_.searches);
  std::vector<FileId> out;

  // Use the keyword index to produce a candidate list: like real servers,
  // scan the posting list of the *rarest* keyword in the expression, then
  // filter candidates by full expression evaluation.  (For OR-rooted
  // expressions this under-approximates — a file matching only the other
  // branch is missed — which real directory servers also accepted in
  // exchange for never scanning the whole index.)
  std::vector<std::string> words;
  expr.collect_keywords(words);

  if (!words.empty()) {
    const std::vector<FileId>* best = nullptr;
    for (const std::string& word : words) {
      auto it = keywords_.find(to_lower(word));
      if (it == keywords_.end()) continue;
      if (best == nullptr || it->second.size() < best->size()) {
        best = &it->second;
      }
    }
    if (best == nullptr) return out;
    for (const FileId& id : *best) {
      const FileRecord* record = find(id);
      if (record != nullptr && matches(expr, *record)) {
        out.push_back(id);
        if (out.size() >= limit) break;
      }
    }
    return out;
  }

  // Pure metadata query (no keyword): full scan, still capped.
  for (const auto& [id, record] : files_) {
    if (matches(expr, record)) {
      out.push_back(id);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

void FileIndex::update_size_gauges() {
  obs::set(metrics_.files, static_cast<std::int64_t>(files_.size()));
  obs::set(metrics_.sources, static_cast<std::int64_t>(total_sources_));
}

void FileIndex::bind_metrics(obs::Registry& registry) {
  metrics_.publishes = &registry.counter("server.index.publishes");
  metrics_.searches = &registry.counter("server.index.searches");
  metrics_.retracts = &registry.counter("server.index.retracts");
  metrics_.files = &registry.gauge("server.index.files");
  metrics_.sources = &registry.gauge("server.index.sources");
  update_size_gauges();
}

}  // namespace dtr::server
