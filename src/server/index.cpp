#include "server/index.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/strings.hpp"
#include "obs/profiler.hpp"

namespace dtr::server {

namespace {

std::size_t round_to_pow2_clamped(std::size_t n) {
  if (n < 1) n = 1;
  if (n > 64) n = 64;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

FileIndex::FileIndex(FileIndexConfig config)
    : cache_capacity_(config.search_cache_entries) {
  const std::size_t n = round_to_pow2_clamped(config.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
}

std::unique_lock<std::shared_mutex> FileIndex::lock_unique(
    const Shard& shard) const {
  std::unique_lock lock(shard.mutex, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  // Contended: time only the blocking path, so a serial run observes
  // nothing (keeping serial metric output reproducible) and a concurrent
  // run measures exactly the waits that cost it throughput.
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ProfScope prof(obs::ThreadState::kLockWait);
    lock.lock();
  }
  obs::observe(metrics_.lock_wait, seconds_since(t0));
  return lock;
}

std::shared_lock<std::shared_mutex> FileIndex::lock_shared(
    const Shard& shard) const {
  std::shared_lock lock(shard.mutex, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ProfScope prof(obs::ThreadState::kLockWait);
    lock.lock();
  }
  obs::observe(metrics_.lock_wait, seconds_since(t0));
  return lock;
}

bool FileIndex::publish_locked(Shard& shard, const proto::FileEntry& entry,
                               std::uint64_t seq) {
  auto [it, is_new_file] = shard.files.try_emplace(entry.file_id);
  FileRecord& record = it->second;
  if (is_new_file) {
    record.seq = seq;
    if (auto name = proto::tag_string(entry.tags, proto::TagName::kFileName))
      record.name = *name;
    if (auto size = proto::tag_u32(entry.tags, proto::TagName::kFileSize))
      record.size = *size;
    if (auto type = proto::tag_string(entry.tags, proto::TagName::kFileType))
      record.type = *type;
    for (const std::string& kw : tokenize_keywords(record.name)) {
      auto& postings = shard.keywords[kw];
      // Keep posting lists seq-ascending even when concurrent publishers
      // interleave; serial histories append at the end.
      auto pos = std::upper_bound(
          postings.begin(), postings.end(), seq,
          [](std::uint64_t s, const Posting& p) { return s < p.seq; });
      postings.insert(pos, Posting{seq, entry.file_id});
    }
    shard.by_seq.emplace(seq, entry.file_id);
    shard.file_count.fetch_add(1, std::memory_order_relaxed);
  }

  Source src{entry.client_id, entry.port};
  auto found = std::find_if(
      record.sources.begin(), record.sources.end(),
      [&](const Source& s) { return s.client == src.client; });
  if (found != record.sources.end()) {
    found->port = src.port;  // refresh
    return false;
  }
  record.sources.push_back(src);
  shard.by_client[entry.client_id].push_back(entry.file_id);
  shard.source_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FileIndex::publish(const proto::FileEntry& entry) {
  obs::inc(metrics_.publishes);
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t si = shard_index(entry.file_id);
  Shard& shard = *shards_[si];
  bool is_new = false;
  {
    auto lock = lock_unique(shard);
    is_new = publish_locked(shard, entry, seq);
    if (is_new) shard.generation.fetch_add(1, std::memory_order_relaxed);
  }
  update_size_gauges(si);
  return is_new;
}

std::size_t FileIndex::publish_batch(
    const std::vector<proto::FileEntry>& entries,
    std::vector<bool>* new_pair) {
  if (new_pair != nullptr) new_pair->assign(entries.size(), false);
  if (entries.empty()) return 0;
  obs::inc(metrics_.publishes, entries.size());

  // Reserve a contiguous seq block up front: entry i gets base + i, so the
  // canonical order matches the per-entry publish() path even though the
  // shard-grouped application below visits shards out of input order.
  const std::uint64_t base =
      next_seq_.fetch_add(entries.size(), std::memory_order_relaxed);

  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    by_shard[shard_index(entries[i].file_id)].push_back(i);
  }

  std::size_t new_pairs = 0;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    if (by_shard[si].empty()) continue;
    Shard& shard = *shards_[si];
    bool mutated = false;
    {
      auto lock = lock_unique(shard);
      for (std::size_t idx : by_shard[si]) {
        if (publish_locked(shard, entries[idx], base + idx)) {
          mutated = true;
          ++new_pairs;
          if (new_pair != nullptr) (*new_pair)[idx] = true;
        }
      }
      if (mutated) shard.generation.fetch_add(1, std::memory_order_relaxed);
    }
    update_size_gauges(si);
  }
  return new_pairs;
}

void FileIndex::unindex_file_locked(Shard& shard, const FileId& id,
                                    const FileRecord& record) {
  for (const std::string& kw : tokenize_keywords(record.name)) {
    auto it = shard.keywords.find(kw);
    if (it == shard.keywords.end()) continue;
    auto& postings = it->second;
    postings.erase(
        std::remove_if(postings.begin(), postings.end(),
                       [&](const Posting& p) { return p.id == id; }),
        postings.end());
    if (postings.empty()) shard.keywords.erase(it);
  }
  shard.by_seq.erase(record.seq);
}

void FileIndex::retract_client(proto::ClientId client) {
  obs::inc(metrics_.retracts);
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& shard = *shards_[si];
    bool mutated = false;
    {
      auto lock = lock_unique(shard);
      auto it = shard.by_client.find(client);
      if (it == shard.by_client.end()) continue;
      for (const FileId& id : it->second) {
        auto fit = shard.files.find(id);
        if (fit == shard.files.end()) continue;
        auto& sources = fit->second.sources;
        auto src = std::find_if(
            sources.begin(), sources.end(),
            [&](const Source& s) { return s.client == client; });
        if (src != sources.end()) {
          sources.erase(src);
          shard.source_count.fetch_sub(1, std::memory_order_relaxed);
          mutated = true;
        }
        if (sources.empty()) {
          unindex_file_locked(shard, id, fit->second);
          shard.files.erase(fit);
          shard.file_count.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      shard.by_client.erase(it);
      if (mutated) shard.generation.fetch_add(1, std::memory_order_relaxed);
    }
    update_size_gauges(si);
  }
}

const FileRecord* FileIndex::find(const FileId& id) const {
  const Shard& shard = shard_for(id);
  auto it = shard.files.find(id);
  return it == shard.files.end() ? nullptr : &it->second;
}

std::size_t FileIndex::file_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->file_count.load(std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(total);
}

std::uint64_t FileIndex::source_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->source_count.load(std::memory_order_relaxed);
  }
  return total;
}

bool FileIndex::matches(const proto::SearchExpr& expr,
                        const FileRecord& record) {
  using Kind = proto::SearchExpr::Kind;
  switch (expr.kind) {
    case Kind::kBool: {
      bool l = expr.left != nullptr && matches(*expr.left, record);
      bool r = expr.right != nullptr && matches(*expr.right, record);
      switch (expr.op) {
        case proto::BoolOp::kAnd:
          return l && r;
        case proto::BoolOp::kOr:
          return l || r;
        case proto::BoolOp::kAndNot:
          return l && !r;
      }
      return false;
    }
    case Kind::kKeyword: {
      std::string lowered = to_lower(expr.text);
      for (const std::string& kw : tokenize_keywords(record.name)) {
        if (kw == lowered) return true;
      }
      return false;
    }
    case Kind::kMetaString: {
      if (expr.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(expr.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kFileType)) {
        return to_lower(record.type) == to_lower(expr.text);
      }
      return false;  // other string metadata are not indexed
    }
    case Kind::kMetaNumeric: {
      if (expr.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(expr.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kFileSize)) {
        return expr.cmp == proto::NumCmp::kMin ? record.size >= expr.number
                                               : record.size <= expr.number;
      }
      if (expr.tag_name.size() == 1 &&
          static_cast<std::uint8_t>(expr.tag_name[0]) ==
              static_cast<std::uint8_t>(proto::TagName::kAvailability)) {
        return expr.cmp == proto::NumCmp::kMin
                   ? record.availability() >= expr.number
                   : record.availability() <= expr.number;
      }
      return false;
    }
  }
  return false;
}

std::vector<std::uint64_t> FileIndex::counts_locked(
    const Shard& shard, const std::vector<std::string>& words) {
  std::vector<std::uint64_t> counts(words.size(), 0);
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    auto it = shard.keywords.find(words[wi]);
    if (it != shard.keywords.end()) counts[wi] = it->second.size();
  }
  return counts;
}

std::vector<FileIndex::Posting> FileIndex::shard_partial_locked(
    const Shard& shard, const proto::SearchExpr& expr,
    const std::string& chosen, std::size_t limit,
    std::uint64_t* evaluated) const {
  std::vector<Posting> out;
  if (limit == 0) return out;
  if (chosen.empty()) {
    // Pure metadata query: scan this shard's files in canonical order.
    for (const auto& [seq, id] : shard.by_seq) {
      auto fit = shard.files.find(id);
      if (fit == shard.files.end()) continue;
      ++*evaluated;
      if (matches(expr, fit->second)) {
        out.push_back(Posting{seq, id});
        if (out.size() >= limit) break;
      }
    }
    return out;
  }
  auto it = shard.keywords.find(chosen);
  if (it == shard.keywords.end()) return out;
  for (const Posting& p : it->second) {
    auto fit = shard.files.find(p.id);
    if (fit == shard.files.end()) continue;
    ++*evaluated;
    if (matches(expr, fit->second)) {
      out.push_back(p);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

std::vector<FileId> FileIndex::search(const proto::SearchExpr& expr,
                                      std::size_t limit) const {
  obs::inc(metrics_.searches);

  // Like the old single-map index (and real servers), use the posting list
  // of the *rarest* keyword as the candidate list and filter candidates by
  // full expression evaluation; rarity is now judged on the summed posting
  // length across shards, which equals the old global posting length.
  std::vector<std::string> words;
  expr.collect_keywords(words);
  for (std::string& w : words) w = to_lower(w);

  const std::size_t n = shards_.size();
  const bool use_cache = cache_capacity_ > 0;
  std::uint64_t evaluated = 0;

  std::string key;
  if (use_cache) {
    ByteWriter w;
    proto::encode_search_expr(w, expr);
    w.u64le(static_cast<std::uint64_t>(limit));
    key.assign(reinterpret_cast<const char*>(w.bytes().data()),
               w.bytes().size());
  }

  // Snapshot any cached entry under the cache lock; shard work happens
  // outside it so concurrent searches for other keys don't serialize.
  bool have_entry = false;
  CacheEntry snap;
  if (use_cache) {
    std::lock_guard lk(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      have_entry = true;
      snap.chosen = it->second.chosen;
      snap.gens = it->second.gens;
      snap.word_counts = it->second.word_counts;
      snap.partials = it->second.partials;
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru);
    }
  }

  // Reuse whatever the entry holds for shards whose generation is
  // unchanged; everything else is recomputed below.
  std::vector<std::uint64_t> gens(n, 0);
  std::vector<std::vector<std::uint64_t>> counts(n);
  std::vector<std::vector<Posting>> partials(n);
  std::vector<bool> clean(n, false);
  if (have_entry) {
    for (std::size_t i = 0; i < n; ++i) {
      if (shards_[i]->generation.load(std::memory_order_relaxed) ==
          snap.gens[i]) {
        clean[i] = true;
        gens[i] = snap.gens[i];
        counts[i] = snap.word_counts[i];
        partials[i] = std::move(snap.partials[i]);
      }
    }
  }

  // Refresh posting-list counts for dirty shards and re-derive the rarest
  // keyword; the choice must track index churn or answers would drift from
  // the reference semantics.
  if (!words.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (clean[i]) continue;
      auto lock = lock_shared(*shards_[i]);
      gens[i] = shards_[i]->generation.load(std::memory_order_relaxed);
      counts[i] = counts_locked(*shards_[i], words);
    }
  }

  std::string chosen;  // empty = full metadata scan
  bool found_keyword = words.empty();
  if (!words.empty()) {
    std::uint64_t best_total = 0;
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < n; ++i) total += counts[i][wi];
      if (total == 0) continue;  // keyword indexed nowhere
      if (!found_keyword || total < best_total) {  // first strict min wins
        found_keyword = true;
        best_total = total;
        chosen = words[wi];
      }
    }
  }

  if (!found_keyword) {
    // No query keyword is indexed at all: the answer is empty without
    // scanning anything.  Drop any stale entry rather than caching the
    // empty answer — the keyword may get published at any moment.
    if (use_cache) {
      std::lock_guard lk(cache_mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        cache_lru_.erase(it->second.lru);
        cache_.erase(it);
      }
      ++cache_stats_.misses;
      obs::inc(metrics_.cache_misses);
    }
    obs::observe(metrics_.candidates, 0.0);
    return {};
  }

  // A changed rarest keyword invalidates every cached partial (they were
  // scanned off a different posting list).
  const bool chosen_matches = have_entry && chosen == snap.chosen;
  std::size_t recomputed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (chosen_matches && clean[i]) continue;
    auto lock = lock_shared(*shards_[i]);
    gens[i] = shards_[i]->generation.load(std::memory_order_relaxed);
    if (!words.empty()) counts[i] = counts_locked(*shards_[i], words);
    partials[i] =
        shard_partial_locked(*shards_[i], expr, chosen, limit, &evaluated);
    ++recomputed;
  }
  obs::observe(metrics_.candidates, static_cast<double>(evaluated));

  // Merge per-shard partials back into the canonical global order.  Each
  // partial holds that shard's first `limit` matches seq-ascending, so the
  // first `limit` of the merged stream are exactly the old single-map
  // answer.
  std::vector<Posting> merged;
  for (std::size_t i = 0; i < n; ++i) {
    merged.insert(merged.end(), partials[i].begin(), partials[i].end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Posting& a, const Posting& b) { return a.seq < b.seq; });
  if (merged.size() > limit) merged.resize(limit);

  if (use_cache) {
    std::lock_guard lk(cache_mutex_);
    auto [it, inserted] = cache_.try_emplace(key);
    CacheEntry& entry = it->second;
    if (inserted) {
      cache_lru_.push_front(key);
      entry.lru = cache_lru_.begin();
    } else {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, entry.lru);
    }
    entry.chosen = chosen;
    entry.gens = std::move(gens);
    entry.word_counts = std::move(counts);
    entry.partials = std::move(partials);
    while (cache_.size() > cache_capacity_) {
      cache_.erase(cache_lru_.back());
      cache_lru_.pop_back();
      ++cache_stats_.evictions;
      obs::inc(metrics_.cache_evictions);
    }
    if (!have_entry || !chosen_matches) {
      ++cache_stats_.misses;
      obs::inc(metrics_.cache_misses);
    } else if (recomputed == 0) {
      ++cache_stats_.hits;
      obs::inc(metrics_.cache_hits);
    } else {
      ++cache_stats_.partial_hits;
      obs::inc(metrics_.cache_partial_hits);
    }
  }

  std::vector<FileId> out;
  out.reserve(merged.size());
  for (const Posting& p : merged) out.push_back(p.id);
  return out;
}

void FileIndex::save_state(ByteWriter& out) const {
  out.u64le(shards_.size());
  out.u64le(next_seq_.load(std::memory_order_relaxed));
  {
    std::lock_guard lk(cache_mutex_);
    out.u64le(cache_stats_.hits);
    out.u64le(cache_stats_.partial_hits);
    out.u64le(cache_stats_.misses);
    out.u64le(cache_stats_.evictions);
  }

  // Records in global first-publish order: the canonical answer order, and
  // the order restore_state replays so per-shard posting lists come back
  // seq-ascending without re-sorting.
  struct Item {
    std::uint64_t seq = 0;
    const FileId* id = nullptr;
    const FileRecord* rec = nullptr;
  };
  std::vector<Item> items;
  for (const auto& shard : shards_) {
    for (const auto& [seq, id] : shard->by_seq) {
      auto it = shard->files.find(id);
      if (it == shard->files.end()) continue;
      items.push_back(Item{seq, &it->first, &it->second});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.seq < b.seq; });

  out.u64le(items.size());
  for (const Item& item : items) {
    out.u64le(item.seq);
    out.raw(BytesView(item.id->bytes.data(), item.id->bytes.size()));
    out.u32le(static_cast<std::uint32_t>(item.rec->name.size()));
    out.raw(BytesView(
        reinterpret_cast<const std::uint8_t*>(item.rec->name.data()),
        item.rec->name.size()));
    out.u32le(item.rec->size);
    out.u32le(static_cast<std::uint32_t>(item.rec->type.size()));
    out.raw(BytesView(
        reinterpret_cast<const std::uint8_t*>(item.rec->type.data()),
        item.rec->type.size()));
    out.u32le(static_cast<std::uint32_t>(item.rec->sources.size()));
    for (const Source& src : item.rec->sources) {
      out.u32le(src.client);
      out.u16le(src.port);
    }
  }
}

bool FileIndex::restore_state(ByteReader& in) {
  if (in.u64le() != shards_.size()) return false;
  const std::uint64_t next_seq = in.u64le();
  CacheStats cs;
  cs.hits = in.u64le();
  cs.partial_hits = in.u64le();
  cs.misses = in.u64le();
  cs.evictions = in.u64le();
  const std::uint64_t count = in.u64le();
  if (count > in.remaining() / 40) return false;

  for (auto& shard : shards_) {
    shard->files.clear();
    shard->keywords.clear();
    shard->by_client.clear();
    shard->by_seq.clear();
    shard->generation.store(0, std::memory_order_relaxed);
    shard->file_count.store(0, std::memory_order_relaxed);
    shard->source_count.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard lk(cache_mutex_);
    cache_.clear();
    cache_lru_.clear();
    cache_stats_ = cs;
  }

  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seq = in.u64le();
    if (seq <= prev_seq || seq >= next_seq) return false;
    prev_seq = seq;
    FileId id;
    BytesView id_bytes = in.raw(id.bytes.size());
    if (!in.ok()) return false;
    std::memcpy(id.bytes.data(), id_bytes.data(), id.bytes.size());

    FileRecord rec;
    rec.seq = seq;
    const std::uint32_t name_len = in.u32le();
    if (name_len > in.remaining()) return false;
    BytesView name = in.raw(name_len);
    rec.name.assign(reinterpret_cast<const char*>(name.data()), name.size());
    rec.size = in.u32le();
    const std::uint32_t type_len = in.u32le();
    if (type_len > in.remaining()) return false;
    BytesView type = in.raw(type_len);
    rec.type.assign(reinterpret_cast<const char*>(type.data()), type.size());
    const std::uint32_t n_sources = in.u32le();
    if (n_sources > in.remaining() / 6) return false;
    rec.sources.reserve(n_sources);
    for (std::uint32_t s = 0; s < n_sources; ++s) {
      Source src{in.u32le(), in.u16le()};
      auto dup = std::find_if(
          rec.sources.begin(), rec.sources.end(),
          [&](const Source& o) { return o.client == src.client; });
      if (dup != rec.sources.end()) return false;
      rec.sources.push_back(src);
    }
    if (!in.ok()) return false;

    Shard& shard = shard_for(id);
    const std::string record_name = rec.name;
    const std::vector<Source> record_sources = rec.sources;
    if (!shard.files.emplace(id, std::move(rec)).second) return false;
    for (const std::string& kw : tokenize_keywords(record_name)) {
      shard.keywords[kw].push_back(Posting{seq, id});
    }
    shard.by_seq.emplace(seq, id);
    shard.file_count.fetch_add(1, std::memory_order_relaxed);
    for (const Source& src : record_sources) {
      shard.by_client[src.client].push_back(id);
      shard.source_count.fetch_add(1, std::memory_order_relaxed);
    }
  }
  next_seq_.store(next_seq, std::memory_order_relaxed);
  update_all_gauges();
  return in.ok();
}

FileIndex::CacheStats FileIndex::cache_stats() const {
  std::lock_guard lk(cache_mutex_);
  return cache_stats_;
}

void FileIndex::update_size_gauges(std::size_t shard) const {
  if (shard < metrics_.shard_files.size()) {
    obs::set(metrics_.shard_files[shard],
             static_cast<std::int64_t>(
                 shards_[shard]->file_count.load(std::memory_order_relaxed)));
  }
  obs::set(metrics_.files, static_cast<std::int64_t>(file_count()));
  obs::set(metrics_.sources, static_cast<std::int64_t>(source_count()));
}

void FileIndex::update_all_gauges() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) update_size_gauges(i);
}

void FileIndex::bind_metrics(obs::Registry& registry) {
  metrics_.publishes = &registry.counter("server.index.publishes");
  metrics_.searches = &registry.counter("server.index.searches");
  metrics_.retracts = &registry.counter("server.index.retracts");
  metrics_.cache_hits = &registry.counter("server.index.cache.hits");
  metrics_.cache_partial_hits =
      &registry.counter("server.index.cache.partial_hits");
  metrics_.cache_misses = &registry.counter("server.index.cache.misses");
  metrics_.cache_evictions = &registry.counter("server.index.cache.evictions");
  metrics_.files = &registry.gauge("server.index.files");
  metrics_.sources = &registry.gauge("server.index.sources");
  metrics_.candidates = &registry.histogram("server.index.search.candidates",
                                            obs::size_buckets());
  // span.-prefixed so the wall-clock-dependent waits stay out of the
  // deterministic time series (TimeSeriesOptions excludes span.*).
  metrics_.lock_wait = &registry.histogram(
      "span.server.index.lock_wait.seconds", obs::lock_wait_buckets_s());
  registry.gauge("server.index.shards")
      .set(static_cast<std::int64_t>(shards_.size()));
  metrics_.shard_files.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    metrics_.shard_files.push_back(&registry.gauge(
        "server.index.shard." + std::to_string(i) + ".files"));
  }
  update_all_gauges();
}

}  // namespace dtr::server
