// The server's file and source indexes.
//
// An eDonkey directory server "indexes files and users, and their main role
// is to answer to searches for files (based on metadata like filename, size
// or filetype), and searches for providers (called sources) of given files"
// (paper §2.1).  The paper's server did this for ~90 M distinct clients; a
// single-map index behind one logical owner cannot scale with that
// population, so FileIndex is *sharded*: files are partitioned into N
// power-of-two shards by a hash of their fileID, and each shard is a
// complete mini-index of its own files — record map, inverted keyword
// postings, per-client provider lists — behind its own reader/writer lock.
// Publishes to different shards proceed in parallel; searches take shared
// locks and fan out across shards, merging per-shard results under the
// protocol caps.
//
// Determinism contract: answers are *independent of the shard count*.
// Every file carries the global sequence number of its first publish, the
// canonical answer order; per-shard partial results come back
// seq-ordered and the merge re-establishes the exact order the old
// single-map index produced (posting lists were publication-ordered).
// tests/index_differential_test replays identical workloads against a
// reference single-map oracle and shard counts {1,2,4,8} and asserts
// byte-identical answers.
//
// On top sits a bounded LRU keyword-search cache storing *per-shard*
// partial results, each tagged with the generation of the shard it was
// computed from.  A publish or retract bumps only its shard's generation,
// so a cached search revalidates cheaply: untouched shards are reused,
// only churned shards are recomputed.  That confinement of invalidation is
// what makes the cache effective under a live publish stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hash/digest.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "proto/search_expr.hpp"

namespace dtr::server {

/// One provider of a file, as stored by the server.
struct Source {
  proto::ClientId client = 0;
  std::uint16_t port = 0;
  bool operator==(const Source&) const = default;
};

/// Per-file record: canonical metadata plus the provider list.
struct FileRecord {
  std::string name;        // first-published filename wins (canonical)
  std::uint32_t size = 0;  // bytes
  std::string type;        // "audio", "video", ...
  std::vector<Source> sources;
  /// Global first-publish sequence number: the canonical search-answer
  /// order, identical for every shard count.
  std::uint64_t seq = 0;

  [[nodiscard]] std::uint32_t availability() const {
    return static_cast<std::uint32_t>(sources.size());
  }
};

struct FileIndexConfig {
  /// Number of shards; rounded up to a power of two, clamped to [1, 64].
  std::size_t shards = 4;
  /// Bounded LRU search-cache capacity in entries; 0 disables the cache.
  std::size_t search_cache_entries = 0;
};

class FileIndex {
 public:
  explicit FileIndex(FileIndexConfig config = {});

  /// Add (or refresh) `entry.client_id` as a provider of the file described
  /// by `entry`.  Returns true if this was a new (file, provider) pair.
  /// Thread-safe; locks exactly one shard.
  bool publish(const proto::FileEntry& entry);

  /// Publish a whole announce batch, locking each shard at most once
  /// (entries are grouped by shard; within a shard they apply in input
  /// order, and first-publish ordering across the batch matches the
  /// per-entry path).  Returns the number of new (file, provider) pairs;
  /// `new_pair`, when given, receives the per-entry publish() results.
  std::size_t publish_batch(const std::vector<proto::FileEntry>& entries,
                            std::vector<bool>* new_pair = nullptr);

  /// Remove a provider from all its files (client went offline).  Visits
  /// every shard once; cost within a shard is proportional to the number
  /// of files the client provides there.
  void retract_client(proto::ClientId client);

  /// Borrowed pointer into the owning shard — valid only while no other
  /// thread mutates the index (tests, serial drivers).  Concurrent readers
  /// must use visit().
  [[nodiscard]] const FileRecord* find(const FileId& id) const;

  /// Run `fn(const FileRecord&)` under the owning shard's shared lock;
  /// returns false (fn not called) when the file is unknown.  This is the
  /// concurrency-safe read path: copy what you need inside `fn`.
  template <typename F>
  bool visit(const FileId& id, F&& fn) const {
    const Shard& shard = shard_for(id);
    std::shared_lock lock(shard.mutex);
    auto it = shard.files.find(id);
    if (it == shard.files.end()) return false;
    fn(it->second);
    return true;
  }

  [[nodiscard]] std::size_t file_count() const;
  [[nodiscard]] std::uint64_t source_count() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// All fileIDs matching a search expression, capped at `limit`, in
  /// first-publish order (independent of the shard count).  Thread-safe;
  /// takes shared locks shard by shard.
  [[nodiscard]] std::vector<FileId> search(const proto::SearchExpr& expr,
                                           std::size_t limit) const;

  /// Evaluate an expression against one record (exposed for tests).
  [[nodiscard]] static bool matches(const proto::SearchExpr& expr,
                                    const FileRecord& record);

  /// Register `server.index.*` instruments in `registry` and record into
  /// them from now on: publish/search/retract counters, size gauges,
  /// per-shard occupancy gauges, cache hit/miss/eviction counters, a
  /// candidates-evaluated histogram and a shard-lock-wait histogram.
  void bind_metrics(obs::Registry& registry);

  /// Search-cache counters (also exported via bind_metrics); zeros while
  /// the cache is disabled.
  struct CacheStats {
    std::uint64_t hits = 0;          // every shard partial reused
    std::uint64_t partial_hits = 0;  // entry found, some shards recomputed
    std::uint64_t misses = 0;        // no usable entry
    std::uint64_t evictions = 0;     // LRU bound enforced
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Checkpoint codec.  Records are written in global first-publish order
  /// and restore re-derives every per-shard structure (postings, by_seq,
  /// by_client) from them, so the restored index answers identically for
  /// the same shard count.  The search cache is NOT serialized: restore
  /// clears it, so a cache-enabled resumed run may report different
  /// cache hit/miss counters than an uninterrupted one (answers are
  /// unaffected).  Not thread-safe: quiesce before calling.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  /// One posting-list element: the file plus its canonical order key.
  struct Posting {
    std::uint64_t seq = 0;
    FileId id;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<FileId, FileRecord, DigestHasher> files;
    // keyword -> postings, seq-ascending for any serial publish history.
    std::unordered_map<std::string, std::vector<Posting>> keywords;
    // client -> files it provides *in this shard* (for retract_client).
    std::unordered_map<proto::ClientId, std::vector<FileId>> by_client;
    // Canonical full-scan order for keyword-less metadata queries.
    std::map<std::uint64_t, FileId> by_seq;
    // Bumped on every mutation; the search cache revalidates against it.
    std::atomic<std::uint64_t> generation{0};
    // Lock-free size counters so file_count()/source_count() never block.
    std::atomic<std::uint64_t> file_count{0};
    std::atomic<std::uint64_t> source_count{0};
  };

  struct CacheEntry {
    std::string chosen;  // scanned keyword; empty = full metadata scan
    std::vector<std::uint64_t> gens;  // per shard, at compute time
    // Posting-list length per [shard][query word]: revalidation recomputes
    // the rarest-keyword choice from these without touching clean shards.
    std::vector<std::vector<std::uint64_t>> word_counts;
    std::vector<std::vector<Posting>> partials;  // per shard, seq-ascending
    std::list<std::string>::iterator lru;
  };

  struct Metrics {
    obs::Counter* publishes = nullptr;
    obs::Counter* searches = nullptr;
    obs::Counter* retracts = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_partial_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* files = nullptr;
    obs::Gauge* sources = nullptr;
    obs::Histogram* candidates = nullptr;   // evaluated per search
    obs::Histogram* lock_wait = nullptr;    // contended shard acquisitions
    std::vector<obs::Gauge*> shard_files;   // occupancy per shard
  };

  Shard& shard_for(const FileId& id) { return *shards_[shard_index(id)]; }
  const Shard& shard_for(const FileId& id) const {
    return *shards_[shard_index(id)];
  }
  std::size_t shard_index(const FileId& id) const {
    return DigestHasher{}(id) & shard_mask_;
  }

  /// Acquire `shard.mutex` (unique), timing contended waits into the
  /// lock-wait histogram.
  std::unique_lock<std::shared_mutex> lock_unique(const Shard& shard) const;
  std::shared_lock<std::shared_mutex> lock_shared(const Shard& shard) const;

  /// The publish core, under the shard lock.  `seq` is consumed only when
  /// the file is new.  Returns true for a new (file, provider) pair.
  bool publish_locked(Shard& shard, const proto::FileEntry& entry,
                      std::uint64_t seq);
  void unindex_file_locked(Shard& shard, const FileId& id,
                           const FileRecord& record);

  /// First `limit` matches of one shard in canonical (seq) order; the
  /// caller holds the shard's lock.  `chosen` is the posting list to scan
  /// (empty = full by_seq scan).  `evaluated` accumulates the number of
  /// candidate records tested.
  std::vector<Posting> shard_partial_locked(const Shard& shard,
                                            const proto::SearchExpr& expr,
                                            const std::string& chosen,
                                            std::size_t limit,
                                            std::uint64_t* evaluated) const;

  /// Posting-list length of each (lowered) query word in one shard; the
  /// caller holds the shard's lock.
  static std::vector<std::uint64_t> counts_locked(
      const Shard& shard, const std::vector<std::string>& words);

  void update_size_gauges(std::size_t shard) const;
  void update_all_gauges() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::uint64_t> next_seq_{1};

  std::size_t cache_capacity_ = 0;
  mutable std::mutex cache_mutex_;
  mutable std::list<std::string> cache_lru_;  // front = most recent
  mutable std::unordered_map<std::string, CacheEntry> cache_;
  mutable CacheStats cache_stats_;  // guarded by cache_mutex_

  Metrics metrics_;
};

}  // namespace dtr::server
