// The server's file and source indexes.
//
// An eDonkey directory server "indexes files and users, and their main role
// is to answer to searches for files (based on metadata like filename, size
// or filetype), and searches for providers (called sources) of given files"
// (paper §2.1).  FileIndex stores, per fileID, the canonical metadata and
// the current set of providers; KeywordIndex inverts filename keywords to
// fileIDs for metadata search.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hash/digest.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "proto/search_expr.hpp"

namespace dtr::server {

/// One provider of a file, as stored by the server.
struct Source {
  proto::ClientId client = 0;
  std::uint16_t port = 0;
  bool operator==(const Source&) const = default;
};

/// Per-file record: canonical metadata plus the provider list.
struct FileRecord {
  std::string name;        // first-published filename wins (canonical)
  std::uint32_t size = 0;  // bytes
  std::string type;        // "audio", "video", ...
  std::vector<Source> sources;

  [[nodiscard]] std::uint32_t availability() const {
    return static_cast<std::uint32_t>(sources.size());
  }
};

class FileIndex {
 public:
  /// Add (or refresh) `client` as a provider of the file described by
  /// `entry`.  Returns true if this was a new (file, provider) pair.
  bool publish(const proto::FileEntry& entry);

  /// Remove a provider from all its files (client went offline).  Cost is
  /// proportional to the number of files the client provides.
  void retract_client(proto::ClientId client);

  [[nodiscard]] const FileRecord* find(const FileId& id) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] std::uint64_t source_count() const { return total_sources_; }

  /// All fileIDs matching a search expression, capped at `limit`.
  [[nodiscard]] std::vector<FileId> search(const proto::SearchExpr& expr,
                                           std::size_t limit) const;

  /// Evaluate an expression against one record (exposed for tests).
  [[nodiscard]] static bool matches(const proto::SearchExpr& expr,
                                    const FileRecord& record);

  /// Register `server.index.*` instruments in `registry` and record into
  /// them from now on (publish/search/retract counters, size gauges).
  void bind_metrics(obs::Registry& registry);

 private:
  void index_keywords(const FileId& id, const std::string& name);
  void unindex_file(const FileId& id, const FileRecord& record);
  void update_size_gauges();

  struct Metrics {
    obs::Counter* publishes = nullptr;
    obs::Counter* searches = nullptr;
    obs::Counter* retracts = nullptr;
    obs::Gauge* files = nullptr;
    obs::Gauge* sources = nullptr;
  };

  std::unordered_map<FileId, FileRecord, DigestHasher> files_;
  // keyword -> fileIDs containing it (posting lists kept unsorted; order is
  // publication order, which also gives deterministic answers).
  std::unordered_map<std::string, std::vector<FileId>> keywords_;
  // client -> files it provides (for retract_client).
  std::unordered_map<proto::ClientId, std::vector<FileId>> by_client_;
  std::uint64_t total_sources_ = 0;
  Metrics metrics_;
};

}  // namespace dtr::server
