#include "server/server.hpp"

#include <algorithm>

namespace dtr::server {

EdonkeyServer::EdonkeyServer(ServerConfig config)
    : config_(std::move(config)) {}

proto::ClientId EdonkeyServer::client_id_for(proto::ClientId client_ip,
                                             bool reachable) {
  if (reachable) return client_ip;
  auto [it, inserted] = low_ids_.try_emplace(client_ip, next_low_id_);
  if (inserted) {
    next_low_id_ = (next_low_id_ + 1) % proto::kLowIdThreshold;
    if (next_low_id_ == 0) next_low_id_ = 1;
  }
  return it->second;
}

void EdonkeyServer::client_offline(proto::ClientId client_ip) {
  index_.retract_client(client_ip);
  published_count_.erase(client_ip);
}

proto::Message EdonkeyServer::answer_stat(const proto::ServStatReq& q) {
  proto::ServStatRes res;
  res.challenge = q.challenge;
  res.users = user_count();
  res.files = static_cast<std::uint32_t>(index_.file_count());
  return res;
}

proto::Message EdonkeyServer::answer_desc() const {
  proto::ServerDescRes res;
  res.name = config_.name;
  res.description = config_.description;
  return res;
}

proto::Message EdonkeyServer::answer_server_list() const {
  proto::ServerList res;
  res.servers = config_.known_servers;
  if (res.servers.size() > 255) res.servers.resize(255);
  return res;
}

proto::Message EdonkeyServer::answer_search(const proto::FileSearchReq& q,
                                            SimTime now) {
  ++stats_.searches;
  proto::FileSearchRes res;
  std::vector<FileId> ids = index_.search(*q.expr, config_.max_search_results);
  if (ids.size() >= config_.max_search_results) {
    DTR_LOG_DEBUG(log_, "server", now,
                  "search answer capped at " << config_.max_search_results
                                             << " results");
  }
  res.results.reserve(ids.size());
  for (const FileId& id : ids) {
    const FileRecord* record = index_.find(id);
    if (record == nullptr || record->sources.empty()) continue;
    proto::FileEntry entry;
    entry.file_id = id;
    // Real servers return one representative source per result entry.
    entry.client_id = record->sources.front().client;
    entry.port = record->sources.front().port;
    entry.tags.push_back(proto::Tag::str(proto::TagName::kFileName, record->name));
    entry.tags.push_back(proto::Tag::u32(proto::TagName::kFileSize, record->size));
    if (!record->type.empty()) {
      entry.tags.push_back(
          proto::Tag::str(proto::TagName::kFileType, record->type));
    }
    entry.tags.push_back(
        proto::Tag::u32(proto::TagName::kAvailability, record->availability()));
    res.results.push_back(std::move(entry));
  }
  return res;
}

std::vector<proto::Message> EdonkeyServer::answer_sources(
    const proto::GetSourcesReq& q, SimTime now) {
  ++stats_.source_requests;
  std::vector<proto::Message> answers;
  for (const FileId& id : q.file_ids) {
    const FileRecord* record = index_.find(id);
    if (record == nullptr || record->sources.empty()) {
      ++stats_.unanswerable;
      continue;  // real servers stay silent for unknown fileIDs
    }
    proto::FoundSourcesRes res;
    res.file_id = id;
    std::size_t n =
        std::min(record->sources.size(), config_.max_sources_per_answer);
    if (n < record->sources.size()) {
      DTR_LOG_DEBUG(log_, "server", now,
                    "source answer truncated to "
                        << n << " of " << record->sources.size()
                        << " known sources");
    }
    res.sources.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      res.sources.push_back(
          {record->sources[i].client, record->sources[i].port});
    }
    answers.emplace_back(std::move(res));
  }
  return answers;
}

proto::Message EdonkeyServer::accept_publish(proto::ClientId client,
                                             std::uint16_t client_port,
                                             const proto::PublishReq& q) {
  ++stats_.publishes;
  std::uint32_t accepted = 0;
  std::uint64_t& count = published_count_[client];
  std::size_t batch = std::min(q.files.size(), config_.max_files_per_publish);
  for (std::size_t i = 0; i < batch; ++i) {
    if (count >= config_.max_published_per_client) {
      stats_.published_files_rejected += q.files.size() - i;
      break;
    }
    proto::FileEntry entry = q.files[i];
    entry.client_id = client;       // the server trusts the transport address
    entry.port = client_port;
    if (index_.publish(entry)) ++count;
    ++accepted;
  }
  stats_.published_files_rejected += q.files.size() - batch;
  stats_.published_files_accepted += accepted;
  return proto::PublishAck{accepted};
}

std::vector<proto::Message> EdonkeyServer::handle(proto::ClientId client_ip,
                                                  std::uint16_t client_port,
                                                  const proto::Message& query,
                                                  SimTime now) {
  ++stats_.queries;
  seen_clients_[client_ip] = now;

  std::vector<proto::Message> answers;
  if (const auto* q = std::get_if<proto::ServStatReq>(&query)) {
    answers.push_back(answer_stat(*q));
  } else if (std::holds_alternative<proto::ServerDescReq>(query)) {
    answers.push_back(answer_desc());
  } else if (std::holds_alternative<proto::GetServerList>(query)) {
    answers.push_back(answer_server_list());
  } else if (const auto* q = std::get_if<proto::FileSearchReq>(&query)) {
    answers.push_back(answer_search(*q, now));
  } else if (const auto* q = std::get_if<proto::GetSourcesReq>(&query)) {
    answers = answer_sources(*q, now);
  } else if (const auto* q = std::get_if<proto::PublishReq>(&query)) {
    answers.push_back(accept_publish(client_ip, client_port, *q));
  }
  // Answers to answers (a client echoing server messages) are ignored.

  stats_.answers += answers.size();
  return answers;
}

}  // namespace dtr::server
