#include "server/server.hpp"

#include <algorithm>

namespace dtr::server {

EdonkeyServer::EdonkeyServer(ServerConfig config)
    : config_(std::move(config)),
      index_(FileIndexConfig{config_.index_shards,
                             config_.search_cache_entries}) {
  // The wire count field is a u8; a larger configured cap would silently
  // truncate on encode, so clamp here and keep every layer consistent.
  config_.max_sources_per_answer =
      std::min<std::size_t>(config_.max_sources_per_answer, 255);
  next_low_id_ = config_.first_low_id % proto::kLowIdThreshold;
  if (next_low_id_ == 0) next_low_id_ = 1;
}

proto::ClientId EdonkeyServer::client_id_for(proto::ClientId client_ip,
                                             bool reachable) {
  if (reachable) return client_ip;
  std::lock_guard lock(client_mutex_);
  auto [it, inserted] = low_ids_.try_emplace(client_ip, next_low_id_);
  if (inserted) {
    next_low_id_ = (next_low_id_ + 1) % proto::kLowIdThreshold;
    if (next_low_id_ == 0) next_low_id_ = 1;
  }
  return it->second;
}

void EdonkeyServer::client_offline(proto::ClientId client_ip) {
  index_.retract_client(client_ip);
  std::lock_guard lock(client_mutex_);
  published_count_.erase(client_ip);
}

proto::Message EdonkeyServer::answer_stat(const proto::ServStatReq& q) {
  proto::ServStatRes res;
  res.challenge = q.challenge;
  res.users = user_count();
  res.files = static_cast<std::uint32_t>(index_.file_count());
  return res;
}

proto::Message EdonkeyServer::answer_desc() const {
  proto::ServerDescRes res;
  res.name = config_.name;
  res.description = config_.description;
  return res;
}

proto::Message EdonkeyServer::answer_server_list() const {
  proto::ServerList res;
  res.servers = config_.known_servers;
  if (res.servers.size() > 255) res.servers.resize(255);
  return res;
}

proto::Message EdonkeyServer::answer_search(const proto::FileSearchReq& q,
                                            SimTime now) {
  ++stats_.searches;
  proto::FileSearchRes res;
  std::vector<FileId> ids = index_.search(*q.expr, config_.max_search_results);
  if (ids.size() >= config_.max_search_results) {
    DTR_LOG_DEBUG(log_, "server", now,
                  "search answer capped at " << config_.max_search_results
                                             << " results");
  }
  res.results.reserve(ids.size());
  for (const FileId& id : ids) {
    // Copy the answer fields out under the shard lock: a concurrent
    // retract must not be able to pull the record out from under us.
    proto::FileEntry entry;
    bool usable = false;
    index_.visit(id, [&](const FileRecord& record) {
      if (record.sources.empty()) return;
      entry.file_id = id;
      // Real servers return one representative source per result entry.
      entry.client_id = record.sources.front().client;
      entry.port = record.sources.front().port;
      entry.tags.push_back(
          proto::Tag::str(proto::TagName::kFileName, record.name));
      entry.tags.push_back(
          proto::Tag::u32(proto::TagName::kFileSize, record.size));
      if (!record.type.empty()) {
        entry.tags.push_back(
            proto::Tag::str(proto::TagName::kFileType, record.type));
      }
      entry.tags.push_back(
          proto::Tag::u32(proto::TagName::kAvailability,
                          record.availability()));
      usable = true;
    });
    if (usable) res.results.push_back(std::move(entry));
  }
  return res;
}

std::vector<proto::Message> EdonkeyServer::answer_sources(
    const proto::GetSourcesReq& q, SimTime now) {
  ++stats_.source_requests;
  std::vector<proto::Message> answers;
  for (const FileId& id : q.file_ids) {
    proto::FoundSourcesRes res;
    res.file_id = id;
    std::size_t total = 0;
    index_.visit(id, [&](const FileRecord& record) {
      total = record.sources.size();
      std::size_t n = std::min(total, config_.max_sources_per_answer);
      res.sources.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        res.sources.push_back(
            {record.sources[i].client, record.sources[i].port});
      }
    });
    if (res.sources.empty()) {
      ++stats_.unanswerable;
      continue;  // real servers stay silent for unknown fileIDs
    }
    if (res.sources.size() < total) {
      DTR_LOG_DEBUG(log_, "server", now,
                    "source answer truncated to " << res.sources.size()
                                                  << " of " << total
                                                  << " known sources");
    }
    answers.emplace_back(std::move(res));
  }
  return answers;
}

proto::Message EdonkeyServer::accept_publish(proto::ClientId client,
                                             std::uint16_t client_port,
                                             const proto::PublishReq& q) {
  ++stats_.publishes;
  const std::size_t batch =
      std::min(q.files.size(), config_.max_files_per_publish);
  std::vector<proto::FileEntry> entries(q.files.begin(),
                                        q.files.begin() + batch);
  for (proto::FileEntry& entry : entries) {
    entry.client_id = client;  // the server trusts the transport address
    entry.port = client_port;
  }

  // Fast path: when the per-client cap cannot trigger within this
  // announce, publish the whole batch through the index's batched path —
  // one lock per touched shard instead of one per file.  (Concurrent
  // announces from one client may overshoot the cap by a batch; the cap
  // is an anti-abuse bound, not an exact quota.)
  bool fits = false;
  {
    std::lock_guard lock(client_mutex_);
    fits = published_count_[client] + batch <= config_.max_published_per_client;
  }

  std::uint32_t accepted = 0;
  std::uint64_t rejected = 0;
  if (fits) {
    const std::size_t new_pairs = index_.publish_batch(entries);
    accepted = static_cast<std::uint32_t>(batch);
    std::lock_guard lock(client_mutex_);
    published_count_[client] += new_pairs;
  } else {
    // Near the cap: fall back to per-entry publishing so the cutoff lands
    // on the same file as the pre-sharding server.
    for (std::size_t i = 0; i < batch; ++i) {
      bool at_cap = false;
      {
        std::lock_guard lock(client_mutex_);
        at_cap =
            published_count_[client] >= config_.max_published_per_client;
      }
      if (at_cap) {
        rejected += q.files.size() - i;
        break;
      }
      if (index_.publish(entries[i])) {
        std::lock_guard lock(client_mutex_);
        ++published_count_[client];
      }
      ++accepted;
    }
  }
  rejected += q.files.size() - batch;
  stats_.published_files_rejected += rejected;
  stats_.published_files_accepted += accepted;
  return proto::PublishAck{accepted};
}

std::vector<proto::Message> EdonkeyServer::handle(proto::ClientId client_ip,
                                                  std::uint16_t client_port,
                                                  const proto::Message& query,
                                                  SimTime now) {
  ++stats_.queries;
  {
    std::lock_guard lock(client_mutex_);
    seen_clients_[client_ip] = now;
  }

  std::vector<proto::Message> answers;
  if (const auto* q = std::get_if<proto::ServStatReq>(&query)) {
    answers.push_back(answer_stat(*q));
  } else if (std::holds_alternative<proto::ServerDescReq>(query)) {
    answers.push_back(answer_desc());
  } else if (std::holds_alternative<proto::GetServerList>(query)) {
    answers.push_back(answer_server_list());
  } else if (const auto* q = std::get_if<proto::FileSearchReq>(&query)) {
    answers.push_back(answer_search(*q, now));
  } else if (const auto* q = std::get_if<proto::GetSourcesReq>(&query)) {
    answers = answer_sources(*q, now);
  } else if (const auto* q = std::get_if<proto::PublishReq>(&query)) {
    answers.push_back(accept_publish(client_ip, client_port, *q));
  }
  // Answers to answers (a client echoing server messages) are ignored.

  stats_.answers += answers.size();
  return answers;
}

namespace {

/// Serialize an unordered client-keyed map sorted by key, so snapshot
/// bytes don't depend on hash-table iteration order.
template <typename V, typename Write>
void save_client_map(ByteWriter& out,
                     const std::unordered_map<proto::ClientId, V>& map,
                     Write&& write_value) {
  std::vector<proto::ClientId> keys;
  keys.reserve(map.size());
  for (const auto& [k, v] : map) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  out.u64le(keys.size());
  for (proto::ClientId k : keys) {
    out.u32le(k);
    write_value(map.find(k)->second);
  }
}

}  // namespace

void EdonkeyServer::save_state(ByteWriter& out) const {
  out.u64le(stats_.queries.load());
  out.u64le(stats_.answers.load());
  out.u64le(stats_.searches.load());
  out.u64le(stats_.source_requests.load());
  out.u64le(stats_.publishes.load());
  out.u64le(stats_.published_files_accepted.load());
  out.u64le(stats_.published_files_rejected.load());
  out.u64le(stats_.unanswerable.load());
  {
    std::lock_guard lock(client_mutex_);
    out.u32le(next_low_id_);
    save_client_map(out, low_ids_,
                    [&](proto::ClientId low) { out.u32le(low); });
    save_client_map(out, seen_clients_, [&](SimTime t) { out.u64le(t); });
    save_client_map(out, published_count_,
                    [&](std::uint64_t n) { out.u64le(n); });
  }
  index_.save_state(out);
}

bool EdonkeyServer::restore_state(ByteReader& in) {
  stats_.queries.store(in.u64le());
  stats_.answers.store(in.u64le());
  stats_.searches.store(in.u64le());
  stats_.source_requests.store(in.u64le());
  stats_.publishes.store(in.u64le());
  stats_.published_files_accepted.store(in.u64le());
  stats_.published_files_rejected.store(in.u64le());
  stats_.unanswerable.store(in.u64le());
  {
    std::lock_guard lock(client_mutex_);
    next_low_id_ = in.u32le();
    if (next_low_id_ == 0 || next_low_id_ >= proto::kLowIdThreshold) {
      return false;
    }
    low_ids_.clear();
    seen_clients_.clear();
    published_count_.clear();
    std::uint64_t n = in.u64le();
    if (n > in.remaining() / 8) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      const proto::ClientId ip = in.u32le();
      const proto::ClientId low = in.u32le();
      if (low == 0 || low >= proto::kLowIdThreshold) return false;
      if (!low_ids_.emplace(ip, low).second) return false;
    }
    n = in.u64le();
    if (n > in.remaining() / 12) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      const proto::ClientId ip = in.u32le();
      const SimTime t = in.u64le();
      if (!seen_clients_.emplace(ip, t).second) return false;
    }
    n = in.u64le();
    if (n > in.remaining() / 12) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      const proto::ClientId ip = in.u32le();
      const std::uint64_t published = in.u64le();
      if (!published_count_.emplace(ip, published).second) return false;
    }
  }
  return index_.restore_state(in) && in.ok();
}

}  // namespace dtr::server
