#include "common/strings.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace dtr {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> tokenize_keywords(std::string_view s,
                                           std::size_t min_len) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() >= min_len) tokens.push_back(current);
    current.clear();
  };
  for (char raw : s) {
    auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::string with_thousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t leading = digits.size() % 3;
  if (leading == 0) leading = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - leading) % 3 == 0 && i >= leading) out.push_back(' ');
    out.push_back(digits[i]);
  }
  return out;
}

std::string human_size(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

}  // namespace dtr
