// Deterministic random-number generation for the synthetic workload.
//
// Everything stochastic in donkeytrace flows from an explicit 64-bit seed so
// that campaigns are reproducible bit-for-bit: the same seed regenerates the
// same clients, files, sessions and packet timings.  We use xoshiro256**
// (public-domain, Blackman & Vigna) seeded through splitmix64, which is both
// faster than std::mt19937_64 and has no seeding pitfalls.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace dtr {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (finalizer of splitmix64).
std::uint64_t mix64(std::uint64_t v);

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal via Box–Muller (no state cached; we favor simplicity).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto (continuous power law) with minimum xm and shape alpha:
  /// P(X > x) = (xm/x)^alpha for x >= xm.
  double pareto(double xm, double alpha);

  /// Discrete power law on {1, 2, ...}: P(k) ~ k^-alpha, sampled by
  /// inverting the continuous Pareto and rounding (accurate for alpha > 1).
  std::uint64_t power_law_int(double alpha, std::uint64_t max_value);

  /// Fork an independent stream for a sub-component; deterministic in
  /// (parent seed, stream id).  Prevents cross-contamination between e.g.
  /// the catalog generator and the session generator when one is re-tuned.
  Rng fork(std::uint64_t stream_id) const;

  /// Checkpoint codec: the full generator state (4 state words + the seed
  /// that fork() derives sub-streams from).  Restoring resumes the exact
  /// output sequence.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;
};

/// Zipf(s, n) sampler over {1..n}: P(k) ~ k^-s.  Uses the rejection-inversion
/// method of Hörmann & Derflinger, O(1) per sample independent of n, which is
/// essential for catalogs of tens of millions of files.
class ZipfSampler {
 public:
  ZipfSampler(double s, std::uint64_t n);

  std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] double exponent() const { return s_; }
  [[nodiscard]] std::uint64_t domain() const { return n_; }

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  double s_;
  std::uint64_t n_;
  double accept_threshold_;  // Hörmann-Derflinger "s" constant
  double h_integral_x1_;     // hIntegral(1.5) - 1
  double h_integral_n_;      // hIntegral(n + 0.5)
};

/// Sampler over an arbitrary discrete distribution given by weights, using
/// Walker's alias method: O(n) setup, O(1) per sample.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t operator()(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace dtr
