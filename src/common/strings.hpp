// Small string utilities used across modules (tokenisation for the keyword
// index, number formatting for reports).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dtr {

/// Lowercase ASCII copy (eDonkey keyword matching is case-insensitive).
std::string to_lower(std::string_view s);

/// Split a filename into search keywords the way eDonkey servers do:
/// non-alphanumeric characters separate tokens; tokens shorter than
/// `min_len` are dropped.
std::vector<std::string> tokenize_keywords(std::string_view s,
                                           std::size_t min_len = 3);

/// Thousands-separated decimal rendering, e.g. 8867052380 -> "8 867 052 380"
/// (the paper's typography). Used by report tables.
std::string with_thousands(std::uint64_t v);

/// Compact human size, e.g. 734003200 -> "700.0 MB".
std::string human_size(std::uint64_t bytes);

}  // namespace dtr
