// Histogram / binning helpers shared by the analysis module and the benches.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace dtr {

/// Exact integer-valued histogram: value -> number of occurrences.
/// Backed by an ordered map so iteration yields sorted (value, count) pairs,
/// which is what every "distribution" figure in the paper plots.
class CountHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1) { bins_[value] += count; }

  [[nodiscard]] std::uint64_t count_of(std::uint64_t value) const {
    auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t distinct_values() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t max_value() const {
    return bins_.empty() ? 0 : bins_.rbegin()->first;
  }
  [[nodiscard]] std::uint64_t min_value() const {
    return bins_.empty() ? 0 : bins_.begin()->first;
  }
  [[nodiscard]] bool empty() const { return bins_.empty(); }

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& bins() const {
    return bins_;
  }

  /// Weighted mean of the values.
  [[nodiscard]] double mean() const;

  /// The value with the largest count (smallest such value on ties).
  [[nodiscard]] std::uint64_t mode() const;

  /// Merge another histogram into this one (for parallel reductions).
  void merge(const CountHistogram& other);

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
};

/// One bin of a logarithmically-binned view of a histogram.
struct LogBin {
  std::uint64_t lo = 0;       ///< inclusive lower edge
  std::uint64_t hi = 0;       ///< exclusive upper edge
  std::uint64_t count = 0;    ///< total occurrences in [lo, hi)
  double density = 0.0;       ///< count / (hi - lo): comparable across bins
};

/// Rebin a histogram into multiplicative bins (edge ratio `ratio` > 1).
/// This is how the paper's log-log scatter plots are usually smoothed.
std::vector<LogBin> log_bin(const CountHistogram& h, double ratio = 1.5);

}  // namespace dtr
