// Simulated time base.
//
// The whole measurement campaign runs on a virtual clock measured in
// microseconds since the start of the capture, exactly like the released
// dataset (the paper replaces absolute timestamps by time elapsed since the
// beginning of the capture as part of anonymisation).
#pragma once

#include <cstdint>

namespace dtr {

/// Microseconds since the beginning of the capture.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kWeek = 7 * kDay;

constexpr std::uint64_t to_seconds(SimTime t) { return t / kSecond; }
constexpr double to_seconds_f(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace dtr
