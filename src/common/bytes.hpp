// Byte-buffer primitives shared by every wire-format module.
//
// All eDonkey and network encodings in this project are little-endian on the
// application side (eDonkey wire format) and big-endian on the network side
// (ethernet/IP/UDP header fields), so both orders are provided explicitly.
// Readers are bounds-checked and never throw: out-of-range reads flip a
// sticky error flag that callers test once at the end of a decode, which is
// both faster and simpler to reason about than exception unwinding in the
// packet hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dtr {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Growable little/big-endian byte sink used by all encoders.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_hint) { buf_.reserve(reserve_hint); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32le(std::uint32_t v) {
    u16le(static_cast<std::uint16_t>(v));
    u16le(static_cast<std::uint16_t>(v >> 16));
  }
  void u64le(std::uint64_t v) {
    u32le(static_cast<std::uint32_t>(v));
    u32le(static_cast<std::uint32_t>(v >> 32));
  }

  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32be(std::uint32_t v) {
    u16be(static_cast<std::uint16_t>(v >> 16));
    u16be(static_cast<std::uint16_t>(v));
  }

  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  /// eDonkey length-prefixed string: u16le length then raw bytes, no NUL.
  void str16(std::string_view s) {
    u16le(static_cast<std::uint16_t>(s.size()));
    raw(s.data(), s.size());
  }

  /// Overwrite a previously written 16-bit big-endian field (checksum fixups).
  void patch_u16be(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u32le(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] BytesView view() const { return buf_; }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked cursor over immutable bytes. On overrun, returns zeroes
/// and sets a sticky failure flag; decoders check `ok()` once when done.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16le() {
    if (!ensure(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  std::uint32_t u32le() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64le() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }
  std::uint16_t u16be() {
    if (!ensure(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32be() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  /// Read `n` raw bytes; returns an empty view (and fails) on overrun.
  BytesView raw(std::size_t n) {
    if (!ensure(n)) return {};
    BytesView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  std::string str16() {
    std::uint16_t n = u16le();
    BytesView v = raw(n);
    return std::string(reinterpret_cast<const char*>(v.data()), v.size());
  }
  void skip(std::size_t n) { (void)raw(n); }

  /// Mark the decode as failed without consuming input (semantic errors).
  void fail() { ok_ = false; }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Hex dump (lowercase, no separators) — used for digests and test diagnostics.
std::string to_hex(BytesView data);

/// Parse a hex string produced by to_hex(); returns empty on malformed input.
Bytes from_hex(std::string_view hex);

}  // namespace dtr
