#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dtr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t v) { return splitmix64(v); }

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Rng::save_state(ByteWriter& out) const {
  for (std::uint64_t word : s_) out.u64le(word);
  out.u64le(seed_);
}

bool Rng::restore_state(ByteReader& in) {
  for (auto& word : s_) word = in.u64le();
  seed_ = in.u64le();
  return in.ok();
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  double u2 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::power_law_int(double alpha, std::uint64_t max_value) {
  for (;;) {
    double x = pareto(1.0, alpha - 1.0);
    auto k = static_cast<std::uint64_t>(x);
    if (k >= 1 && k <= max_value) return k;
  }
}

Rng Rng::fork(std::uint64_t stream_id) const {
  return Rng(mix64(seed_ ^ mix64(stream_id ^ 0xD1B54A32D192ED03ULL)));
}

// ---------------------------------------------------------------------------
// ZipfSampler — rejection-inversion (Hörmann & Derflinger 1996).
// ---------------------------------------------------------------------------

ZipfSampler::ZipfSampler(double s, std::uint64_t n) : s_(s), n_(n) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty domain");
  if (s <= 0.0) throw std::invalid_argument("ZipfSampler: exponent must be > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  accept_threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  double log_x = std::log(x);
  double t = (1.0 - s_) * log_x;
  // Numerically stable (exp(t) - 1) / t via expm1.
  double helper = (std::abs(t) > 1e-8) ? std::expm1(t) / t : 1.0 + t / 2.0;
  return log_x * helper;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the log1p domain
  double log1p_t = std::log1p(t);
  double helper =
      (std::abs(log1p_t) > 1e-8) ? log1p_t / std::expm1(log1p_t) : 1.0 - log1p_t / 2.0;
  return std::exp(x * helper);
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  for (;;) {
    double u = h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    double x = h_integral_inverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1)
      k = 1;
    else if (k > n_)
      k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= accept_threshold_ ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

// ---------------------------------------------------------------------------
// AliasSampler — Walker/Vose alias method.
// ---------------------------------------------------------------------------

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: no weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasSampler: zero total weight");

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    std::uint32_t s = small.back();
    small.pop_back();
    std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::operator()(Rng& rng) const {
  std::size_t column = rng.below(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace dtr
