#include "common/binning.hpp"

#include <cmath>

namespace dtr {

std::uint64_t CountHistogram::total() const {
  std::uint64_t sum = 0;
  for (const auto& [value, count] : bins_) sum += count;
  return sum;
}

double CountHistogram::mean() const {
  if (bins_.empty()) return 0.0;
  double weighted = 0.0;
  double n = 0.0;
  for (const auto& [value, count] : bins_) {
    weighted += static_cast<double>(value) * static_cast<double>(count);
    n += static_cast<double>(count);
  }
  return weighted / n;
}

std::uint64_t CountHistogram::mode() const {
  std::uint64_t best_value = 0;
  std::uint64_t best_count = 0;
  for (const auto& [value, count] : bins_) {
    if (count > best_count) {
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

void CountHistogram::merge(const CountHistogram& other) {
  for (const auto& [value, count] : other.bins_) bins_[value] += count;
}

std::vector<LogBin> log_bin(const CountHistogram& h, double ratio) {
  std::vector<LogBin> out;
  if (h.empty() || ratio <= 1.0) return out;

  std::uint64_t lo = h.min_value();
  if (lo == 0) lo = 1;  // log bins start at 1; an explicit zero bin first
  if (h.count_of(0) > 0) {
    out.push_back({0, 1, h.count_of(0), static_cast<double>(h.count_of(0))});
  }
  const std::uint64_t max = h.max_value();
  auto it = h.bins().lower_bound(lo);
  while (lo <= max) {
    auto hi_f = static_cast<std::uint64_t>(std::ceil(static_cast<double>(lo) * ratio));
    std::uint64_t hi = hi_f > lo ? hi_f : lo + 1;
    LogBin bin{lo, hi, 0, 0.0};
    while (it != h.bins().end() && it->first < hi) {
      bin.count += it->second;
      ++it;
    }
    if (bin.count > 0) {
      bin.density = static_cast<double>(bin.count) / static_cast<double>(hi - lo);
      out.push_back(bin);
    }
    lo = hi;
  }
  return out;
}

}  // namespace dtr
