#include "workload/filesize_model.hpp"

#include <algorithm>
#include <cmath>

namespace dtr::workload {

namespace {
constexpr std::uint64_t kMB = 1000ull * 1000ull;  // media sizes are decimal
}

std::vector<SizePeak> FileSizeModelConfig::default_peaks() {
  // Weights decrease away from the dominant 700 MB CD image peak;
  // jitter keeps spikes narrow but not degenerate (burning software and
  // rips differ by a few per mille).
  return {
      {700 * kMB, 0.055, 0.004},   // CD-ROM
      {350 * kMB, 0.030, 0.004},   // 1/2 CD
      {233 * kMB, 0.018, 0.004},   // 1/3 CD
      {175 * kMB, 0.012, 0.004},   // 1/4 CD
      {1400 * kMB, 0.025, 0.004},        // 2x CD
      {1'073'741'824ull, 0.040, 0.002},  // 1 GB split pieces (binary GiB:
                                         // split tools cut at 2^30 bytes)
  };
}

FileSizeModelConfig FileSizeModelConfig::defaults() {
  FileSizeModelConfig c;
  c.peaks = default_peaks();
  return c;
}

namespace {
std::vector<double> component_weights(const FileSizeModelConfig& c) {
  std::vector<double> w;
  w.push_back(c.small_weight);
  w.push_back(c.mid_weight);
  for (const auto& peak : c.peaks) w.push_back(peak.weight);
  return w;
}
}  // namespace

FileSizeModel::FileSizeModel(FileSizeModelConfig config)
    : config_(std::move(config)), component_picker_(component_weights(config_)) {}

std::uint64_t FileSizeModel::sample(Rng& rng) const {
  std::size_t component = component_picker_(rng);
  double bytes;
  if (component == 0) {
    bytes = rng.lognormal(config_.small_log_mean, config_.small_log_sigma);
  } else if (component == 1) {
    bytes = rng.lognormal(config_.mid_log_mean, config_.mid_log_sigma);
  } else {
    const SizePeak& peak = config_.peaks[component - 2];
    double center = static_cast<double>(peak.center_bytes);
    bytes = peak.jitter > 0.0
                ? center * std::exp(rng.normal(0.0, peak.jitter))
                : center;
  }
  auto v = static_cast<std::uint64_t>(bytes);
  return std::clamp(v, kMinBytes, kMaxBytes);
}

}  // namespace dtr::workload
