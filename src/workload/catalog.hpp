// Synthetic file catalog: the universe of files the client population can
// share and search for.
//
// Each file gets an MD4 fileID (hash of its synthetic identity), a name
// assembled from a Zipf-distributed token vocabulary (so the server's
// keyword index has realistic skew), a size from the FileSizeModel, a type
// correlated with size, and a Zipf popularity rank that drives both
// providing and asking (Figures 4 and 5 both show power laws).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hash/digest.hpp"
#include "workload/filesize_model.hpp"

namespace dtr::workload {

struct SyntheticFile {
  FileId id;
  std::string name;
  std::uint32_t size = 0;  // bytes (fits the protocol's u32 size tag)
  std::string type;        // "audio", "video", "doc", "pro", "image"
};

struct CatalogConfig {
  std::uint32_t file_count = 50'000;
  std::uint32_t vocabulary = 4'000;    // distinct name tokens
  double token_zipf = 1.1;             // token popularity skew
  double popularity_zipf = 0.95;       // file popularity skew (Figs 4/5)
  FileSizeModelConfig size_model = FileSizeModelConfig::defaults();
};

class FileCatalog {
 public:
  /// Deterministically generate the catalog from a seed.
  FileCatalog(const CatalogConfig& config, std::uint64_t seed);

  [[nodiscard]] const SyntheticFile& file(std::size_t i) const {
    return files_[i];
  }
  [[nodiscard]] std::size_t size() const { return files_.size(); }

  /// Draw a file index by popularity (rank-1 = most popular).  Used for
  /// both "which files do I share" and "which files do I want".
  std::size_t sample_popular(Rng& rng) const;

  /// Uniformly random file (used by scanners that probe the long tail).
  std::size_t sample_uniform(Rng& rng) const;

  [[nodiscard]] const CatalogConfig& config() const { return config_; }

 private:
  CatalogConfig config_;
  std::vector<SyntheticFile> files_;
  ZipfSampler popularity_;
  // Popularity rank -> file index; identity here (files are generated in
  // popularity order) but kept explicit for clarity.
};

}  // namespace dtr::workload
