#include "workload/behavior.hpp"

#include <algorithm>

namespace dtr::workload {

const char* client_kind_name(ClientKind k) {
  switch (k) {
    case ClientKind::kCasual:
      return "casual";
    case ClientKind::kCollector:
      return "collector";
    case ClientKind::kCapped52:
      return "capped52";
    case ClientKind::kScanner:
      return "scanner";
    case ClientKind::kPolluter:
      return "polluter";
  }
  return "?";
}

ClientPopulation::ClientPopulation(const PopulationConfig& config,
                                   std::uint64_t seed)
    : config_(config) {
  Rng rng(mix64(seed ^ 0xC11E47B07ULL));
  clients_.reserve(config_.client_count);
  for (std::uint32_t i = 0; i < config_.client_count; ++i) {
    clients_.push_back(make_profile(rng, i));
  }
}

ClientProfile ClientPopulation::make_profile(Rng& rng, std::uint32_t serial) {
  ClientProfile p;

  // Unique public IP: spread serials over the unicast space with a mixed
  // stride; uniqueness follows from mix64 being a bijection on 64 bits
  // restricted to distinct serials... it is not on 32, so combine serial
  // directly into the high bits to guarantee uniqueness.
  p.ip = (serial << 8) | static_cast<std::uint32_t>(rng.below(256));
  p.ip |= 0x02000000u;  // keep away from 0.x and low-ID-looking ranges
  p.reachable = rng.chance(config_.reachable_fraction);

  double u = rng.uniform();
  if ((u -= config_.casual_fraction) < 0) {
    p.kind = ClientKind::kCasual;
  } else if ((u -= config_.collector_fraction) < 0) {
    p.kind = ClientKind::kCollector;
  } else if ((u -= config_.capped52_fraction) < 0) {
    p.kind = ClientKind::kCapped52;
  } else if ((u -= config_.scanner_fraction) < 0) {
    p.kind = ClientKind::kScanner;
  } else {
    p.kind = ClientKind::kPolluter;
  }

  switch (p.kind) {
    case ClientKind::kCasual:
      p.shares = static_cast<std::uint32_t>(rng.power_law_int(
          config_.casual_share_alpha, config_.casual_share_max));
      p.asks = static_cast<std::uint32_t>(
          rng.power_law_int(config_.casual_ask_alpha, config_.casual_ask_max));
      break;
    case ClientKind::kCollector: {
      auto natural = static_cast<std::uint32_t>(rng.power_law_int(
          config_.collector_share_alpha, config_.collector_share_max));
      if (!config_.share_caps.empty() &&
          rng.chance(config_.share_cap_adoption)) {
        std::uint32_t cap = config_.share_caps[rng.below(
            config_.share_caps.size())];
        natural = std::min(natural, cap);
      }
      p.shares = natural;
      p.asks = static_cast<std::uint32_t>(
          rng.power_law_int(config_.casual_ask_alpha, config_.casual_ask_max));
      break;
    }
    case ClientKind::kCapped52:
      p.shares = static_cast<std::uint32_t>(rng.power_law_int(
          config_.casual_share_alpha, config_.casual_share_max));
      p.asks = config_.capped_ask_value;
      break;
    case ClientKind::kScanner:
      p.shares = 1 + static_cast<std::uint32_t>(rng.below(5));
      p.asks = static_cast<std::uint32_t>(rng.power_law_int(
          config_.scanner_ask_alpha, config_.scanner_ask_max));
      break;
    case ClientKind::kPolluter:
      p.shares = 0;  // polluters announce forged IDs, not catalog files
      p.forged_files = config_.polluter_forged_files_min +
                       static_cast<std::uint32_t>(rng.below(
                           config_.polluter_forged_files_max -
                           config_.polluter_forged_files_min + 1));
      p.asks = 1 + static_cast<std::uint32_t>(rng.below(20));
      break;
  }

  p.sessions = 1 + static_cast<std::uint32_t>(
                       rng.exponential(1.0 / config_.mean_sessions));
  return p;
}

std::vector<std::size_t> ClientPopulation::kind_counts() const {
  std::vector<std::size_t> counts(5, 0);
  for (const auto& c : clients_)
    ++counts[static_cast<std::size_t>(c.kind)];
  return counts;
}

FileId make_forged_file_id(Rng& rng) {
  FileId id;
  for (auto& b : id.bytes) b = static_cast<std::uint8_t>(rng.below(256));
  // Pollution concentrates on two prefixes: most tools zero the first
  // word; a variant sets it to a small constant.  With first-two-byte
  // bucketing these land in buckets 0 (0x0000) and 256 (0x0100).
  if (rng.chance(0.6)) {
    id.bytes[0] = 0x00;
    id.bytes[1] = 0x00;
  } else {
    id.bytes[0] = 0x01;
    id.bytes[1] = 0x00;
  }
  return id;
}

}  // namespace dtr::workload
