#include "workload/catalog.hpp"

#include "common/bytes.hpp"
#include "hash/md4.hpp"

namespace dtr::workload {

namespace {

struct TypeSpec {
  const char* type;
  const char* ext;
};

/// Size thresholds map a sampled size to a plausible content type.
TypeSpec type_for_size(std::uint64_t bytes, Rng& rng) {
  if (bytes < 20ull * 1000 * 1000) {
    return rng.chance(0.85) ? TypeSpec{"audio", "mp3"} : TypeSpec{"doc", "pdf"};
  }
  if (bytes < 120ull * 1000 * 1000) {
    return rng.chance(0.5) ? TypeSpec{"video", "avi"} : TypeSpec{"pro", "zip"};
  }
  return rng.chance(0.9) ? TypeSpec{"video", "avi"} : TypeSpec{"image", "iso"};
}

}  // namespace

FileCatalog::FileCatalog(const CatalogConfig& config, std::uint64_t seed)
    : config_(config),
      popularity_(config.popularity_zipf, config.file_count) {
  Rng rng(mix64(seed ^ 0xF11EC47A106ULL));
  ZipfSampler token_sampler(config_.token_zipf, config_.vocabulary);

  files_.reserve(config_.file_count);
  FileSizeModel size_model(config_.size_model);
  for (std::uint32_t i = 0; i < config_.file_count; ++i) {
    SyntheticFile f;
    std::uint64_t size = size_model.sample(rng);
    f.size = static_cast<std::uint32_t>(size);
    TypeSpec spec = type_for_size(size, rng);
    f.type = spec.type;

    // Name: 2-4 vocabulary tokens + serial + extension.  The serial keeps
    // names unique so provider-side dedup cannot collapse distinct files.
    std::size_t tokens = 2 + rng.below(3);
    std::string name;
    for (std::size_t t = 0; t < tokens; ++t) {
      if (t > 0) name += ' ';
      name += "w" + std::to_string(token_sampler(rng));
    }
    name += " f" + std::to_string(i) + "." + spec.ext;
    f.name = std::move(name);

    // fileID: MD4 of the synthetic identity — honest protocol behaviour
    // (forged IDs are injected by polluter clients, not by the catalog).
    f.id = Md4::digest(f.name);
    files_.push_back(std::move(f));
  }
}

std::size_t FileCatalog::sample_popular(Rng& rng) const {
  return static_cast<std::size_t>(popularity_(rng) - 1);
}

std::size_t FileCatalog::sample_uniform(Rng& rng) const {
  return static_cast<std::size_t>(rng.below(files_.size()));
}

}  // namespace dtr::workload
