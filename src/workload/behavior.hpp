// Client behaviour profiles.
//
// The paper's client-side findings that this module is calibrated to:
//   * Figure 6 — files provided per client: heavy-tailed but NOT a power
//     law, with "an unexpected large number of clients providing a few
//     thousands of files", attributed to client-software limits (maximum
//     files per shared directory).  We model that with share-cap plateaus.
//   * Figure 7 — files asked per client: several regimes plus "a clear peak
//     for the number of peers asking for 52 files", attributed to a query
//     cap in a widely used client.  We model a popular client version that
//     stops at exactly 52 distinct files.
//   * §2.4 — forged fileIDs concentrated on a few prefixes ("a majority of
//     fileID start with 0 or 256"), i.e. polluters [12].  A small polluter
//     fraction announces forged IDs with first bytes 0x00 0x00 or 0x01 0x00.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hash/digest.hpp"
#include "proto/opcodes.hpp"

namespace dtr::workload {

/// What kind of client software/usage pattern a client exhibits.
enum class ClientKind : std::uint8_t {
  kCasual,      ///< few shares, few searches
  kCollector,   ///< shares a lot (may hit the directory cap)
  kCapped52,    ///< popular client build: asks for exactly 52 distinct files
  kScanner,     ///< crawls the network asking about very many files
  kPolluter,    ///< announces forged fileIDs (index pollution)
};

const char* client_kind_name(ClientKind k);

struct PopulationConfig {
  std::uint32_t client_count = 10'000;
  double casual_fraction = 0.780;
  double collector_fraction = 0.120;
  double capped52_fraction = 0.070;
  double scanner_fraction = 0.015;
  double polluter_fraction = 0.015;

  double reachable_fraction = 0.72;  // high-ID clients

  // Shares (files provided), per kind.
  double casual_share_alpha = 2.05;     // power-law exponent
  std::uint32_t casual_share_max = 300;
  // Collector tail heavy enough that a visible fraction of collectors
  // exceeds the software caps — Figure 6's "unexpected large number of
  // clients providing a few thousands of files" needs them.
  double collector_share_alpha = 1.30;
  std::uint32_t collector_share_max = 20'000;
  // Directory caps that produce Fig 6's plateau bump.  A collector whose
  // natural share count exceeds a cap is clamped to it.
  std::vector<std::uint32_t> share_caps = {2'000, 3'000, 5'000};
  double share_cap_adoption = 0.75;  // fraction of collectors running capped software

  // Asks (distinct files asked for), per kind.
  double casual_ask_alpha = 1.9;
  std::uint32_t casual_ask_max = 2'000;
  std::uint32_t capped_ask_value = 52;
  double scanner_ask_alpha = 1.25;
  std::uint32_t scanner_ask_max = 100'000;

  // Polluters.
  std::uint32_t polluter_forged_files_min = 500;
  std::uint32_t polluter_forged_files_max = 4'000;

  // Sessions.
  double mean_sessions = 2.2;            // sessions per client over the campaign
  double search_per_ask = 0.9;           // P(a wanted file triggers a keyword search)
  double stat_ping_per_session = 1.0;    // management pings per session

  // Communities of interest (paper §4; Guillaume et al., IPTPS 2005 found
  // strong clustering in real eDonkey exchanges).  When taste_groups > 1,
  // each client belongs to one taste group and biases a fraction
  // taste_affinity of its draws (shares and asks) into the group's slice of
  // the catalog.  0 disables the structure (the default keeps all figure
  // calibrations unchanged; the interest-graph analysis then measures no
  // lift, which is itself the correct null result).
  std::uint32_t taste_groups = 0;
  double taste_affinity = 0.75;
};

/// Immutable per-client plan, generated deterministically from the seed.
struct ClientProfile {
  proto::ClientId ip = 0;          // unique public IPv4
  bool reachable = true;           // high ID vs low ID
  ClientKind kind = ClientKind::kCasual;
  std::uint32_t shares = 0;        // # catalog files provided
  std::uint32_t asks = 0;          // # distinct files asked for
  std::uint32_t forged_files = 0;  // polluters only
  std::uint32_t sessions = 1;
};

class ClientPopulation {
 public:
  ClientPopulation(const PopulationConfig& config, std::uint64_t seed);

  [[nodiscard]] const ClientProfile& client(std::size_t i) const {
    return clients_[i];
  }
  [[nodiscard]] std::size_t size() const { return clients_.size(); }
  [[nodiscard]] const PopulationConfig& config() const { return config_; }

  /// Summary counts by kind (for reports/tests).
  [[nodiscard]] std::vector<std::size_t> kind_counts() const;

 private:
  ClientProfile make_profile(Rng& rng, std::uint32_t serial);

  PopulationConfig config_;
  std::vector<ClientProfile> clients_;
};

/// Forged fileID generator: IDs whose two first bytes are 0x00 0x00 or
/// 0x01 0x00, so that first-two-byte bucketing maps them to anonymisation
/// arrays 0 and 256 — the paper's observed pathology.
FileId make_forged_file_id(Rng& rng);

}  // namespace dtr::workload
