// File-size model (reproduces the shape of the paper's Figure 8).
//
// The paper observes that exchanged-file sizes are strongly tied to storage
// media: "many small files (probably music files), and clear peaks at
// 700 MB (typical size of a CD-ROM), and at fractions (1/2, 1/3, 1/4) or
// multiples (2x) of this value.  The peak at 1 GB may indicate that users
// split very large files (DVD images) into 1 GB pieces."  The model is a
// mixture of
//   * a lognormal bulk of small audio files (a few MB),
//   * a lognormal mid-range bulk (other content),
//   * narrow spikes at 175/233/350/700/1400 MB and 1 GB.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dtr::workload {

/// One spike of the mixture.
struct SizePeak {
  std::uint64_t center_bytes = 0;
  double weight = 0.0;       // mixture weight
  double jitter = 0.0;       // relative sigma of the spike (0 = exact)
};

struct FileSizeModelConfig {
  double small_weight = 0.62;       // music-file bulk
  double small_log_mean = 15.25;    // ln(bytes): e^15.25 ~ 4.2 MB
  double small_log_sigma = 0.55;
  double mid_weight = 0.20;         // everything else, broad
  double mid_log_mean = 18.2;       // ~ 80 MB
  double mid_log_sigma = 1.1;
  std::vector<SizePeak> peaks;      // defaults in default_peaks()

  static std::vector<SizePeak> default_peaks();
  static FileSizeModelConfig defaults();
};

class FileSizeModel {
 public:
  explicit FileSizeModel(FileSizeModelConfig config =
                             FileSizeModelConfig::defaults());

  /// Sample a file size in bytes (clamped to [1 KB, 4 GB) so it fits the
  /// 32-bit size field of the protocol).
  std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] const FileSizeModelConfig& config() const { return config_; }

  static constexpr std::uint64_t kMinBytes = 1024;
  static constexpr std::uint64_t kMaxBytes = 0xFFFFFFFFull;

 private:
  FileSizeModelConfig config_;
  AliasSampler component_picker_;
};

}  // namespace dtr::workload
