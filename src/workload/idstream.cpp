#include "workload/idstream.hpp"

namespace dtr::workload {

FileIdStream::FileIdStream(const FileIdStreamConfig& config)
    : config_(config),
      rng_(mix64(config.seed ^ 0xF11E57EAULL)),
      rank_sampler_(config.zipf_skew, config.distinct_ids) {}

FileId FileIdStream::universe_id(std::uint64_t index) const {
  // Derive 128 pseudo-random bits from (seed, index).
  std::uint64_t s = config_.seed * 0x9E3779B97F4A7C15ULL + index;
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  FileId id;
  for (int i = 0; i < 8; ++i) {
    id.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(a >> (8 * i));
    id.bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(b >> (8 * i));
  }
  // Forged IDs occupy the front of the universe (they are also the most
  // frequently re-announced, which matches polluters hammering the index).
  auto forged_count =
      static_cast<std::uint64_t>(config_.forged_fraction *
                                 static_cast<double>(config_.distinct_ids));
  if (index < forged_count) {
    // Same two prefixes as make_forged_file_id, same 60/40 split.
    if (index % 5 < 3) {
      id.bytes[0] = 0x00;
      id.bytes[1] = 0x00;
    } else {
      id.bytes[0] = 0x01;
      id.bytes[1] = 0x00;
    }
  }
  return id;
}

FileId FileIdStream::next() {
  std::uint64_t rank = rank_sampler_(rng_) - 1;
  return universe_id(rank);
}

ClientIdStream::ClientIdStream(const ClientIdStreamConfig& config)
    : config_(config),
      rng_(mix64(config.seed ^ 0xC11E57EAULL)),
      rank_sampler_(config.zipf_skew, config.distinct_clients) {}

proto::ClientId ClientIdStream::universe_id(std::uint64_t index) const {
  // A bijective-ish spread of the index over the 32-bit space (collisions
  // are possible but harmless: they only merge two stream elements).
  std::uint64_t s = config_.seed ^ (index * 0xD1B54A32D192ED03ULL);
  return static_cast<proto::ClientId>(splitmix64(s) >> 32);
}

proto::ClientId ClientIdStream::next() {
  std::uint64_t rank = rank_sampler_(rng_) - 1;
  return universe_id(rank);
}

}  // namespace dtr::workload
