// Synthetic identifier streams for the anonymisation-structure experiments
// (Figure 3 and the §2.4 ablation benches).
//
// These streams replay what the anonymiser sees — a long sequence of
// clientIDs / fileIDs with realistic repetition (the paper performs
// "several billions" of searches but only millions of insertions) — without
// paying for a full campaign simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hash/digest.hpp"
#include "proto/opcodes.hpp"

namespace dtr::workload {

struct FileIdStreamConfig {
  std::uint64_t distinct_ids = 1'000'000;   // universe size (insertions)
  double zipf_skew = 0.9;                   // repetition pattern of lookups
  double forged_fraction = 0.35;            // share of *distinct* IDs forged
                                            // ("a majority of fileID start
                                            // with 0 or 256" — §2.4 observed
                                            // even higher shares)
  std::uint64_t seed = 1;
};

/// Generates a stream of fileIDs over a fixed universe: each draw picks a
/// universe element by Zipf rank, so early elements repeat heavily.  The
/// universe mixes honest (uniform MD4-like) and forged IDs.
class FileIdStream {
 public:
  explicit FileIdStream(const FileIdStreamConfig& config);

  /// The i-th distinct ID of the universe (deterministic, O(1), no storage
  /// of the whole universe: IDs are derived from the seed and index).
  [[nodiscard]] FileId universe_id(std::uint64_t index) const;

  /// Next stream element.
  FileId next();

  [[nodiscard]] const FileIdStreamConfig& config() const { return config_; }

  /// Checkpoint codec: only the RNG cursor moves after construction (the
  /// universe and the Zipf tables are derived from the config).
  void save_state(ByteWriter& out) const { rng_.save_state(out); }
  bool restore_state(ByteReader& in) { return rng_.restore_state(in); }

 private:
  FileIdStreamConfig config_;
  Rng rng_;
  ZipfSampler rank_sampler_;
};

struct ClientIdStreamConfig {
  std::uint64_t distinct_clients = 1'000'000;
  double zipf_skew = 0.8;
  std::uint64_t seed = 1;
};

/// Same idea for 32-bit clientIDs.
class ClientIdStream {
 public:
  explicit ClientIdStream(const ClientIdStreamConfig& config);

  [[nodiscard]] proto::ClientId universe_id(std::uint64_t index) const;
  proto::ClientId next();

  /// Checkpoint codec (see FileIdStream::save_state).
  void save_state(ByteWriter& out) const { rng_.save_state(out); }
  bool restore_state(ByteReader& in) { return rng_.restore_state(in); }

 private:
  ClientIdStreamConfig config_;
  Rng rng_;
  ZipfSampler rank_sampler_;
};

}  // namespace dtr::workload
