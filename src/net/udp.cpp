#include "net/udp.hpp"

#include "net/ipv4.hpp"

namespace dtr::net {

namespace {

std::uint16_t udp_checksum(BytesView udp_bytes, std::uint32_t src_ip,
                           std::uint32_t dst_ip) {
  ByteWriter pseudo(12 + udp_bytes.size());
  pseudo.u32be(src_ip);
  pseudo.u32be(dst_ip);
  pseudo.u8(0);
  pseudo.u8(kProtocolUdp);
  pseudo.u16be(static_cast<std::uint16_t>(udp_bytes.size()));
  pseudo.raw(udp_bytes);
  std::uint16_t sum = internet_checksum(pseudo.view());
  // RFC 768: a computed checksum of zero is transmitted as all ones.
  return sum == 0 ? 0xFFFF : sum;
}

}  // namespace

Bytes encode_udp(const UdpDatagram& d, std::uint32_t src_ip,
                 std::uint32_t dst_ip) {
  ByteWriter w(kUdpHeaderSize + d.payload.size());
  w.u16be(d.src_port);
  w.u16be(d.dst_port);
  w.u16be(static_cast<std::uint16_t>(kUdpHeaderSize + d.payload.size()));
  w.u16be(0);  // checksum placeholder
  w.raw(d.payload);
  std::uint16_t csum = udp_checksum(w.view(), src_ip, dst_ip);
  w.patch_u16be(6, csum);
  return std::move(w).take();
}

std::optional<UdpDatagram> decode_udp(BytesView data, std::uint32_t src_ip,
                                      std::uint32_t dst_ip) {
  if (data.size() < kUdpHeaderSize) return std::nullopt;
  ByteReader r(data);
  UdpDatagram d;
  d.src_port = r.u16be();
  d.dst_port = r.u16be();
  std::uint16_t length = r.u16be();
  std::uint16_t wire_csum = r.u16be();
  if (length < kUdpHeaderSize || length > data.size()) return std::nullopt;

  if (wire_csum != 0) {
    // Verify by summing pseudo-header + datagram with the checksum field
    // included: a valid datagram folds to zero (ones-complement property).
    ByteWriter pseudo(12 + length);
    pseudo.u32be(src_ip);
    pseudo.u32be(dst_ip);
    pseudo.u8(0);
    pseudo.u8(kProtocolUdp);
    pseudo.u16be(length);
    pseudo.raw(data.subspan(0, length));
    if (internet_checksum(pseudo.view()) != 0) return std::nullopt;
  }
  d.payload.assign(data.begin() + kUdpHeaderSize,
                   data.begin() + length);
  return d;
}

}  // namespace dtr::net
