// Ethernet II framing.
//
// The capture point in the paper is an ethernet mirror of the server's NIC;
// the pcap stream therefore carries ethernet frames.  Only EtherType 0x0800
// (IPv4) matters for this reproduction, but the decoder recognises and
// counts other EtherTypes rather than failing on them.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace dtr::net {

using MacAddress = std::array<std::uint8_t, 6>;

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeArp = 0x0806;
constexpr std::size_t kEthernetHeaderSize = 14;

struct EthernetFrame {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ether_type = kEtherTypeIpv4;
  Bytes payload;
};

/// Serialize header + payload (no FCS: pcap captures exclude it).
Bytes encode_ethernet(const EthernetFrame& f);

/// Returns nullopt when the buffer is shorter than an ethernet header.
std::optional<EthernetFrame> decode_ethernet(BytesView data);

}  // namespace dtr::net
