// UDP datagram encode/decode (RFC 768), including the pseudo-header
// checksum.  The paper's dataset is UDP-only: "we therefore focus on udp
// traffic only, which constitutes about half of the captured traffic" (§2.2).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace dtr::net {

constexpr std::size_t kUdpHeaderSize = 8;

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;
};

/// Serialize with the checksum computed over the IPv4 pseudo-header.
Bytes encode_udp(const UdpDatagram& d, std::uint32_t src_ip,
                 std::uint32_t dst_ip);

/// Decode and verify: returns nullopt on short input, length mismatch or
/// bad checksum (a zero wire checksum means "not computed" and is accepted,
/// as RFC 768 allows).
std::optional<UdpDatagram> decode_udp(BytesView data, std::uint32_t src_ip,
                                      std::uint32_t dst_ip);

}  // namespace dtr::net
