#include "net/ipv4.hpp"

namespace dtr::net {

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes encode_ipv4(const Ipv4Packet& p) {
  ByteWriter w(kIpv4HeaderSize + p.payload.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // DSCP/ECN
  w.u16be(static_cast<std::uint16_t>(kIpv4HeaderSize + p.payload.size()));
  w.u16be(p.identification);
  std::uint16_t flags_frag =
      static_cast<std::uint16_t>((p.dont_fragment ? 0x4000 : 0) |
                                 (p.more_fragments ? 0x2000 : 0) |
                                 (p.fragment_offset & 0x1FFF));
  w.u16be(flags_frag);
  w.u8(p.ttl);
  w.u8(p.protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(p.src);
  w.u32be(p.dst);
  std::uint16_t csum = internet_checksum(w.view().subspan(0, kIpv4HeaderSize));
  w.patch_u16be(10, csum);
  w.raw(p.payload);
  return std::move(w).take();
}

std::optional<Ipv4Packet> decode_ipv4(BytesView data) {
  if (data.size() < kIpv4HeaderSize) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(data[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderSize || data.size() < ihl) return std::nullopt;
  if (internet_checksum(data.subspan(0, ihl)) != 0) return std::nullopt;

  ByteReader r(data);
  r.skip(2);
  std::uint16_t total_length = r.u16be();
  if (total_length < ihl || total_length > data.size()) return std::nullopt;

  Ipv4Packet p;
  p.identification = r.u16be();
  std::uint16_t flags_frag = r.u16be();
  p.dont_fragment = (flags_frag & 0x4000) != 0;
  p.more_fragments = (flags_frag & 0x2000) != 0;
  p.fragment_offset = flags_frag & 0x1FFF;
  p.ttl = r.u8();
  p.protocol = r.u8();
  r.skip(2 + 4 + 4);  // checksum already verified; re-read addresses below
  ByteReader addr(data.subspan(12, 8));
  p.src = addr.u32be();
  p.dst = addr.u32be();
  p.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(ihl),
                   data.begin() + total_length);
  return p;
}

std::vector<Ipv4Packet> fragment_ipv4(const Ipv4Packet& p, std::size_t mtu) {
  std::vector<Ipv4Packet> out;
  const std::size_t max_payload = mtu - kIpv4HeaderSize;
  if (p.payload.size() <= max_payload) {
    out.push_back(p);
    return out;
  }
  // Fragment payload sizes must be multiples of 8 except the last.
  const std::size_t chunk = max_payload & ~std::size_t{7};
  std::size_t offset = 0;
  while (offset < p.payload.size()) {
    std::size_t n = std::min(chunk, p.payload.size() - offset);
    Ipv4Packet frag = p;
    frag.payload.assign(p.payload.begin() + static_cast<std::ptrdiff_t>(offset),
                        p.payload.begin() +
                            static_cast<std::ptrdiff_t>(offset + n));
    frag.fragment_offset = static_cast<std::uint16_t>(offset / 8);
    frag.more_fragments = (offset + n) < p.payload.size();
    out.push_back(std::move(frag));
    offset += n;
  }
  return out;
}

std::optional<Ipv4Packet> Ipv4Reassembler::push(const Ipv4Packet& p,
                                                SimTime now) {
  if (!p.is_fragment()) return p;
  ++stats_.fragments_seen;
  obs::inc(metrics_.fragments);

  Key key{p.src, p.dst, p.identification, p.protocol};
  Partial& partial = pending_[key];
  if (partial.pieces.empty()) {
    partial.first_seen = now;
    partial.header_template = p;
    partial.header_template.payload.clear();
    partial.header_template.more_fragments = false;
    partial.header_template.fragment_offset = 0;
  }

  const std::uint32_t offset = static_cast<std::uint32_t>(p.fragment_offset) * 8;
  auto [it, inserted] = partial.pieces.emplace(offset, p.payload);
  if (!inserted) {
    ++stats_.overlapping;
    obs::inc(metrics_.overlapping);
    DTR_LOG_WARN(log_, "reassembly", now,
                 "overlapping fragment dropped (id " << p.identification
                                                     << ", offset " << offset
                                                     << ")");
    return std::nullopt;
  }
  if (!p.more_fragments) {
    partial.total_size = offset + static_cast<std::uint32_t>(p.payload.size());
  }
  auto whole = try_complete(key, partial);
  obs::set(metrics_.pending, static_cast<std::int64_t>(pending_.size()));
  return whole;
}

std::optional<Ipv4Packet> Ipv4Reassembler::try_complete(const Key& key,
                                                        Partial& partial) {
  if (!partial.total_size) return std::nullopt;
  std::uint32_t cursor = 0;
  for (const auto& [offset, piece] : partial.pieces) {
    if (offset != cursor) return std::nullopt;  // hole (or overlap)
    cursor += static_cast<std::uint32_t>(piece.size());
  }
  if (cursor != *partial.total_size) return std::nullopt;

  Ipv4Packet whole = partial.header_template;
  whole.payload.reserve(cursor);
  for (const auto& [offset, piece] : partial.pieces) {
    whole.payload.insert(whole.payload.end(), piece.begin(), piece.end());
  }
  pending_.erase(key);
  ++stats_.reassembled;
  obs::inc(metrics_.reassembled);
  return whole;
}

void Ipv4Reassembler::expire(SimTime now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_seen > timeout_) {
      obs::record(flight_, obs::FlightEvent::kReassemblyExpired, now,
                  it->first.id, it->second.pieces.size());
      DTR_LOG_WARN(log_, "reassembly", now,
                   "expired partial datagram (id "
                       << it->first.id << ", " << it->second.pieces.size()
                       << " fragments held)");
      it = pending_.erase(it);
      ++stats_.expired;
      obs::inc(metrics_.expired);
    } else {
      ++it;
    }
  }
  obs::set(metrics_.pending, static_cast<std::int64_t>(pending_.size()));
}

void Ipv4Reassembler::save_state(ByteWriter& out) const {
  out.u64le(stats_.fragments_seen);
  out.u64le(stats_.reassembled);
  out.u64le(stats_.expired);
  out.u64le(stats_.overlapping);
  out.u64le(pending_.size());
  for (const auto& [key, partial] : pending_) {
    out.u32le(key.src);
    out.u32le(key.dst);
    out.u16le(key.id);
    out.u8(key.protocol);
    out.u64le(partial.first_seen);
    out.u8(partial.total_size.has_value() ? 1 : 0);
    out.u32le(partial.total_size.value_or(0));
    const Ipv4Packet& h = partial.header_template;
    out.u8(h.ttl);
    out.u8(h.protocol);
    out.u32le(h.src);
    out.u32le(h.dst);
    out.u16le(h.identification);
    out.u8(static_cast<std::uint8_t>((h.dont_fragment ? 1 : 0) |
                                     (h.more_fragments ? 2 : 0)));
    out.u16le(h.fragment_offset);
    out.u64le(partial.pieces.size());
    for (const auto& [offset, piece] : partial.pieces) {
      out.u32le(offset);
      out.u64le(piece.size());
      out.raw(piece);
    }
  }
}

bool Ipv4Reassembler::restore_state(ByteReader& in) {
  stats_.fragments_seen = in.u64le();
  stats_.reassembled = in.u64le();
  stats_.expired = in.u64le();
  stats_.overlapping = in.u64le();
  pending_.clear();
  const std::uint64_t entries = in.u64le();
  if (entries > in.remaining() / 32) return false;
  for (std::uint64_t i = 0; i < entries; ++i) {
    Key key{};
    key.src = in.u32le();
    key.dst = in.u32le();
    key.id = in.u16le();
    key.protocol = in.u8();
    Partial partial;
    partial.first_seen = in.u64le();
    const bool has_total = in.u8() != 0;
    const std::uint32_t total = in.u32le();
    if (has_total) partial.total_size = total;
    Ipv4Packet& h = partial.header_template;
    h.ttl = in.u8();
    h.protocol = in.u8();
    h.src = in.u32le();
    h.dst = in.u32le();
    h.identification = in.u16le();
    const std::uint8_t flags = in.u8();
    h.dont_fragment = (flags & 1) != 0;
    h.more_fragments = (flags & 2) != 0;
    h.fragment_offset = in.u16le();
    const std::uint64_t pieces = in.u64le();
    if (pieces > in.remaining() / 12) return false;
    for (std::uint64_t j = 0; j < pieces; ++j) {
      const std::uint32_t offset = in.u32le();
      const std::uint64_t len = in.u64le();
      if (len > in.remaining()) return false;
      BytesView piece = in.raw(static_cast<std::size_t>(len));
      if (!in.ok()) return false;
      if (!partial.pieces
               .emplace(offset, Bytes(piece.begin(), piece.end()))
               .second) {
        return false;
      }
    }
    if (!pending_.emplace(key, std::move(partial)).second) return false;
  }
  return in.ok();
}

void Ipv4Reassembler::bind_metrics(obs::Registry& registry) {
  metrics_.fragments = &registry.counter("net.reassembly.fragments");
  metrics_.reassembled = &registry.counter("net.reassembly.reassembled");
  metrics_.expired = &registry.counter("net.reassembly.expired");
  metrics_.overlapping = &registry.counter("net.reassembly.overlapping");
  metrics_.pending = &registry.gauge("net.reassembly.pending");
}

}  // namespace dtr::net
