#include "net/ipv4.hpp"

namespace dtr::net {

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes encode_ipv4(const Ipv4Packet& p) {
  ByteWriter w(kIpv4HeaderSize + p.payload.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // DSCP/ECN
  w.u16be(static_cast<std::uint16_t>(kIpv4HeaderSize + p.payload.size()));
  w.u16be(p.identification);
  std::uint16_t flags_frag =
      static_cast<std::uint16_t>((p.dont_fragment ? 0x4000 : 0) |
                                 (p.more_fragments ? 0x2000 : 0) |
                                 (p.fragment_offset & 0x1FFF));
  w.u16be(flags_frag);
  w.u8(p.ttl);
  w.u8(p.protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(p.src);
  w.u32be(p.dst);
  std::uint16_t csum = internet_checksum(w.view().subspan(0, kIpv4HeaderSize));
  w.patch_u16be(10, csum);
  w.raw(p.payload);
  return std::move(w).take();
}

std::optional<Ipv4Packet> decode_ipv4(BytesView data) {
  if (data.size() < kIpv4HeaderSize) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(data[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderSize || data.size() < ihl) return std::nullopt;
  if (internet_checksum(data.subspan(0, ihl)) != 0) return std::nullopt;

  ByteReader r(data);
  r.skip(2);
  std::uint16_t total_length = r.u16be();
  if (total_length < ihl || total_length > data.size()) return std::nullopt;

  Ipv4Packet p;
  p.identification = r.u16be();
  std::uint16_t flags_frag = r.u16be();
  p.dont_fragment = (flags_frag & 0x4000) != 0;
  p.more_fragments = (flags_frag & 0x2000) != 0;
  p.fragment_offset = flags_frag & 0x1FFF;
  p.ttl = r.u8();
  p.protocol = r.u8();
  r.skip(2 + 4 + 4);  // checksum already verified; re-read addresses below
  ByteReader addr(data.subspan(12, 8));
  p.src = addr.u32be();
  p.dst = addr.u32be();
  p.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(ihl),
                   data.begin() + total_length);
  return p;
}

std::vector<Ipv4Packet> fragment_ipv4(const Ipv4Packet& p, std::size_t mtu) {
  std::vector<Ipv4Packet> out;
  const std::size_t max_payload = mtu - kIpv4HeaderSize;
  if (p.payload.size() <= max_payload) {
    out.push_back(p);
    return out;
  }
  // Fragment payload sizes must be multiples of 8 except the last.
  const std::size_t chunk = max_payload & ~std::size_t{7};
  std::size_t offset = 0;
  while (offset < p.payload.size()) {
    std::size_t n = std::min(chunk, p.payload.size() - offset);
    Ipv4Packet frag = p;
    frag.payload.assign(p.payload.begin() + static_cast<std::ptrdiff_t>(offset),
                        p.payload.begin() +
                            static_cast<std::ptrdiff_t>(offset + n));
    frag.fragment_offset = static_cast<std::uint16_t>(offset / 8);
    frag.more_fragments = (offset + n) < p.payload.size();
    out.push_back(std::move(frag));
    offset += n;
  }
  return out;
}

std::optional<Ipv4Packet> Ipv4Reassembler::push(const Ipv4Packet& p,
                                                SimTime now) {
  if (!p.is_fragment()) return p;
  ++stats_.fragments_seen;
  obs::inc(metrics_.fragments);

  Key key{p.src, p.dst, p.identification, p.protocol};
  Partial& partial = pending_[key];
  if (partial.pieces.empty()) {
    partial.first_seen = now;
    partial.header_template = p;
    partial.header_template.payload.clear();
    partial.header_template.more_fragments = false;
    partial.header_template.fragment_offset = 0;
  }

  const std::uint32_t offset = static_cast<std::uint32_t>(p.fragment_offset) * 8;
  auto [it, inserted] = partial.pieces.emplace(offset, p.payload);
  if (!inserted) {
    ++stats_.overlapping;
    obs::inc(metrics_.overlapping);
    DTR_LOG_WARN(log_, "reassembly", now,
                 "overlapping fragment dropped (id " << p.identification
                                                     << ", offset " << offset
                                                     << ")");
    return std::nullopt;
  }
  if (!p.more_fragments) {
    partial.total_size = offset + static_cast<std::uint32_t>(p.payload.size());
  }
  auto whole = try_complete(key, partial);
  obs::set(metrics_.pending, static_cast<std::int64_t>(pending_.size()));
  return whole;
}

std::optional<Ipv4Packet> Ipv4Reassembler::try_complete(const Key& key,
                                                        Partial& partial) {
  if (!partial.total_size) return std::nullopt;
  std::uint32_t cursor = 0;
  for (const auto& [offset, piece] : partial.pieces) {
    if (offset != cursor) return std::nullopt;  // hole (or overlap)
    cursor += static_cast<std::uint32_t>(piece.size());
  }
  if (cursor != *partial.total_size) return std::nullopt;

  Ipv4Packet whole = partial.header_template;
  whole.payload.reserve(cursor);
  for (const auto& [offset, piece] : partial.pieces) {
    whole.payload.insert(whole.payload.end(), piece.begin(), piece.end());
  }
  pending_.erase(key);
  ++stats_.reassembled;
  obs::inc(metrics_.reassembled);
  return whole;
}

void Ipv4Reassembler::expire(SimTime now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_seen > timeout_) {
      obs::record(flight_, obs::FlightEvent::kReassemblyExpired, now,
                  it->first.id, it->second.pieces.size());
      DTR_LOG_WARN(log_, "reassembly", now,
                   "expired partial datagram (id "
                       << it->first.id << ", " << it->second.pieces.size()
                       << " fragments held)");
      it = pending_.erase(it);
      ++stats_.expired;
      obs::inc(metrics_.expired);
    } else {
      ++it;
    }
  }
  obs::set(metrics_.pending, static_cast<std::int64_t>(pending_.size()));
}

void Ipv4Reassembler::bind_metrics(obs::Registry& registry) {
  metrics_.fragments = &registry.counter("net.reassembly.fragments");
  metrics_.reassembled = &registry.counter("net.reassembly.reassembled");
  metrics_.expired = &registry.counter("net.reassembly.expired");
  metrics_.overlapping = &registry.counter("net.reassembly.overlapping");
  metrics_.pending = &registry.gauge("net.reassembly.pending");
}

}  // namespace dtr::net
