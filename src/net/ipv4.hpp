// IPv4 header encode/decode, fragmentation and reassembly.
//
// The paper's decoder re-assembles traffic at IP level (§2.3: among 14.1 B
// UDP packets, 2 981 were fragments).  We implement RFC 791 fragmentation on
// the sending side (a handful of announce datagrams exceed the MTU) and a
// bounded reassembly cache on the decoding side.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace dtr::net {

constexpr std::uint8_t kProtocolUdp = 17;
constexpr std::size_t kIpv4HeaderSize = 20;  // no options in this traffic
constexpr std::size_t kDefaultMtu = 1500;

struct Ipv4Packet {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtocolUdp;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units, as on the wire
  Bytes payload;

  [[nodiscard]] bool is_fragment() const {
    return more_fragments || fragment_offset != 0;
  }
};

/// RFC 1071 ones-complement checksum over a byte range.
std::uint16_t internet_checksum(BytesView data);

/// Serialize one (possibly fragment) packet; computes the header checksum.
Bytes encode_ipv4(const Ipv4Packet& p);

/// Header-validating decode: returns nullopt on short input, bad version,
/// bad header length or bad checksum.
std::optional<Ipv4Packet> decode_ipv4(BytesView data);

/// Split an oversized packet into MTU-sized fragments (RFC 791 §3.2).
/// Packets that already fit are returned unchanged as a single element.
std::vector<Ipv4Packet> fragment_ipv4(const Ipv4Packet& p,
                                      std::size_t mtu = kDefaultMtu);

/// Reassembly cache keyed by (src, dst, protocol, identification), with an
/// eviction deadline so lost fragments cannot pin memory forever.
class Ipv4Reassembler {
 public:
  struct Stats {
    std::uint64_t fragments_seen = 0;
    std::uint64_t reassembled = 0;
    std::uint64_t expired = 0;
    std::uint64_t overlapping = 0;  // overlapping/duplicate fragments dropped
  };

  explicit Ipv4Reassembler(SimTime timeout = 30 * kSecond)
      : timeout_(timeout) {}

  /// Feed one packet.  Non-fragments are returned immediately; fragments are
  /// buffered and the completed packet is returned when the last piece lands.
  std::optional<Ipv4Packet> push(const Ipv4Packet& p, SimTime now);

  /// Drop partially-reassembled packets older than the timeout.
  void expire(SimTime now);

  /// Register `net.reassembly.*` instruments in `registry` and record into
  /// them from now on (fragments, completions, expiries, overlaps, pending).
  void bind_metrics(obs::Registry& registry);

  /// Attach logging / flight-recorder channels (either may be null):
  /// expiries and overlapping fragments log rate-limited warnings, and
  /// expiries land in the flight recorder.
  void bind_telemetry(obs::Logger* log, obs::FlightRecorder* flight) {
    log_ = log;
    flight_ = flight;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  /// Checkpoint codec: counters plus every partially-reassembled packet —
  /// fragments of one datagram may straddle a snapshot boundary.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  struct Key {
    std::uint32_t src, dst;
    std::uint16_t id;
    std::uint8_t protocol;
    auto operator<=>(const Key&) const = default;
  };
  struct Partial {
    // offset (bytes) -> fragment payload; total_size known once the
    // last fragment (more_fragments == false) arrives.
    std::map<std::uint32_t, Bytes> pieces;
    std::optional<std::uint32_t> total_size;
    Ipv4Packet header_template;
    SimTime first_seen = 0;
  };

  std::optional<Ipv4Packet> try_complete(const Key& key, Partial& partial);

  struct Metrics {
    obs::Counter* fragments = nullptr;
    obs::Counter* reassembled = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* overlapping = nullptr;
    obs::Gauge* pending = nullptr;
  };

  SimTime timeout_;
  std::map<Key, Partial> pending_;
  Stats stats_;
  Metrics metrics_;
  obs::Logger* log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dtr::net
