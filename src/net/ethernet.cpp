#include "net/ethernet.hpp"

#include <cstring>

namespace dtr::net {

Bytes encode_ethernet(const EthernetFrame& f) {
  ByteWriter w(kEthernetHeaderSize + f.payload.size());
  w.raw(f.dst.data(), f.dst.size());
  w.raw(f.src.data(), f.src.size());
  w.u16be(f.ether_type);
  w.raw(f.payload);
  return std::move(w).take();
}

std::optional<EthernetFrame> decode_ethernet(BytesView data) {
  if (data.size() < kEthernetHeaderSize) return std::nullopt;
  EthernetFrame f;
  std::memcpy(f.dst.data(), data.data(), 6);
  std::memcpy(f.src.data(), data.data() + 6, 6);
  f.ether_type = static_cast<std::uint16_t>(data[12] << 8 | data[13]);
  f.payload.assign(data.begin() + kEthernetHeaderSize, data.end());
  return f;
}

}  // namespace dtr::net
