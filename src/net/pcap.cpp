#include "net/pcap.hpp"

#include <cstring>
#include <filesystem>

namespace dtr::net {

namespace {

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : file_(path, std::ios::binary), to_file_(true), snaplen_(snaplen) {
  write_header();
}

PcapWriter::PcapWriter(std::uint32_t snaplen)
    : to_file_(false), snaplen_(snaplen) {
  write_header();
}

PcapWriter::PcapWriter(const std::string& path, std::uint64_t resume_offset,
                       std::uint64_t resume_records, std::uint32_t snaplen)
    : to_file_(true), snaplen_(snaplen) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size < resume_offset) {
    ok_ = false;
    return;
  }
  // Records past the snapshot boundary belong to the lost segment of the
  // interrupted run; drop them so resumed appends land on a record edge.
  std::filesystem::resize_file(path, resume_offset, ec);
  if (ec) {
    ok_ = false;
    return;
  }
  file_.open(path, std::ios::binary | std::ios::app);
  if (!file_) {
    ok_ = false;
    return;
  }
  bytes_ = resume_offset;
  records_ = resume_records;
}

void PcapWriter::write_header() {
  Bytes h;
  put_u32le(h, kPcapMagic);
  put_u16le(h, 2);   // version major
  put_u16le(h, 4);   // version minor
  put_u32le(h, 0);   // thiszone
  put_u32le(h, 0);   // sigfigs
  put_u32le(h, snaplen_);
  put_u32le(h, kLinkTypeEthernet);
  emit(h);
}

void PcapWriter::write(SimTime timestamp, BytesView frame) {
  const auto captured =
      static_cast<std::uint32_t>(std::min<std::size_t>(frame.size(), snaplen_));
  Bytes rec;
  rec.reserve(16 + captured);
  put_u32le(rec, static_cast<std::uint32_t>(timestamp / kSecond));
  put_u32le(rec, static_cast<std::uint32_t>(timestamp % kSecond));
  put_u32le(rec, captured);
  put_u32le(rec, static_cast<std::uint32_t>(frame.size()));
  rec.insert(rec.end(), frame.begin(), frame.begin() + captured);
  emit(rec);
  ++records_;
}

void PcapWriter::emit(BytesView bytes) {
  if (to_file_) {
    file_.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
  } else {
    memory_.insert(memory_.end(), bytes.begin(), bytes.end());
  }
  bytes_ += bytes.size();
}

void PcapWriter::flush() {
  if (to_file_) file_.flush();
}

PcapReader::PcapReader(const std::string& path)
    : file_(path, std::ios::binary), from_file_(true) {
  parse_header();
}

PcapReader::PcapReader(BytesView memory)
    : from_file_(false), memory_(memory.begin(), memory.end()) {
  parse_header();
}

bool PcapReader::read_exact(void* dst, std::size_t n) {
  if (from_file_) {
    file_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(file_.gcount()) == n;
  }
  if (memory_.size() - mem_pos_ < n) return false;
  std::memcpy(dst, memory_.data() + mem_pos_, n);
  mem_pos_ += n;
  return true;
}

void PcapReader::parse_header() {
  std::uint8_t h[24];
  if (!read_exact(h, sizeof(h))) return;
  ByteReader r(BytesView(h, sizeof(h)));
  std::uint32_t magic = r.u32le();
  if (magic != kPcapMagic) return;  // byte-swapped variants not needed here
  r.skip(2 + 2 + 4 + 4);
  snaplen_ = r.u32le();
  link_type_ = r.u32le();
  ok_ = true;
}

std::optional<PcapRecord> PcapReader::next() {
  if (!ok_) return std::nullopt;
  std::uint8_t h[16];
  if (from_file_) {
    file_.read(reinterpret_cast<char*>(h), sizeof(h));
    auto got = static_cast<std::size_t>(file_.gcount());
    if (got == 0) return std::nullopt;  // clean EOF
    if (got != sizeof(h)) {
      ok_ = false;
      return std::nullopt;
    }
  } else {
    if (mem_pos_ == memory_.size()) return std::nullopt;
    if (!read_exact(h, sizeof(h))) {
      ok_ = false;
      return std::nullopt;
    }
  }
  ByteReader r(BytesView(h, sizeof(h)));
  PcapRecord rec;
  std::uint32_t ts_sec = r.u32le();
  std::uint32_t ts_usec = r.u32le();
  std::uint32_t captured = r.u32le();
  rec.original_length = r.u32le();
  rec.timestamp = static_cast<SimTime>(ts_sec) * kSecond + ts_usec;
  if (captured > snaplen_) {
    ok_ = false;
    return std::nullopt;
  }
  rec.data.resize(captured);
  if (captured > 0 && !read_exact(rec.data.data(), captured)) {
    ok_ = false;
    return std::nullopt;
  }
  return rec;
}

}  // namespace dtr::net
