// TCP segments and stream reassembly.
//
// The paper captured TCP (half of the traffic) but could not exploit it:
// "packet losses ... make tcp flows reconstruction very difficult, as
// packets are missing inside flows", and "even without packet losses, tcp
// conversation reconstruction is not an easy task, as the server receives
// about 5000 syn packets per minute" (§2.2).  The conclusion lists TCP
// decoding as future work; this module implements it.
//
// Scope: enough TCP to reconstruct eDonkey-over-TCP dialogs from a pcap
// capture — header codec with pseudo-header checksum, and a per-flow
// reassembler that orders segments by sequence number, tolerates
// out-of-order arrival, duplicates and retransmissions, detects loss-
// induced gaps (reporting them instead of producing corrupt streams), and
// expires idle flows.  Congestion control, windows and timers are not
// modelled: a capture consumer never needs them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace dtr::net {

constexpr std::uint8_t kProtocolTcp = 6;
constexpr std::size_t kTcpHeaderSize = 20;  // no options in this traffic

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;
  bool operator==(const TcpFlags&) const = default;
};

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;
  Bytes payload;
};

/// Serialize with the checksum computed over the IPv4 pseudo-header.
Bytes encode_tcp(const TcpSegment& s, std::uint32_t src_ip,
                 std::uint32_t dst_ip);

/// Decode and verify; nullopt on short input, bad offset, or bad checksum
/// (a zero checksum is accepted as "not computed" — synthetic generators
/// may omit it, real stacks never do).
std::optional<TcpSegment> decode_tcp(BytesView data, std::uint32_t src_ip,
                                     std::uint32_t dst_ip);

/// One direction of one TCP connection, identified at the reassembler API.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  auto operator<=>(const FlowKey&) const = default;
};

/// Callback: contiguous in-order bytes of a flow, as they become available.
/// `gap` is true when data was lost before this chunk (the stream skipped
/// ahead) — consumers must resynchronise (eDonkey framing allows that only
/// at a message boundary, so gapped flows are typically abandoned, exactly
/// the paper's §2.2 difficulty).
using StreamSink =
    std::function<void(const FlowKey&, BytesView data, bool gap)>;

class TcpStreamReassembler {
 public:
  struct Stats {
    std::uint64_t segments = 0;
    std::uint64_t syn_seen = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t out_of_order = 0;   // buffered for later
    std::uint64_t duplicates = 0;     // retransmissions / overlaps dropped
    std::uint64_t gaps_skipped = 0;   // loss holes jumped over
    std::uint64_t flows_expired = 0;
    std::uint64_t orphan_segments = 0;  // data before any SYN
  };

  struct Config {
    SimTime idle_timeout = 5 * kMinute;
    std::size_t max_buffered_per_flow = 1 << 20;  // bytes of OOO data
    /// After this much buffered data beyond a hole, assume the missing
    /// segment was lost at capture and skip ahead (flagging the gap).
    std::size_t gap_skip_threshold = 64 * 1024;
  };

  explicit TcpStreamReassembler(StreamSink sink);
  TcpStreamReassembler(StreamSink sink, const Config& config);

  /// Feed one segment (from IP payload) with its addressing and time.
  void push(std::uint32_t src_ip, std::uint32_t dst_ip, const TcpSegment& seg,
            SimTime now);

  /// Expire idle flows.
  void expire(SimTime now);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

 private:
  struct Flow {
    std::uint32_t next_seq = 0;  // next expected sequence number
    bool established = false;
    SimTime last_activity = 0;
    // Out-of-order buffer: seq -> payload.
    std::map<std::uint32_t, Bytes> pending;
    std::size_t pending_bytes = 0;
  };

  void deliver_ready(const FlowKey& key, Flow& flow, bool after_gap);

  StreamSink sink_;
  Config config_;
  std::map<FlowKey, Flow> flows_;
  Stats stats_;
};

}  // namespace dtr::net
