#include "net/tcp.hpp"

#include "net/ipv4.hpp"

namespace dtr::net {

namespace {

/// Serial-number arithmetic (RFC 1982 style): a - b as a signed distance.
inline std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

std::uint16_t tcp_checksum(BytesView tcp_bytes, std::uint32_t src_ip,
                           std::uint32_t dst_ip) {
  ByteWriter pseudo(12 + tcp_bytes.size());
  pseudo.u32be(src_ip);
  pseudo.u32be(dst_ip);
  pseudo.u8(0);
  pseudo.u8(kProtocolTcp);
  pseudo.u16be(static_cast<std::uint16_t>(tcp_bytes.size()));
  pseudo.raw(tcp_bytes);
  std::uint16_t sum = internet_checksum(pseudo.view());
  return sum == 0 ? 0xFFFF : sum;
}

std::uint8_t flags_byte(const TcpFlags& f) {
  return static_cast<std::uint8_t>((f.fin ? 0x01 : 0) | (f.syn ? 0x02 : 0) |
                                   (f.rst ? 0x04 : 0) | (f.psh ? 0x08 : 0) |
                                   (f.ack ? 0x10 : 0));
}

}  // namespace

Bytes encode_tcp(const TcpSegment& s, std::uint32_t src_ip,
                 std::uint32_t dst_ip) {
  ByteWriter w(kTcpHeaderSize + s.payload.size());
  w.u16be(s.src_port);
  w.u16be(s.dst_port);
  w.u32be(s.seq);
  w.u32be(s.ack);
  w.u8(0x50);  // data offset: 5 words, no options
  w.u8(flags_byte(s.flags));
  w.u16be(s.window);
  w.u16be(0);  // checksum placeholder
  w.u16be(0);  // urgent pointer
  w.raw(s.payload);
  std::uint16_t csum = tcp_checksum(w.view(), src_ip, dst_ip);
  w.patch_u16be(16, csum);
  return std::move(w).take();
}

std::optional<TcpSegment> decode_tcp(BytesView data, std::uint32_t src_ip,
                                     std::uint32_t dst_ip) {
  if (data.size() < kTcpHeaderSize) return std::nullopt;
  ByteReader r(data);
  TcpSegment s;
  s.src_port = r.u16be();
  s.dst_port = r.u16be();
  s.seq = r.u32be();
  s.ack = r.u32be();
  std::uint8_t offset_byte = r.u8();
  const std::size_t header = static_cast<std::size_t>(offset_byte >> 4) * 4;
  if (header < kTcpHeaderSize || header > data.size()) return std::nullopt;
  std::uint8_t flags = r.u8();
  s.flags.fin = flags & 0x01;
  s.flags.syn = flags & 0x02;
  s.flags.rst = flags & 0x04;
  s.flags.psh = flags & 0x08;
  s.flags.ack = flags & 0x10;
  s.window = r.u16be();
  std::uint16_t wire_csum = r.u16be();
  if (wire_csum != 0) {
    ByteWriter pseudo(12 + data.size());
    pseudo.u32be(src_ip);
    pseudo.u32be(dst_ip);
    pseudo.u8(0);
    pseudo.u8(kProtocolTcp);
    pseudo.u16be(static_cast<std::uint16_t>(data.size()));
    pseudo.raw(data);
    if (internet_checksum(pseudo.view()) != 0) return std::nullopt;
  }
  s.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(header),
                   data.end());
  return s;
}

TcpStreamReassembler::TcpStreamReassembler(StreamSink sink)
    : TcpStreamReassembler(std::move(sink), Config{}) {}

TcpStreamReassembler::TcpStreamReassembler(StreamSink sink,
                                           const Config& config)
    : sink_(std::move(sink)), config_(config) {}

void TcpStreamReassembler::push(std::uint32_t src_ip, std::uint32_t dst_ip,
                                const TcpSegment& seg, SimTime now) {
  ++stats_.segments;
  FlowKey key{src_ip, dst_ip, seg.src_port, seg.dst_port};

  if (seg.flags.rst) {
    flows_.erase(key);
    return;
  }

  if (seg.flags.syn) {
    ++stats_.syn_seen;
    Flow& flow = flows_[key];
    flow = Flow{};
    flow.next_seq = seg.seq + 1;  // SYN consumes one sequence number
    flow.established = true;
    flow.last_activity = now;
    return;
  }

  if (seg.payload.empty() && !seg.flags.fin) {
    // Pure ACK: refresh activity if the flow exists, nothing to deliver.
    auto it = flows_.find(key);
    if (it != flows_.end()) it->second.last_activity = now;
    return;
  }

  auto it = flows_.find(key);
  if (it == flows_.end()) {
    // Data before any SYN: the capture started mid-flow (unavoidable on a
    // live server).  Adopt the flow at this point, best effort.
    ++stats_.orphan_segments;
    Flow flow;
    flow.next_seq = seg.seq;
    flow.established = true;
    it = flows_.emplace(key, std::move(flow)).first;
  }
  Flow& flow = it->second;
  flow.last_activity = now;

  if (!seg.payload.empty()) {
    std::int32_t diff = seq_diff(seg.seq, flow.next_seq);
    if (diff == 0) {
      sink_(key, seg.payload, /*gap=*/false);
      stats_.bytes_delivered += seg.payload.size();
      flow.next_seq += static_cast<std::uint32_t>(seg.payload.size());
      deliver_ready(key, flow, /*after_gap=*/false);
    } else if (diff < 0) {
      // Starts in already-delivered territory.
      std::uint32_t end = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
      if (seq_diff(end, flow.next_seq) <= 0) {
        ++stats_.duplicates;  // full retransmission
      } else {
        // Partial overlap: deliver only the new tail.
        std::size_t skip = static_cast<std::uint32_t>(-diff);
        BytesView tail(seg.payload.data() + skip, seg.payload.size() - skip);
        sink_(key, tail, /*gap=*/false);
        stats_.bytes_delivered += tail.size();
        flow.next_seq = end;
        deliver_ready(key, flow, /*after_gap=*/false);
      }
    } else {
      // Future data: buffer it.
      ++stats_.out_of_order;
      auto [pit, inserted] = flow.pending.emplace(seg.seq, seg.payload);
      if (!inserted) {
        ++stats_.duplicates;
      } else {
        flow.pending_bytes += seg.payload.size();
      }
      if (flow.pending_bytes > config_.gap_skip_threshold &&
          !flow.pending.empty()) {
        // The hole is probably a capture loss (paper §2.2): skip ahead to
        // the earliest buffered byte and flag the gap.
        ++stats_.gaps_skipped;
        flow.next_seq = flow.pending.begin()->first;
        deliver_ready(key, flow, /*after_gap=*/true);
      }
    }
  }

  if (seg.flags.fin) {
    // Deliver whatever is contiguous, then forget the flow.
    deliver_ready(key, flow, /*after_gap=*/false);
    flows_.erase(it);
  }
}

void TcpStreamReassembler::deliver_ready(const FlowKey& key, Flow& flow,
                                         bool after_gap) {
  bool gap_pending = after_gap;
  while (!flow.pending.empty()) {
    auto it = flow.pending.begin();
    std::int32_t diff = seq_diff(it->first, flow.next_seq);
    if (diff > 0) break;  // still a hole
    Bytes chunk = std::move(it->second);
    std::uint32_t chunk_seq = it->first;
    flow.pending_bytes -= chunk.size();
    flow.pending.erase(it);

    std::uint32_t end = chunk_seq + static_cast<std::uint32_t>(chunk.size());
    if (seq_diff(end, flow.next_seq) <= 0) {
      ++stats_.duplicates;  // entirely old
      continue;
    }
    std::size_t skip = static_cast<std::size_t>(-diff);
    BytesView fresh(chunk.data() + skip, chunk.size() - skip);
    sink_(key, fresh, gap_pending);
    gap_pending = false;
    stats_.bytes_delivered += fresh.size();
    flow.next_seq = end;
  }
}

void TcpStreamReassembler::expire(SimTime now) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_activity > config_.idle_timeout) {
      it = flows_.erase(it);
      ++stats_.flows_expired;
    } else {
      ++it;
    }
  }
}

}  // namespace dtr::net
