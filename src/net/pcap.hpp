// pcap file format (the classic libpcap savefile: magic 0xa1b2c3d4,
// microsecond timestamps, LINKTYPE_ETHERNET).  The paper's capture chain is
// built on libpcap; this reader/writer lets a simulated campaign be dumped
// to a standard-tooling-compatible file and replayed through the offline
// decoder, decoupling capture from analysis exactly as a released dataset
// does.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace dtr::net {

constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;  // microsecond variant
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kDefaultSnapLen = 65535;

struct PcapRecord {
  SimTime timestamp = 0;  // microseconds since capture start
  std::uint32_t original_length = 0;
  Bytes data;             // captured bytes (<= original_length if truncated)
};

/// Streaming writer.  The header is written on construction.
class PcapWriter {
 public:
  PcapWriter(const std::string& path, std::uint32_t snaplen = kDefaultSnapLen);

  /// In-memory variant for tests.
  explicit PcapWriter(std::uint32_t snaplen = kDefaultSnapLen);

  /// Resume an interrupted capture file: truncate `path` back to
  /// `resume_offset` bytes (records written after the snapshot was taken
  /// are discarded) and continue appending.  `ok()` reports whether the
  /// file existed and was at least that long.
  PcapWriter(const std::string& path, std::uint64_t resume_offset,
             std::uint64_t resume_records,
             std::uint32_t snaplen = kDefaultSnapLen);

  void write(SimTime timestamp, BytesView frame);
  void flush();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  /// Total file/buffer bytes produced (header included) — the offset a
  /// checkpoint stores so resume can truncate to a record boundary.
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }

  /// For the in-memory variant: the bytes produced so far.
  [[nodiscard]] const Bytes& buffer() const { return memory_; }

 private:
  void emit(BytesView bytes);
  void write_header();

  std::ofstream file_;
  bool to_file_ = false;
  bool ok_ = true;
  Bytes memory_;
  std::uint32_t snaplen_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Streaming reader over an in-memory buffer or a file.
class PcapReader {
 public:
  /// Opens and validates the global header; `ok()` is false on a bad magic.
  explicit PcapReader(const std::string& path);
  explicit PcapReader(BytesView memory);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::uint32_t link_type() const { return link_type_; }
  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }

  /// Next record, or nullopt at end-of-stream.  A truncated trailing record
  /// flips ok() to false.
  std::optional<PcapRecord> next();

 private:
  bool read_exact(void* dst, std::size_t n);
  void parse_header();

  std::ifstream file_;
  bool from_file_ = false;
  Bytes memory_;
  std::size_t mem_pos_ = 0;
  bool ok_ = false;
  std::uint32_t link_type_ = 0;
  std::uint32_t snaplen_ = 0;
};

}  // namespace dtr::net
