// MD4 (RFC 1320), implemented from scratch.
//
// eDonkey identifies files by the MD4 of their content (for multi-chunk
// files, the MD4 of the concatenated 9.28 MB chunk hashes; for this
// reproduction the single-shot digest is sufficient since we hash synthetic
// identities, not real file contents).  MD4 is cryptographically broken;
// here it is a protocol constant, not a security primitive.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "hash/digest.hpp"

namespace dtr {

/// Incremental MD4.  `update()` may be called any number of times;
/// `finish()` returns the digest and leaves the object reusable after
/// `reset()`.
class Md4 {
 public:
  Md4() { reset(); }

  void reset();
  void update(BytesView data);
  Digest128 finish();

  /// One-shot convenience.
  static Digest128 digest(BytesView data);
  static Digest128 digest(std::string_view s) {
    return digest(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                            s.size()));
  }

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t length_ = 0;           // total bytes consumed
  std::uint8_t buffer_[64];            // partial block
  std::size_t buffered_ = 0;
};

}  // namespace dtr
