// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Unlike MD4/MD5 — which mirror the eDonkey wire and the paper's
// anonymisation tokens — SHA-256 is not part of the protocol.  It exists
// for integrity pinning: golden end-to-end tests fingerprint the campaign
// artifacts (dataset XML, series files, pcap) so an accidental behaviour
// change shows up as a hash diff rather than silently shifting figures.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace dtr {

/// A 32-byte digest with the same conveniences as Digest128.
struct Digest256 {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Digest256&) const = default;

  [[nodiscard]] std::string hex() const { return to_hex(bytes); }
};

/// Incremental SHA-256 with the same interface as Md4/Md5.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Digest256 finish();

  static Digest256 digest(BytesView data);
  static Digest256 digest(std::string_view s) {
    return digest(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                            s.size()));
  }

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t length_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace dtr
