#include "hash/md4.hpp"

#include <cstring>

namespace dtr {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t F(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) | (~x & z);
}
inline std::uint32_t G(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (x & y) | (x & z) | (y & z);
}
inline std::uint32_t H(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return x ^ y ^ z;
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

void Md4::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  length_ = 0;
  buffered_ = 0;
}

void Md4::process_block(const std::uint8_t* block) {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  // Round 1.
  auto r1 = [&](std::uint32_t& va, std::uint32_t vb, std::uint32_t vc,
                std::uint32_t vd, int k, int s) {
    va = rotl32(va + F(vb, vc, vd) + x[k], s);
  };
  for (int i = 0; i < 4; ++i) {
    r1(a, b, c, d, 4 * i + 0, 3);
    r1(d, a, b, c, 4 * i + 1, 7);
    r1(c, d, a, b, 4 * i + 2, 11);
    r1(b, c, d, a, 4 * i + 3, 19);
  }

  // Round 2.
  auto r2 = [&](std::uint32_t& va, std::uint32_t vb, std::uint32_t vc,
                std::uint32_t vd, int k, int s) {
    va = rotl32(va + G(vb, vc, vd) + x[k] + 0x5A827999U, s);
  };
  for (int i = 0; i < 4; ++i) {
    r2(a, b, c, d, i + 0, 3);
    r2(d, a, b, c, i + 4, 5);
    r2(c, d, a, b, i + 8, 9);
    r2(b, c, d, a, i + 12, 13);
  }

  // Round 3 (order 0,8,4,12, 2,10,6,14, 1,9,5,13, 3,11,7,15).
  static constexpr int kOrder3[4] = {0, 2, 1, 3};
  auto r3 = [&](std::uint32_t& va, std::uint32_t vb, std::uint32_t vc,
                std::uint32_t vd, int k, int s) {
    va = rotl32(va + H(vb, vc, vd) + x[k] + 0x6ED9EBA1U, s);
  };
  for (int i : kOrder3) {
    r3(a, b, c, d, i + 0, 3);
    r3(d, a, b, c, i + 8, 9);
    r3(c, d, a, b, i + 4, 11);
    r3(b, c, d, a, i + 12, 15);
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md4::update(BytesView data) {
  length_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    std::size_t take = std::min(data.size(), sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest128 Md4::finish() {
  std::uint64_t bit_length = length_ * 8;
  static constexpr std::uint8_t kPad[64] = {0x80};
  std::size_t pad_len = (buffered_ < 56) ? 56 - buffered_ : 120 - buffered_;
  update(BytesView(kPad, pad_len));
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i)
    len_le[i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
  // update() counts these 8 bytes in length_, but length_ is no longer read.
  update(BytesView(len_le, 8));

  Digest128 out;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      out.bytes[static_cast<std::size_t>(4 * i + j)] =
          static_cast<std::uint8_t>(state_[i] >> (8 * j));
  return out;
}

Digest128 Md4::digest(BytesView data) {
  Md4 h;
  h.update(data);
  return h.finish();
}

}  // namespace dtr
