// MD5 (RFC 1321), implemented from scratch.
//
// The paper anonymises search strings, filenames and server descriptions by
// their MD5 hash — strong enough for that purpose while keeping the dataset
// coherent (equal strings map to equal tokens).  Like MD4, it is used here
// as a deterministic anonymisation token generator, not a security primitive.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "hash/digest.hpp"

namespace dtr {

/// Incremental MD5 with the same interface as Md4.
class Md5 {
 public:
  Md5() { reset(); }

  void reset();
  void update(BytesView data);
  Digest128 finish();

  static Digest128 digest(BytesView data);
  static Digest128 digest(std::string_view s) {
    return digest(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                            s.size()));
  }

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t length_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace dtr
