// 128-bit digest value type shared by MD4 (eDonkey fileIDs) and MD5
// (anonymisation of strings).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/bytes.hpp"

namespace dtr {

/// A 16-byte digest.  eDonkey fileIDs are MD4 digests of file content; the
/// anonymised dataset stores MD5 digests of strings.  Byte order is the wire
/// order (the order the digest is transmitted in eDonkey messages).
struct Digest128 {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Digest128&) const = default;

  [[nodiscard]] std::string hex() const { return to_hex(bytes); }

  static Digest128 from_hex(std::string_view h) {
    Digest128 d;
    Bytes raw = dtr::from_hex(h);
    if (raw.size() == 16) std::memcpy(d.bytes.data(), raw.data(), 16);
    return d;
  }

  /// The i-th byte, as transmitted.  Used to pick anonymisation-bucket
  /// index bytes (paper §2.4).
  [[nodiscard]] std::uint8_t byte(std::size_t i) const { return bytes[i]; }

  /// First 8 bytes as a little-endian integer — handy for cheap ordering.
  [[nodiscard]] std::uint64_t prefix64() const {
    std::uint64_t v;
    std::memcpy(&v, bytes.data(), 8);
    return v;
  }
};

/// eDonkey fileID is an MD4 digest.
using FileId = Digest128;

struct DigestHasher {
  std::size_t operator()(const Digest128& d) const noexcept {
    // The digest is already uniform (unless forged); fold it.
    std::uint64_t a, b;
    std::memcpy(&a, d.bytes.data(), 8);
    std::memcpy(&b, d.bytes.data() + 8, 8);
    return static_cast<std::size_t>(a ^ (b * 0x9E3779B97F4A7C15ULL));
  }
};

}  // namespace dtr
