// Capture engine: the software that sits on the capture machine.
//
// Mirrored frames pass through the kernel-buffer model (where Figure 2's
// losses happen); surviving frames are optionally dumped to a pcap file
// and/or forwarded to the decoding pipeline.  The engine maintains the
// per-second loss time series and the cumulative loss counter that Figure 2
// plots.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "capture/kernel_buffer.hpp"
#include "common/clock.hpp"
#include "net/pcap.hpp"
#include "sim/frames.hpp"

namespace dtr::capture {

struct LossPoint {
  std::uint64_t second = 0;  // seconds since capture start
  std::uint64_t lost = 0;    // packets lost during that second
};

class CaptureEngine {
 public:
  explicit CaptureEngine(const KernelBufferConfig& buffer_config);

  /// Attach a pcap dump (optional).  The writer must outlive the engine.
  void set_pcap(net::PcapWriter* writer) { pcap_ = writer; }

  /// Forward surviving frames here (optional).
  void set_sink(sim::FrameSink sink) { sink_ = std::move(sink); }

  /// Offer one mirrored frame; returns true if captured.
  bool offer(const sim::TimedFrame& frame);

  [[nodiscard]] std::uint64_t captured() const { return buffer_.accepted(); }
  [[nodiscard]] std::uint64_t lost() const { return buffer_.dropped(); }
  [[nodiscard]] std::size_t buffer_high_water() const {
    return buffer_.occupancy_high_water();
  }

  /// Register the kernel buffer's `capture.*` instruments in `registry`.
  void bind_metrics(obs::Registry& registry) { buffer_.bind_metrics(registry); }

  /// Attach logging / flight-recorder channels to the kernel buffer
  /// (either may be null).
  void bind_telemetry(obs::Logger* log, obs::FlightRecorder* flight) {
    buffer_.bind_telemetry(log, flight);
  }

  /// Non-zero per-second loss samples, in time order (Figure 2 main plot).
  [[nodiscard]] const std::vector<LossPoint>& loss_series() const {
    return loss_series_;
  }

  /// Cumulative losses at each recorded point (Figure 2 inset).
  [[nodiscard]] std::vector<LossPoint> cumulative_losses() const;

  /// Checkpoint codec: kernel-buffer state plus the accumulated loss
  /// series.  The pcap writer and frame sink are rewired by the owner.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  KernelBuffer buffer_;
  net::PcapWriter* pcap_ = nullptr;
  sim::FrameSink sink_;
  std::vector<LossPoint> loss_series_;
};

}  // namespace dtr::capture
