#include "capture/engine.hpp"

namespace dtr::capture {

CaptureEngine::CaptureEngine(const KernelBufferConfig& buffer_config)
    : buffer_(buffer_config) {}

bool CaptureEngine::offer(const sim::TimedFrame& frame) {
  if (!buffer_.offer(frame.time)) {
    const std::uint64_t second = to_seconds(frame.time);
    if (!loss_series_.empty() && loss_series_.back().second == second) {
      ++loss_series_.back().lost;
    } else {
      loss_series_.push_back(LossPoint{second, 1});
    }
    return false;
  }
  if (pcap_ != nullptr) pcap_->write(frame.time, frame.bytes);
  if (sink_) sink_(frame);
  return true;
}

void CaptureEngine::save_state(ByteWriter& out) const {
  buffer_.save_state(out);
  out.u64le(loss_series_.size());
  for (const LossPoint& p : loss_series_) {
    out.u64le(p.second);
    out.u64le(p.lost);
  }
}

bool CaptureEngine::restore_state(ByteReader& in) {
  if (!buffer_.restore_state(in)) return false;
  loss_series_.clear();
  const std::uint64_t count = in.u64le();
  if (count > in.remaining() / 16) return false;
  loss_series_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    LossPoint p;
    p.second = in.u64le();
    p.lost = in.u64le();
    if (!loss_series_.empty() && p.second <= loss_series_.back().second) {
      return false;  // the per-second series is strictly time-ordered
    }
    loss_series_.push_back(p);
  }
  return in.ok();
}

std::vector<LossPoint> CaptureEngine::cumulative_losses() const {
  std::vector<LossPoint> out;
  out.reserve(loss_series_.size());
  std::uint64_t total = 0;
  for (const LossPoint& p : loss_series_) {
    total += p.lost;
    out.push_back(LossPoint{p.second, total});
  }
  return out;
}

}  // namespace dtr::capture
