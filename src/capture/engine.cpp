#include "capture/engine.hpp"

namespace dtr::capture {

CaptureEngine::CaptureEngine(const KernelBufferConfig& buffer_config)
    : buffer_(buffer_config) {}

bool CaptureEngine::offer(const sim::TimedFrame& frame) {
  if (!buffer_.offer(frame.time)) {
    const std::uint64_t second = to_seconds(frame.time);
    if (!loss_series_.empty() && loss_series_.back().second == second) {
      ++loss_series_.back().lost;
    } else {
      loss_series_.push_back(LossPoint{second, 1});
    }
    return false;
  }
  if (pcap_ != nullptr) pcap_->write(frame.time, frame.bytes);
  if (sink_) sink_(frame);
  return true;
}

std::vector<LossPoint> CaptureEngine::cumulative_losses() const {
  std::vector<LossPoint> out;
  out.reserve(loss_series_.size());
  std::uint64_t total = 0;
  for (const LossPoint& p : loss_series_) {
    total += p.lost;
    out.push_back(LossPoint{p.second, total});
  }
  return out;
}

}  // namespace dtr::capture
