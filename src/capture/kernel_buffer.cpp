#include "capture/kernel_buffer.hpp"

#include <bit>

namespace dtr::capture {

namespace {
constexpr SimTime kNever = ~SimTime{0} / 2;  // far future, addition-safe

/// Exponential delay in SimTime ticks, never zero (a zero-length step could
/// stall the drain loop).  A non-positive rate means "never happens".
SimTime exp_delay(Rng& rng, double rate_per_second) {
  if (rate_per_second <= 0.0) return kNever;
  double ticks_f =
      rng.exponential(rate_per_second) * static_cast<double>(kSecond);
  if (!(ticks_f < static_cast<double>(kNever))) return kNever;
  auto ticks = static_cast<SimTime>(ticks_f);
  return ticks > 0 ? ticks : 1;
}
}  // namespace

KernelBuffer::KernelBuffer(const KernelBufferConfig& config)
    : config_(config), rng_(mix64(config.seed ^ 0xB0FFE2ULL)) {
  next_stall_ = exp_delay(rng_, config_.stall_per_hour / 3600.0);
}

void KernelBuffer::drain_until(SimTime now) {
  if (now <= last_drain_) return;

  SimTime t = last_drain_;
  while (t < now) {
    // Advance either to the next stall boundary or to `now`.
    SimTime segment_end = now;
    bool in_stall = t >= next_stall_ && t < stall_until_;
    if (in_stall) {
      segment_end = std::min(now, stall_until_);
      // Stalled: no draining happens over [t, segment_end).
    } else {
      if (t >= stall_until_ && next_stall_ <= t) {
        // Schedule the next stall after the one that just ended.
        next_stall_ = t + exp_delay(rng_, config_.stall_per_hour / 3600.0);
      }
      if (next_stall_ > t && next_stall_ < now) segment_end = next_stall_;
      double seconds = to_seconds_f(segment_end - t);
      drain_credit_ += seconds * config_.drain_rate;
      if (drain_credit_ > 0.0) {
        auto drained = static_cast<std::uint64_t>(drain_credit_);
        drain_credit_ -= static_cast<double>(drained);
        occupancy_ = drained >= occupancy_
                         ? 0
                         : occupancy_ - static_cast<std::size_t>(drained);
      }
      if (segment_end == next_stall_) {
        // A stall begins here.
        stall_until_ =
            next_stall_ +
            exp_delay(rng_, 1.0 / to_seconds_f(config_.stall_mean));
      }
    }
    t = segment_end;
    if (t == now) break;
  }
  last_drain_ = now;
}

bool KernelBuffer::offer(SimTime now) {
  drain_until(now);
  if (occupancy_ >= config_.capacity) {
    ++dropped_;
    obs::inc(metrics_.dropped);
    obs::record(flight_, obs::FlightEvent::kFrameDropped, now, occupancy_,
                dropped_);
    DTR_LOG_WARN(log_, "capture", now,
                 "kernel buffer overflow: packet dropped (occupancy "
                     << occupancy_ << "/" << config_.capacity << ", "
                     << dropped_ << " lost so far)");
    return false;
  }
  ++occupancy_;
  ++accepted_;
  if (occupancy_ > occupancy_high_water_) {
    occupancy_high_water_ = occupancy_;
    // Telemetry on each new decile of capacity the high-water crosses —
    // the buffer-pressure breadcrumb trail behind Figure 2's loss spikes.
    const std::size_t decile =
        config_.capacity == 0 ? 0 : occupancy_ * 10 / config_.capacity;
    if (decile > high_water_decile_) {
      high_water_decile_ = decile;
      obs::record(flight_, obs::FlightEvent::kBufferHighWater, now, occupancy_,
                  config_.capacity);
      DTR_LOG_INFO(log_, "capture", now,
                   "buffer high-water " << occupancy_ << "/"
                                        << config_.capacity << " packets");
    }
  }
  obs::inc(metrics_.accepted);
  obs::set(metrics_.occupancy, static_cast<std::int64_t>(occupancy_));
  obs::record_max(metrics_.occupancy_high_water,
                  static_cast<std::int64_t>(occupancy_));
  obs::record(flight_, obs::FlightEvent::kFrameAccepted, now, occupancy_);
  return true;
}

void KernelBuffer::save_state(ByteWriter& out) const {
  rng_.save_state(out);
  out.u64le(occupancy_);
  out.u64le(last_drain_);
  out.u64le(std::bit_cast<std::uint64_t>(drain_credit_));
  out.u64le(next_stall_);
  out.u64le(stall_until_);
  out.u64le(accepted_);
  out.u64le(dropped_);
  out.u64le(occupancy_high_water_);
  out.u64le(high_water_decile_);
}

bool KernelBuffer::restore_state(ByteReader& in) {
  if (!rng_.restore_state(in)) return false;
  occupancy_ = static_cast<std::size_t>(in.u64le());
  last_drain_ = in.u64le();
  drain_credit_ = std::bit_cast<double>(in.u64le());
  next_stall_ = in.u64le();
  stall_until_ = in.u64le();
  accepted_ = in.u64le();
  dropped_ = in.u64le();
  occupancy_high_water_ = static_cast<std::size_t>(in.u64le());
  high_water_decile_ = static_cast<std::size_t>(in.u64le());
  if (occupancy_ > config_.capacity) return false;
  if (occupancy_high_water_ > config_.capacity) return false;
  return in.ok();
}

void KernelBuffer::bind_metrics(obs::Registry& registry) {
  metrics_.accepted = &registry.counter("capture.accepted");
  metrics_.dropped = &registry.counter("capture.dropped");
  metrics_.occupancy = &registry.gauge("capture.occupancy");
  metrics_.occupancy_high_water =
      &registry.gauge("capture.occupancy_high_water");
}

}  // namespace dtr::capture
