// libpcap kernel-buffer model — the mechanism behind Figure 2.
//
// "libpcap uses a buffer where the kernel stores captured packets.  In case
// of traffic peaks, this buffer may be unsufficient and get full of packets,
// while some others still arrive.  The kernel cannot store these new packets
// in the buffer, and some are thus lost.  The number of lost packets is
// stored in a kernel structure" (§2.2).
//
// The model: a FIFO of at most `capacity` packets.  The user-space reader
// drains it at `drain_rate` packets per second, with occasional stalls
// (user-space pauses: disk flushes, scheduling) during which nothing is
// drained.  A packet arriving while the FIFO is full is dropped and counted
// — the equivalent of libpcap's ps_drop.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace dtr::capture {

struct KernelBufferConfig {
  std::size_t capacity = 4096;      // packets the kernel buffer can hold
  double drain_rate = 5000.0;       // packets/s the reader consumes
  double stall_per_hour = 1.2;      // expected reader stalls per hour
  SimTime stall_mean = 800 * kMillisecond;  // mean stall duration
  std::uint64_t seed = 99;
};

class KernelBuffer {
 public:
  explicit KernelBuffer(const KernelBufferConfig& config);

  /// Offer one packet at `now` (non-decreasing).  Returns true if the
  /// packet was buffered, false if it was dropped (ps_drop++).
  bool offer(SimTime now);

  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t occupancy() const { return occupancy_; }

  /// Highest occupancy ever reached — the peak buffer pressure behind the
  /// Figure 2 loss spikes.  Unlike occupancy(), never decreases.
  [[nodiscard]] std::size_t occupancy_high_water() const {
    return occupancy_high_water_;
  }

  /// Register `capture.*` instruments in `registry` and record into them
  /// from now on (accepted/dropped counters, occupancy gauges).
  void bind_metrics(obs::Registry& registry);

  /// Attach the operational telemetry channels (either may be null):
  /// drops log a rate-limited warning and land in the flight recorder,
  /// and every new high-water decile of capacity is recorded as a
  /// buffer-high-water crossing.
  void bind_telemetry(obs::Logger* log, obs::FlightRecorder* flight) {
    log_ = log;
    flight_ = flight;
  }

  /// Checkpoint codec: drain/stall clocks, RNG, occupancy and loss
  /// counters.  Telemetry/metrics bindings are re-established by the
  /// owner after restore, not serialized.
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  void drain_until(SimTime now);

  struct Metrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Gauge* occupancy = nullptr;
    obs::Gauge* occupancy_high_water = nullptr;
  };

  KernelBufferConfig config_;
  Rng rng_;
  std::size_t occupancy_ = 0;
  // Drain bookkeeping: fractional packets drained accumulate over time.
  SimTime last_drain_ = 0;
  double drain_credit_ = 0.0;
  // Reader stall state.
  SimTime next_stall_ = 0;
  SimTime stall_until_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t occupancy_high_water_ = 0;
  std::size_t high_water_decile_ = 0;  // last decile reported to telemetry
  Metrics metrics_;
  obs::Logger* log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dtr::capture
