// The decoding pipeline of §2.3: captured ethernet frames are checked,
// re-assembled at IP level, the UDP layer is stripped, and eDonkey
// datagrams go through structural validation then effective decoding.
//
// Statistics mirror the paper's §2.3 accounting: UDP packets captured,
// fragments, not-well-formed packets, eDonkey messages handled, and the
// fraction not decoded (split into structural vs effective failures —
// the paper reports 0.68 % undecoded, 78 % of those structural).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "proto/codec.hpp"
#include "sim/frames.hpp"

namespace dtr::decode {

/// A successfully decoded application-level message with its transport
/// context (needed by the anonymiser: the peer's address *is* data).
struct DecodedMessage {
  SimTime time = 0;
  std::uint32_t src_ip = 0;
  std::uint16_t src_port = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t dst_port = 0;
  proto::Message message;
};

using MessageSink = std::function<void(DecodedMessage&&)>;

struct DecodeStats {
  std::uint64_t frames = 0;
  std::uint64_t non_ipv4_frames = 0;      // ARP etc.
  std::uint64_t bad_ip_packets = 0;       // truncated / bad checksum
  std::uint64_t tcp_packets = 0;          // captured but not decoded (§2.2)
  std::uint64_t other_ip_packets = 0;     // ICMP, ...
  std::uint64_t udp_packets = 0;
  std::uint64_t udp_fragments = 0;        // paper: 2 981 of 14.1 B
  std::uint64_t udp_malformed = 0;        // paper: 169 not well-formed
  std::uint64_t edonkey_messages = 0;     // handled eDonkey datagrams
  std::uint64_t decoded = 0;
  std::uint64_t undecoded_structural = 0;
  std::uint64_t undecoded_effective = 0;

  [[nodiscard]] std::uint64_t undecoded() const {
    return undecoded_structural + undecoded_effective;
  }
  [[nodiscard]] double undecoded_fraction() const {
    return edonkey_messages == 0 ? 0.0
                                 : static_cast<double>(undecoded()) /
                                       static_cast<double>(edonkey_messages);
  }
  [[nodiscard]] double structural_share_of_undecoded() const {
    return undecoded() == 0 ? 0.0
                            : static_cast<double>(undecoded_structural) /
                                  static_cast<double>(undecoded());
  }
};

/// Streaming decoder: push frames in time order, receive messages through
/// the sink.  Stateless across messages except for IP reassembly.
class FrameDecoder {
 public:
  /// `server_ip`: datagrams not involving the server are counted but not
  /// decoded (the capture point sees only server traffic anyway).
  FrameDecoder(std::uint32_t server_ip, std::uint16_t server_port,
               MessageSink sink);

  void push(const sim::TimedFrame& frame);

  /// Decode one frame appending its messages to `out` instead of calling
  /// the sink — the batched pipelines decode whole frame runs into one
  /// reusable message vector, so the per-message std::function indirection
  /// disappears from the hot path.  Reassembly completions triggered by
  /// this frame land in `out` too (same attribution the sink path has).
  void decode_into(const sim::TimedFrame& frame,
                   std::vector<DecodedMessage>& out);

  /// Flush reassembly timeouts (call at end of stream).
  void finish(SimTime now);

  /// Register `decode.*` instruments in `registry` and record into them
  /// from now on: the DecodeStats fields as counters, decoded messages
  /// broken down by family (`decode.messages.<family>`), and every
  /// rejection broken down by cause (`decode.malformed.<error>`).  Also
  /// binds the embedded reassembler's `net.reassembly.*` instruments.
  /// Several decoders may bind to the same registry (the parallel
  /// pipeline's workers do): the striped counters merge their increments.
  void bind_metrics(obs::Registry& registry);

  /// Attach logging / flight-recorder channels (either may be null):
  /// every rejection path records a decode-reject flight event (a = the
  /// DecodeError code, 0 for transport-level rejects) and logs a
  /// rate-limited warning, so a malformed-datagram storm shows up in the
  /// post-mortem dump without flooding stderr.  Forwarded to the embedded
  /// reassembler too.
  void bind_telemetry(obs::Logger* log, obs::FlightRecorder* flight);

  [[nodiscard]] const DecodeStats& stats() const { return stats_; }
  [[nodiscard]] const net::Ipv4Reassembler::Stats& reassembly_stats() const {
    return reassembler_.stats();
  }

  /// Checkpoint codec: decode counters plus the embedded reassembler
  /// (in-flight fragments straddle snapshot boundaries).
  void save_state(ByteWriter& out) const;
  bool restore_state(ByteReader& in);

 private:
  void handle_ip(const net::Ipv4Packet& packet, SimTime time);

  struct Metrics {
    obs::Counter* frames = nullptr;
    obs::Counter* non_ipv4 = nullptr;
    obs::Counter* bad_ip = nullptr;
    obs::Counter* tcp = nullptr;
    obs::Counter* other_ip = nullptr;
    obs::Counter* udp_packets = nullptr;
    obs::Counter* udp_fragments = nullptr;
    obs::Counter* udp_malformed = nullptr;
    obs::Counter* edonkey = nullptr;
    obs::Counter* messages = nullptr;
    // Indexed by proto::Family (4 entries).
    std::array<obs::Counter*, 4> by_family{};
    // Indexed by proto::DecodeError (kNone slot unused).
    std::array<obs::Counter*, 8> by_error{};
  };

  std::uint32_t server_ip_;
  std::uint16_t server_port_;
  MessageSink sink_;
  std::vector<DecodedMessage>* batch_out_ = nullptr;  // set during decode_into
  net::Ipv4Reassembler reassembler_;
  DecodeStats stats_;
  Metrics metrics_;
  obs::Logger* log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dtr::decode
