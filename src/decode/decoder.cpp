#include "decode/decoder.hpp"

namespace dtr::decode {

namespace {
// Layer tags carried in the flight event's `b` field, so a post-mortem dump
// distinguishes where in the stack the rejection happened.  `a` holds the
// proto::DecodeError code (0 for rejects below the eDonkey layer).
constexpr std::uint64_t kRejectEdonkey = 0;
constexpr std::uint64_t kRejectIp = 2;
constexpr std::uint64_t kRejectUdp = 3;
}  // namespace

FrameDecoder::FrameDecoder(std::uint32_t server_ip, std::uint16_t server_port,
                           MessageSink sink)
    : server_ip_(server_ip),
      server_port_(server_port),
      sink_(std::move(sink)) {}

void FrameDecoder::push(const sim::TimedFrame& frame) {
  ++stats_.frames;
  obs::inc(metrics_.frames);

  auto eth = net::decode_ethernet(frame.bytes);
  if (!eth || eth->ether_type != net::kEtherTypeIpv4) {
    ++stats_.non_ipv4_frames;
    obs::inc(metrics_.non_ipv4);
    return;
  }

  auto ip = net::decode_ipv4(eth->payload);
  if (!ip) {
    ++stats_.bad_ip_packets;
    obs::inc(metrics_.bad_ip);
    obs::record(flight_, obs::FlightEvent::kDecodeReject, frame.time, 0,
                kRejectIp);
    DTR_LOG_WARN(log_, "decode", frame.time,
                 "bad IPv4 packet rejected (truncated or bad checksum)");
    return;
  }

  if (ip->protocol == net::kProtocolUdp) {
    ++stats_.udp_packets;
    obs::inc(metrics_.udp_packets);
    if (ip->is_fragment()) {
      ++stats_.udp_fragments;
      obs::inc(metrics_.udp_fragments);
    }
  } else if (ip->protocol == 6) {
    ++stats_.tcp_packets;  // captured, not decoded (paper §2.2)
    obs::inc(metrics_.tcp);
    return;
  } else {
    ++stats_.other_ip_packets;
    obs::inc(metrics_.other_ip);
    return;
  }

  auto whole = reassembler_.push(*ip, frame.time);
  if (!whole) return;  // fragment buffered, or duplicate dropped
  handle_ip(*whole, frame.time);
}

void FrameDecoder::decode_into(const sim::TimedFrame& frame,
                               std::vector<DecodedMessage>& out) {
  struct Redirect {  // exception-safe: push() may throw through us
    FrameDecoder* decoder;
    ~Redirect() { decoder->batch_out_ = nullptr; }
  } redirect{this};
  batch_out_ = &out;
  push(frame);
}

void FrameDecoder::handle_ip(const net::Ipv4Packet& packet, SimTime time) {
  auto udp = net::decode_udp(packet.payload, packet.src, packet.dst);
  if (!udp) {
    ++stats_.udp_malformed;
    obs::inc(metrics_.udp_malformed);
    obs::record(flight_, obs::FlightEvent::kDecodeReject, time, 0, kRejectUdp);
    DTR_LOG_WARN(log_, "decode", time,
                 "malformed UDP datagram rejected (length or checksum)");
    return;
  }

  // Only dialogs with the server are eDonkey traffic at this capture point.
  const bool to_server =
      packet.dst == server_ip_ && udp->dst_port == server_port_;
  const bool from_server =
      packet.src == server_ip_ && udp->src_port == server_port_;
  if (!to_server && !from_server) return;

  ++stats_.edonkey_messages;
  obs::inc(metrics_.edonkey);
  proto::DecodeResult result = proto::decode_datagram(udp->payload);
  if (!result.ok()) {
    if (proto::is_structural(result.error)) {
      ++stats_.undecoded_structural;
    } else {
      ++stats_.undecoded_effective;
    }
    obs::inc(metrics_.by_error[static_cast<std::size_t>(result.error)]);
    obs::record(flight_, obs::FlightEvent::kDecodeReject, time,
                static_cast<std::uint64_t>(result.error), kRejectEdonkey);
    DTR_LOG_WARN(log_, "decode", time,
                 "undecoded eDonkey datagram: "
                     << proto::decode_error_name(result.error));
    return;
  }

  ++stats_.decoded;
  obs::inc(metrics_.messages);
  obs::inc(metrics_.by_family[static_cast<std::size_t>(
      proto::family_of(*result.message))]);
  if (batch_out_ != nullptr || sink_) {
    DecodedMessage out;
    out.time = time;
    out.src_ip = packet.src;
    out.src_port = udp->src_port;
    out.dst_ip = packet.dst;
    out.dst_port = udp->dst_port;
    out.message = std::move(*result.message);
    if (batch_out_ != nullptr) {
      batch_out_->push_back(std::move(out));
    } else {
      sink_(std::move(out));
    }
  }
}

void FrameDecoder::finish(SimTime now) { reassembler_.expire(now); }

void FrameDecoder::save_state(ByteWriter& out) const {
  out.u64le(stats_.frames);
  out.u64le(stats_.non_ipv4_frames);
  out.u64le(stats_.bad_ip_packets);
  out.u64le(stats_.tcp_packets);
  out.u64le(stats_.other_ip_packets);
  out.u64le(stats_.udp_packets);
  out.u64le(stats_.udp_fragments);
  out.u64le(stats_.udp_malformed);
  out.u64le(stats_.edonkey_messages);
  out.u64le(stats_.decoded);
  out.u64le(stats_.undecoded_structural);
  out.u64le(stats_.undecoded_effective);
  reassembler_.save_state(out);
}

bool FrameDecoder::restore_state(ByteReader& in) {
  stats_.frames = in.u64le();
  stats_.non_ipv4_frames = in.u64le();
  stats_.bad_ip_packets = in.u64le();
  stats_.tcp_packets = in.u64le();
  stats_.other_ip_packets = in.u64le();
  stats_.udp_packets = in.u64le();
  stats_.udp_fragments = in.u64le();
  stats_.udp_malformed = in.u64le();
  stats_.edonkey_messages = in.u64le();
  stats_.decoded = in.u64le();
  stats_.undecoded_structural = in.u64le();
  stats_.undecoded_effective = in.u64le();
  return reassembler_.restore_state(in) && in.ok();
}

void FrameDecoder::bind_telemetry(obs::Logger* log,
                                  obs::FlightRecorder* flight) {
  log_ = log;
  flight_ = flight;
  reassembler_.bind_telemetry(log, flight);
}

void FrameDecoder::bind_metrics(obs::Registry& registry) {
  metrics_.frames = &registry.counter("decode.frames");
  metrics_.non_ipv4 = &registry.counter("decode.non_ipv4");
  metrics_.bad_ip = &registry.counter("decode.bad_ip");
  metrics_.tcp = &registry.counter("decode.tcp");
  metrics_.other_ip = &registry.counter("decode.other_ip");
  metrics_.udp_packets = &registry.counter("decode.udp.packets");
  metrics_.udp_fragments = &registry.counter("decode.udp.fragments");
  metrics_.udp_malformed = &registry.counter("decode.udp.malformed");
  metrics_.edonkey = &registry.counter("decode.edonkey");
  metrics_.messages = &registry.counter("decode.messages");
  for (std::size_t i = 0; i < metrics_.by_family.size(); ++i) {
    metrics_.by_family[i] = &registry.counter(
        std::string("decode.messages.") +
        proto::family_name(static_cast<proto::Family>(i)));
  }
  // Slot 0 is DecodeError::kNone — successes never land in by_error.
  for (std::size_t i = 1; i < metrics_.by_error.size(); ++i) {
    metrics_.by_error[i] = &registry.counter(
        std::string("decode.malformed.") +
        proto::decode_error_name(static_cast<proto::DecodeError>(i)));
  }
  reassembler_.bind_metrics(registry);
}

}  // namespace dtr::decode
