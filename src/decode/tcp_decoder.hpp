// TCP decode path: captured frames -> IP -> TCP stream reassembly ->
// eDonkey TCP frame extraction -> messages.  The paper's future work (§4),
// built on net::TcpStreamReassembler and proto::TcpMessageExtractor.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/clock.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "proto/tcp_codec.hpp"
#include "sim/frames.hpp"

namespace dtr::decode {

struct DecodedTcpMessage {
  SimTime time = 0;           // time of the segment completing the message
  net::FlowKey flow;          // direction (src -> dst)
  bool from_client = false;   // true when dst is the server
  proto::TcpMessage message;
};

using TcpMessageSink = std::function<void(DecodedTcpMessage&&)>;

struct TcpDecodeStats {
  std::uint64_t frames = 0;
  std::uint64_t tcp_segments = 0;
  std::uint64_t non_tcp = 0;
  std::uint64_t messages = 0;
  std::uint64_t undecoded = 0;
  std::uint64_t stream_gaps = 0;  // capture losses seen inside flows
};

class TcpFrameDecoder {
 public:
  TcpFrameDecoder(std::uint32_t server_ip, std::uint16_t server_port,
                  TcpMessageSink sink);

  void push(const sim::TimedFrame& frame);
  void finish(SimTime now);

  [[nodiscard]] const TcpDecodeStats& stats() const { return stats_; }
  [[nodiscard]] const net::TcpStreamReassembler::Stats& stream_stats() const {
    return reassembler_.stats();
  }

 private:
  void on_stream_data(const net::FlowKey& key, BytesView data, bool gap);

  std::uint32_t server_ip_;
  std::uint16_t server_port_;
  TcpMessageSink sink_;
  net::TcpStreamReassembler reassembler_;
  net::Ipv4Reassembler ip_reassembler_;
  std::map<net::FlowKey, std::unique_ptr<proto::TcpMessageExtractor>>
      extractors_;
  TcpDecodeStats stats_;
  SimTime current_time_ = 0;
};

}  // namespace dtr::decode
