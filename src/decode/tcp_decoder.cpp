#include "decode/tcp_decoder.hpp"

#include "net/ethernet.hpp"

namespace dtr::decode {

TcpFrameDecoder::TcpFrameDecoder(std::uint32_t server_ip,
                                 std::uint16_t server_port,
                                 TcpMessageSink sink)
    : server_ip_(server_ip),
      server_port_(server_port),
      sink_(std::move(sink)),
      reassembler_([this](const net::FlowKey& key, BytesView data, bool gap) {
        on_stream_data(key, data, gap);
      }) {}

void TcpFrameDecoder::on_stream_data(const net::FlowKey& key, BytesView data,
                                     bool gap) {
  // One extractor per flow direction; dialogs not involving the server's
  // eDonkey port are skipped (the mirror carries other TCP too).
  const bool to_server =
      key.dst_ip == server_ip_ && key.dst_port == server_port_;
  const bool from_server =
      key.src_ip == server_ip_ && key.src_port == server_port_;
  if (!to_server && !from_server) return;

  auto it = extractors_.find(key);
  if (it == extractors_.end()) {
    auto extractor = std::make_unique<proto::TcpMessageExtractor>(
        [this, key, to_server](proto::TcpMessage&& m) {
          ++stats_.messages;
          if (sink_) {
            DecodedTcpMessage out;
            out.time = current_time_;
            out.flow = key;
            out.from_client = to_server;
            out.message = std::move(m);
            sink_(std::move(out));
          }
        });
    it = extractors_.emplace(key, std::move(extractor)).first;
  }
  if (gap) {
    ++stats_.stream_gaps;
    it->second->resync();
  }
  std::uint64_t undecoded_before = it->second->stats().undecoded;
  it->second->feed(data);
  stats_.undecoded += it->second->stats().undecoded - undecoded_before;
}

void TcpFrameDecoder::push(const sim::TimedFrame& frame) {
  ++stats_.frames;
  current_time_ = frame.time;

  auto eth = net::decode_ethernet(frame.bytes);
  if (!eth || eth->ether_type != net::kEtherTypeIpv4) {
    ++stats_.non_tcp;
    return;
  }
  auto ip = net::decode_ipv4(eth->payload);
  if (!ip || ip->protocol != net::kProtocolTcp) {
    ++stats_.non_tcp;
    return;
  }
  auto whole = ip_reassembler_.push(*ip, frame.time);
  if (!whole) return;

  auto seg = net::decode_tcp(whole->payload, whole->src, whole->dst);
  if (!seg) {
    ++stats_.non_tcp;
    return;
  }
  ++stats_.tcp_segments;
  reassembler_.push(whole->src, whole->dst, *seg, frame.time);
}

void TcpFrameDecoder::finish(SimTime now) {
  reassembler_.expire(now + kHour);
  ip_reassembler_.expire(now + kHour);
}

}  // namespace dtr::decode
