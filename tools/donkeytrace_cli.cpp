// donkeytrace — the command-line face of the library.
//
//   donkeytrace campaign  --seed 1 --clients 2000 --files 20000 \
//                         --hours 48 --xml out.xml.dtz --pcap out.pcap
//   donkeytrace decode    --pcap out.pcap --xml replay.xml
//   donkeytrace analyze   --xml out.xml.dtz
//   donkeytrace compress  file.xml            (-> file.xml.dtz)
//   donkeytrace decompress file.xml.dtz       (-> file.xml)
//
// `campaign` runs the full measurement (Figure 1) at the requested scale;
// `decode` replays a pcap capture offline; `analyze` recomputes the §3
// statistics from a released dataset.  Files ending in .dtz are LZSS-
// compressed (footnote 3 of the paper).
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/campaign_stats.hpp"
#include "analysis/powerlaw.hpp"
#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "core/donkeytrace.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "xmlio/compress.hpp"

namespace {

using namespace dtr;

int usage() {
  std::cerr <<
      R"(usage: donkeytrace <command> [options]

commands:
  campaign    simulate a capture campaign end to end
              --seed N --clients N --files N --hours H
              --xml PATH[.dtz] --pcap PATH --background
              [--workers N] (N>1: parallel decode pipeline)
  decode      replay a pcap file through the offline decoder
              --pcap PATH [--xml PATH[.dtz]]
              [--server-ip A.B.C.D] [--server-port P]
  analyze     recompute the paper's statistics from a dataset
              --xml PATH[.dtz]  (or positional path)
  compress    LZSS-compress a file   (positional path, adds .dtz)
  decompress  expand a .dtz file     (positional path, strips .dtz)

metrics (campaign and decode):
  --metrics-out PATH      write a JSON metrics snapshot after the run
  --metrics-interval S    every S simulated seconds, print a metrics
                          table to stderr (deterministic: driven by
                          event/frame timestamps, not wall clock)
)";
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

/// Load a dataset file, transparently decompressing .dtz.
std::optional<std::string> load_dataset(const std::string& path) {
  auto raw = read_file(path);
  if (!raw) return std::nullopt;
  if (ends_with(path, ".dtz")) {
    auto expanded = xmlio::lz_decompress(*raw);
    if (!expanded) return std::nullopt;
    return std::string(expanded->begin(), expanded->end());
  }
  return std::string(raw->begin(), raw->end());
}

/// Store XML text to `path`, compressing when it ends in .dtz.
bool store_dataset(const std::string& path, const std::string& xml) {
  if (ends_with(path, ".dtz")) {
    Bytes data(xml.begin(), xml.end());
    Bytes compressed = xmlio::lz_compress(data);
    bool ok = write_file(path, compressed);
    if (ok) {
      std::cout << "wrote " << path << " (" << with_thousands(compressed.size())
                << " bytes, " << static_cast<int>(
                       100.0 * xmlio::lz_ratio(data, compressed))
                << "% of the XML)\n";
    }
    return ok;
  }
  std::ofstream out(path);
  out << xml;
  if (out) {
    std::cout << "wrote " << path << " (" << with_thousands(xml.size())
              << " bytes)\n";
  }
  return static_cast<bool>(out);
}

/// Periodic metrics emitter driven by *simulated* time: call tick() with
/// each event/frame timestamp and a snapshot table goes to stderr whenever
/// another interval has elapsed.  Deterministic — wall clock never read.
class MetricsTicker {
 public:
  MetricsTicker(const obs::Registry& registry, double interval_s)
      : registry_(registry),
        interval_(static_cast<SimTime>(interval_s * kSecond)) {
    if (interval_ == 0) interval_ = kSecond;
    next_ = interval_;
  }

  void tick(SimTime now) {
    while (now >= next_) {
      std::cerr << "[metrics @ " << to_seconds(next_) << "s]\n";
      registry_.snapshot().render_table(std::cerr);
      next_ += interval_;
    }
  }

 private:
  const obs::Registry& registry_;
  SimTime interval_;
  SimTime next_ = 0;
};

/// Write the registry's JSON snapshot to `path` ("-" = stdout).
bool write_metrics_json(const obs::Registry& registry,
                        const std::string& path) {
  obs::Snapshot snap = registry.snapshot();
  if (path == "-") {
    snap.render_json(std::cout);
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  snap.render_json(out);
  if (out) std::cout << "wrote " << path << " (metrics snapshot)\n";
  return static_cast<bool>(out);
}

void print_dataset_summary(const analysis::CampaignStats& stats) {
  analysis::print_table(
      std::cout, "dataset",
      {
          {"messages", with_thousands(stats.messages())},
          {"queries / answers", with_thousands(stats.queries()) + " / " +
                                    with_thousands(stats.answers())},
          {"distinct clients", with_thousands(stats.distinct_clients())},
          {"distinct fileIDs", with_thousands(stats.distinct_files())},
          {"provider relations", with_thousands(stats.provider_relations())},
          {"asker relations", with_thousands(stats.asker_relations())},
      });
}

void print_figures(const analysis::CampaignStats& stats) {
  struct Figure {
    const char* name;
    CountHistogram h;
  };
  Figure figures[] = {
      {"Fig 4: clients providing each file", stats.providers_per_file()},
      {"Fig 5: clients asking for each file", stats.askers_per_file()},
      {"Fig 6: files provided per client", stats.files_per_provider()},
      {"Fig 7: files asked per client", stats.files_per_asker()},
      {"Fig 8: file sizes (KB)", stats.size_distribution()},
  };
  for (const Figure& fig : figures) {
    if (fig.h.empty()) continue;
    std::cout << "\n== " << fig.name << " ==\n";
    analysis::print_loglog_plot(std::cout, fig.h, 64, 14);
    std::cout << analysis::describe_fit(analysis::fit_power_law_auto(fig.h))
              << "\n";
  }
}

int cmd_campaign(const cli::Args& args) {
  core::RunnerConfig cfg;
  cfg.campaign.seed = args.get_u64("seed", 42);
  cfg.campaign.population.client_count =
      static_cast<std::uint32_t>(args.get_u64("clients", 2000));
  cfg.campaign.catalog.file_count =
      static_cast<std::uint32_t>(args.get_u64("files", 20000));
  cfg.campaign.duration = args.get_u64("hours", 48) * kHour;
  cfg.workers = args.get_u64("workers", 0);
  cfg.pcap_path = args.get("pcap");
  if (args.has("background")) {
    sim::BackgroundConfig bg;
    bg.syn_per_minute = args.get_f64("syn-per-minute", 60.0);
    bg.data_rate_quiet = args.get_f64("tcp-quiet", 1.3);
    bg.data_rate_burst = args.get_f64("tcp-burst", 30.0);
    cfg.background = bg;
  }

  std::ostringstream xml;
  std::string xml_path = args.get("xml");
  if (!xml_path.empty()) cfg.xml_out = &xml;

  obs::Registry registry;
  std::string metrics_path = args.get("metrics-out");
  double metrics_interval = args.get_f64("metrics-interval", 0.0);
  std::unique_ptr<MetricsTicker> ticker;
  if (!metrics_path.empty() || metrics_interval > 0.0) {
    cfg.metrics = &registry;
  }
  if (metrics_interval > 0.0) {
    ticker = std::make_unique<MetricsTicker>(registry, metrics_interval);
    // Chain onto the anonymised-event stream: event times are simulated
    // capture times, which keeps periodic emission deterministic.
    cfg.extra_sink = [&ticker](const anon::AnonEvent& ev) {
      ticker->tick(ev.time);
    };
  }

  core::CampaignRunner runner(cfg);
  core::CampaignReport report = runner.run();

  analysis::print_table(
      std::cout, "campaign",
      {
          {"frames mirrored",
           with_thousands(report.frames_captured + report.frames_lost)},
          {"frames lost", with_thousands(report.frames_lost)},
          {"messages decoded", with_thousands(report.pipeline.decode.decoded)},
          {"undecoded", with_thousands(report.pipeline.decode.undecoded())},
          {"distinct clients", with_thousands(report.pipeline.distinct_clients)},
          {"distinct fileIDs", with_thousands(report.pipeline.distinct_files)},
      });
  print_dataset_summary(runner.stats());

  if (!xml_path.empty() && !store_dataset(xml_path, xml.str())) {
    std::cerr << "cannot write " << xml_path << "\n";
    return 1;
  }
  if (!cfg.pcap_path.empty()) {
    std::cout << "wrote " << cfg.pcap_path << "\n";
  }
  if (!metrics_path.empty() && !write_metrics_json(registry, metrics_path)) {
    std::cerr << "cannot write " << metrics_path << "\n";
    return 1;
  }
  return 0;
}

int cmd_decode(const cli::Args& args) {
  std::string pcap_path = args.get("pcap");
  if (pcap_path.empty() && !args.positional().empty()) {
    pcap_path = args.positional().front();
  }
  if (pcap_path.empty()) {
    std::cerr << "decode: --pcap required\n";
    return 2;
  }
  net::PcapReader reader(pcap_path);
  if (!reader.ok()) {
    std::cerr << "cannot read " << pcap_path << "\n";
    return 1;
  }
  std::uint32_t server_ip =
      cli::parse_ipv4(args.get("server-ip", "192.168.0.1")).value_or(0xC0A80001);
  auto server_port =
      static_cast<std::uint16_t>(args.get_u64("server-port", 4665));

  anon::DirectClientTable clients;
  anon::BucketedFileIdStore files;
  anon::Anonymiser anonymiser(clients, files);
  analysis::CampaignStats stats;
  std::ostringstream xml;
  std::unique_ptr<xmlio::DatasetWriter> writer;
  std::string xml_path = args.get("xml");
  if (!xml_path.empty()) writer = std::make_unique<xmlio::DatasetWriter>(xml);

  decode::FrameDecoder decoder(
      server_ip, server_port, [&](decode::DecodedMessage&& msg) {
        bool from_client = msg.dst_ip == server_ip;
        anon::AnonEvent ev = anonymiser.anonymise(
            msg.time, from_client ? msg.src_ip : msg.dst_ip, msg.message);
        stats.consume(ev);
        if (writer) writer->write(ev);
      });

  obs::Registry registry;
  std::string metrics_path = args.get("metrics-out");
  double metrics_interval = args.get_f64("metrics-interval", 0.0);
  std::unique_ptr<MetricsTicker> ticker;
  if (!metrics_path.empty() || metrics_interval > 0.0) {
    decoder.bind_metrics(registry);
    anonymiser.bind_metrics(registry);
    stats.bind_metrics(registry);
  }
  if (metrics_interval > 0.0) {
    ticker = std::make_unique<MetricsTicker>(registry, metrics_interval);
  }

  std::uint64_t frames = 0;
  SimTime last = 0;
  while (auto rec = reader.next()) {
    decoder.push(sim::TimedFrame{rec->timestamp, rec->data});
    last = rec->timestamp;
    ++frames;
    if (ticker) ticker->tick(rec->timestamp);
  }
  decoder.finish(last);
  if (writer) writer->finish();

  const decode::DecodeStats& d = decoder.stats();
  analysis::print_table(
      std::cout, "decode",
      {
          {"frames", with_thousands(frames)},
          {"UDP packets", with_thousands(d.udp_packets)},
          {"TCP packets (skipped)", with_thousands(d.tcp_packets)},
          {"eDonkey messages", with_thousands(d.edonkey_messages)},
          {"decoded", with_thousands(d.decoded)},
          {"undecoded", with_thousands(d.undecoded())},
      });
  print_dataset_summary(stats);
  if (!xml_path.empty() && !store_dataset(xml_path, xml.str())) {
    std::cerr << "cannot write " << xml_path << "\n";
    return 1;
  }
  if (!metrics_path.empty() && !write_metrics_json(registry, metrics_path)) {
    std::cerr << "cannot write " << metrics_path << "\n";
    return 1;
  }
  return 0;
}

int cmd_analyze(const cli::Args& args) {
  std::string path = args.get("xml");
  if (path.empty() && !args.positional().empty()) {
    path = args.positional().front();
  }
  if (path.empty()) {
    std::cerr << "analyze: dataset path required\n";
    return 2;
  }
  auto xml = load_dataset(path);
  if (!xml) {
    std::cerr << "cannot load " << path << "\n";
    return 1;
  }
  // Validate against the formal spec (docs/DATASET_SPEC.md) first; a
  // dataset that violates its invariants yields meaningless statistics.
  {
    std::istringstream in(*xml);
    auto violations = xmlio::DatasetValidator::validate_document(in);
    if (!violations.empty()) {
      std::cerr << "dataset violates the specification ("
                << violations.size() << " finding(s)); first: ["
                << violations.front().rule << "] "
                << violations.front().message << " at event "
                << violations.front().event_index << "\n";
      if (!args.has("force")) return 1;
      std::cerr << "--force given: analyzing anyway\n";
    }
  }

  std::istringstream in(*xml);
  xmlio::DatasetReader reader(in);
  analysis::CampaignStats stats;
  while (auto ev = reader.next()) stats.consume(*ev);
  if (!reader.ok()) {
    std::cerr << "malformed dataset: " << reader.error() << "\n";
    return 1;
  }
  print_dataset_summary(stats);
  print_figures(stats);
  return 0;
}

int cmd_compress(const cli::Args& args, bool compress) {
  if (args.positional().empty()) {
    std::cerr << (compress ? "compress" : "decompress") << ": path required\n";
    return 2;
  }
  const std::string& path = args.positional().front();
  auto data = read_file(path);
  if (!data) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  if (compress) {
    Bytes out = xmlio::lz_compress(*data);
    std::string out_path = path + ".dtz";
    if (!write_file(out_path, out)) return 1;
    std::printf("%s -> %s (%.1f%%)\n", path.c_str(), out_path.c_str(),
                100.0 * xmlio::lz_ratio(*data, out));
  } else {
    auto out = xmlio::lz_decompress(*data);
    if (!out) {
      std::cerr << path << " is not a valid .dtz file\n";
      return 1;
    }
    std::string out_path =
        ends_with(path, ".dtz") ? path.substr(0, path.size() - 4)
                                : path + ".out";
    if (!write_file(out_path, *out)) return 1;
    std::printf("%s -> %s (%s bytes)\n", path.c_str(), out_path.c_str(),
                with_thousands(out->size()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dtr::cli::Args args(argc, argv);

  int rc;
  if (args.command() == "campaign") {
    rc = cmd_campaign(args);
  } else if (args.command() == "decode") {
    rc = cmd_decode(args);
  } else if (args.command() == "analyze") {
    rc = cmd_analyze(args);
  } else if (args.command() == "compress") {
    rc = cmd_compress(args, true);
  } else if (args.command() == "decompress") {
    rc = cmd_compress(args, false);
  } else {
    return usage();
  }

  for (const std::string& name : args.unused()) {
    std::cerr << "warning: unknown option --" << name << "\n";
  }
  return rc;
}
