// donkeytrace — the command-line face of the library.
//
//   donkeytrace campaign  --seed 1 --clients 2000 --files 20000 \
//                         --hours 48 --xml out.xml.dtz --pcap out.pcap
//   donkeytrace decode    --pcap out.pcap --xml replay.xml
//   donkeytrace analyze   --xml out.xml.dtz
//   donkeytrace compress  file.xml            (-> file.xml.dtz)
//   donkeytrace decompress file.xml.dtz       (-> file.xml)
//
// `campaign` runs the full measurement (Figure 1) at the requested scale;
// `decode` replays a pcap capture offline; `analyze` recomputes the §3
// statistics from a released dataset.  Files ending in .dtz are LZSS-
// compressed (footnote 3 of the paper).
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/campaign_stats.hpp"
#include "analysis/powerlaw.hpp"
#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "core/donkeytrace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/resource.hpp"
#include "obs/snapshot.hpp"
#include "obs/timeseries.hpp"
#include "xmlio/compress.hpp"

// Opt this binary into global allocation counting (one TU per binary): the
// --profile-out resource trajectory reports real operator-new totals
// instead of zeros.
#include "obs/alloc_counting.hpp"

namespace {

using namespace dtr;

int usage() {
  std::cerr <<
      R"(usage: donkeytrace <command> [options]

commands:
  campaign    simulate a capture campaign end to end
              --seed N --clients N --files N --hours H
              --xml PATH[.dtz] --pcap PATH --background
              [--workers N] (N>1: parallel decode pipeline)
              [--anon-shards N] (anonymiser table shards, power of two;
                                      default 8; never changes output)
              [--server-shards N] (index shards, power of two; default 4)
              [--search-cache N] (LRU search-cache entries; default 0 = off)
              [--checkpoint-dir DIR] (periodic resumable snapshots, one
                                      file per boundary)
              [--checkpoint-interval-hours H] (boundary spacing in
                                      simulated hours; default 168 = 1 week)
              [--resume-from FILE] (continue an interrupted campaign from
                                      a snapshot; outputs are byte-identical
                                      to an uninterrupted run)
              [--scenario NAME] (hostile-regime preset: steady, flash_crowd,
                                      query_storm, polluter_flood, churn_wave,
                                      restart_under_load; joins the snapshot
                                      fingerprint, prints a figure-style
                                      scenario summary after the run)
  decode      replay a pcap file through the offline decoder
              --pcap PATH [--xml PATH[.dtz]]
              [--server-ip A.B.C.D] [--server-port P]
  analyze     recompute the paper's statistics from a dataset
              --xml PATH[.dtz]  (or positional path)
  compress    LZSS-compress a file   (positional path, adds .dtz)
  decompress  expand a .dtz file     (positional path, strips .dtz)
  jsoncheck   validate JSON (or per-line JSONL) artifacts
              (positional paths; .jsonl files are checked line by line)

telemetry (campaign and decode):
  --metrics-out PATH      write a JSON metrics snapshot after the run
  --metrics-interval S    sample every S simulated seconds: print a
                          metrics table to stderr and set the series
                          interval (deterministic: driven by event/frame
                          timestamps, not wall clock)
  --series-out PATH       write the metrics time series as JSONL (one
                          sample per interval; default interval 1 hour)
  --series-csv PATH       write the same series as wide CSV
  --log-level LEVEL       enable structured logs on stderr at
                          debug|info|warn|error (rate-limited per
                          simulated time; off when omitted)
  --flight-dump PATH      write the flight-recorder post-mortem (JSON,
                          "-" = stderr as text) after the run; written
                          automatically when the pipeline fails
  --flight-events N       per-thread flight ring capacity (default 1024)
  --profile-out PATH      (campaign) profile the run: per-thread time
                          attribution (working/queue_wait/park/lock_wait),
                          wall-clock RSS/allocation/occupancy sampling and
                          checkpoint costs; writes the bottleneck report
                          as JSON to PATH ("-" = stdout) and a summary
                          table to stderr.  Wall-clock only: output bytes
                          (XML, series, checkpoints) are unchanged
)";
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

/// Load a dataset file, transparently decompressing .dtz.
std::optional<std::string> load_dataset(const std::string& path) {
  auto raw = read_file(path);
  if (!raw) return std::nullopt;
  if (ends_with(path, ".dtz")) {
    auto expanded = xmlio::lz_decompress(*raw);
    if (!expanded) return std::nullopt;
    return std::string(expanded->begin(), expanded->end());
  }
  return std::string(raw->begin(), raw->end());
}

/// Store XML text to `path`, compressing when it ends in .dtz.
bool store_dataset(const std::string& path, const std::string& xml) {
  if (ends_with(path, ".dtz")) {
    Bytes data(xml.begin(), xml.end());
    Bytes compressed = xmlio::lz_compress(data);
    bool ok = write_file(path, compressed);
    if (ok) {
      std::cout << "wrote " << path << " (" << with_thousands(compressed.size())
                << " bytes, " << static_cast<int>(
                       100.0 * xmlio::lz_ratio(data, compressed))
                << "% of the XML)\n";
    }
    return ok;
  }
  std::ofstream out(path);
  out << xml;
  if (out) {
    std::cout << "wrote " << path << " (" << with_thousands(xml.size())
              << " bytes)\n";
  }
  return static_cast<bool>(out);
}

/// Periodic metrics emitter driven by *simulated* time: call tick() with
/// each event/frame timestamp and a snapshot table goes to stderr whenever
/// another interval has elapsed.  Deterministic — wall clock never read.
class MetricsTicker {
 public:
  MetricsTicker(const obs::Registry& registry, double interval_s)
      : registry_(registry),
        interval_(static_cast<SimTime>(interval_s * kSecond)) {
    if (interval_ == 0) interval_ = kSecond;
    next_ = interval_;
  }

  void tick(SimTime now) {
    while (now >= next_) {
      std::cerr << "[metrics @ " << to_seconds(next_) << "s]\n";
      registry_.snapshot().render_table(std::cerr);
      next_ += interval_;
    }
  }

 private:
  const obs::Registry& registry_;
  SimTime interval_;
  SimTime next_ = 0;
};

/// Write the registry's JSON snapshot to `path` ("-" = stdout).
bool write_metrics_json(const obs::Registry& registry,
                        const std::string& path) {
  obs::Snapshot snap = registry.snapshot();
  if (path == "-") {
    snap.render_json(std::cout);
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  snap.render_json(out);
  if (out) std::cout << "wrote " << path << " (metrics snapshot)\n";
  return static_cast<bool>(out);
}

/// The telemetry channels behind the shared campaign/decode flags
/// (--series-out/--series-csv/--log-level/--flight-dump/--flight-events).
struct Telemetry {
  obs::StreamSink log_sink{std::cerr};
  obs::Logger logger;
  bool log_enabled = false;
  std::unique_ptr<obs::FlightRecorder> flight;
  std::unique_ptr<obs::TimeSeriesRecorder> series;
  std::string series_path;
  std::string series_csv_path;
  std::string flight_path;

  obs::Logger* log() { return log_enabled ? &logger : nullptr; }
};

/// Parse the telemetry flags; returns a usage error code or 0.
/// `always_flight` forces a flight recorder even without --flight-dump so
/// a failing run can still produce a post-mortem.
int setup_telemetry(const cli::Args& args, const obs::Registry& registry,
                    double metrics_interval, bool always_flight,
                    Telemetry& t) {
  t.series_path = args.get("series-out");
  t.series_csv_path = args.get("series-csv");
  t.flight_path = args.get("flight-dump");
  std::string level_name = args.get("log-level");
  if (!level_name.empty()) {
    obs::LogLevel level;
    if (!obs::parse_log_level(level_name, level)) {
      std::cerr << "unknown log level: " << level_name << "\n";
      return 2;
    }
    t.logger.set_level(level);
    t.logger.set_sink(&t.log_sink);
    t.log_enabled = true;
  }
  if (always_flight || !t.flight_path.empty()) {
    t.flight = std::make_unique<obs::FlightRecorder>(
        args.get_u64("flight-events", 1024));
  }
  if (!t.series_path.empty() || !t.series_csv_path.empty()) {
    obs::TimeSeriesOptions options;
    options.interval = metrics_interval > 0.0
                           ? static_cast<SimTime>(metrics_interval * kSecond)
                           : kHour;
    t.series = std::make_unique<obs::TimeSeriesRecorder>(registry, options);
  }
  return 0;
}

/// Write the recorded series to the requested JSONL/CSV paths.
bool write_series_files(const Telemetry& t) {
  if (!t.series) return true;
  if (!t.series_path.empty()) {
    std::ofstream out(t.series_path);
    if (!out) return false;
    t.series->write_jsonl(out);
    if (!out) return false;
    std::cout << "wrote " << t.series_path << " ("
              << t.series->samples().size() << " samples)\n";
  }
  if (!t.series_csv_path.empty()) {
    std::ofstream out(t.series_csv_path);
    if (!out) return false;
    t.series->write_csv(out);
    if (!out) return false;
    std::cout << "wrote " << t.series_csv_path << " ("
              << t.series->samples().size() << " samples)\n";
  }
  return true;
}

/// Dump the flight recorder: JSON to the --flight-dump path, or text to
/// stderr when the path is "-" (or when dumping a failure post-mortem
/// without an explicit path).
bool dump_flight(const Telemetry& t) {
  if (!t.flight) return true;
  // Dump every surviving event (the rings bound the total): a mid-run
  // failure keeps draining frames afterwards, so a tail-truncated dump
  // could show only post-failure traffic and miss the error itself.
  constexpr auto kAll = static_cast<std::size_t>(-1);
  if (t.flight_path.empty() || t.flight_path == "-") {
    t.flight->dump_text(std::cerr, kAll);
    return true;
  }
  std::ofstream out(t.flight_path);
  if (!out) return false;
  t.flight->dump_json(out, kAll);
  if (out) std::cout << "wrote " << t.flight_path << " (flight dump)\n";
  return static_cast<bool>(out);
}

void print_dataset_summary(const analysis::CampaignStats& stats) {
  analysis::print_table(
      std::cout, "dataset",
      {
          {"messages", with_thousands(stats.messages())},
          {"queries / answers", with_thousands(stats.queries()) + " / " +
                                    with_thousands(stats.answers())},
          {"distinct clients", with_thousands(stats.distinct_clients())},
          {"distinct fileIDs", with_thousands(stats.distinct_files())},
          {"provider relations", with_thousands(stats.provider_relations())},
          {"asker relations", with_thousands(stats.asker_relations())},
      });
}

void print_figures(const analysis::CampaignStats& stats) {
  struct Figure {
    const char* name;
    CountHistogram h;
  };
  Figure figures[] = {
      {"Fig 4: clients providing each file", stats.providers_per_file()},
      {"Fig 5: clients asking for each file", stats.askers_per_file()},
      {"Fig 6: files provided per client", stats.files_per_provider()},
      {"Fig 7: files asked per client", stats.files_per_asker()},
      {"Fig 8: file sizes (KB)", stats.size_distribution()},
  };
  for (const Figure& fig : figures) {
    if (fig.h.empty()) continue;
    std::cout << "\n== " << fig.name << " ==\n";
    analysis::print_loglog_plot(std::cout, fig.h, 64, 14);
    std::cout << analysis::describe_fit(analysis::fit_power_law_auto(fig.h))
              << "\n";
  }
}

int cmd_campaign(const cli::Args& args) {
  core::RunnerConfig cfg;
  cfg.campaign.seed = args.get_u64("seed", 42);
  cfg.campaign.population.client_count =
      static_cast<std::uint32_t>(args.get_u64("clients", 2000));
  cfg.campaign.catalog.file_count =
      static_cast<std::uint32_t>(args.get_u64("files", 20000));
  cfg.campaign.duration = args.get_u64("hours", 48) * kHour;
  cfg.campaign.server.index_shards = args.get_u64("server-shards", 4);
  cfg.campaign.server.search_cache_entries = args.get_u64("search-cache", 0);
  cfg.workers = args.get_u64("workers", 0);
  cfg.anon_shards = args.get_u64("anon-shards", 8);
  cfg.pcap_path = args.get("pcap");
  cfg.checkpoint_dir = args.get("checkpoint-dir");
  cfg.resume_from = args.get("resume-from");
  const double ckpt_hours = args.get_f64("checkpoint-interval-hours", 0.0);
  if (ckpt_hours > 0.0) {
    cfg.checkpoint_interval = static_cast<SimTime>(ckpt_hours * kHour);
  }
  if (args.has("background")) {
    sim::BackgroundConfig bg;
    bg.syn_per_minute = args.get_f64("syn-per-minute", 60.0);
    bg.data_rate_quiet = args.get_f64("tcp-quiet", 1.3);
    bg.data_rate_burst = args.get_f64("tcp-burst", 30.0);
    cfg.background = bg;
  }
  const std::string scenario_name = args.get("scenario");
  if (!scenario_name.empty()) {
    const auto preset = sim::scenario_preset(scenario_name);
    if (!preset) {
      std::cerr << "campaign: unknown scenario '" << scenario_name
                << "' (known:";
      for (const std::string& name : sim::scenario_names()) {
        std::cerr << " " << name;
      }
      std::cerr << ")\n";
      return 2;
    }
    cfg.campaign.scenario = *preset;
  }

  std::ostringstream xml;
  std::string xml_path = args.get("xml");
  if (!xml_path.empty()) cfg.xml_out = &xml;

  obs::Registry registry;
  std::string metrics_path = args.get("metrics-out");
  double metrics_interval = args.get_f64("metrics-interval", 0.0);
  Telemetry telemetry;
  // A campaign always carries a flight recorder: a mid-run pipeline
  // failure must leave a post-mortem even when --flight-dump was not
  // anticipated.
  if (int rc = setup_telemetry(args, registry, metrics_interval,
                               /*always_flight=*/true, telemetry)) {
    return rc;
  }
  std::unique_ptr<MetricsTicker> ticker;
  if (!metrics_path.empty() || metrics_interval > 0.0 ||
      telemetry.series != nullptr) {
    cfg.metrics = &registry;
  }
  if (metrics_interval > 0.0) {
    ticker = std::make_unique<MetricsTicker>(registry, metrics_interval);
    // Chain onto the anonymised-event stream: event times are simulated
    // capture times, which keeps periodic emission deterministic.
    cfg.extra_sink = [&ticker](const anon::AnonEvent& ev) {
      ticker->tick(ev.time);
    };
  }
  cfg.log = telemetry.log();
  cfg.flight = telemetry.flight.get();
  cfg.series = telemetry.series.get();

  // --profile-out: attribute thread time and sample resources.  Purely
  // wall-clock observers — the profiled run's XML/series/checkpoint bytes
  // match an unprofiled run's.
  const std::string profile_path = args.get("profile-out");
  std::unique_ptr<obs::Profiler> profiler;
  std::unique_ptr<obs::ResourceSampler> sampler;
  if (!profile_path.empty()) {
    cfg.metrics = &registry;  // the occupancy gauges the sampler tracks
    profiler = std::make_unique<obs::Profiler>();
    cfg.profiler = profiler.get();
    obs::ResourceSamplerOptions opts;
    opts.counters = {"pipeline.frames", "pipeline.messages", "anon.events"};
    opts.gauges = {{"capture.occupancy", "capture.buffer.occupancy"},
                   {"pipeline.queue.merge", ""},
                   {"pipeline.queue.writer", ""},
                   {"pipeline.queue.frames", ""},
                   {"pipeline.queue.messages", ""}};
    sampler = std::make_unique<obs::ResourceSampler>(&registry, opts);
  }
  if (telemetry.log_enabled && cfg.metrics != nullptr) {
    telemetry.logger.bind_metrics(registry);
  }

  core::CampaignRunner runner(cfg);
  if (sampler) sampler->start();
  core::CampaignReport report = runner.run();
  if (sampler) sampler->stop();
  if (telemetry.log_enabled) {
    telemetry.logger.emit_suppressed_summary(cfg.campaign.duration);
  }

  if (!report.pipeline.ok()) {
    std::cerr << "pipeline failed: " << report.pipeline.error << "\n";
    dump_flight(telemetry);
    return 1;
  }

  analysis::print_table(
      std::cout, "campaign",
      {
          {"frames mirrored",
           with_thousands(report.frames_captured + report.frames_lost)},
          {"frames lost", with_thousands(report.frames_lost)},
          {"messages decoded", with_thousands(report.pipeline.decode.decoded)},
          {"undecoded", with_thousands(report.pipeline.decode.undecoded())},
          {"distinct clients", with_thousands(report.pipeline.distinct_clients)},
          {"distinct fileIDs", with_thousands(report.pipeline.distinct_files)},
      });
  print_dataset_summary(runner.stats());
  if (const auto scenario_summary = core::build_scenario_summary(
          runner.simulator().scenario(), report)) {
    std::cout << "\n";
    analysis::print_scenario_summary(std::cout, *scenario_summary);
  }

  if (!xml_path.empty() && !store_dataset(xml_path, xml.str())) {
    std::cerr << "cannot write " << xml_path << "\n";
    return 1;
  }
  if (!cfg.pcap_path.empty()) {
    std::cout << "wrote " << cfg.pcap_path << "\n";
  }
  if (!metrics_path.empty() && !write_metrics_json(registry, metrics_path)) {
    std::cerr << "cannot write " << metrics_path << "\n";
    return 1;
  }
  if (!write_series_files(telemetry)) {
    std::cerr << "cannot write series files\n";
    return 1;
  }
  if (!telemetry.flight_path.empty() && !dump_flight(telemetry)) {
    std::cerr << "cannot write " << telemetry.flight_path << "\n";
    return 1;
  }
  if (profiler) {
    const obs::BottleneckReport bottleneck =
        obs::build_bottleneck_report(*profiler, sampler.get());
    bottleneck.render_text(std::cerr);
    if (profile_path == "-") {
      bottleneck.render_json(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(profile_path);
      if (!out) {
        std::cerr << "cannot write " << profile_path << "\n";
        return 1;
      }
      bottleneck.render_json(out);
      out << "\n";
      if (!out) {
        std::cerr << "cannot write " << profile_path << "\n";
        return 1;
      }
      std::cout << "wrote " << profile_path << " (bottleneck report)\n";
    }
  }
  return 0;
}

int cmd_decode(const cli::Args& args) {
  std::string pcap_path = args.get("pcap");
  if (pcap_path.empty() && !args.positional().empty()) {
    pcap_path = args.positional().front();
  }
  if (pcap_path.empty()) {
    std::cerr << "decode: --pcap required\n";
    return 2;
  }
  net::PcapReader reader(pcap_path);
  if (!reader.ok()) {
    std::cerr << "cannot read " << pcap_path << "\n";
    return 1;
  }
  std::uint32_t server_ip =
      cli::parse_ipv4(args.get("server-ip", "192.168.0.1")).value_or(0xC0A80001);
  auto server_port =
      static_cast<std::uint16_t>(args.get_u64("server-port", 4665));

  anon::DirectClientTable clients;
  anon::BucketedFileIdStore files;
  anon::Anonymiser anonymiser(clients, files);
  analysis::CampaignStats stats;
  std::ostringstream xml;
  std::unique_ptr<xmlio::DatasetWriter> writer;
  std::string xml_path = args.get("xml");
  if (!xml_path.empty()) writer = std::make_unique<xmlio::DatasetWriter>(xml);

  decode::FrameDecoder decoder(
      server_ip, server_port, [&](decode::DecodedMessage&& msg) {
        bool from_client = msg.dst_ip == server_ip;
        anon::AnonEvent ev = anonymiser.anonymise(
            msg.time, from_client ? msg.src_ip : msg.dst_ip, msg.message);
        stats.consume(ev);
        if (writer) writer->write(ev);
      });

  obs::Registry registry;
  std::string metrics_path = args.get("metrics-out");
  double metrics_interval = args.get_f64("metrics-interval", 0.0);
  Telemetry telemetry;
  if (int rc = setup_telemetry(args, registry, metrics_interval,
                               /*always_flight=*/false, telemetry)) {
    return rc;
  }
  std::unique_ptr<MetricsTicker> ticker;
  if (!metrics_path.empty() || metrics_interval > 0.0 ||
      telemetry.series != nullptr) {
    decoder.bind_metrics(registry);
    anonymiser.bind_metrics(registry);
    stats.bind_metrics(registry);
    if (telemetry.log_enabled) telemetry.logger.bind_metrics(registry);
  }
  decoder.bind_telemetry(telemetry.log(), telemetry.flight.get());
  anonymiser.bind_telemetry(telemetry.log());
  if (metrics_interval > 0.0) {
    ticker = std::make_unique<MetricsTicker>(registry, metrics_interval);
  }

  std::uint64_t frames = 0;
  SimTime last = 0;
  while (auto rec = reader.next()) {
    // Offline replay is single-threaded, so sampling straight off the frame
    // timestamp is already exact — no pipeline to quiesce.
    while (telemetry.series && telemetry.series->due(rec->timestamp)) {
      telemetry.series->sample();
    }
    decoder.push(sim::TimedFrame{rec->timestamp, rec->data});
    last = rec->timestamp;
    ++frames;
    if (ticker) ticker->tick(rec->timestamp);
  }
  decoder.finish(last);
  if (writer) writer->finish();
  if (telemetry.series) telemetry.series->finish(last);
  if (telemetry.log_enabled) telemetry.logger.emit_suppressed_summary(last);

  const decode::DecodeStats& d = decoder.stats();
  analysis::print_table(
      std::cout, "decode",
      {
          {"frames", with_thousands(frames)},
          {"UDP packets", with_thousands(d.udp_packets)},
          {"TCP packets (skipped)", with_thousands(d.tcp_packets)},
          {"eDonkey messages", with_thousands(d.edonkey_messages)},
          {"decoded", with_thousands(d.decoded)},
          {"undecoded", with_thousands(d.undecoded())},
      });
  print_dataset_summary(stats);
  if (!xml_path.empty() && !store_dataset(xml_path, xml.str())) {
    std::cerr << "cannot write " << xml_path << "\n";
    return 1;
  }
  if (!metrics_path.empty() && !write_metrics_json(registry, metrics_path)) {
    std::cerr << "cannot write " << metrics_path << "\n";
    return 1;
  }
  if (!write_series_files(telemetry)) {
    std::cerr << "cannot write series files\n";
    return 1;
  }
  if (!telemetry.flight_path.empty() && !dump_flight(telemetry)) {
    std::cerr << "cannot write " << telemetry.flight_path << "\n";
    return 1;
  }
  return 0;
}

int cmd_analyze(const cli::Args& args) {
  std::string path = args.get("xml");
  if (path.empty() && !args.positional().empty()) {
    path = args.positional().front();
  }
  if (path.empty()) {
    std::cerr << "analyze: dataset path required\n";
    return 2;
  }
  auto xml = load_dataset(path);
  if (!xml) {
    std::cerr << "cannot load " << path << "\n";
    return 1;
  }
  // Validate against the formal spec (docs/DATASET_SPEC.md) first; a
  // dataset that violates its invariants yields meaningless statistics.
  {
    std::istringstream in(*xml);
    auto violations = xmlio::DatasetValidator::validate_document(in);
    if (!violations.empty()) {
      std::cerr << "dataset violates the specification ("
                << violations.size() << " finding(s)); first: ["
                << violations.front().rule << "] "
                << violations.front().message << " at event "
                << violations.front().event_index << "\n";
      if (!args.has("force")) return 1;
      std::cerr << "--force given: analyzing anyway\n";
    }
  }

  std::istringstream in(*xml);
  xmlio::DatasetReader reader(in);
  analysis::CampaignStats stats;
  while (auto ev = reader.next()) stats.consume(*ev);
  if (!reader.ok()) {
    std::cerr << "malformed dataset: " << reader.error() << "\n";
    return 1;
  }
  print_dataset_summary(stats);
  print_figures(stats);
  return 0;
}

int cmd_compress(const cli::Args& args, bool compress) {
  if (args.positional().empty()) {
    std::cerr << (compress ? "compress" : "decompress") << ": path required\n";
    return 2;
  }
  const std::string& path = args.positional().front();
  auto data = read_file(path);
  if (!data) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  if (compress) {
    Bytes out = xmlio::lz_compress(*data);
    std::string out_path = path + ".dtz";
    if (!write_file(out_path, out)) return 1;
    std::printf("%s -> %s (%.1f%%)\n", path.c_str(), out_path.c_str(),
                100.0 * xmlio::lz_ratio(*data, out));
  } else {
    auto out = xmlio::lz_decompress(*data);
    if (!out) {
      std::cerr << path << " is not a valid .dtz file\n";
      return 1;
    }
    std::string out_path =
        ends_with(path, ".dtz") ? path.substr(0, path.size() - 4)
                                : path + ".out";
    if (!write_file(out_path, *out)) return 1;
    std::printf("%s -> %s (%s bytes)\n", path.c_str(), out_path.c_str(),
                with_thousands(out->size()).c_str());
  }
  return 0;
}

int cmd_jsoncheck(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "jsoncheck: at least one path required\n";
    return 2;
  }
  int rc = 0;
  for (const std::string& path : args.positional()) {
    auto data = read_file(path);
    if (!data) {
      std::cerr << path << ": cannot read\n";
      rc = 1;
      continue;
    }
    std::string_view text(reinterpret_cast<const char*>(data->data()),
                          data->size());
    const bool jsonl = ends_with(path, ".jsonl");
    const bool valid =
        jsonl ? obs::jsonl_valid(text) : obs::json_valid(text);
    if (valid) {
      std::cout << path << ": valid " << (jsonl ? "JSONL" : "JSON") << "\n";
    } else {
      std::cerr << path << ": INVALID " << (jsonl ? "JSONL" : "JSON") << "\n";
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  dtr::cli::Args args(argc, argv);

  int rc;
  if (args.command() == "campaign") {
    rc = cmd_campaign(args);
  } else if (args.command() == "decode") {
    rc = cmd_decode(args);
  } else if (args.command() == "analyze") {
    rc = cmd_analyze(args);
  } else if (args.command() == "compress") {
    rc = cmd_compress(args, true);
  } else if (args.command() == "decompress") {
    rc = cmd_compress(args, false);
  } else if (args.command() == "jsoncheck") {
    rc = cmd_jsoncheck(args);
  } else {
    return usage();
  }

  for (const std::string& name : args.unused()) {
    std::cerr << "warning: unknown option --" << name << "\n";
  }
  return rc;
}
