// Minimal command-line argument parser for the donkeytrace CLI.
// Supports `--name value`, `--name=value` and boolean `--flag` forms; the
// first non-flag token is the subcommand, further bare tokens are
// positional.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dtr::cli {

class Args {
 public:
  Args(int argc, char** argv);

  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_f64(const std::string& name, double fallback) const;

  /// Options that were passed but never read — typo detection.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> read_;
};

/// Parse dotted IPv4 ("1.2.3.4") to host-order u32; nullopt on bad input.
std::optional<std::uint32_t> parse_ipv4(const std::string& s);

}  // namespace dtr::cli
