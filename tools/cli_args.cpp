#include "cli_args.hpp"

#include <charconv>
#include <cstdlib>

namespace dtr::cli {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string body = token.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "true";
      }
    } else if (command_.empty()) {
      command_ = token;
    } else {
      positional_.push_back(token);
    }
  }
}

bool Args::has(const std::string& name) const {
  read_[name] = true;
  return options_.count(name) != 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  read_[name] = true;
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::uint64_t Args::get_u64(const std::string& name,
                            std::uint64_t fallback) const {
  std::string raw = get(name);
  if (raw.empty()) return fallback;
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), value);
  return ec == std::errc{} && ptr == raw.data() + raw.size() ? value
                                                             : fallback;
}

double Args::get_f64(const std::string& name, double fallback) const {
  std::string raw = get(name);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  double value = std::strtod(raw.c_str(), &end);
  return end == raw.c_str() + raw.size() ? value : fallback;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    if (read_.count(name) == 0) out.push_back(name);
  }
  return out;
}

std::optional<std::uint32_t> parse_ipv4(const std::string& s) {
  std::uint32_t out = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (pos >= s.size() || s[pos] != '.') return std::nullopt;
      ++pos;
    }
    if (pos >= s.size()) return std::nullopt;
    std::uint32_t value = 0;
    std::size_t digits = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      value = value * 10 + static_cast<std::uint32_t>(s[pos] - '0');
      ++pos;
      ++digits;
      if (value > 255 || digits > 3) return std::nullopt;
    }
    if (digits == 0) return std::nullopt;
    out = (out << 8) | value;
  }
  return pos == s.size() ? std::optional<std::uint32_t>(out) : std::nullopt;
}

}  // namespace dtr::cli
