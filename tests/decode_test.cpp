// Decoder tests: the eth -> IP -> UDP -> eDonkey chain, §2.3 statistics,
// and end-to-end agreement with the simulator's ground truth.
#include <gtest/gtest.h>

#include "decode/decoder.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"
#include "proto/codec.hpp"
#include "sim/background.hpp"
#include "sim/campaign.hpp"

namespace dtr::decode {
namespace {

constexpr std::uint32_t kServerIp = 0xC0A80001;
constexpr std::uint16_t kServerPort = 4665;

sim::TimedFrame make_frame(SimTime t, std::uint32_t src, std::uint16_t sport,
                           std::uint32_t dst, std::uint16_t dport,
                           Bytes payload, std::uint8_t protocol = 17) {
  net::UdpDatagram udp;
  udp.src_port = sport;
  udp.dst_port = dport;
  udp.payload = std::move(payload);
  net::Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = protocol;
  ip.identification = 77;
  ip.payload = net::encode_udp(udp, src, dst);
  net::EthernetFrame eth;
  eth.payload = net::encode_ipv4(ip);
  return sim::TimedFrame{t, net::encode_ethernet(eth)};
}

TEST(Decoder, DecodesAQueryToTheServer) {
  std::vector<DecodedMessage> out;
  FrameDecoder dec(kServerIp, kServerPort,
                   [&](DecodedMessage&& m) { out.push_back(std::move(m)); });
  Bytes payload = proto::encode_message(proto::ServStatReq{123});
  dec.push(make_frame(kSecond, 0x0A000001, 4662, kServerIp, kServerPort,
                      payload));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, kSecond);
  EXPECT_EQ(out[0].src_ip, 0x0A000001u);
  EXPECT_EQ(out[0].dst_port, kServerPort);
  EXPECT_EQ(std::get<proto::ServStatReq>(out[0].message).challenge, 123u);
  EXPECT_EQ(dec.stats().decoded, 1u);
  EXPECT_EQ(dec.stats().udp_packets, 1u);
}

TEST(Decoder, IgnoresTcpButCountsIt) {
  FrameDecoder dec(kServerIp, kServerPort, nullptr);
  // The paper: tcp is captured but not decoded.
  Bytes tcpish(40, 0);
  net::Ipv4Packet ip;
  ip.src = 1;
  ip.dst = kServerIp;
  ip.protocol = 6;
  ip.payload = tcpish;
  net::EthernetFrame eth;
  eth.payload = net::encode_ipv4(ip);
  dec.push(sim::TimedFrame{0, net::encode_ethernet(eth)});
  EXPECT_EQ(dec.stats().tcp_packets, 1u);
  EXPECT_EQ(dec.stats().udp_packets, 0u);
  EXPECT_EQ(dec.stats().edonkey_messages, 0u);
}

TEST(Decoder, IgnoresNonIpv4Frames) {
  FrameDecoder dec(kServerIp, kServerPort, nullptr);
  net::EthernetFrame arp;
  arp.ether_type = net::kEtherTypeArp;
  arp.payload = Bytes(28, 0);
  dec.push(sim::TimedFrame{0, net::encode_ethernet(arp)});
  EXPECT_EQ(dec.stats().non_ipv4_frames, 1u);
}

TEST(Decoder, CountsBadIpPackets) {
  FrameDecoder dec(kServerIp, kServerPort, nullptr);
  net::EthernetFrame eth;
  eth.payload = Bytes(30, 0x45);  // garbage "IP" bytes
  dec.push(sim::TimedFrame{0, net::encode_ethernet(eth)});
  EXPECT_EQ(dec.stats().bad_ip_packets, 1u);
}

TEST(Decoder, CountsMalformedUdp) {
  FrameDecoder dec(kServerIp, kServerPort, nullptr);
  net::Ipv4Packet ip;
  ip.src = 1;
  ip.dst = kServerIp;
  ip.payload = Bytes(4, 0);  // shorter than a UDP header
  net::EthernetFrame eth;
  eth.payload = net::encode_ipv4(ip);
  dec.push(sim::TimedFrame{0, net::encode_ethernet(eth)});
  EXPECT_EQ(dec.stats().udp_malformed, 1u);
}

TEST(Decoder, SkipsDialogsNotInvolvingTheServer) {
  std::vector<DecodedMessage> out;
  FrameDecoder dec(kServerIp, kServerPort,
                   [&](DecodedMessage&& m) { out.push_back(std::move(m)); });
  Bytes payload = proto::encode_message(proto::ServStatReq{1});
  dec.push(make_frame(0, 0x0A000001, 4662, 0x0B000001, 4665 + 1, payload));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dec.stats().udp_packets, 1u);
  EXPECT_EQ(dec.stats().edonkey_messages, 0u);
}

TEST(Decoder, ClassifiesStructuralVsEffectiveFailures) {
  FrameDecoder dec(kServerIp, kServerPort, nullptr);
  // Structural: bad opcode.
  Bytes bad_op = proto::encode_message(proto::ServStatReq{1});
  bad_op[1] = 0x55;
  dec.push(make_frame(0, 1, 4662, kServerIp, kServerPort, bad_op));
  // Effective: trailing garbage on a variable-length message.
  Bytes trailing = proto::encode_message(proto::ServerDescRes{"a", "b"});
  trailing.push_back(0xFF);
  dec.push(make_frame(0, 1, 4662, kServerIp, kServerPort, trailing));

  EXPECT_EQ(dec.stats().edonkey_messages, 2u);
  EXPECT_EQ(dec.stats().undecoded_structural, 1u);
  EXPECT_EQ(dec.stats().undecoded_effective, 1u);
  EXPECT_DOUBLE_EQ(dec.stats().undecoded_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(dec.stats().structural_share_of_undecoded(), 0.5);
}

TEST(Decoder, ReassemblesFragmentedAnnounce) {
  std::vector<DecodedMessage> out;
  FrameDecoder dec(kServerIp, kServerPort,
                   [&](DecodedMessage&& m) { out.push_back(std::move(m)); });

  // Build a publish message too big for one MTU.
  proto::PublishReq req;
  for (int i = 0; i < 100; ++i) {
    proto::FileEntry e;
    e.file_id.bytes[0] = static_cast<std::uint8_t>(i);
    e.client_id = 5;
    e.tags = {proto::Tag::str(proto::TagName::kFileName,
                              "some long file name " + std::to_string(i) +
                                  ".mp3"),
              proto::Tag::u32(proto::TagName::kFileSize, 1024)};
    req.files.push_back(std::move(e));
  }
  Bytes payload = proto::encode_message(proto::Message(std::move(req)));
  ASSERT_GT(payload.size(), 1500u);

  net::UdpDatagram udp;
  udp.src_port = 4662;
  udp.dst_port = kServerPort;
  udp.payload = payload;
  net::Ipv4Packet ip;
  ip.src = 0x0A000001;
  ip.dst = kServerIp;
  ip.identification = 42;
  ip.payload = net::encode_udp(udp, ip.src, ip.dst);
  auto pieces = net::fragment_ipv4(ip, 1500);
  ASSERT_GT(pieces.size(), 1u);
  for (const auto& piece : pieces) {
    net::EthernetFrame eth;
    eth.payload = net::encode_ipv4(piece);
    dec.push(sim::TimedFrame{kSecond, net::encode_ethernet(eth)});
  }

  ASSERT_EQ(out.size(), 1u);
  const auto& decoded = std::get<proto::PublishReq>(out[0].message);
  EXPECT_EQ(decoded.files.size(), 100u);
  EXPECT_EQ(dec.stats().udp_fragments, pieces.size());
  EXPECT_EQ(dec.reassembly_stats().reassembled, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end against the simulator
// ---------------------------------------------------------------------------

TEST(Decoder, EndToEndMatchesGroundTruth) {
  sim::CampaignConfig cfg;
  cfg.seed = 11;
  cfg.duration = 3 * kHour;
  cfg.population.client_count = 50;
  cfg.catalog.file_count = 300;
  cfg.catalog.vocabulary = 120;
  cfg.population.collector_share_max = 600;
  cfg.population.scanner_ask_max = 300;
  sim::CampaignSimulator simulator(cfg);

  std::uint64_t decoded_messages = 0;
  FrameDecoder dec(cfg.server_ip, cfg.server_port,
                   [&](DecodedMessage&&) { ++decoded_messages; });
  simulator.run([&](const sim::TimedFrame& f) { dec.push(f); });
  dec.finish(cfg.duration);

  const sim::GroundTruth& truth = simulator.truth();
  const DecodeStats& stats = dec.stats();

  EXPECT_EQ(stats.frames, truth.frames);
  EXPECT_EQ(stats.udp_fragments, truth.ip_fragments);
  // Every non-faulted message decodes; faulted ones *may* still decode
  // (body corruption is not always fatal).
  EXPECT_EQ(stats.decoded, decoded_messages);
  EXPECT_GE(stats.decoded, truth.total_messages() - truth.faulted_datagrams);
  EXPECT_LE(stats.decoded, truth.total_messages());
  EXPECT_EQ(stats.edonkey_messages + stats.udp_malformed,
            truth.total_messages())
      << "every simulated message reaches the eDonkey layer unless its "
         "truncation broke the UDP header itself";
  EXPECT_LE(stats.undecoded(), truth.faulted_datagrams);
}

TEST(Decoder, BackgroundTrafficFullySkipped) {
  sim::BackgroundConfig cfg;
  cfg.duration = kMinute;
  cfg.syn_per_minute = 1000;
  cfg.data_rate_quiet = 100;
  sim::BackgroundTraffic bg(cfg);
  FrameDecoder dec(kServerIp, kServerPort, nullptr);
  bg.run([&](const sim::TimedFrame& f) { dec.push(f); });
  EXPECT_EQ(dec.stats().tcp_packets, dec.stats().frames);
  EXPECT_EQ(dec.stats().edonkey_messages, 0u);
}

}  // namespace
}  // namespace dtr::decode
