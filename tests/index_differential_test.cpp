// Differential battery for the sharded server index.
//
// The sharded FileIndex promises answers *byte-identical* to the
// pre-sharding single-map index for any shard count.  This test keeps that
// old index alive as a ReferenceIndex oracle, replays one seeded workload
// (publishes, batched publishes, retracts, and every search shape the
// query language supports) against the oracle and against sharded indexes
// with N = 1, 2, 4, 8 — cache off and cache on — and compares a full
// transcript of observable results: per-op publish booleans, per-op search
// answers in order, and the end-state records (metadata + exact source
// lists).
//
// The same file also hammers one sharded index and a ServerWorkerPool from
// several threads; those tests assert only invariants (the transcript is
// schedule-dependent) and exist chiefly for the tsan preset, which runs
// this binary via the `concurrency` label.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/server_pool.hpp"
#include "hash/md4.hpp"
#include "server/index.hpp"
#include "server/server.hpp"

namespace dtr::server {
namespace {

// ---------------------------------------------------------------------------
// ReferenceIndex: the pre-sharding FileIndex, verbatim except that the
// keyword-less full scan walks publication order (the sharded index's
// canonical order; the old unordered_map walk was the one observable the
// rewrite deliberately canonicalised).
// ---------------------------------------------------------------------------

class ReferenceIndex {
 public:
  bool publish(const proto::FileEntry& entry) {
    auto [it, is_new_file] = files_.try_emplace(entry.file_id);
    FileRecord& record = it->second;
    if (is_new_file) {
      if (auto name = proto::tag_string(entry.tags, proto::TagName::kFileName))
        record.name = *name;
      if (auto size = proto::tag_u32(entry.tags, proto::TagName::kFileSize))
        record.size = *size;
      if (auto type = proto::tag_string(entry.tags, proto::TagName::kFileType))
        record.type = *type;
      for (const std::string& kw : tokenize_keywords(record.name)) {
        keywords_[kw].push_back(entry.file_id);
      }
      publish_order_.push_back(entry.file_id);
    }
    Source src{entry.client_id, entry.port};
    auto found =
        std::find_if(record.sources.begin(), record.sources.end(),
                     [&](const Source& s) { return s.client == src.client; });
    if (found != record.sources.end()) {
      found->port = src.port;  // refresh
      return false;
    }
    record.sources.push_back(src);
    by_client_[entry.client_id].push_back(entry.file_id);
    ++total_sources_;
    return true;
  }

  void retract_client(proto::ClientId client) {
    auto it = by_client_.find(client);
    if (it == by_client_.end()) return;
    for (const FileId& id : it->second) {
      auto fit = files_.find(id);
      if (fit == files_.end()) continue;
      auto& sources = fit->second.sources;
      auto src =
          std::find_if(sources.begin(), sources.end(),
                       [&](const Source& s) { return s.client == client; });
      if (src != sources.end()) {
        sources.erase(src);
        --total_sources_;
      }
      if (sources.empty()) {
        unindex_file(id, fit->second);
        files_.erase(fit);
      }
    }
    by_client_.erase(it);
  }

  [[nodiscard]] std::vector<FileId> search(const proto::SearchExpr& expr,
                                           std::size_t limit) const {
    std::vector<FileId> out;
    std::vector<std::string> words;
    expr.collect_keywords(words);

    if (!words.empty()) {
      const std::vector<FileId>* best = nullptr;
      for (const std::string& word : words) {
        auto it = keywords_.find(to_lower(word));
        if (it == keywords_.end()) continue;
        if (best == nullptr || it->second.size() < best->size()) {
          best = &it->second;
        }
      }
      if (best == nullptr) return out;
      for (const FileId& id : *best) {
        auto fit = files_.find(id);
        if (fit != files_.end() && FileIndex::matches(expr, fit->second)) {
          out.push_back(id);
          if (out.size() >= limit) break;
        }
      }
      return out;
    }

    for (const FileId& id : publish_order_) {
      auto fit = files_.find(id);
      if (fit != files_.end() && FileIndex::matches(expr, fit->second)) {
        out.push_back(id);
        if (out.size() >= limit) break;
      }
    }
    return out;
  }

  [[nodiscard]] const FileRecord* find(const FileId& id) const {
    auto it = files_.find(id);
    return it == files_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] std::uint64_t source_count() const { return total_sources_; }
  [[nodiscard]] const std::vector<FileId>& publish_order() const {
    return publish_order_;
  }

 private:
  void unindex_file(const FileId& id, const FileRecord& record) {
    for (const std::string& kw : tokenize_keywords(record.name)) {
      auto it = keywords_.find(kw);
      if (it == keywords_.end()) continue;
      auto& postings = it->second;
      postings.erase(std::remove(postings.begin(), postings.end(), id),
                     postings.end());
      if (postings.empty()) keywords_.erase(it);
    }
    publish_order_.erase(
        std::remove(publish_order_.begin(), publish_order_.end(), id),
        publish_order_.end());
  }

  std::unordered_map<FileId, FileRecord, DigestHasher> files_;
  std::unordered_map<std::string, std::vector<FileId>> keywords_;
  std::unordered_map<proto::ClientId, std::vector<FileId>> by_client_;
  std::vector<FileId> publish_order_;
  std::uint64_t total_sources_ = 0;
};

// ---------------------------------------------------------------------------
// Seeded workload
// ---------------------------------------------------------------------------

struct Op {
  enum class Kind { kPublish, kBatch, kRetract, kSearch } kind = Kind::kPublish;
  std::vector<proto::FileEntry> entries;  // kPublish (one) / kBatch
  proto::ClientId client = 0;             // kRetract
  proto::SearchExprPtr expr;              // kSearch
  std::size_t limit = 0;                  // kSearch
};

const std::vector<std::string>& vocabulary() {
  static const std::vector<std::string> words = {
      "alpha", "bravo",  "charlie", "delta",  "echo",    "foxtrot",
      "golf",  "hotel",  "india",   "juliet", "kilo",    "lima",
      "mike",  "motown", "nectar",  "oscar",  "papa",    "quebec",
      "romeo", "sierra", "tango",   "uniform"};
  return words;
}

std::string random_name(Rng& r) {
  const auto& vocab = vocabulary();
  const std::size_t n = 2 + r.below(3);
  std::string name;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) name += ' ';
    name += vocab[r.below(vocab.size())];
  }
  name += r.chance(0.5) ? ".mp3" : ".avi";
  return name;
}

proto::FileEntry random_entry(Rng& r, const std::vector<std::string>& names,
                              std::size_t client_count) {
  const std::string& name = names[r.below(names.size())];
  proto::FileEntry e;
  e.file_id = Md4::digest(name);
  e.client_id = static_cast<proto::ClientId>(1 + r.below(client_count));
  e.port = static_cast<std::uint16_t>(1024 + r.below(60000));
  e.tags = {proto::Tag::str(proto::TagName::kFileName, name),
            proto::Tag::u32(proto::TagName::kFileSize,
                            static_cast<std::uint32_t>(1000 + r.below(1u << 30))),
            proto::Tag::str(proto::TagName::kFileType,
                            r.chance(0.5) ? "audio" : "video")};
  return e;
}

proto::SearchExprPtr random_expr(Rng& r) {
  const auto& vocab = vocabulary();
  auto word = [&] {
    // A sliver of never-published keywords exercises the empty-answer path.
    if (r.chance(0.05)) return std::string("zebra-missing");
    return vocab[r.below(vocab.size())];
  };
  switch (r.below(8)) {
    case 0:
      return proto::SearchExpr::keyword(word());
    case 1:
      return proto::SearchExpr::keywords({word(), word()});
    case 2:
      return proto::SearchExpr::keywords({word(), word(), word()});
    case 3:
      return proto::SearchExpr::boolean(proto::BoolOp::kOr,
                                        proto::SearchExpr::keyword(word()),
                                        proto::SearchExpr::keyword(word()));
    case 4:
      return proto::SearchExpr::boolean(
          proto::BoolOp::kAndNot, proto::SearchExpr::keyword(word()),
          proto::SearchExpr::meta_string(r.chance(0.5) ? "audio" : "video",
                                         proto::TagName::kFileType));
    case 5:
      return proto::SearchExpr::boolean(
          proto::BoolOp::kAnd, proto::SearchExpr::keyword(word()),
          proto::SearchExpr::numeric(
              static_cast<std::uint32_t>(r.below(1u << 30)),
              r.chance(0.5) ? proto::NumCmp::kMin : proto::NumCmp::kMax,
              proto::TagName::kFileSize));
    case 6:
      // Keyword-less metadata query: exercises the canonical full scan.
      return proto::SearchExpr::numeric(
          static_cast<std::uint32_t>(r.below(1u << 30)),
          r.chance(0.5) ? proto::NumCmp::kMin : proto::NumCmp::kMax,
          proto::TagName::kFileSize);
    default:
      return proto::SearchExpr::boolean(
          proto::BoolOp::kAnd, proto::SearchExpr::keyword(word()),
          proto::SearchExpr::numeric(1 + static_cast<std::uint32_t>(r.below(4)),
                                     proto::NumCmp::kMin,
                                     proto::TagName::kAvailability));
  }
}

std::vector<Op> make_workload(std::uint64_t seed, std::size_t op_count) {
  Rng r(seed);
  constexpr std::size_t kClientCount = 48;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 300; ++i) names.push_back(random_name(r));

  std::vector<Op> ops;
  ops.reserve(op_count);
  for (std::size_t i = 0; i < op_count; ++i) {
    Op op;
    const std::uint64_t roll = r.below(100);
    if (roll < 35) {
      op.kind = Op::Kind::kPublish;
      op.entries.push_back(random_entry(r, names, kClientCount));
    } else if (roll < 45) {
      op.kind = Op::Kind::kBatch;
      const std::size_t n = 3 + r.below(24);
      for (std::size_t j = 0; j < n; ++j) {
        op.entries.push_back(random_entry(r, names, kClientCount));
      }
    } else if (roll < 55) {
      op.kind = Op::Kind::kRetract;
      op.client = static_cast<proto::ClientId>(1 + r.below(kClientCount + 4));
    } else {
      op.kind = Op::Kind::kSearch;
      op.expr = random_expr(r);
      const std::uint64_t pick = r.below(3);
      op.limit = pick == 0 ? 1 : pick == 1 ? 7 : 201;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string ids_to_string(const std::vector<FileId>& ids) {
  std::ostringstream os;
  for (const FileId& id : ids) os << id.hex() << ';';
  return os.str();
}

/// One transcript line per op: everything an outside observer can see.
std::vector<std::string> run_reference(ReferenceIndex& index,
                                       const std::vector<Op>& ops) {
  std::vector<std::string> transcript;
  transcript.reserve(ops.size());
  for (const Op& op : ops) {
    std::ostringstream line;
    switch (op.kind) {
      case Op::Kind::kPublish:
        line << "pub:" << index.publish(op.entries[0]);
        break;
      case Op::Kind::kBatch: {
        line << "batch:";
        for (const proto::FileEntry& e : op.entries) {
          line << index.publish(e);
        }
        break;
      }
      case Op::Kind::kRetract:
        index.retract_client(op.client);
        line << "retract:" << index.file_count() << ','
             << index.source_count();
        break;
      case Op::Kind::kSearch:
        line << "search:" << ids_to_string(index.search(*op.expr, op.limit));
        break;
    }
    transcript.push_back(line.str());
  }
  return transcript;
}

std::vector<std::string> run_sharded(FileIndex& index,
                                     const std::vector<Op>& ops) {
  std::vector<std::string> transcript;
  transcript.reserve(ops.size());
  std::vector<bool> new_pair;
  for (const Op& op : ops) {
    std::ostringstream line;
    switch (op.kind) {
      case Op::Kind::kPublish:
        line << "pub:" << index.publish(op.entries[0]);
        break;
      case Op::Kind::kBatch: {
        line << "batch:";
        index.publish_batch(op.entries, &new_pair);
        for (bool b : new_pair) line << b;
        break;
      }
      case Op::Kind::kRetract:
        index.retract_client(op.client);
        line << "retract:" << index.file_count() << ','
             << index.source_count();
        break;
      case Op::Kind::kSearch:
        line << "search:" << ids_to_string(index.search(*op.expr, op.limit));
        break;
    }
    transcript.push_back(line.str());
  }
  return transcript;
}

void expect_same_end_state(const ReferenceIndex& ref, const FileIndex& idx,
                           const std::string& label) {
  EXPECT_EQ(idx.file_count(), ref.file_count()) << label;
  EXPECT_EQ(idx.source_count(), ref.source_count()) << label;
  for (const FileId& id : ref.publish_order()) {
    const FileRecord* expected = ref.find(id);
    ASSERT_NE(expected, nullptr) << label;
    bool found = idx.visit(id, [&](const FileRecord& actual) {
      EXPECT_EQ(actual.name, expected->name) << label << ' ' << id.hex();
      EXPECT_EQ(actual.size, expected->size) << label << ' ' << id.hex();
      EXPECT_EQ(actual.type, expected->type) << label << ' ' << id.hex();
      EXPECT_EQ(actual.sources, expected->sources)
          << label << ' ' << id.hex() << ": exact source list, exact order";
    });
    EXPECT_TRUE(found) << label << ": missing " << id.hex();
  }
}

class IndexDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexDifferential, ShardedMatchesReferenceForAllShardCounts) {
  const std::vector<Op> ops = make_workload(GetParam(), 2200);

  ReferenceIndex reference;
  const std::vector<std::string> expected = run_reference(reference, ops);

  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (std::size_t cache : {0u, 64u}) {
      FileIndexConfig cfg;
      cfg.shards = shards;
      cfg.search_cache_entries = cache;
      FileIndex index(cfg);
      ASSERT_EQ(index.shard_count(), shards);
      const std::vector<std::string> actual = run_sharded(index, ops);
      const std::string label = "shards=" + std::to_string(shards) +
                                " cache=" + std::to_string(cache);
      ASSERT_EQ(actual.size(), expected.size()) << label;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i], expected[i]) << label << " diverged at op " << i;
      }
      expect_same_end_state(reference, index, label);
      if (cache > 0) {
        const FileIndex::CacheStats cs = index.cache_stats();
        EXPECT_GT(cs.hits + cs.partial_hits + cs.misses, 0u)
            << label << ": the cache was never consulted";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDifferential,
                         ::testing::Values(1u, 42u, 20260807u));

TEST(IndexDifferential, TinyCacheEvictsAndStaysCorrect) {
  const std::vector<Op> ops = make_workload(7u, 1200);
  ReferenceIndex reference;
  const std::vector<std::string> expected = run_reference(reference, ops);

  FileIndexConfig cfg;
  cfg.shards = 4;
  cfg.search_cache_entries = 2;  // thrash: almost every lookup evicts
  FileIndex index(cfg);
  const std::vector<std::string> actual = run_sharded(index, ops);
  EXPECT_EQ(actual, expected);
  EXPECT_GT(index.cache_stats().evictions, 0u);
}

TEST(IndexDifferential, ShardCountIsRoundedAndClamped) {
  EXPECT_EQ(FileIndex(FileIndexConfig{0, 0}).shard_count(), 1u);
  EXPECT_EQ(FileIndex(FileIndexConfig{3, 0}).shard_count(), 4u);
  EXPECT_EQ(FileIndex(FileIndexConfig{5, 0}).shard_count(), 8u);
  EXPECT_EQ(FileIndex(FileIndexConfig{1000, 0}).shard_count(), 64u);
}

// ---------------------------------------------------------------------------
// Concurrency (invariants only; the interesting verdict is tsan's)
// ---------------------------------------------------------------------------

TEST(IndexConcurrency, ParallelPublishSearchRetractKeepsInvariants) {
  FileIndexConfig cfg;
  cfg.shards = 8;
  cfg.search_cache_entries = 32;
  FileIndex index(cfg);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&index, t] {
      Rng r(1000u + static_cast<std::uint64_t>(t));
      std::vector<std::string> names;
      for (std::size_t i = 0; i < 60; ++i) names.push_back(random_name(r));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t roll = r.below(10);
        if (roll < 4) {
          index.publish(random_entry(r, names, 16));
        } else if (roll < 5) {
          std::vector<proto::FileEntry> batch;
          for (int j = 0; j < 8; ++j) {
            batch.push_back(random_entry(r, names, 16));
          }
          index.publish_batch(batch);
        } else if (roll < 6) {
          index.retract_client(
              static_cast<proto::ClientId>(1 + r.below(16)));
        } else {
          auto expr = random_expr(r);
          std::vector<FileId> ids = index.search(*expr, 201);
          EXPECT_LE(ids.size(), 201u);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Post-quiescence, the lock-free counters must agree with a full walk.
  // Regenerating each thread's name pool (same seeds) covers every file
  // that can possibly exist in the index.
  std::uint64_t sources_via_visit = 0;
  std::size_t files_via_visit = 0;
  std::vector<std::string> names;
  for (int t = 0; t < kThreads; ++t) {
    Rng tr(1000u + static_cast<std::uint64_t>(t));
    for (std::size_t i = 0; i < 60; ++i) names.push_back(random_name(tr));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  for (const std::string& name : names) {
    index.visit(Md4::digest(name), [&](const FileRecord& rec) {
      ++files_via_visit;
      sources_via_visit += rec.sources.size();
      EXPECT_FALSE(rec.sources.empty()) << "empty records must be dropped";
    });
  }
  EXPECT_EQ(files_via_visit, index.file_count());
  EXPECT_EQ(sources_via_visit, index.source_count());
}

TEST(ServerPool, ConcurrentMixedTrafficReconciles) {
  ServerConfig cfg;
  cfg.index_shards = 8;
  cfg.search_cache_entries = 32;
  EdonkeyServer server(cfg);

  std::atomic<std::uint64_t> sink_answers{0};
  core::ServerWorkerPool pool(
      server, /*workers=*/4, /*queue_capacity=*/256,
      [&sink_answers](const core::ServerQuery&,
                      std::vector<proto::Message> answers) {
        sink_answers.fetch_add(answers.size(), std::memory_order_relaxed);
      });

  Rng r(4242);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 80; ++i) names.push_back(random_name(r));

  std::uint64_t submitted = 0;
  for (int i = 0; i < 1200; ++i) {
    const proto::ClientId client =
        static_cast<proto::ClientId>(1 + r.below(32));
    const std::uint64_t roll = r.below(10);
    proto::Message msg;
    if (roll < 4) {
      proto::PublishReq req;
      const std::size_t n = 1 + r.below(6);
      for (std::size_t j = 0; j < n; ++j) {
        req.files.push_back(random_entry(r, names, 32));
      }
      msg = std::move(req);
    } else if (roll < 7) {
      proto::FileSearchReq req;
      req.expr = random_expr(r);
      msg = std::move(req);
    } else if (roll < 9) {
      proto::GetSourcesReq req;
      req.file_ids.push_back(Md4::digest(names[r.below(names.size())]));
      msg = std::move(req);
    } else {
      msg = proto::ServStatReq{static_cast<std::uint32_t>(i)};
    }
    ASSERT_TRUE(pool.submit(core::ServerQuery{client, 4662, std::move(msg),
                                              static_cast<SimTime>(i)}));
    ++submitted;
    if (i == 600) pool.drain();  // mid-stream drain must not deadlock
  }
  pool.drain();

  // Quiesced: atomic ServerStats must reconcile exactly with the pool's
  // own counters and the sink's view.
  const ServerStats stats = server.stats();  // load-copying snapshot
  EXPECT_EQ(pool.submitted(), submitted);
  EXPECT_EQ(pool.processed(), submitted);
  EXPECT_EQ(stats.queries.load(), submitted);
  EXPECT_EQ(pool.answers(), sink_answers.load());
  EXPECT_EQ(stats.answers.load(), pool.answers());
  EXPECT_LE(stats.searches.load() + stats.source_requests.load() +
                stats.publishes.load(),
            stats.queries.load());

  pool.finish();
  EXPECT_FALSE(pool.submit(core::ServerQuery{1, 4662,
                                             proto::ServStatReq{1}, 0}))
      << "submits after finish() are rejected";
}

}  // namespace
}  // namespace dtr::server
