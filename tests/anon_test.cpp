// Anonymisation tests: the clientID direct-index table vs the classical
// baselines, the bucketed fileID store (including the paper's Figure 3
// pathology), and full-message anonymisation.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "anon/anonymiser.hpp"
#include "anon/client_table.hpp"
#include "anon/fileid_store.hpp"
#include "anon/rejected_schemes.hpp"
#include "common/rng.hpp"
#include "hash/md4.hpp"
#include "hash/md5.hpp"
#include "proto/messages.hpp"
#include "workload/behavior.hpp"
#include "workload/idstream.hpp"

namespace dtr::anon {
namespace {

// ---------------------------------------------------------------------------
// ClientAnonymiser implementations (shared behaviour, parameterised)
// ---------------------------------------------------------------------------

using ClientTableFactory = std::function<std::unique_ptr<ClientAnonymiser>()>;

class ClientTables : public ::testing::TestWithParam<ClientTableFactory> {};

TEST_P(ClientTables, OrderOfAppearance) {
  auto table = GetParam()();
  EXPECT_EQ(table->anonymise(0xDEADBEEF), 0u);
  EXPECT_EQ(table->anonymise(0x00000001), 1u);
  EXPECT_EQ(table->anonymise(0xFFFFFFFF), 2u);
  EXPECT_EQ(table->distinct(), 3u);
}

TEST_P(ClientTables, Idempotent) {
  auto table = GetParam()();
  AnonClientId first = table->anonymise(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->anonymise(42), first);
  EXPECT_EQ(table->distinct(), 1u);
}

TEST_P(ClientTables, LookupDoesNotInsert) {
  auto table = GetParam()();
  EXPECT_EQ(table->lookup(7), kClientNotSeen);
  EXPECT_EQ(table->distinct(), 0u);
  table->anonymise(7);
  EXPECT_EQ(table->lookup(7), 0u);
}

TEST_P(ClientTables, DenseRange) {
  auto table = GetParam()();
  Rng rng(3);
  std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    AnonClientId a =
        table->anonymise(static_cast<proto::ClientId>(rng.next()));
    EXPECT_LT(a, n);
  }
  // Every assigned ID is below the number of distinct clients.
  EXPECT_LE(table->distinct(), n);
}

TEST_P(ClientTables, ExtremeKeysWork) {
  auto table = GetParam()();
  EXPECT_EQ(table->anonymise(0x00000000), 0u);
  EXPECT_EQ(table->anonymise(0xFFFFFFFF), 1u);
  EXPECT_EQ(table->lookup(0x00000000), 0u);
  EXPECT_EQ(table->lookup(0xFFFFFFFF), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, ClientTables,
    ::testing::Values(
        ClientTableFactory([] {
          return std::unique_ptr<ClientAnonymiser>(
              std::make_unique<DirectClientTable>());
        }),
        ClientTableFactory([] {
          return std::unique_ptr<ClientAnonymiser>(
              std::make_unique<HashClientTable>());
        }),
        ClientTableFactory([] {
          return std::unique_ptr<ClientAnonymiser>(
              std::make_unique<TreeClientTable>());
        })));

TEST(DirectClientTable, PagesAllocatedLazily) {
  DirectClientTable table;
  EXPECT_EQ(table.pages_allocated(), 0u);
  table.anonymise(5);
  EXPECT_EQ(table.pages_allocated(), 1u);
  table.anonymise(6);  // same page
  EXPECT_EQ(table.pages_allocated(), 1u);
  table.anonymise(0xFFFFFFFF);  // far page
  EXPECT_EQ(table.pages_allocated(), 2u);
  EXPECT_EQ(table.memory_bytes(),
            2ull * DirectClientTable::kPageEntries * sizeof(std::uint32_t));
}

TEST(DirectClientTable, AgreesWithHashTableOnRandomStream) {
  DirectClientTable direct;
  HashClientTable hash;
  workload::ClientIdStream stream({100'000, 0.8, 5});
  for (int i = 0; i < 200'000; ++i) {
    proto::ClientId id = stream.next();
    EXPECT_EQ(direct.anonymise(id), hash.anonymise(id));
  }
  EXPECT_EQ(direct.distinct(), hash.distinct());
}

// ---------------------------------------------------------------------------
// FileIdAnonymiser implementations
// ---------------------------------------------------------------------------

using FileStoreFactory = std::function<std::unique_ptr<FileIdAnonymiser>()>;

class FileStores : public ::testing::TestWithParam<FileStoreFactory> {};

FileId fid(int i) { return Md4::digest("file-" + std::to_string(i)); }

TEST_P(FileStores, OrderOfAppearance) {
  auto store = GetParam()();
  EXPECT_EQ(store->anonymise(fid(10)), 0u);
  EXPECT_EQ(store->anonymise(fid(20)), 1u);
  EXPECT_EQ(store->anonymise(fid(10)), 0u);
  EXPECT_EQ(store->distinct(), 2u);
}

TEST_P(FileStores, LookupDoesNotInsert) {
  auto store = GetParam()();
  EXPECT_EQ(store->lookup(fid(1)), kFileNotSeen);
  EXPECT_EQ(store->distinct(), 0u);
}

TEST_P(FileStores, ManyDistinctIdsStayConsistent) {
  auto store = GetParam()();
  const int n = 3000;
  std::vector<AnonFileId> assigned(n);
  for (int i = 0; i < n; ++i) assigned[i] = store->anonymise(fid(i));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(store->lookup(fid(i)), assigned[i]);
    EXPECT_EQ(store->anonymise(fid(i)), assigned[i]);
  }
  EXPECT_EQ(store->distinct(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, FileStores,
    ::testing::Values(
        FileStoreFactory([] {
          return std::unique_ptr<FileIdAnonymiser>(
              std::make_unique<BucketedFileIdStore>());
        }),
        FileStoreFactory([] {
          return std::unique_ptr<FileIdAnonymiser>(
              std::make_unique<SortedArrayFileIdStore>());
        }),
        FileStoreFactory([] {
          return std::unique_ptr<FileIdAnonymiser>(
              std::make_unique<HashFileIdStore>());
        }),
        FileStoreFactory([] {
          return std::unique_ptr<FileIdAnonymiser>(
              std::make_unique<TreeFileIdStore>());
        })));

TEST(BucketedFileIdStore, RejectsBadIndexBytes) {
  EXPECT_THROW(BucketedFileIdStore(16, 0), std::out_of_range);
  EXPECT_THROW(BucketedFileIdStore(0, 16), std::out_of_range);
  EXPECT_THROW(BucketedFileIdStore(3, 3), std::invalid_argument);
}

TEST(BucketedFileIdStore, UniformIdsSpreadOverBuckets) {
  BucketedFileIdStore store(0, 1);
  workload::FileIdStream stream({50'000, 0.9, /*forged=*/0.0, 7});
  for (std::uint64_t i = 0; i < 50'000; ++i) store.anonymise(stream.universe_id(i));
  // With 50k uniform IDs over 65536 buckets, no bucket should be large.
  EXPECT_LE(store.largest_bucket(), 12u);
}

TEST(BucketedFileIdStore, ForgedIdsBlowUpFirstTwoByteIndexing) {
  // The paper's §2.4 observation: with (byte0, byte1) indexing, forged IDs
  // concentrate in buckets 0 and 256.
  BucketedFileIdStore naive(0, 1);
  workload::FileIdStreamConfig cfg{20'000, 0.9, 0.35, 7};
  workload::FileIdStream stream(cfg);
  for (std::uint64_t i = 0; i < cfg.distinct_ids; ++i)
    naive.anonymise(stream.universe_id(i));

  std::size_t pathological = naive.bucket_size(0) + naive.bucket_size(256);
  EXPECT_GT(pathological, cfg.distinct_ids / 4)
      << "forged IDs must concentrate in buckets 0 and 256";
  std::size_t arg = naive.largest_bucket_index();
  EXPECT_TRUE(arg == 0 || arg == 256);

  // The fix: index by two other bytes.
  BucketedFileIdStore fixed(5, 11);
  workload::FileIdStream stream2(cfg);
  for (std::uint64_t i = 0; i < cfg.distinct_ids; ++i)
    fixed.anonymise(stream2.universe_id(i));
  EXPECT_LT(fixed.largest_bucket(), 50u);
}

TEST(BucketedFileIdStore, BucketSizeDistributionSumsToBucketCount) {
  BucketedFileIdStore store;
  for (int i = 0; i < 1000; ++i) store.anonymise(fid(i));
  CountHistogram h = store.bucket_size_distribution();
  EXPECT_EQ(h.total(), BucketedFileIdStore::kBucketCount);
}

TEST(FileStores, AllFourImplementationsAgree) {
  BucketedFileIdStore a;
  SortedArrayFileIdStore b;
  HashFileIdStore c;
  TreeFileIdStore d;
  workload::FileIdStream stream({5'000, 0.9, 0.3, 11});
  for (int i = 0; i < 20'000; ++i) {
    FileId id = stream.next();
    AnonFileId expected = a.anonymise(id);
    EXPECT_EQ(b.anonymise(id), expected);
    EXPECT_EQ(c.anonymise(id), expected);
    EXPECT_EQ(d.anonymise(id), expected);
  }
}

// ---------------------------------------------------------------------------
// Anonymiser (full messages)
// ---------------------------------------------------------------------------

class AnonymiserTest : public ::testing::Test {
 protected:
  DirectClientTable clients_;
  BucketedFileIdStore files_;
  Anonymiser anon_{clients_, files_};
};

TEST_F(AnonymiserTest, TimestampAndPeerCarriedOver) {
  AnonEvent ev = anon_.anonymise(12345, 0x0A000001, proto::ServStatReq{7});
  EXPECT_EQ(ev.time, 12345u);
  EXPECT_EQ(ev.peer, 0u);  // first client seen
  EXPECT_TRUE(ev.is_query);
  // Challenge values are dropped entirely (they could fingerprint clients).
  EXPECT_TRUE(std::holds_alternative<AServStatReq>(ev.message));
}

TEST_F(AnonymiserTest, SamePeerSameToken) {
  AnonEvent a = anon_.anonymise(1, 0x0A000001, proto::ServStatReq{});
  AnonEvent b = anon_.anonymise(2, 0x0A000001, proto::ServStatReq{});
  AnonEvent c = anon_.anonymise(3, 0x0B000002, proto::ServStatReq{});
  EXPECT_EQ(a.peer, b.peer);
  EXPECT_NE(a.peer, c.peer);
}

TEST_F(AnonymiserTest, StringsBecomeMd5Tokens) {
  proto::ServerDescRes desc{"MyServer", "great server"};
  AnonEvent ev = anon_.anonymise(0, 1, proto::Message(desc));
  const auto& m = std::get<AServerDescRes>(ev.message);
  EXPECT_EQ(m.name, Md5::digest(std::string_view("MyServer")));
  EXPECT_EQ(m.description, Md5::digest(std::string_view("great server")));
}

TEST_F(AnonymiserTest, FileSizesReducedToKilobytes) {
  proto::FileEntry entry;
  entry.file_id = fid(1);
  entry.client_id = 0x0A000001;
  entry.tags = {proto::Tag::str(proto::TagName::kFileName, "x.avi"),
                proto::Tag::u32(proto::TagName::kFileSize, 700 * 1000 * 1000)};
  proto::FileSearchRes res{{entry}};
  AnonEvent ev = anon_.anonymise(0, 2, proto::Message(std::move(res)));
  const auto& m = std::get<AFileSearchRes>(ev.message);
  ASSERT_EQ(m.results.size(), 1u);
  ASSERT_TRUE(m.results[0].meta.size_kb);
  EXPECT_EQ(*m.results[0].meta.size_kb, (700 * 1000 * 1000 + 1023) / 1024);
  ASSERT_TRUE(m.results[0].meta.name);
  EXPECT_EQ(*m.results[0].meta.name, Md5::digest(std::string_view("x.avi")));
}

TEST_F(AnonymiserTest, FileIdsShareTheGlobalStore) {
  proto::GetSourcesReq req{{fid(5), fid(6)}};
  AnonEvent ev1 = anon_.anonymise(0, 1, proto::Message(std::move(req)));
  const auto& m1 = std::get<AGetSourcesReq>(ev1.message);
  ASSERT_EQ(m1.files.size(), 2u);
  EXPECT_EQ(m1.files[0], 0u);
  EXPECT_EQ(m1.files[1], 1u);

  proto::FoundSourcesRes res;
  res.file_id = fid(5);
  res.sources = {{0x0A000009, 4662}};
  AnonEvent ev2 = anon_.anonymise(0, 1, proto::Message(std::move(res)));
  const auto& m2 = std::get<AFoundSourcesRes>(ev2.message);
  EXPECT_EQ(m2.file, 0u) << "same fileID must map to the same token";
  EXPECT_FALSE(ev2.is_query);
}

TEST_F(AnonymiserTest, SearchExpressionAnonymisedRecursively) {
  proto::FileSearchReq req;
  req.expr = proto::SearchExpr::boolean(
      proto::BoolOp::kAnd, proto::SearchExpr::keyword("secret"),
      proto::SearchExpr::numeric(2048, proto::NumCmp::kMin,
                                 proto::TagName::kFileSize));
  AnonEvent ev = anon_.anonymise(0, 1, proto::Message(std::move(req)));
  const auto& m = std::get<AFileSearchReq>(ev.message);
  ASSERT_NE(m.expr, nullptr);
  EXPECT_EQ(m.expr->node_count(), 3u);
  ASSERT_NE(m.expr->left, nullptr);
  EXPECT_EQ(*m.expr->left->token, Md5::digest(std::string_view("secret")));
  // Size constraints are numeric: reduced to KB like sizes.
  EXPECT_EQ(m.expr->right->number, 2u);
}

TEST_F(AnonymiserTest, ServerListEndpointsRedacted) {
  proto::ServerList list{{{0x01020304, 4661}, {0x05060708, 4661}}};
  AnonEvent ev = anon_.anonymise(0, 1, proto::Message(std::move(list)));
  const auto& m = std::get<AServerList>(ev.message);
  EXPECT_EQ(m.count, 2u);  // only the count survives
}

TEST_F(AnonymiserTest, PublishCarriesProviderTokens) {
  proto::FileEntry entry;
  entry.file_id = fid(9);
  entry.client_id = 0x0A0000AA;
  entry.tags = {proto::Tag::u32(proto::TagName::kFileSize, 1024)};
  proto::PublishReq req{{entry}};
  AnonEvent ev = anon_.anonymise(0, 0x0A0000AA, proto::Message(std::move(req)));
  const auto& m = std::get<APublishReq>(ev.message);
  ASSERT_EQ(m.files.size(), 1u);
  EXPECT_EQ(m.files[0].provider, ev.peer)
      << "self-announcing peer and entry clientID must anonymise identically";
  EXPECT_EQ(*m.files[0].meta.size_kb, 1u);
}

TEST_F(AnonymiserTest, DistinctCountsTrackTables) {
  anon_.anonymise(0, 1, proto::ServStatReq{});
  anon_.anonymise(0, 2, proto::ServStatReq{});
  proto::GetSourcesReq req{{fid(1)}};
  anon_.anonymise(0, 1, proto::Message(std::move(req)));
  EXPECT_EQ(anon_.distinct_clients(), 2u);
  EXPECT_EQ(anon_.distinct_files(), 1u);
}

// ---------------------------------------------------------------------------
// Rejected schemes (§2.4): working attacks prove the paper's point.
// ---------------------------------------------------------------------------

TEST(RejectedSchemes, KeyedHashIsDeterministicButBruteForcible) {
  KeyedHashScheme scheme(0x1234567890ABCDEFULL);
  proto::ClientId secret = 0x00012345;  // inside the 2^20 demo space
  std::uint64_t token = scheme.anonymise(secret);
  EXPECT_EQ(scheme.anonymise(secret), token) << "stateless determinism";

  auto preimages = scheme.brute_force(token, /*space_bits=*/20);
  ASSERT_EQ(preimages.size(), 1u);
  EXPECT_EQ(preimages[0], secret);
}

TEST(RejectedSchemes, KeyedHashBatchAttackRecoversEverything) {
  KeyedHashScheme scheme(42);
  std::vector<proto::ClientId> secrets = {1, 77, 4095, 99999, 262143};
  std::vector<std::uint64_t> tokens;
  for (auto id : secrets) tokens.push_back(scheme.anonymise(id));
  std::vector<proto::ClientId> recovered;
  EXPECT_EQ(scheme.brute_force_all(tokens, recovered, 18), secrets.size());
  EXPECT_EQ(recovered, secrets);
}

TEST(RejectedSchemes, AffineShuffleIsABijection) {
  AffineShuffleScheme scheme(0x9E3779B9u | 1u, 0xDEADBEEF);
  EXPECT_EQ(scheme.deanonymise(scheme.anonymise(0)), 0u);
  EXPECT_EQ(scheme.deanonymise(scheme.anonymise(0xFFFFFFFF)), 0xFFFFFFFFu);
  EXPECT_EQ(scheme.deanonymise(scheme.anonymise(0x12345678)), 0x12345678u);
  EXPECT_THROW(AffineShuffleScheme(2, 0), std::invalid_argument);
}

TEST(RejectedSchemes, AffineShuffleBrokenByTwoKnownPairs) {
  AffineShuffleScheme secret(0xA5A5A5A5u | 1u, 0x13572468);
  proto::ClientId k1 = 0x0A000001, k2 = 0x0B000002;  // odd difference
  auto cracked = AffineShuffleScheme::recover(k1, secret.anonymise(k1), k2,
                                              secret.anonymise(k2));
  ASSERT_TRUE(cracked);
  EXPECT_EQ(cracked->multiplier(), secret.multiplier());
  EXPECT_EQ(cracked->offset(), secret.offset());
  proto::ClientId victim = 0xCAFED00D;
  EXPECT_EQ(cracked->deanonymise(secret.anonymise(victim)), victim);
}

TEST(RejectedSchemes, AffineRecoveryNeedsInvertibleDifference) {
  AffineShuffleScheme secret(0x55555555u, 7);
  // Even difference: 2 known pairs are not enough.
  EXPECT_FALSE(AffineShuffleScheme::recover(2, secret.anonymise(2), 4,
                                            secret.anonymise(4)));
}

TEST(RejectedSchemes, OrderOfAppearanceTokenIndependentOfValue) {
  // The same clientID gets entirely different tokens in two captures that
  // observe it at different ranks — the token carries no value information.
  DirectClientTable capture1, capture2;
  proto::ClientId target = 0xC0FFEE42;
  capture1.anonymise(target);  // first in capture 1
  capture2.anonymise(1);
  capture2.anonymise(2);
  capture2.anonymise(target);  // third in capture 2
  EXPECT_EQ(capture1.lookup(target), 0u);
  EXPECT_EQ(capture2.lookup(target), 2u);
}

TEST(ForgedIds, HaveThePaperPrefixes) {
  Rng rng(1);
  int p0 = 0, p256 = 0;
  for (int i = 0; i < 1000; ++i) {
    FileId id = workload::make_forged_file_id(rng);
    std::uint16_t bucket = static_cast<std::uint16_t>(id.byte(0) << 8 | id.byte(1));
    if (bucket == 0) ++p0;
    if (bucket == 256) ++p256;
  }
  EXPECT_EQ(p0 + p256, 1000);
  EXPECT_GT(p0, 400);
  EXPECT_GT(p256, 200);
}

}  // namespace
}  // namespace dtr::anon
