// Analysis-toolkit tests: exact distinct counters, pair-relation degree
// histograms, power-law fitting, report rendering, campaign statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/campaign_stats.hpp"
#include "analysis/distinct.hpp"
#include "analysis/hyperloglog.hpp"
#include "analysis/powerlaw.hpp"
#include "analysis/report.hpp"
#include "common/rng.hpp"
#include "workload/idstream.hpp"

namespace dtr::analysis {
namespace {

// ---------------------------------------------------------------------------
// BitsetDistinctCounter
// ---------------------------------------------------------------------------

TEST(Bitset, CountsDistinct) {
  BitsetDistinctCounter counter;
  EXPECT_TRUE(counter.observe(5));
  EXPECT_FALSE(counter.observe(5));
  EXPECT_TRUE(counter.observe(6));
  EXPECT_EQ(counter.distinct(), 2u);
  EXPECT_TRUE(counter.seen(5));
  EXPECT_FALSE(counter.seen(7));
}

TEST(Bitset, ExtremeKeys) {
  BitsetDistinctCounter counter;
  EXPECT_TRUE(counter.observe(0));
  EXPECT_TRUE(counter.observe(0xFFFFFFFF));
  EXPECT_EQ(counter.distinct(), 2u);
  EXPECT_TRUE(counter.seen(0));
  EXPECT_TRUE(counter.seen(0xFFFFFFFF));
}

TEST(Bitset, LazyMemory) {
  BitsetDistinctCounter counter;
  EXPECT_EQ(counter.memory_bytes(), 0u);
  counter.observe(1);
  counter.observe(2);  // same page
  std::uint64_t one_page = counter.memory_bytes();
  EXPECT_GT(one_page, 0u);
  counter.observe(0x80000000);
  EXPECT_EQ(counter.memory_bytes(), 2 * one_page);
}

TEST(Bitset, AgreesWithSetOnRandomStream) {
  BitsetDistinctCounter counter;
  std::set<std::uint32_t> reference;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    auto key = static_cast<std::uint32_t>(rng.below(50000));
    EXPECT_EQ(counter.observe(key), reference.insert(key).second);
  }
  EXPECT_EQ(counter.distinct(), reference.size());
}

// ---------------------------------------------------------------------------
// PairSetCounter
// ---------------------------------------------------------------------------

TEST(PairSet, DeduplicatesPairs) {
  PairSetCounter pairs;
  EXPECT_TRUE(pairs.observe(1, 10));
  EXPECT_FALSE(pairs.observe(1, 10));
  EXPECT_TRUE(pairs.observe(1, 11));
  EXPECT_TRUE(pairs.observe(2, 10));
  EXPECT_EQ(pairs.pairs(), 3u);
}

TEST(PairSet, DegreeHistograms) {
  PairSetCounter pairs;
  // file 1 has 3 providers, file 2 has 1.
  pairs.observe(1, 10);
  pairs.observe(1, 11);
  pairs.observe(1, 12);
  pairs.observe(2, 10);

  CountHistogram per_file = pairs.degree_of_a();
  EXPECT_EQ(per_file.count_of(3), 1u);  // one file with 3 providers
  EXPECT_EQ(per_file.count_of(1), 1u);  // one file with 1 provider
  EXPECT_EQ(per_file.total(), 2u);

  CountHistogram per_client = pairs.degree_of_b();
  EXPECT_EQ(per_client.count_of(2), 1u);  // client 10 provides 2 files
  EXPECT_EQ(per_client.count_of(1), 2u);  // clients 11, 12 provide 1 each
}

TEST(PairSet, DegreeSumsMatchPairCount) {
  PairSetCounter pairs;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    pairs.observe(rng.below(500), static_cast<std::uint32_t>(rng.below(300)));
  }
  // Bind the histograms to locals: bins() returns a reference into the
  // histogram, so iterating `degree_of_a().bins()` would dangle.
  CountHistogram by_a = pairs.degree_of_a();
  CountHistogram by_b = pairs.degree_of_b();
  std::uint64_t sum_a = 0;
  for (const auto& [deg, n] : by_a.bins()) sum_a += deg * n;
  std::uint64_t sum_b = 0;
  for (const auto& [deg, n] : by_b.bins()) sum_b += deg * n;
  EXPECT_EQ(sum_a, pairs.pairs());
  EXPECT_EQ(sum_b, pairs.pairs());
}

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

TEST(Hll, EmptyEstimatesZero) {
  HyperLogLog hll;
  EXPECT_NEAR(hll.estimate(), 0.0, 1e-9);
}

TEST(Hll, SmallCountsAreNearExact) {
  HyperLogLog hll(14);
  for (std::uint32_t i = 0; i < 100; ++i) hll.observe(i);
  EXPECT_NEAR(hll.estimate(), 100.0, 3.0);  // linear-counting regime
}

TEST(Hll, DuplicatesDoNotInflate) {
  HyperLogLog hll(14);
  for (int rep = 0; rep < 50; ++rep) {
    for (std::uint32_t i = 0; i < 500; ++i) hll.observe(i);
  }
  EXPECT_NEAR(hll.estimate(), 500.0, 15.0);
}

class HllAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HllAccuracy, WithinFourSigmaOfExact) {
  const std::uint64_t n = GetParam();
  HyperLogLog hll(14);
  BitsetDistinctCounter exact;
  Rng rng(n ^ 77);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto key = static_cast<std::uint32_t>(rng.next());
    hll.observe(key);
    exact.observe(key);
  }
  double err = std::abs(hll.estimate() - static_cast<double>(exact.distinct())) /
               static_cast<double>(exact.distinct());
  EXPECT_LT(err, 4 * hll.standard_error())
      << "estimate " << hll.estimate() << " vs exact " << exact.distinct();
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         ::testing::Values(10'000, 100'000, 1'000'000));

TEST(Hll, HandlesForgedFileIds) {
  // Forged fileIDs share their first two bytes; the sketch must still see
  // them as distinct (the digest observer re-mixes).
  HyperLogLog hll(14);
  workload::FileIdStreamConfig cfg{50'000, 0.9, /*forged=*/1.0, 3};
  workload::FileIdStream stream(cfg);
  for (std::uint64_t i = 0; i < cfg.distinct_ids; ++i) {
    hll.observe(stream.universe_id(i));
  }
  EXPECT_NEAR(hll.estimate(), 50'000.0, 50'000.0 * 4 * hll.standard_error());
}

TEST(Hll, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), both(12);
  Rng rng(9);
  for (int i = 0; i < 20'000; ++i) {
    auto key = static_cast<std::uint32_t>(rng.next());
    if (i % 2 == 0) {
      a.observe(key);
    } else {
      b.observe(key);
    }
    both.observe(key);
  }
  a.merge(b);
  EXPECT_NEAR(a.estimate(), both.estimate(), both.estimate() * 0.01);
}

TEST(Hll, RejectsBadParameters) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(19), std::invalid_argument);
  HyperLogLog a(10), b(12);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Hll, MemoryIsFixedAndTiny) {
  HyperLogLog hll(14);
  for (std::uint32_t i = 0; i < 500'000; ++i) hll.observe(i);
  EXPECT_EQ(hll.memory_bytes(), 16384u);  // vs ~64 MB for the exact bitset
}

// ---------------------------------------------------------------------------
// Power-law fitting
// ---------------------------------------------------------------------------

CountHistogram synthetic_power_law(double alpha, int n, std::uint64_t seed) {
  CountHistogram h;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) h.add(rng.power_law_int(alpha, 10'000'000));
  return h;
}

class PowerLawRecovery : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecovery, MleRecoversExponent) {
  const double alpha = GetParam();
  // floor(Pareto) only follows the pure discrete power law asymptotically,
  // so fit in the tail (xmin = 10), like any real-world fit would.
  CountHistogram h = synthetic_power_law(alpha, 200000, 11);
  PowerLawFit fit = fit_power_law(h, 10);
  EXPECT_NEAR(fit.alpha, alpha, 0.15) << describe_fit(fit);
  EXPECT_TRUE(fit.plausible()) << describe_fit(fit);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawRecovery,
                         ::testing::Values(1.6, 2.0, 2.5, 3.0));

TEST(PowerLaw, RejectsNonPowerLaw) {
  // A tight Gaussian bump is nothing like a power law.
  CountHistogram h;
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    auto v = static_cast<std::uint64_t>(std::max(1.0, rng.normal(500, 20)));
    h.add(v);
  }
  PowerLawFit fit = fit_power_law(h, 1);
  EXPECT_FALSE(fit.plausible()) << describe_fit(fit);
}

TEST(PowerLaw, AutoXminImprovesFitOnTruncatedData) {
  // Power law only above 10: a fixed xmin=1 fit is poor, the scan recovers.
  CountHistogram h;
  Rng rng(17);
  for (int i = 0; i < 30000; ++i) h.add(9 + rng.power_law_int(2.2, 1'000'000));
  PowerLawFit fixed = fit_power_law(h, 1);
  PowerLawFit scanned = fit_power_law_auto(h);
  EXPECT_LT(scanned.ks_distance, fixed.ks_distance);
  EXPECT_GE(scanned.xmin, 5u);
}

TEST(PowerLaw, EmptyHistogram) {
  CountHistogram h;
  PowerLawFit fit = fit_power_law(h, 1);
  EXPECT_EQ(fit.n_tail, 0u);
  EXPECT_FALSE(fit.plausible());
  fit = fit_power_law_auto(h);
  EXPECT_FALSE(fit.plausible());
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Report, DistributionOutputs) {
  CountHistogram h;
  h.add(1, 100);
  h.add(10, 10);
  h.add(100, 1);
  std::ostringstream raw;
  print_distribution(raw, h, "x", "count", /*log_binned=*/false);
  EXPECT_NE(raw.str().find("1\t100"), std::string::npos);
  EXPECT_NE(raw.str().find("100\t1"), std::string::npos);

  std::ostringstream binned;
  print_distribution(binned, h, "x", "count", /*log_binned=*/true);
  EXPECT_FALSE(binned.str().empty());
}

TEST(Report, LogLogPlotDrawsSomething) {
  CountHistogram h = synthetic_power_law(2.0, 5000, 3);
  std::ostringstream out;
  print_loglog_plot(out, h);
  EXPECT_NE(out.str().find('*'), std::string::npos);
  std::ostringstream empty_out;
  print_loglog_plot(empty_out, CountHistogram{});
  EXPECT_NE(empty_out.str().find("empty"), std::string::npos);
}

TEST(Report, TableAlignsRows) {
  std::ostringstream out;
  print_table(out, "Summary", {{"messages", "100"}, {"distinct clients", "7"}});
  EXPECT_NE(out.str().find("== Summary =="), std::string::npos);
  EXPECT_NE(out.str().find("messages"), std::string::npos);
  EXPECT_NE(out.str().find("7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CampaignStats
// ---------------------------------------------------------------------------

anon::AnonEvent publish_event(anon::AnonClientId peer,
                              std::initializer_list<anon::AnonFileId> files,
                              std::uint32_t size_kb = 0) {
  anon::AnonEvent ev;
  ev.time = 1;
  ev.peer = peer;
  ev.is_query = true;
  anon::APublishReq req;
  for (auto f : files) {
    anon::AnonFileEntry e;
    e.file = f;
    e.provider = peer;
    if (size_kb > 0) e.meta.size_kb = size_kb;
    req.files.push_back(e);
  }
  ev.message = std::move(req);
  return ev;
}

anon::AnonEvent ask_event(anon::AnonClientId peer,
                          std::initializer_list<anon::AnonFileId> files) {
  anon::AnonEvent ev;
  ev.time = 2;
  ev.peer = peer;
  ev.is_query = true;
  ev.message = anon::AGetSourcesReq{files};
  return ev;
}

TEST(CampaignStats, ProviderAndAskerRelations) {
  CampaignStats stats;
  stats.consume(publish_event(1, {100, 101}));
  stats.consume(publish_event(2, {100}));
  stats.consume(ask_event(3, {100}));
  stats.consume(ask_event(3, {100, 101}));  // repeat ask deduplicated

  EXPECT_EQ(stats.messages(), 4u);
  EXPECT_EQ(stats.queries(), 4u);
  EXPECT_EQ(stats.provider_relations(), 3u);
  EXPECT_EQ(stats.asker_relations(), 2u);

  CountHistogram providers = stats.providers_per_file();
  EXPECT_EQ(providers.count_of(2), 1u);  // file 100: two providers
  EXPECT_EQ(providers.count_of(1), 1u);  // file 101: one

  CountHistogram files_per_client = stats.files_per_provider();
  EXPECT_EQ(files_per_client.count_of(2), 1u);  // client 1
  EXPECT_EQ(files_per_client.count_of(1), 1u);  // client 2

  CountHistogram askers = stats.askers_per_file();
  EXPECT_EQ(askers.count_of(1), 2u);  // both files asked by one client

  EXPECT_EQ(stats.distinct_clients(), 3u);
  EXPECT_EQ(stats.distinct_files(), 2u);
}

TEST(CampaignStats, FoundSourcesAddsProviders) {
  CampaignStats stats;
  anon::AnonEvent ev;
  ev.time = 3;
  ev.peer = 9;
  ev.is_query = false;
  ev.message = anon::AFoundSourcesRes{55, {{20, 4662}, {21, 4662}}};
  stats.consume(ev);
  EXPECT_EQ(stats.provider_relations(), 2u);
  EXPECT_EQ(stats.distinct_clients(), 3u);  // peer 9 + providers 20, 21
  EXPECT_EQ(stats.queries(), 0u);
  EXPECT_EQ(stats.answers(), 1u);
}

TEST(CampaignStats, SizeDistributionCountsDistinctFilesOnce) {
  CampaignStats stats;
  stats.consume(publish_event(1, {100}, 683594));
  stats.consume(publish_event(2, {100}, 683594));  // same file again
  stats.consume(publish_event(3, {200}, 4200));
  const CountHistogram& sizes = stats.size_distribution();
  EXPECT_EQ(sizes.count_of(683594), 1u);
  EXPECT_EQ(sizes.count_of(4200), 1u);
  EXPECT_EQ(sizes.total(), 2u);
}

TEST(CampaignStats, SearchResultsContributeMetadata) {
  CampaignStats stats;
  anon::AnonEvent ev;
  ev.time = 4;
  ev.peer = 1;
  ev.is_query = false;
  anon::AFileSearchRes res;
  anon::AnonFileEntry e;
  e.file = 300;
  e.provider = 42;
  e.meta.size_kb = 12345;
  res.results.push_back(e);
  ev.message = std::move(res);
  stats.consume(ev);
  EXPECT_EQ(stats.provider_relations(), 1u);
  EXPECT_EQ(stats.size_distribution().count_of(12345), 1u);
}

}  // namespace
}  // namespace dtr::analysis
