// Tests for the interest-graph / communities analysis (paper §4).
#include <gtest/gtest.h>

#include "analysis/interest_graph.hpp"
#include "core/campaign_runner.hpp"

namespace dtr::analysis {
namespace {

TEST(InterestGraph, EdgesDeduplicated) {
  InterestGraph g;
  g.add_interest(1, 100);
  g.add_interest(1, 100);
  g.add_interest(1, 101);
  g.add_interest(2, 100);
  EXPECT_EQ(g.edges(), 3u);
  EXPECT_EQ(g.clients(), 2u);
  EXPECT_EQ(g.files(), 2u);
}

TEST(InterestGraph, DegreeHistograms) {
  InterestGraph g;
  g.add_interest(1, 100);
  g.add_interest(1, 101);
  g.add_interest(2, 100);
  CountHistogram cd = g.client_degrees();
  EXPECT_EQ(cd.count_of(2), 1u);
  EXPECT_EQ(cd.count_of(1), 1u);
  CountHistogram fd = g.file_degrees();
  EXPECT_EQ(fd.count_of(2), 1u);  // file 100
  EXPECT_EQ(fd.count_of(1), 1u);  // file 101
}

TEST(InterestGraph, ConsumeRoutesGetSourcesQueries) {
  InterestGraph g;
  anon::AnonEvent ev;
  ev.time = 0;
  ev.peer = 5;
  ev.is_query = true;
  ev.message = anon::AGetSourcesReq{{1, 2, 3}};
  g.consume(ev);
  // Answers are not interests.
  anon::AnonEvent ans;
  ans.time = 1;
  ans.peer = 5;
  ans.is_query = false;
  ans.message = anon::AFoundSourcesRes{1, {{9, 4662}}};
  g.consume(ans);
  EXPECT_EQ(g.edges(), 3u);
  EXPECT_EQ(g.clients(), 1u);
}

TEST(InterestGraph, SimilarClientsRankedByOverlap) {
  InterestGraph g;
  // Client 1 and 2 share two files; 1 and 3 share one.
  g.add_interest(1, 10);
  g.add_interest(1, 11);
  g.add_interest(1, 12);
  g.add_interest(2, 10);
  g.add_interest(2, 11);
  g.add_interest(3, 12);
  auto similar = g.similar_clients(1, 5);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].first, 2u);
  EXPECT_EQ(similar[0].second, 2u);
  EXPECT_EQ(similar[1].first, 3u);
  EXPECT_EQ(similar[1].second, 1u);
  EXPECT_TRUE(g.similar_clients(999, 5).empty());
}

TEST(InterestGraph, ClusteringDetectsCommunities) {
  // Two disjoint communities of 12 clients, each community sharing its own
  // pool of 12 files (every member interested in 5 of them).
  InterestGraph clustered;
  Rng rng(3);
  for (int community = 0; community < 2; ++community) {
    for (int c = 0; c < 12; ++c) {
      anon::AnonClientId client =
          static_cast<anon::AnonClientId>(community * 100 + c);
      for (int pick = 0; pick < 5; ++pick) {
        clustered.add_interest(
            client, static_cast<anon::AnonFileId>(1000 * community +
                                                  rng.below(12)));
      }
    }
  }
  auto est = clustered.estimate_clustering(4000, 7);
  EXPECT_GT(est.coefficient, est.null_expectation)
      << "community structure must exceed the degree-preserving null";
  EXPECT_GT(est.lift(), 1.1);

  // A random bipartite graph of the same density shows no such lift.
  InterestGraph random_graph;
  for (int c = 0; c < 24; ++c) {
    for (int pick = 0; pick < 5; ++pick) {
      random_graph.add_interest(
          static_cast<anon::AnonClientId>(c),
          static_cast<anon::AnonFileId>(rng.below(24)));
    }
  }
  auto null_est = random_graph.estimate_clustering(4000, 7);
  EXPECT_LT(null_est.lift(), est.lift());
}

TEST(InterestGraph, EmptyGraphEstimates) {
  InterestGraph g;
  auto est = g.estimate_clustering(100, 1);
  EXPECT_EQ(est.samples, 0u);
  EXPECT_EQ(est.coefficient, 0.0);
}

TEST(InterestGraph, TasteGroupsCreateMeasurableLift) {
  // The same campaign, with and without taste groups: communities of
  // interest must raise the clustering lift above the structureless run.
  auto run_with_groups = [](std::uint32_t groups) {
    core::RunnerConfig cfg = core::RunnerConfig::tiny(23);
    cfg.campaign.duration = 12 * kHour;
    cfg.campaign.population.client_count = 300;
    cfg.campaign.catalog.file_count = 4'000;
    cfg.campaign.population.taste_groups = groups;
    cfg.campaign.population.taste_affinity = 0.9;
    cfg.buffer.capacity = 1 << 20;
    cfg.buffer.drain_rate = 1e9;
    cfg.buffer.stall_per_hour = 0.0;
    InterestGraph g;
    cfg.extra_sink = [&](const anon::AnonEvent& ev) { g.consume(ev); };
    core::CampaignRunner runner(cfg);
    runner.run();
    return g.estimate_clustering(8000, 3).lift();
  };
  double structured = run_with_groups(10);
  double structureless = run_with_groups(0);
  EXPECT_GT(structured, structureless + 0.02)
      << "structured=" << structured << " structureless=" << structureless;
  EXPECT_GT(structured, 1.02);
}

TEST(InterestGraph, EndToEndFromCampaign) {
  core::RunnerConfig cfg = core::RunnerConfig::tiny(17);
  cfg.buffer.capacity = 1 << 20;
  cfg.buffer.drain_rate = 1e9;
  cfg.buffer.stall_per_hour = 0.0;
  InterestGraph g;
  cfg.extra_sink = [&](const anon::AnonEvent& ev) { g.consume(ev); };
  core::CampaignRunner runner(cfg);
  runner.run();

  EXPECT_GT(g.edges(), 0u);
  EXPECT_GT(g.clients(), 0u);
  // Zipf-popular asking creates overlap: clustering estimate must produce
  // a sane value in [0, 1].
  auto est = g.estimate_clustering(2000, 5);
  EXPECT_GE(est.coefficient, 0.0);
  EXPECT_LE(est.coefficient, 1.0);
  EXPECT_EQ(est.samples, 2000u);
}

}  // namespace
}  // namespace dtr::analysis
