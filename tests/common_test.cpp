// Unit tests for the common substrate: byte I/O, RNG and samplers,
// histograms and log-binning, string utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/binning.hpp"
#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace dtr {
namespace {

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

TEST(Bytes, LittleEndianRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16le(0x1234);
  w.u32le(0xDEADBEEF);
  w.u64le(0x0123456789ABCDEFull);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16le(), 0x1234);
  EXPECT_EQ(r.u32le(), 0xDEADBEEF);
  EXPECT_EQ(r.u64le(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianRoundtrip) {
  ByteWriter w;
  w.u16be(0x1234);
  w.u32be(0xCAFEBABE);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16be(), 0x1234);
  EXPECT_EQ(r.u32be(), 0xCAFEBABE);
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, BigEndianWireOrder) {
  ByteWriter w;
  w.u16be(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.view()[0], 0x01);
  EXPECT_EQ(w.view()[1], 0x02);
}

TEST(Bytes, LittleEndianWireOrder) {
  ByteWriter w;
  w.u16le(0x0102);
  EXPECT_EQ(w.view()[0], 0x02);
  EXPECT_EQ(w.view()[1], 0x01);
}

TEST(Bytes, Str16Roundtrip) {
  ByteWriter w;
  w.str16("hello world");
  ByteReader r(w.view());
  EXPECT_EQ(r.str16(), "hello world");
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, Str16Empty) {
  ByteWriter w;
  w.str16("");
  ByteReader r(w.view());
  EXPECT_EQ(r.str16(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ReaderOverrunSetsStickyFailure) {
  ByteWriter w;
  w.u16le(7);
  ByteReader r(w.view());
  EXPECT_EQ(r.u32le(), 0u);  // overrun
  EXPECT_FALSE(r.ok());
  // Sticky: subsequent reads also fail and return zero.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ReaderStr16Overrun) {
  ByteWriter w;
  w.u16le(100);  // claims 100 bytes, provides none
  ByteReader r(w.view());
  EXPECT_EQ(r.str16(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, PatchU16be) {
  ByteWriter w;
  w.u16be(0);
  w.u8(0xFF);
  w.patch_u16be(0, 0xBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16be(), 0xBEEF);
}

TEST(Bytes, PatchU32le) {
  ByteWriter w;
  w.u32le(0);
  w.patch_u32le(0, 0x11223344);
  ByteReader r(w.view());
  EXPECT_EQ(r.u32le(), 0x11223344u);
}

TEST(Bytes, HexRoundtrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);  // uppercase accepted
}

TEST(Bytes, HexMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // bad digit
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, RawAndSkip) {
  ByteWriter w;
  w.raw(Bytes{1, 2, 3, 4, 5});
  ByteReader r(w.view());
  r.skip(2);
  BytesView rest = r.raw(3);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
  EXPECT_TRUE(r.at_end());
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.between(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, ParetoTailExponent) {
  Rng rng(31);
  // P(X > 2xm) should be 2^-alpha.
  const double alpha = 1.5;
  int above = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) above += (rng.pareto(1.0, alpha) > 2.0);
  EXPECT_NEAR(static_cast<double>(above) / n, std::pow(2.0, -alpha), 0.02);
}

TEST(Rng, PowerLawIntWithinRange) {
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = rng.power_law_int(2.0, 1000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next(), f1_again.next());  // fork is deterministic
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (f1.next() == f2.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------------------------
// ZipfSampler / AliasSampler
// ---------------------------------------------------------------------------

TEST(Zipf, InDomain) {
  Rng rng(1);
  ZipfSampler zipf(1.1, 1000);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = zipf(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(Zipf, RankFrequencyDecreases) {
  Rng rng(2);
  ZipfSampler zipf(1.0, 100);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[zipf(rng)];
  // Rank 1 much more frequent than rank 50.
  EXPECT_GT(counts[1], counts[50] * 5);
  EXPECT_GT(counts[1], counts[10] * 2);
}

TEST(Zipf, MatchesTheoreticalHead) {
  Rng rng(3);
  const double s = 1.2;
  const std::uint64_t n = 1000;
  ZipfSampler zipf(s, n);
  double norm = 0;
  for (std::uint64_t k = 1; k <= n; ++k) norm += std::pow(double(k), -s);
  const int draws = 300000;
  int ones = 0;
  for (int i = 0; i < draws; ++i) ones += (zipf(rng) == 1);
  double expected = std::pow(1.0, -s) / norm;
  EXPECT_NEAR(static_cast<double>(ones) / draws, expected, expected * 0.08);
}

TEST(Zipf, SingletonDomain) {
  Rng rng(4);
  ZipfSampler zipf(1.5, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 1u);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(1.0, 0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(0.0, 10), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(-1.0, 10), std::invalid_argument);
}

TEST(Alias, MatchesWeights) {
  Rng rng(5);
  AliasSampler alias({1.0, 2.0, 7.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[alias(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / double(n), 0.7, 0.015);
}

TEST(Alias, ZeroWeightNeverSampled) {
  Rng rng(6);
  AliasSampler alias({0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(alias(rng), 1u);
}

TEST(Alias, RejectsDegenerateInput) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, -0.5}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CountHistogram / log binning
// ---------------------------------------------------------------------------

TEST(Histogram, BasicCounting) {
  CountHistogram h;
  h.add(5);
  h.add(5);
  h.add(7, 3);
  EXPECT_EQ(h.count_of(5), 2u);
  EXPECT_EQ(h.count_of(7), 3u);
  EXPECT_EQ(h.count_of(6), 0u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.distinct_values(), 2u);
  EXPECT_EQ(h.min_value(), 5u);
  EXPECT_EQ(h.max_value(), 7u);
}

TEST(Histogram, MeanAndMode) {
  CountHistogram h;
  h.add(1, 9);
  h.add(10, 1);
  EXPECT_DOUBLE_EQ(h.mean(), (9.0 * 1 + 10.0) / 10.0);
  EXPECT_EQ(h.mode(), 1u);
}

TEST(Histogram, EmptyBehaviour) {
  CountHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.mode(), 0u);
  EXPECT_TRUE(log_bin(h).empty());
}

TEST(Histogram, Merge) {
  CountHistogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(9, 1);
  a.merge(b);
  EXPECT_EQ(a.count_of(1), 5u);
  EXPECT_EQ(a.count_of(9), 1u);
}

TEST(LogBin, PreservesTotalCount) {
  CountHistogram h;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) h.add(rng.power_law_int(2.0, 100000));
  std::uint64_t binned_total = 0;
  for (const LogBin& bin : log_bin(h, 1.5)) binned_total += bin.count;
  EXPECT_EQ(binned_total, h.total());
}

TEST(LogBin, EdgesAreMultiplicative) {
  CountHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  auto bins = log_bin(h, 2.0);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    EXPECT_LT(bins[i].lo, bins[i].hi);
    if (i > 0) EXPECT_EQ(bins[i].lo, bins[i - 1].hi);
  }
}

TEST(LogBin, ZeroBinKeptSeparately) {
  CountHistogram h;
  h.add(0, 4);
  h.add(1, 2);
  auto bins = log_bin(h, 2.0);
  ASSERT_GE(bins.size(), 2u);
  EXPECT_EQ(bins[0].lo, 0u);
  EXPECT_EQ(bins[0].count, 4u);
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC dEf"), "abc def");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, TokenizeKeywords) {
  auto tokens = tokenize_keywords("Some_Artist - Great Song (live).mp3");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"some", "artist", "great", "song",
                                      "live", "mp3"}));
}

TEST(Strings, TokenizeDropsShortTokens) {
  auto tokens = tokenize_keywords("a bb ccc dddd");
  EXPECT_EQ(tokens, (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(Strings, TokenizeMinLenParameter) {
  auto tokens = tokenize_keywords("a bb ccc", 1);
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "bb", "ccc"}));
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1 000");
  EXPECT_EQ(with_thousands(8867052380ull), "8 867 052 380");
}

TEST(Strings, HumanSize) {
  EXPECT_EQ(human_size(512), "512.0 B");
  EXPECT_EQ(human_size(1536), "1.5 KB");
  EXPECT_EQ(human_size(734003200), "700.0 MB");
}

// ---------------------------------------------------------------------------
// clock
// ---------------------------------------------------------------------------

TEST(Clock, UnitRelations) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kWeek, 7ull * 24 * 3600 * kSecond);
  EXPECT_EQ(to_seconds(2 * kSecond + 500 * kMillisecond), 2u);
  EXPECT_DOUBLE_EQ(to_seconds_f(2 * kSecond + 500 * kMillisecond), 2.5);
}

}  // namespace
}  // namespace dtr
