// XML writer, pull parser, and dataset schema round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "anon/anonymiser.hpp"
#include "common/rng.hpp"
#include "hash/md5.hpp"
#include "xmlio/compress.hpp"
#include "xmlio/parser.hpp"
#include "xmlio/schema.hpp"
#include "xmlio/writer.hpp"

namespace dtr::xmlio {
namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

TEST(Writer, Escaping) {
  EXPECT_EQ(xml_escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
  EXPECT_EQ(xml_escape("plain"), "plain");
  EXPECT_EQ(xml_escape(""), "");
}

TEST(Writer, SelfClosingElement) {
  std::ostringstream out;
  XmlWriter w(out);
  w.open("empty").attr("k", "v").close();
  EXPECT_EQ(out.str(), "<empty k=\"v\"/>");
}

TEST(Writer, NestedElements) {
  std::ostringstream out;
  XmlWriter w(out);
  w.open("a").open("b").text("hi").close().close();
  EXPECT_EQ(out.str(), "<a><b>hi</b></a>");
}

TEST(Writer, AttributesEscaped) {
  std::ostringstream out;
  XmlWriter w(out);
  w.open("e").attr("k", "a\"b<c").close();
  EXPECT_EQ(out.str(), "<e k=\"a&quot;b&lt;c\"/>");
}

TEST(Writer, NumericAttr) {
  std::ostringstream out;
  XmlWriter w(out);
  w.open("e").attr("n", std::uint64_t{18446744073709551615ull}).close();
  EXPECT_EQ(out.str(), "<e n=\"18446744073709551615\"/>");
}

TEST(Writer, CloseAllUnwindsStack) {
  std::ostringstream out;
  XmlWriter w(out);
  w.open("a").open("b").open("c");
  w.close_all();
  EXPECT_EQ(out.str(), "<a><b><c/></b></a>");
  EXPECT_EQ(w.depth(), 0u);
}

TEST(Writer, PrettyModeProducesParseableIndentedOutput) {
  std::ostringstream out;
  XmlWriter w(out, /*pretty=*/true);
  w.declaration();
  w.open("capture").attr("spec", "x");
  w.open("msg").attr("t", std::uint64_t{1}).close();
  w.open("msg").attr("t", std::uint64_t{2}).open("f").attr("id", std::uint64_t{0}).close().close();
  w.close_all();
  std::string doc = out.str();
  EXPECT_NE(doc.find("\n  <msg"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\n    <f"), std::string::npos) << doc;
  // Pretty output must remain machine-readable.
  std::istringstream in(doc);
  XmlParser p(in);
  int starts = 0;
  while (auto t = p.next()) starts += (t->kind == XmlToken::Kind::kStartElement);
  EXPECT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(starts, 4);
}

TEST(Writer, DeclarationAndElementCount) {
  std::ostringstream out;
  XmlWriter w(out);
  w.declaration();
  w.open("root").open("child").close().close();
  EXPECT_EQ(w.elements_written(), 2u);
  EXPECT_TRUE(out.str().starts_with("<?xml version=\"1.0\""));
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

std::vector<XmlToken> parse_all(const std::string& xml) {
  std::istringstream in(xml);
  XmlParser p(in);
  std::vector<XmlToken> tokens;
  while (auto t = p.next()) tokens.push_back(*t);
  EXPECT_TRUE(p.ok()) << p.error();
  return tokens;
}

TEST(Parser, SimpleDocument) {
  auto tokens = parse_all("<a x=\"1\"><b>text</b></a>");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, XmlToken::Kind::kStartElement);
  EXPECT_EQ(tokens[0].name, "a");
  ASSERT_NE(tokens[0].attr("x"), nullptr);
  EXPECT_EQ(*tokens[0].attr("x"), "1");
  EXPECT_EQ(tokens[1].name, "b");
  EXPECT_EQ(tokens[2].kind, XmlToken::Kind::kText);
  EXPECT_EQ(tokens[2].text, "text");
  EXPECT_EQ(tokens[3].kind, XmlToken::Kind::kEndElement);
  EXPECT_EQ(tokens[4].name, "a");
}

TEST(Parser, SelfClosingEmitsBothTokens) {
  auto tokens = parse_all("<a><b k=\"v\"/></a>");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].name, "b");
  EXPECT_TRUE(tokens[1].self_closing);
  EXPECT_EQ(tokens[2].kind, XmlToken::Kind::kEndElement);
  EXPECT_EQ(tokens[2].name, "b");
}

TEST(Parser, DeclarationAndCommentsSkipped) {
  auto tokens =
      parse_all("<?xml version=\"1.0\"?><!-- note --><r/><!-- tail -->");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].name, "r");
}

TEST(Parser, EntitiesDecoded) {
  auto tokens = parse_all("<a k=\"1&amp;2\">x&lt;y&gt;z</a>");
  EXPECT_EQ(*tokens[0].attr("k"), "1&2");
  EXPECT_EQ(tokens[1].text, "x<y>z");
}

TEST(Parser, WhitespaceBetweenElementsIgnored) {
  auto tokens = parse_all("<a>\n  <b/>\n</a>");
  ASSERT_EQ(tokens.size(), 4u);  // no text tokens for pure whitespace
}

TEST(Parser, MalformedInputsFlagError) {
  for (const char* bad :
       {"<a", "<a x=1></a>", "<a x=\"1></a>", "<a>&unknown;</a>", "<>",
        "<a></b>" /* mismatch is caught by schema layer, parser accepts */}) {
    std::istringstream in(bad);
    XmlParser p(in);
    bool saw_error = false;
    while (auto t = p.next()) {
    }
    saw_error = !p.ok();
    if (std::string(bad) == "<a></b>") {
      EXPECT_TRUE(p.ok());
    } else {
      EXPECT_TRUE(saw_error) << "input: " << bad;
    }
  }
}

TEST(Parser, WriterOutputAlwaysParses) {
  std::ostringstream out;
  XmlWriter w(out, /*pretty=*/true);
  w.declaration();
  w.open("root").attr("spec", "x&y");
  for (int i = 0; i < 10; ++i) {
    w.open("item").attr("i", static_cast<std::uint64_t>(i));
    w.text("payload <" + std::to_string(i) + ">");
    w.close();
  }
  w.close_all();
  auto tokens = parse_all(out.str());
  int starts = 0;
  for (const auto& t : tokens) starts += (t.kind == XmlToken::Kind::kStartElement);
  EXPECT_EQ(starts, 11);
}

// ---------------------------------------------------------------------------
// Dataset schema
// ---------------------------------------------------------------------------

anon::StringToken tok(const char* s) { return Md5::digest(std::string_view(s)); }

std::vector<anon::AnonEvent> sample_events() {
  std::vector<anon::AnonEvent> events;

  anon::AnonEvent stat;
  stat.time = 1;
  stat.peer = 10;
  stat.is_query = true;
  stat.message = anon::AServStatReq{};
  events.push_back(std::move(stat));

  anon::AnonEvent statres;
  statres.time = 2;
  statres.peer = 10;
  statres.is_query = false;
  statres.message = anon::AServStatRes{123456, 7890123};
  events.push_back(std::move(statres));

  anon::AnonEvent desc;
  desc.time = 3;
  desc.peer = 11;
  desc.is_query = false;
  desc.message = anon::AServerDescRes{tok("name"), tok("desc")};
  events.push_back(std::move(desc));

  anon::AnonEvent servers;
  servers.time = 4;
  servers.peer = 11;
  servers.is_query = false;
  servers.message = anon::AServerList{42};
  events.push_back(std::move(servers));

  anon::AnonEvent search;
  search.time = 5;
  search.peer = 12;
  search.is_query = true;
  {
    anon::AFileSearchReq req;
    auto expr = std::make_unique<anon::AnonSearchExpr>();
    expr->kind = proto::SearchExpr::Kind::kBool;
    expr->op = proto::BoolOp::kAnd;
    expr->left = std::make_unique<anon::AnonSearchExpr>();
    expr->left->kind = proto::SearchExpr::Kind::kKeyword;
    expr->left->token = tok("kw");
    expr->right = std::make_unique<anon::AnonSearchExpr>();
    expr->right->kind = proto::SearchExpr::Kind::kMetaNumeric;
    expr->right->tag_token = tok("\x02");
    expr->right->number = 700000;
    expr->right->cmp = proto::NumCmp::kMin;
    req.expr = std::move(expr);
    search.message = std::move(req);
  }
  events.push_back(std::move(search));

  anon::AnonEvent results;
  results.time = 6;
  results.peer = 12;
  results.is_query = false;
  {
    anon::AFileSearchRes res;
    anon::AnonFileEntry e;
    e.file = 100;
    e.provider = 55;
    e.port = 4662;
    e.meta.name = tok("file.avi");
    e.meta.size_kb = 683594;
    e.meta.type = tok("video");
    e.meta.availability = 3;
    res.results.push_back(e);
    anon::AnonFileEntry minimal;
    minimal.file = 101;
    minimal.provider = 56;
    res.results.push_back(minimal);
    results.message = std::move(res);
  }
  events.push_back(std::move(results));

  anon::AnonEvent getsrc;
  getsrc.time = 7;
  getsrc.peer = 13;
  getsrc.is_query = true;
  getsrc.message = anon::AGetSourcesReq{{100, 101, 102}};
  events.push_back(std::move(getsrc));

  anon::AnonEvent foundsrc;
  foundsrc.time = 8;
  foundsrc.peer = 13;
  foundsrc.is_query = false;
  foundsrc.message =
      anon::AFoundSourcesRes{100, {{55, 4662}, {56, 4663}}};
  events.push_back(std::move(foundsrc));

  anon::AnonEvent publish;
  publish.time = 9;
  publish.peer = 14;
  publish.is_query = true;
  {
    anon::APublishReq req;
    anon::AnonFileEntry e;
    e.file = 200;
    e.provider = 14;
    e.meta.size_kb = 4200;
    req.files.push_back(e);
    publish.message = std::move(req);
  }
  events.push_back(std::move(publish));

  anon::AnonEvent ack;
  ack.time = 10;
  ack.peer = 14;
  ack.is_query = false;
  ack.message = anon::APublishAck{1};
  events.push_back(std::move(ack));

  anon::AnonEvent descreq;
  descreq.time = 11;
  descreq.peer = 15;
  descreq.is_query = true;
  descreq.message = anon::AServerDescReq{};
  events.push_back(std::move(descreq));

  anon::AnonEvent getservers;
  getservers.time = 12;
  getservers.peer = 15;
  getservers.is_query = true;
  getservers.message = anon::AGetServerList{};
  events.push_back(std::move(getservers));

  return events;
}

bool expr_equal(const anon::AnonSearchExpr* a, const anon::AnonSearchExpr* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind || a->token != b->token ||
      a->tag_token != b->tag_token || a->number != b->number ||
      a->cmp != b->cmp || a->op != b->op)
    return false;
  return expr_equal(a->left.get(), b->left.get()) &&
         expr_equal(a->right.get(), b->right.get());
}

struct AnonBodyEq {
  const anon::AnonMessage& other;
  bool operator()(const anon::AFileSearchReq& v) const {
    return expr_equal(v.expr.get(),
                      std::get<anon::AFileSearchReq>(other).expr.get());
  }
  template <typename T>
  bool operator()(const T& v) const {
    return v == std::get<T>(other);
  }
};

bool anon_messages_equal(const anon::AnonMessage& a,
                         const anon::AnonMessage& b) {
  if (a.index() != b.index()) return false;
  return std::visit(AnonBodyEq{b}, a);
}

TEST(Schema, RoundtripAllKinds) {
  auto events = sample_events();
  std::ostringstream out;
  {
    DatasetWriter w(out);
    for (const auto& ev : events) w.write(ev);
    w.finish();
    EXPECT_EQ(w.events_written(), events.size());
  }

  std::istringstream in(out.str());
  DatasetReader r(in);
  std::size_t i = 0;
  while (auto ev = r.next()) {
    ASSERT_LT(i, events.size());
    EXPECT_EQ(ev->time, events[i].time) << "event " << i;
    EXPECT_EQ(ev->peer, events[i].peer) << "event " << i;
    EXPECT_EQ(ev->is_query, events[i].is_query) << "event " << i;
    EXPECT_TRUE(anon_messages_equal(ev->message, events[i].message))
        << "event " << i;
    ++i;
  }
  EXPECT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(i, events.size());
}

TEST(Schema, ReaderRejectsMissingAttributes) {
  std::istringstream in("<capture><msg peer=\"1\" dir=\"q\" kind=\"statreq\"/></capture>");
  DatasetReader r(in);
  EXPECT_FALSE(r.next());
  EXPECT_FALSE(r.ok());  // missing t
}

TEST(Schema, ReaderRejectsUnknownKind) {
  std::istringstream in(
      "<capture><msg t=\"1\" peer=\"1\" dir=\"q\" kind=\"nope\"/></capture>");
  DatasetReader r(in);
  EXPECT_FALSE(r.next());
  EXPECT_FALSE(r.ok());
}

TEST(Schema, ReaderRejectsBadDirection) {
  std::istringstream in(
      "<capture><msg t=\"1\" peer=\"1\" dir=\"x\" kind=\"statreq\"/></capture>");
  DatasetReader r(in);
  EXPECT_FALSE(r.next());
  EXPECT_FALSE(r.ok());
}

TEST(Schema, ReaderRejectsMsgOutsideCapture) {
  std::istringstream in("<msg t=\"1\" peer=\"1\" dir=\"q\" kind=\"statreq\"/>");
  DatasetReader r(in);
  EXPECT_FALSE(r.next());
  EXPECT_FALSE(r.ok());
}

TEST(Schema, EmptyCaptureIsValid) {
  std::istringstream in("<capture spec=\"donkeytrace-1\"></capture>");
  DatasetReader r(in);
  EXPECT_FALSE(r.next());
  EXPECT_TRUE(r.ok());
}

TEST(Schema, HashesSurviveRoundtripExactly) {
  anon::AnonEvent ev;
  ev.time = 99;
  ev.peer = 1;
  ev.is_query = false;
  ev.message = anon::AServerDescRes{tok("x"), tok("y")};
  std::ostringstream out;
  {
    DatasetWriter w(out);
    w.write(ev);
  }
  std::istringstream in(out.str());
  DatasetReader r(in);
  auto got = r.next();
  ASSERT_TRUE(got);
  const auto& m = std::get<anon::AServerDescRes>(got->message);
  EXPECT_EQ(m.name.hex(), tok("x").hex());
}

// ---------------------------------------------------------------------------
// LZSS dataset compression
// ---------------------------------------------------------------------------

TEST(Compress, EmptyInput) {
  Bytes compressed = lz_compress({});
  auto out = lz_decompress(compressed);
  ASSERT_TRUE(out);
  EXPECT_TRUE(out->empty());
}

TEST(Compress, RoundtripText) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "<msg t=\"" + std::to_string(i * 37) +
            "\" peer=\"42\" dir=\"q\" kind=\"getsrc\"><f id=\"17\"/></msg>\n";
  }
  Bytes data(text.begin(), text.end());
  Bytes compressed = lz_compress(data);
  auto out = lz_decompress(compressed);
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, data);
  // Repetitive XML must compress well (paper footnote 3).
  EXPECT_LT(lz_ratio(data, compressed), 0.35);
}

TEST(Compress, RoundtripRandomIncompressible) {
  Rng rng(42);
  Bytes data(20000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  Bytes compressed = lz_compress(data);
  auto out = lz_decompress(compressed);
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, data);
  // Random data cannot shrink; the format guarantees bounded expansion.
  EXPECT_LE(compressed.size(), data.size() + data.size() / 8 + 16);
}

TEST(Compress, RoundtripAllByteValuesAndRuns) {
  Bytes data;
  for (int v = 0; v < 256; ++v) {
    for (int rep = 0; rep < v % 7 + 1; ++rep)
      data.push_back(static_cast<std::uint8_t>(v));
  }
  data.insert(data.end(), 1000, 0xAA);  // long run: long matches
  auto out = lz_decompress(lz_compress(data));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, data);
}

TEST(Compress, RoundtripChunkSizesProperty) {
  Rng rng(7);
  for (std::size_t size : {1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u, 1000u, 70000u}) {
    Bytes data(size);
    // Mixed compressible/incompressible content.
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = (i % 3 == 0) ? static_cast<std::uint8_t>(rng.below(256))
                             : static_cast<std::uint8_t>(i % 17);
    }
    auto out = lz_decompress(lz_compress(data));
    ASSERT_TRUE(out) << "size " << size;
    EXPECT_EQ(*out, data) << "size " << size;
  }
}

TEST(Compress, RejectsMalformedInput) {
  EXPECT_FALSE(lz_decompress({}));
  Bytes junk(20, 0x55);
  EXPECT_FALSE(lz_decompress(junk));
  // Valid magic but absurd claimed size.
  ByteWriter w;
  w.raw(Bytes{'D', 'T', 'Z', '1'});
  w.u64le(1ull << 60);
  Bytes absurd = std::move(w).take();
  EXPECT_FALSE(lz_decompress(absurd));
}

TEST(Compress, TruncatedStreamRejected) {
  Bytes data(5000, 'x');
  Bytes compressed = lz_compress(data);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(lz_decompress(compressed));
}

TEST(Compress, MutationNeverCrashes) {
  Bytes data;
  for (int i = 0; i < 3000; ++i)
    data.push_back(static_cast<std::uint8_t>(i % 97));
  Bytes compressed = lz_compress(data);
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = compressed;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    (void)lz_decompress(mutated);  // any result is fine; no crash, no UB
  }
}

TEST(Compress, DatasetCompressesWell) {
  // A realistic dataset document, through the real writer.
  std::ostringstream out;
  {
    DatasetWriter w(out);
    for (auto& ev : sample_events()) {
      for (int rep = 0; rep < 40; ++rep) w.write(ev);
    }
  }
  std::string doc = out.str();
  Bytes data(doc.begin(), doc.end());
  Bytes compressed = lz_compress(data);
  auto restored = lz_decompress(compressed);
  ASSERT_TRUE(restored);
  EXPECT_EQ(*restored, data);
  EXPECT_LT(lz_ratio(data, compressed), 0.25)
      << "dataset XML must compress at least 4x";
}

}  // namespace
}  // namespace dtr::xmlio
